"""Tests for application/workload/trace generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.workloads.generator import (
    PHYSICS_FIELDS,
    PhaseSequence,
    generate_application,
    generate_trace,
    physics_matrix,
)


def make_app(seed=1, **kwargs):
    return generate_application(
        name="app", category="test",
        families_weights={"pointer_chase": 0.5, "compute_int": 0.5},
        seed=seed, **kwargs)


class TestGenerateApplication:
    def test_deterministic(self):
        a, b = make_app(), make_app()
        assert a.phases == b.phases
        assert np.array_equal(a.transitions, b.transitions)

    def test_different_seeds_differ(self):
        assert make_app(1).phases != make_app(2).phases

    def test_transitions_row_stochastic(self):
        app = make_app()
        assert np.allclose(app.transitions.sum(axis=1), 1.0)

    def test_phase_count_in_range(self):
        for seed in range(12):
            app = make_app(seed, n_phases_range=(3, 7))
            assert 3 <= app.n_phases <= 7

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_application("a", "c", {"nope": 1.0}, seed=1)

    def test_dwell_range_respected(self):
        app = make_app(dwell_range=(0.98, 0.99))
        self_probs = np.diag(app.transitions)
        assert np.all(self_probs >= 0.98 - 1e-9)
        assert np.all(self_probs <= 0.99 + 1e-9)

    def test_ood_shift_changes_physics(self):
        plain = make_app(5, ood_shift=0.0)
        shifted = make_app(5, ood_shift=0.3)
        assert plain.phases != shifted.phases


class TestTraces:
    def test_trace_deterministic(self):
        app = make_app()
        t1 = app.workload(0).trace(100, 0)
        t2 = app.workload(0).trace(100, 0)
        assert np.array_equal(t1.phase_seq, t2.phase_seq)
        assert t1.seed == t2.seed

    def test_trace_ids_differ(self):
        app = make_app()
        t1 = app.workload(0).trace(200, 0)
        t2 = app.workload(0).trace(200, 1)
        assert not np.array_equal(t1.phase_seq, t2.phase_seq)

    def test_inputs_shift_phase_mixture(self):
        app = make_app()
        mix = []
        for input_id in range(2):
            trace = app.workload(input_id).trace(2000, 0)
            mix.append(np.bincount(trace.phase_seq,
                                   minlength=app.n_phases) / 2000)
        assert not np.allclose(mix[0], mix[1], atol=0.02)

    def test_phase_indices_valid(self):
        app = make_app()
        trace = app.workload(1).trace(300, 0)
        assert trace.phase_seq.min() >= 0
        assert trace.phase_seq.max() < app.n_phases

    def test_instructions_property(self):
        trace = generate_trace(make_app(), n_intervals=50)
        assert trace.instructions == 50 * trace.interval_instructions

    def test_zero_intervals_rejected(self):
        with pytest.raises(ConfigurationError):
            make_app().workload(0).trace(0, 0)

    def test_phases_persist(self):
        # Mean dwell should be tens of intervals per the generator doc.
        app = make_app()
        trace = app.workload(0).trace(3000, 0)
        seq = PhaseSequence.from_trace(trace)
        assert seq.mean_dwell > 8.0

    def test_phase_names_align_with_seq(self):
        app = make_app()
        trace = app.workload(0).trace(20, 0)
        names = trace.phase_names()
        for idx, name in zip(trace.phase_seq, names):
            assert app.phases[idx].name == name


class TestPhysicsMatrix:
    def test_field_order(self):
        assert PHYSICS_FIELDS[0] == "ilp"
        assert "sq_pressure" in PHYSICS_FIELDS

    def test_matrix_shape_and_values(self):
        app = make_app()
        mat = physics_matrix(app.phases)
        assert mat.shape == (app.n_phases, len(PHYSICS_FIELDS))
        assert mat[0, 0] == pytest.approx(app.phases[0].ilp)

    def test_trace_physics_indexes_phases(self):
        app = make_app()
        trace = app.workload(0).trace(40, 0)
        phys = trace.physics()
        assert phys.shape == (40, len(PHYSICS_FIELDS))
        table = physics_matrix(app.phases)
        assert np.array_equal(phys, table[trace.phase_seq])


class TestPhaseSequence:
    def test_run_length_encoding_roundtrip(self):
        app = make_app()
        trace = app.workload(0).trace(500, 0)
        seq = PhaseSequence.from_trace(trace)
        rebuilt = np.repeat(seq.indices, seq.lengths)
        assert np.array_equal(rebuilt, trace.phase_seq)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 400), seed=st.integers(0, 1000))
    def test_lengths_sum_to_trace_length(self, n, seed):
        app = make_app(seed % 5)
        trace = app.workload(seed % 3).trace(n, seed % 4)
        seq = PhaseSequence.from_trace(trace)
        assert int(seq.lengths.sum()) == n
