"""Tests for the from-scratch ML estimators."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.errors import ConfigurationError, DatasetError, NotFittedError
from repro.ml import (
    DecisionTreeClassifier,
    KernelSVM,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    SoftmaxRegression,
    StandardScaler,
    merge_forests,
)
from repro.ml.base import tune_threshold_for_fp_rate
from repro.ml.metrics_ml import accuracy


@pytest.fixture(scope="module")
def linear_data():
    rng = rng_mod.stream(1, "lin")
    x = rng.normal(size=(1500, 6))
    y = (x @ np.array([1.0, -2.0, 0.5, 0.0, 0.0, 1.5]) > 0).astype(int)
    return x, y


@pytest.fixture(scope="module")
def xor_data():
    rng = rng_mod.stream(2, "xor")
    x = rng.normal(size=(2500, 4))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
    return x, y


class TestStandardScaler:
    def test_zero_mean_unit_std(self, linear_data):
        x, _ = linear_data
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_safe(self):
        x = np.ones((10, 2))
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))


class TestLogisticRegression:
    def test_learns_linear_boundary(self, linear_data):
        x, y = linear_data
        model = LogisticRegression().fit(x[:1000], y[:1000])
        assert accuracy(y[1000:], model.predict(x[1000:])) > 0.95

    def test_fails_on_xor(self, xor_data):
        x, y = xor_data
        model = LogisticRegression().fit(x[:2000], y[:2000])
        assert accuracy(y[2000:], model.predict(x[2000:])) < 0.65

    def test_probabilities_in_unit_interval(self, linear_data):
        x, y = linear_data
        probs = LogisticRegression().fit(x, y).predict_proba(x)
        assert np.all((probs >= 0.0) & (probs <= 1.0))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict_proba(np.zeros((2, 3)))

    def test_nan_features_rejected(self):
        x = np.full((4, 2), np.nan)
        with pytest.raises(DatasetError):
            LogisticRegression().fit(x, np.zeros(4))


class TestSoftmaxRegression:
    def test_binary_matches_logistic(self, linear_data):
        x, y = linear_data
        soft = SoftmaxRegression().fit(x[:1000], y[:1000])
        logi = LogisticRegression(class_weight=None).fit(x[:1000], y[:1000])
        p_soft = soft.predict_proba(x[1000:])[:, 1]
        p_logi = logi.predict_proba(x[1000:])
        agree = ((p_soft > 0.5) == (p_logi > 0.5)).mean()
        assert agree > 0.98

    def test_multiclass(self):
        rng = rng_mod.stream(3, "multi")
        x = rng.normal(size=(900, 2))
        y = (x[:, 0] > 0).astype(int) + 2 * (x[:, 1] > 0).astype(int)
        model = SoftmaxRegression().fit(x[:700], y[:700])
        preds = model.predict(x[700:])
        assert (preds == y[700:]).mean() > 0.9
        assert np.allclose(model.predict_proba(x[:5]).sum(axis=1), 1.0)


class TestMLP:
    def test_learns_xor(self, xor_data):
        x, y = xor_data
        model = MLPClassifier(hidden_layers=(16, 16), epochs=40,
                              seed=4).fit(x[:2000], y[:2000])
        assert accuracy(y[2000:], model.predict(x[2000:])) > 0.9

    def test_loss_decreases(self, xor_data):
        x, y = xor_data
        model = MLPClassifier(hidden_layers=(8,), epochs=20, seed=4)
        model.fit(x, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_deterministic_given_seed(self, linear_data):
        x, y = linear_data
        a = MLPClassifier(epochs=5, seed=9).fit(x, y).predict_proba(x[:20])
        b = MLPClassifier(epochs=5, seed=9).fit(x, y).predict_proba(x[:20])
        assert np.allclose(a, b)

    def test_n_parameters(self, linear_data):
        x, y = linear_data
        model = MLPClassifier(hidden_layers=(8, 4), epochs=1).fit(x, y)
        expected = 6 * 8 + 8 + 8 * 4 + 4 + 4 * 1 + 1
        assert model.n_parameters == expected

    def test_invalid_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier(hidden_layers=(0,))

    def test_threshold_changes_predictions(self, linear_data):
        x, y = linear_data
        model = MLPClassifier(epochs=8, seed=4).fit(x, y)
        model.decision_threshold = 0.99
        conservative = model.predict(x).sum()
        model.decision_threshold = 0.01
        aggressive = model.predict(x).sum()
        assert aggressive > conservative


class TestTree:
    def test_learns_axis_aligned_rule(self):
        rng = rng_mod.stream(5, "tree")
        x = rng.normal(size=(800, 3))
        y = ((x[:, 1] > 0.3) & (x[:, 2] < 0.0)).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(x[:600], y[:600])
        assert accuracy(y[600:], tree.predict(x[600:])) > 0.95

    def test_depth_cap(self, xor_data):
        x, y = xor_data
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        assert tree.depth <= 3

    def test_min_samples_leaf(self):
        rng = rng_mod.stream(6, "leaf")
        x = rng.normal(size=(100, 2))
        y = (rng.random(100) < 0.5).astype(int)
        tree = DecisionTreeClassifier(max_depth=10,
                                      min_samples_leaf=20).fit(x, y)
        # No leaf probability should come from fewer than ~20 samples;
        # proxy: the tree stays small.
        assert tree.n_nodes < 15

    def test_pure_node_stops(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier(max_depth=5, min_samples_leaf=1,
                                      min_samples_split=2).fit(x, y)
        assert tree.depth == 1
        assert np.array_equal(tree.predict(x), y)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((2, 2)))


class TestForest:
    def test_learns_xor(self, xor_data):
        x, y = xor_data
        rf = RandomForestClassifier(n_trees=8, max_depth=8,
                                    seed=3).fit(x[:2000], y[:2000])
        assert accuracy(y[2000:], rf.predict(x[2000:])) > 0.85

    def test_probability_is_mean_vote(self, xor_data):
        x, y = xor_data
        rf = RandomForestClassifier(n_trees=4, max_depth=4,
                                    seed=3).fit(x[:500], y[:500])
        votes = np.mean([t.predict_proba(x[:50]) for t in rf.trees_],
                        axis=0)
        assert np.allclose(rf.predict_proba(x[:50]), votes)

    def test_merge_forests(self, xor_data):
        x, y = xor_data
        a = RandomForestClassifier(n_trees=4, seed=1).fit(x[:800], y[:800])
        b = RandomForestClassifier(n_trees=4, seed=2).fit(x[:800], y[:800])
        merged = merge_forests(a, b)
        assert merged.n_trees == 8
        assert len(merged.trees_) == 8
        expected = 0.5 * (a.predict_proba(x[:50])
                          + b.predict_proba(x[:50]))
        assert np.allclose(merged.predict_proba(x[:50]), expected)

    def test_merge_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            merge_forests(RandomForestClassifier(),
                          RandomForestClassifier())

    def test_invalid_tree_count_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomForestClassifier(n_trees=0)


class TestSVMs:
    def test_linear_svm_separates(self, linear_data):
        x, y = linear_data
        svm = LinearSVM().fit(x[:1000], y[:1000])
        assert accuracy(y[1000:], svm.predict(x[1000:])) > 0.93

    def test_linear_svm_ensemble(self, linear_data):
        x, y = linear_data
        svm = LinearSVM(n_members=5, seed=3).fit(x[:1000], y[:1000])
        assert svm.coefs_.shape[0] == 5
        assert accuracy(y[1000:], svm.predict(x[1000:])) > 0.9

    def test_kernel_svm_beats_linear_on_ring(self):
        rng = rng_mod.stream(7, "ring")
        x = np.abs(rng.normal(size=(1200, 2)))
        radius = np.linalg.norm(x, axis=1)
        y = ((radius > 0.8) & (radius < 1.8)).astype(int)
        lin = LinearSVM().fit(x[:900], y[:900])
        ker = KernelSVM(kernel="rbf", gamma=4.0, max_support_vectors=300,
                        max_passes=4, seed=1).fit(x[:900], y[:900])
        acc_lin = accuracy(y[900:], lin.predict(x[900:]))
        acc_ker = accuracy(y[900:], ker.predict(x[900:]))
        assert acc_ker > acc_lin

    def test_support_vector_budget(self, linear_data):
        x, y = linear_data
        svm = KernelSVM(kernel="linear", max_support_vectors=100,
                        max_passes=2).fit(x, y)
        assert svm.n_support <= 100

    def test_chi2_kernel_requires_non_negative(self):
        from repro.ml.kernels import chi2_kernel
        with pytest.raises(ConfigurationError):
            chi2_kernel(np.array([[-1.0]]), np.array([[1.0]]))

    def test_unknown_kernel_rejected(self):
        from repro.ml.kernels import get_kernel
        with pytest.raises(ConfigurationError):
            get_kernel("sinc")


class TestThresholdTuning:
    def test_fp_rate_bounded_after_tuning(self, linear_data):
        x, y = linear_data
        model = LogisticRegression().fit(x, y)
        tune_threshold_for_fp_rate(model, x, y, max_fp_rate=0.01)
        preds = model.predict(x)
        fp_rate = ((preds == 1) & (y == 0)).sum() / max((y == 0).sum(), 1)
        assert fp_rate <= 0.015

    def test_tuning_never_lowers_below_half(self, linear_data):
        x, y = linear_data
        model = LogisticRegression().fit(x, y)
        threshold = tune_threshold_for_fp_rate(model, x, y, 0.5)
        assert threshold >= 0.5
