"""Tests for the adaptation-serving daemon (repro.serve)."""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.adaptive_cpu import AdaptiveCPU
from repro.errors import BusyError, ProtocolError, ServeClosedError
from repro.errors import ServeError
from repro.exec.parallel import ParallelMap, close_pools
from repro.serve import MicroBatcher, ServeClient, TenantLedger
from repro.serve import adapt_payload, build_server, busy_response
from repro.serve import decide_payload, encode_frame, recv_frame
from repro.serve import send_frame, serving_corpus, wait_until_ready
from repro.serve.server import const_predictor
from repro.uarch.modes import Mode


# ---------------------------------------------------------------------
# Protocol framing.
# ---------------------------------------------------------------------
class TestProtocol:
    def _pair(self):
        return socket.socketpair()

    def test_round_trip(self):
        a, b = self._pair()
        payload = {"op": "ping", "nested": {"x": [1, 2.5, "s", None]}}
        send_frame(a, payload)
        assert recv_frame(b) == payload
        a.close(), b.close()

    def test_clean_eof_returns_none(self):
        a, b = self._pair()
        a.close()
        assert recv_frame(b) is None
        b.close()

    def test_truncated_frame_raises(self):
        a, b = self._pair()
        frame = encode_frame({"op": "ping"})
        a.sendall(frame[:len(frame) - 2])
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(b)
        b.close()

    def test_oversize_length_rejected(self):
        a, b = self._pair()
        a.sendall((1 << 31).to_bytes(4, "big"))
        with pytest.raises(ProtocolError, match="MAX_FRAME_BYTES"):
            recv_frame(b)
        a.close(), b.close()

    def test_non_object_body_rejected(self):
        import struct
        a, b = self._pair()
        body = b"[1,2,3]"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON object"):
            recv_frame(b)
        a.close(), b.close()

    def test_float_exactness_over_the_wire(self):
        # json round-trips repr floats exactly — the foundation of the
        # daemon's bit-identity guarantee.
        a, b = self._pair()
        values = [0.1, 1 / 3, 1e-308, 123456.789e30]
        send_frame(a, {"v": values})
        received = recv_frame(b)["v"]
        assert all(x == y for x, y in zip(values, received))
        a.close(), b.close()

    def test_decide_payload_threshold_boundary(self):
        payload = decide_payload(np.array([0.49, 0.5, 0.51]), 0.5)
        assert payload["decisions"] == [0, 1, 1]
        assert payload["probs"] == [0.49, 0.5, 0.51]

    def test_digest_distinguishes_runs(self):
        a = decide_payload(np.array([0.1, 0.2]), 0.5)
        b = decide_payload(np.array([0.1, 0.2000000001]), 0.5)
        assert a["digest"] != b["digest"]


# ---------------------------------------------------------------------
# Micro-batcher.
# ---------------------------------------------------------------------
class TestMicroBatcher:
    def test_invalid_params(self):
        for kwargs in ({"max_batch": 0}, {"max_wait_us": -1},
                       {"queue_bound": 0}):
            params = {"max_batch": 4, "max_wait_us": 0,
                      "queue_bound": 8, **kwargs}
            with pytest.raises(ValueError):
                MicroBatcher(lambda items: list(items), **params)

    def test_results_in_submission_order(self):
        batcher = MicroBatcher(lambda items: [i * 10 for i in items],
                               max_batch=4, max_wait_us=5000,
                               queue_bound=64)
        results = [None] * 12

        def submit(i):
            results[i] = batcher.submit(i)

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()
        assert results == [i * 10 for i in range(12)]

    def test_coalesces_under_concurrency(self):
        sizes = []
        lock = threading.Lock()
        gate = threading.Event()

        def execute(items):
            gate.wait(5.0)
            with lock:
                sizes.append(len(items))
            return list(items)

        batcher = MicroBatcher(execute, max_batch=8, max_wait_us=20000,
                               queue_bound=64)
        threads = [threading.Thread(target=batcher.submit, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        time.sleep(0.1)  # let every submission queue up
        gate.set()
        for t in threads:
            t.join()
        batcher.close()
        assert max(sizes) > 1  # concurrent arrivals shared a batch
        assert sum(sizes) == 8

    def test_sheds_at_queue_bound(self):
        release = threading.Event()

        def execute(items):
            release.wait(10.0)
            return list(items)

        batcher = MicroBatcher(execute, max_batch=1, max_wait_us=0,
                               queue_bound=2)

        def submit_quietly(i):
            try:
                batcher.submit(i)
            except BusyError:
                pass  # racing submissions may shed too

        threads = [threading.Thread(target=submit_quietly, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 5.0
        # 1 executing + 2 queued; further submissions must shed.
        while batcher.depth() < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(BusyError) as excinfo:
            batcher.submit(99)
        assert excinfo.value.queue_depth == 2
        release.set()
        for t in threads:
            t.join()
        batcher.close()

    def test_executor_error_delivered_to_all(self):
        def execute(items):
            raise RuntimeError("executor blew up")

        batcher = MicroBatcher(execute, max_batch=4, max_wait_us=1000,
                               queue_bound=8)
        errors = []

        def submit(i):
            try:
                batcher.submit(i)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()
        assert errors == ["executor blew up"] * 3

    def test_length_mismatch_is_an_error(self):
        batcher = MicroBatcher(lambda items: [], max_batch=1,
                               max_wait_us=0, queue_bound=4)
        with pytest.raises(ServeClosedError, match="0 results"):
            batcher.submit("x")
        batcher.close()

    def test_closed_batcher_rejects(self):
        batcher = MicroBatcher(lambda items: list(items), max_batch=1,
                               max_wait_us=0, queue_bound=4)
        batcher.close()
        batcher.close()  # idempotent
        with pytest.raises(ServeClosedError):
            batcher.submit(1)

    def test_pressured_tenant_drains_first(self):
        ledger = TenantLedger(default_budget_ms=50.0, window=8)
        # "hot" is far over budget, "cold" is comfortably under.
        for _ in range(8):
            ledger.record("hot", latency_s=1.0)
            ledger.record("cold", latency_s=0.001)
        order = []
        lock = threading.Lock()
        blocking = threading.Event()
        release = threading.Event()

        def execute(items):
            if items == ["block"]:
                # Pin the batcher thread so the real submissions all
                # queue up before the next flush can sort them.
                blocking.set()
                release.wait(5.0)
                return list(items)
            with lock:
                order.extend(items)
            return list(items)

        batcher = MicroBatcher(execute, max_batch=2, max_wait_us=0,
                               queue_bound=16, ledger=ledger)
        blocker = threading.Thread(target=batcher.submit,
                                   args=("block", "default"))
        blocker.start()
        assert blocking.wait(5.0)
        threads = [
            threading.Thread(target=batcher.submit,
                             args=(name, name))
            for name in ("cold", "cold", "hot", "hot")
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 5.0
        while batcher.depth() < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        release.set()
        for t in threads:
            t.join()
        blocker.join()
        batcher.close()
        # The pressured tenant's requests lead the drain order.
        assert order[:2] == ["hot", "hot"]


# ---------------------------------------------------------------------
# Admission / tenant ledger.
# ---------------------------------------------------------------------
class TestAdmission:
    def test_busy_response_shape(self):
        response = busy_response(7, 64, 64, retry_after=120.0)
        assert response == {"id": 7, "ok": False, "error": "busy",
                            "queue_depth": 64, "queue_bound": 64,
                            "retry": True, "retry_after_ms": 120.0}

    def test_busy_response_computes_fallback_hint(self):
        # No drain rate known: depth * per-request fallback, clamped.
        response = busy_response(1, 4, 64)
        assert response["retry_after_ms"] == 100.0

    def test_unseen_tenant_has_zero_pressure(self):
        assert TenantLedger().pressure("nobody") == 0.0

    def test_pressure_rises_with_violations(self):
        ledger = TenantLedger(default_budget_ms=10.0, window=4,
                              guarantee=0.75)
        ledger.record("t", latency_s=0.001)
        assert ledger.pressure("t") == 0.0
        ledger.record("t", latency_s=0.5)  # 50x over budget
        assert ledger.pressure("t") > 0.0
        snap = ledger.snapshot()
        assert snap["t"]["observations"] == 2
        assert snap["t"]["violations"] == 1

    def test_explicit_budget_overrides_default(self):
        ledger = TenantLedger(default_budget_ms=1000.0, window=4)
        ledger.record("t", latency_s=0.01, budget_ms=1.0)
        assert ledger.snapshot()["t"]["violations"] == 1


# ---------------------------------------------------------------------
# End-to-end daemon.
# ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve") / "serve.sock")
    server = build_server(path, predictor_kind="const", n_apps=4,
                          workloads_per_app=1, intervals=64)
    server.start()
    wait_until_ready(path, timeout_s=60.0)
    yield server
    server.request_stop()
    server.serve_forever()


class TestDaemon:
    def test_ping_and_stats(self, daemon):
        with ServeClient(daemon.address) as client:
            assert client.ping()
            stats = client.stats()
        assert stats["corpus_traces"] == 4
        assert stats["predictor"] == "serve_const"
        assert stats["max_batch"] >= 1

    def test_adapt_bit_identical_to_direct_run(self, daemon):
        with ServeClient(daemon.address) as client:
            for index in range(4):
                served = client.adapt(index)
                direct = adapt_payload(
                    daemon.cpu.run(daemon.traces[index]))
                assert served["result"] == direct
                assert served["tier"] in ("interval", "surrogate",
                                          "mixed")

    def test_decide_bit_identical_to_direct_predict(self, daemon):
        window = np.random.default_rng(3).random((7, 4))
        with ServeClient(daemon.address) as client:
            for mode in Mode:
                served = client.decide(mode.value, window)
                probs = daemon.cpu.predictor.predict_proba(window, mode)
                threshold = daemon.cpu.predictor.model_for(
                    mode).decision_threshold
                direct = decide_payload(probs, threshold)
                assert served["probs"] == direct["probs"]
                assert served["decisions"] == direct["decisions"]
                assert served["digest"] == direct["digest"]

    def test_concurrent_mixed_load_all_answered(self, daemon):
        window = np.random.default_rng(5).random((5, 4)).tolist()
        failures = []

        def worker(cid):
            try:
                with ServeClient(daemon.address,
                                 tenant=f"t{cid}") as client:
                    for i in range(10):
                        if i % 3 == 0:
                            client.adapt(i % 4, budget_ms=200.0)
                        else:
                            client.decide("low_power", window)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(c,))
                   for c in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_tenant_accounting_appears_in_stats(self, daemon):
        with ServeClient(daemon.address, tenant="acct") as client:
            client.adapt(0, budget_ms=500.0)
            stats = client.stats()
        assert "acct" in stats["tenants"]
        assert stats["tenants"]["acct"]["observations"] >= 1

    def test_bad_requests_get_typed_errors(self, daemon):
        with ServeClient(daemon.address) as client:
            with pytest.raises(ServeError, match="unknown op"):
                client.request({"op": "fry"})
            with pytest.raises(ServeError, match="trace_index"):
                client.request({"op": "adapt", "trace_index": 99})
            with pytest.raises(ServeError, match="trace_index"):
                client.request({"op": "adapt", "trace_index": True})
            with pytest.raises(ServeError, match="window"):
                client.request({"op": "decide", "mode": "low_power",
                                "window": []})
            with pytest.raises(ServeError, match="mode"):
                client.request({"op": "decide", "mode": "warp",
                                "window": [[0.0, 0.0, 0.0, 0.0]]})
            # The connection survives bad requests.
            assert client.ping()

    def test_queue_bound_sheds_with_busy(self, tmp_path):
        path = str(tmp_path / "busy.sock")
        server = build_server(path, predictor_kind="const", n_apps=2,
                              workloads_per_app=1, intervals=64,
                              max_batch=1, max_wait_us=0,
                              queue_bound=1)
        server.start()
        try:
            wait_until_ready(path, timeout_s=60.0)
            outcomes = {"busy": 0, "ok": 0}
            lock = threading.Lock()

            def worker():
                with ServeClient(path) as client:
                    for _ in range(8):
                        try:
                            client.adapt(0)
                            key = "ok"
                        except BusyError:
                            key = "busy"
                        with lock:
                            outcomes[key] += 1

            threads = [threading.Thread(target=worker)
                       for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert outcomes["ok"] > 0
            assert outcomes["busy"] > 0  # admission control engaged
        finally:
            server.request_stop()
            server.serve_forever()

    def test_shutdown_leaves_no_children_or_socket(self, tmp_path):
        path = str(tmp_path / "clean.sock")
        server = build_server(path, predictor_kind="const", n_apps=2,
                              workloads_per_app=1, intervals=64)
        server.start()
        wait_until_ready(path, timeout_s=60.0)
        with ServeClient(path) as client:
            client.adapt(0)
            client.shutdown()
        server.serve_forever()  # returns once shutdown completed
        assert not os.path.exists(path)
        assert multiprocessing.active_children() == []
        server.shutdown()  # idempotent


# ---------------------------------------------------------------------
# Resident arena on the daemon's CPU.
# ---------------------------------------------------------------------
class TestResidentArena:
    def test_pickled_cpu_drops_resident_arena(self):
        import pickle
        traces = serving_corpus(2, 1, 48)
        cpu = AdaptiveCPU(const_predictor())
        try:
            assert cpu.install_resident_arena(traces) is not None
            clone = pickle.loads(pickle.dumps(cpu))
            assert clone._resident_arena is None
            assert clone._resident_index == {}
        finally:
            cpu.close_resident_arena()

    def test_close_is_idempotent(self):
        cpu = AdaptiveCPU(const_predictor())
        cpu.close_resident_arena()
        cpu.close_resident_arena()

    def test_resident_reuse_bit_identical_to_serial(self):
        from repro.exec.stats import EXEC_STATS
        traces = serving_corpus(4, 1, 48)
        cpu = AdaptiveCPU(const_predictor())
        serial = cpu.run_many(traces, pmap=ParallelMap("serial"))
        pmap = ParallelMap("process", n_workers=2)
        try:
            cpu.install_resident_arena(traces)
            before = EXEC_STATS.count("arena.resident_reuse")
            resident = cpu.run_many(traces, pmap=pmap)
            if pmap.uses_processes(len(traces), "adaptive_prepare"):
                assert EXEC_STATS.count("arena.resident_reuse") > before
            assert [adapt_payload(r) for r in resident] == \
                [adapt_payload(r) for r in serial]
        finally:
            cpu.close_resident_arena()
            close_pools()
