"""Tests for the fast interval performance model."""

import numpy as np
import pytest

from repro.uarch.interval_model import (
    IntervalModel,
    SQ_PENALTY_HIGH_PERF,
    SQ_PENALTY_LOW_POWER,
)
from repro.uarch.modes import Mode
from repro.uarch.signals import signal_index
from repro.workloads.generator import generate_application, physics_matrix
from repro.workloads.phases import get_archetype
from repro import rng as rng_mod


@pytest.fixture(scope="module")
def model():
    return IntervalModel()


@pytest.fixture(scope="module")
def trace():
    app = generate_application(
        "im", "test",
        {"pointer_chase": 0.4, "compute_fp": 0.4, "store_burst": 0.2},
        seed=11)
    return app.workload(0).trace(200, 0)


class TestSimulate:
    def test_ipc_bounded_by_width(self, model, trace):
        for mode in Mode:
            result = model.simulate(trace, mode)
            assert np.all(result.ipc > 0.0)
            assert np.all(result.ipc <= model.effective_width(mode) + 1e-9)

    def test_deterministic(self, trace):
        a = IntervalModel().simulate(trace, Mode.HIGH_PERF)
        b = IntervalModel().simulate(trace, Mode.HIGH_PERF)
        assert np.array_equal(a.ipc, b.ipc)
        assert np.array_equal(a.signals, b.signals)

    def test_cycles_consistent_with_ipc(self, model, trace):
        result = model.simulate(trace, Mode.LOW_POWER)
        expected = trace.interval_instructions / result.ipc
        assert np.allclose(result.cycles, expected)

    def test_mean_ipc_aggregates(self, model, trace):
        result = model.simulate(trace, Mode.HIGH_PERF)
        total_inst = result.n_intervals * result.interval_instructions
        assert result.mean_ipc == pytest.approx(
            total_inst / result.total_cycles)

    def test_cache_returns_same_object(self, trace):
        m = IntervalModel()
        a = m.simulate(trace, Mode.HIGH_PERF)
        b = m.simulate(trace, Mode.HIGH_PERF)
        assert a is b

    def test_cache_eviction_bounded(self, trace):
        m = IntervalModel(cache_size=1)
        m.simulate(trace, Mode.HIGH_PERF)
        m.simulate(trace, Mode.LOW_POWER)
        assert len(m._cache) == 1


class TestModeEffects:
    def _phase_ratio(self, model, archetype_name):
        phase = get_archetype(archetype_name).sample(
            rng_mod.stream(5, "ratio", archetype_name))
        physics = physics_matrix([phase])
        ipc = {}
        for mode in Mode:
            adjusted = model.mode_adjusted_physics(physics, mode)
            cpi = sum(model.cpi_components(adjusted, mode).values())
            ipc[mode] = min(1.0 / cpi[0], model.effective_width(mode))
        return ipc[Mode.LOW_POWER] / ipc[Mode.HIGH_PERF]

    def test_compute_phases_lose_when_gated(self, model):
        assert self._phase_ratio(model, "gemm_tile") < 0.8

    def test_pointer_chase_gates_for_free(self, model):
        assert self._phase_ratio(model, "linked_list_walk") > 0.95

    def test_store_burst_violates_but_plausibly(self, model):
        # The blindspot phase: a clear SLA violation, but not a crash
        # to near-zero IPC (Section 7.1 discussion).
        ratio = self._phase_ratio(model, "store_burst_serialize")
        assert 0.4 < ratio < 0.85

    def test_bandwidth_penalised_by_halved_mshrs(self, model):
        assert self._phase_ratio(model, "stream_copy") < 0.85

    def test_sq_penalty_ordering(self):
        assert SQ_PENALTY_LOW_POWER > SQ_PENALTY_HIGH_PERF

    def test_low_power_sees_more_frontend_misses(self, model, trace):
        physics = trace.physics()
        adjusted = model.mode_adjusted_physics(physics, Mode.LOW_POWER)
        col = list(physics_matrix(trace.app.phases)[0]).index  # noqa: F841
        from repro.workloads.generator import PHYSICS_FIELDS
        ic = PHYSICS_FIELDS.index("icache_mpki")
        assert np.all(adjusted[:, ic] >= physics[:, ic])

    def test_workload_jitter_shared_between_modes(self, model, trace):
        # Both-mode runs must observe the same workload: the memory
        # signal counts (mode-independent physics) should correlate
        # almost perfectly across modes.
        hp = model.simulate(trace, Mode.HIGH_PERF)
        lp = model.simulate(trace, Mode.LOW_POWER)
        i = signal_index("l3_misses")
        corr = np.corrcoef(hp.signals[:, i], lp.signals[:, i])[0, 1]
        # Only per-mode measurement noise may decorrelate the modes.
        assert corr > 0.9


class TestSignals:
    def test_instructions_signal_exact(self, model, trace):
        result = model.simulate(trace, Mode.HIGH_PERF)
        assert np.allclose(result.signal("instructions"),
                           trace.interval_instructions)

    def test_cycles_signal_matches(self, model, trace):
        result = model.simulate(trace, Mode.HIGH_PERF)
        assert np.allclose(result.signal("cycles"), result.cycles)

    def test_l1_hits_non_negative(self, model, trace):
        result = model.simulate(trace, Mode.LOW_POWER)
        assert np.all(result.signal("l1d_hits") >= 0.0)

    def test_evictions_split_into_silent_and_dirty(self, model, trace):
        result = model.simulate(trace, Mode.HIGH_PERF)
        total = result.signal("l2_evictions")
        parts = (result.signal("l2_silent_evictions")
                 + result.signal("l2_dirty_evictions"))
        # Signals carry independent noise; check they track closely.
        assert np.corrcoef(total, parts)[0, 1] > 0.95

    def test_no_intercluster_transfers_when_gated(self, model, trace):
        result = model.simulate(trace, Mode.LOW_POWER)
        assert np.all(result.signal("intercluster_transfers") == 0.0)

    def test_stall_cycles_below_cycles(self, model, trace):
        result = model.simulate(trace, Mode.LOW_POWER)
        # Allow noise headroom.
        assert np.all(result.signal("stall_cycles")
                      <= result.cycles * 1.5)

    def test_sq_occupancy_separates_store_bursts(self, model):
        ratios = {}
        for name in ("store_burst_log", "linked_list_walk"):
            phase = get_archetype(name).sample(rng_mod.stream(2, name))
            app = generate_application(
                name, "t", {get_archetype(name).family: 1.0}, seed=13)
            tr = app.workload(0).trace(50, 0)
            res = model.simulate(tr, Mode.HIGH_PERF)
            ratios[name] = (res.signal("sq_occupancy")
                            / res.signal("cycles")).mean()
        assert ratios["store_burst_log"] > 5 * ratios["linked_list_walk"]
