"""Tier-0 learned surrogate (repro.surrogate).

Contract under test: with ``REPRO_SURROGATE`` off the pipeline is
bit-identical to a build where the surrogate never existed; with it
on, every rejected pair falls back bit-identically, the
accept/fallback partition is a pure function of ``(trace, mode,
trained tier)`` — never of batching or backend — and a damaged
persisted tier is quarantined and retrained, not trusted.
"""

import numpy as np
import pytest

import repro.surrogate.tier as tier_mod
from repro.data.builders import build_mode_dataset
from repro.exec import EXEC_STATS, ParallelMap, SimCache, reset_default
from repro.surrogate import SurrogateTier
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.interval_model import IntervalModel
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application

IDS = [0, 1, 2, 3]


@pytest.fixture(autouse=True)
def _no_global_override(monkeypatch):
    reset_default()
    monkeypatch.delenv("REPRO_SIMCACHE_DIR", raising=False)
    # Small probe corpus keeps per-test training cheap; the gate still
    # passes because the interval tier's CPI is linear in the features.
    monkeypatch.setenv("REPRO_SURROGATE_PROBES", "16")
    yield
    reset_default()


@pytest.fixture(scope="module")
def traces():
    out = []
    for i, family in enumerate(["pointer_chase", "compute_fp",
                                "store_burst"]):
        app = generate_application(f"surapp{i}", "test", {family: 1.0},
                                   seed=40 + i)
        out.extend(app.workload(w).trace(90, 0) for w in range(2))
    return out


def _build(traces, pmap=None):
    return build_mode_dataset(traces, Mode.HIGH_PERF, IDS,
                              collector=TelemetryCollector(), pmap=pmap)


def _assert_identical(a, b):
    for field in ("x", "y", "groups", "workloads", "traces",
                  "counter_ids"):
        fa, fb = getattr(a, field), getattr(b, field)
        assert fa.dtype == fb.dtype and np.array_equal(fa, fb), field
    assert a.mode == b.mode
    assert a.granularity == b.granularity
    assert a.sla_floor == b.sla_floor


class TestBitIdentity:
    def test_gate_reject_all_matches_flag_off(self, traces, monkeypatch):
        monkeypatch.setenv("REPRO_SURROGATE", "0")
        off = _build(traces)
        # An impossible confidence bar: the tier trains and activates
        # but rejects every pair, so the interval fallback must
        # reproduce the flag-off build bit for bit.
        monkeypatch.setenv("REPRO_SURROGATE", "1")
        monkeypatch.setenv("REPRO_SURROGATE_THRESHOLD", "1e-12")
        accepted = EXEC_STATS.count("surrogate.accepted")
        fallback = EXEC_STATS.count("surrogate.fallback")
        on = _build(traces)
        assert EXEC_STATS.count("surrogate.accepted") == accepted
        # One miss per (trace, mode) pair; both modes simulate (labels
        # come from the cross-mode gating comparison).
        assert (EXEC_STATS.count("surrogate.fallback")
                == fallback + 2 * len(traces))
        _assert_identical(off, on)

    def test_default_threshold_accepts_and_labels_agree(self, traces,
                                                        monkeypatch):
        monkeypatch.setenv("REPRO_SURROGATE", "0")
        off = _build(traces)
        monkeypatch.setenv("REPRO_SURROGATE", "1")
        accepted = EXEC_STATS.count("surrogate.accepted")
        on = _build(traces)
        assert EXEC_STATS.count("surrogate.accepted") > accepted
        # The supervised signal survives the fast path: identical rows
        # and identical labels even where the surrogate served physics.
        assert np.array_equal(off.traces, on.traces)
        assert np.array_equal(off.y, on.y)


class TestCrossBackend:
    def test_partition_and_bits_backend_invariant(self, traces,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_SURROGATE", "1")
        base_acc = EXEC_STATS.count("surrogate.accepted")
        base_fb = EXEC_STATS.count("surrogate.fallback")
        serial = _build(traces)
        acc = EXEC_STATS.count("surrogate.accepted") - base_acc
        fb = EXEC_STATS.count("surrogate.fallback") - base_fb
        # The corpus must split both ways, or invariance is vacuous.
        assert acc > 0 and fb > 0
        for backend in ("thread", "process"):
            parallel = _build(
                traces, pmap=ParallelMap(backend=backend, n_workers=2))
            _assert_identical(serial, parallel)


class TestAgreementGate:
    def test_refusal_serves_full_fallback(self, traces, monkeypatch):
        monkeypatch.setenv("REPRO_SURROGATE", "0")
        off = _build(traces)
        monkeypatch.setenv("REPRO_SURROGATE", "1")
        # An unreachable agreement bar: training completes but the
        # gate refuses activation, so every pair falls back.
        monkeypatch.setattr(tier_mod, "MIN_SPEARMAN", 2.0)
        refused = EXEC_STATS.count("surrogate.refused")
        accepted = EXEC_STATS.count("surrogate.accepted")
        on = _build(traces)
        assert EXEC_STATS.count("surrogate.refused") > refused
        assert EXEC_STATS.count("surrogate.accepted") == accepted
        _assert_identical(off, on)


class TestPersistence:
    def test_cache_round_trip_hit(self, tmp_path):
        cache = SimCache(tmp_path)
        tier = SurrogateTier(IntervalModel(simcache=cache),
                             threshold=0.02, n_probes=8)
        tier.train()
        assert tier.active
        key = tier._cache_key()
        assert key and cache.has(key)
        hits = EXEC_STATS.count("surrogate.cache_hit")
        warm = SurrogateTier(IntervalModel(simcache=SimCache(tmp_path)),
                             threshold=0.02, n_probes=8)
        warm.train()
        assert EXEC_STATS.count("surrogate.cache_hit") == hits + 1
        assert warm.active
        assert warm.agreement == tier.agreement
        for mode in Mode:
            for a, b in zip(tier._ensembles[mode].weights,
                            warm._ensembles[mode].weights):
                assert np.array_equal(a, b)

    def test_corrupt_entry_quarantined_and_retrained(self, tmp_path):
        cache = SimCache(tmp_path)
        tier = SurrogateTier(IntervalModel(simcache=cache),
                             threshold=0.02, n_probes=8)
        tier.train()
        key = tier._cache_key()
        path = cache._path(key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        quarantined = EXEC_STATS.count("simcache.quarantine")
        hits = EXEC_STATS.count("surrogate.cache_hit")
        fresh = SurrogateTier(IntervalModel(simcache=SimCache(tmp_path)),
                              threshold=0.02, n_probes=8)
        fresh.train()
        # The damaged entry was moved aside, read as a miss, and the
        # tier retrained to the same bits — never trusted.
        assert EXEC_STATS.count("simcache.quarantine") == quarantined + 1
        assert EXEC_STATS.count("surrogate.cache_hit") == hits
        assert fresh.active
        assert (tmp_path / "quarantine").is_dir()
        assert cache.has(key)
        for mode in Mode:
            for a, b in zip(tier._ensembles[mode].weights,
                            fresh._ensembles[mode].weights):
                assert np.array_equal(a, b)
