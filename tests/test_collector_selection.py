"""Tests for telemetry collection, coarsening and PF counter selection."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.telemetry.collector import TelemetryCollector, coarsen
from repro.telemetry.counters import default_catalog
from repro.telemetry.selection import (
    gather_selection_stats,
    pf_counter_selection,
    screen_low_activity,
    screen_low_std,
)
from repro.uarch.modes import Mode
from repro.workloads.categories import hdtr_corpus


@pytest.fixture(scope="module")
def collector():
    return TelemetryCollector()


@pytest.fixture(scope="module")
def traces():
    apps = hdtr_corpus(11, counts={
        "hpc_perf": 3, "cloud_security": 3, "web_productivity": 3,
        "multimedia": 2, "ai_analytics": 2, "games_rendering_ar": 2,
    })
    return [a.workload(0).trace(90, 0) for a in apps]


@pytest.fixture(scope="module")
def stats(collector, traces):
    return gather_selection_stats(collector, traces)


class TestSnapshot:
    def test_normalized_is_counts_over_cycles(self, collector, traces):
        snap = collector.snapshot(traces[0], Mode.HIGH_PERF,
                                  default_catalog().table4_ids)
        expected = snap.counts / snap.cycles[:, None]
        assert np.allclose(snap.normalized, expected)

    def test_deterministic(self, collector, traces):
        ids = default_catalog().table4_ids
        a = collector.snapshot(traces[0], Mode.HIGH_PERF, ids)
        b = collector.snapshot(traces[0], Mode.HIGH_PERF, ids)
        assert np.array_equal(a.counts, b.counts)

    def test_subset_independent_of_other_counters(self, collector, traces):
        """Reading more counters must not change a counter's value."""
        catalog = default_catalog()
        small = collector.snapshot(traces[0], Mode.HIGH_PERF,
                                   catalog.table4_ids[:3])
        large = collector.snapshot(traces[0], Mode.HIGH_PERF,
                                   catalog.table4_ids)
        assert np.array_equal(small.counts, large.counts[:, :3])

    def test_mode_mismatch_rejected(self, collector, traces):
        result = collector.model.simulate(traces[0], Mode.HIGH_PERF)
        with pytest.raises(DatasetError):
            collector.snapshot(traces[0], Mode.LOW_POWER, [0],
                               result=result)

    def test_column_lookup(self, collector, traces):
        ids = default_catalog().table4_ids
        snap = collector.snapshot(traces[0], Mode.HIGH_PERF, ids)
        col = snap.column(ids[2])
        assert np.array_equal(col, snap.normalized[:, 2])
        with pytest.raises(DatasetError):
            snap.column(999_999)

    def test_snapshot_both_covers_modes(self, collector, traces):
        snaps = collector.snapshot_both(traces[0], [0, 1])
        assert set(snaps) == {Mode.HIGH_PERF, Mode.LOW_POWER}


class TestCoarsen:
    def test_counts_conserved(self, collector, traces):
        snap = collector.snapshot(traces[0], Mode.HIGH_PERF, [0, 1, 2])
        coarse = coarsen(snap, 3)
        t_full = (snap.n_intervals // 3) * 3
        assert coarse.counts.sum() == pytest.approx(
            snap.counts[:t_full].sum())

    def test_cycles_conserved_and_ipc_rederived(self, collector, traces):
        snap = collector.snapshot(traces[0], Mode.LOW_POWER, [0])
        coarse = coarsen(snap, 5)
        assert coarse.interval_instructions == 5 * snap.interval_instructions
        assert np.allclose(coarse.ipc,
                           coarse.interval_instructions / coarse.cycles)

    def test_factor_one_is_identity(self, collector, traces):
        snap = collector.snapshot(traces[0], Mode.HIGH_PERF, [0])
        assert coarsen(snap, 1) is snap

    def test_invalid_factor_rejected(self, collector, traces):
        snap = collector.snapshot(traces[0], Mode.HIGH_PERF, [0])
        with pytest.raises(DatasetError):
            coarsen(snap, 0)
        with pytest.raises(DatasetError):
            coarsen(snap, snap.n_intervals + 1)


class TestScreens:
    def test_low_activity_removes_dead_counters(self, stats):
        surviving = screen_low_activity(stats)
        catalog = default_catalog()
        from repro.telemetry.counters import KIND_DEAD
        dead = {c.counter_id for c in catalog.counters
                if c.kind == KIND_DEAD}
        assert not dead & set(surviving.tolist())

    def test_std_screen_halves_survivors(self, stats):
        surviving = screen_low_activity(stats)
        kept = screen_low_std(stats, surviving)
        assert len(kept) == pytest.approx(len(surviving) / 2, abs=1)

    def test_std_screen_removes_stuck_counters(self, stats):
        catalog = default_catalog()
        from repro.telemetry.counters import KIND_STUCK
        stuck = {c.counter_id for c in catalog.counters
                 if c.kind == KIND_STUCK}
        surviving = screen_low_activity(stats)
        kept = set(screen_low_std(stats, surviving).tolist())
        assert not stuck & kept

    def test_survivor_count_near_paper(self, stats):
        """Paper: screens leave 308 of 936; ours lands in that band."""
        surviving = screen_low_activity(stats)
        kept = screen_low_std(stats, surviving)
        assert 200 <= len(kept) <= 420


class TestPFSelection:
    def test_returns_r_counters(self, stats):
        result = pf_counter_selection(stats, r=12)
        assert len(result.selected_ids) == 12
        assert len(set(result.selected_ids)) == 12

    def test_prefix_property(self, stats):
        """Greedy selection: top-12 of r=15 equals the r=12 run."""
        r12 = pf_counter_selection(stats, r=12).selected_ids
        r15 = pf_counter_selection(stats, r=15).selected_ids
        assert r15[:12] == r12

    def test_groups_are_disjoint(self, stats):
        result = pf_counter_selection(stats, r=10)
        seen: set[int] = set()
        for group in result.groups:
            assert not (set(group) & seen)
            seen.update(group)

    def test_selected_come_from_their_groups(self, stats):
        result = pf_counter_selection(stats, r=10)
        for counter_id, group in zip(result.selected_ids, result.groups):
            assert counter_id in group

    def test_selects_store_queue_signal(self, stats):
        """Information-content selection must surface the SQ cluster —
        the counter family the expert set misses (Section 6.2)."""
        catalog = default_catalog()
        result = pf_counter_selection(stats, r=12)
        sq_names = {"Store Queue Occupancy", "EVT.SQ_OCCUPANCY",
                    "EVT.SQ_FULL_STALL_CYCLES"}
        grouped = {catalog[c].name for g in result.groups for c in g}
        picked = {catalog[c].name for c in result.selected_ids}
        assert sq_names & (picked | grouped)

    def test_autocorrelation_bounded(self, stats):
        rho = stats.lag1_autocorrelation
        assert np.all(rho >= -1.0)
        assert np.all(rho <= 1.0)

    def test_deterministic(self, stats):
        a = pf_counter_selection(stats, r=8).selected_ids
        b = pf_counter_selection(stats, r=8).selected_ids
        assert a == b
