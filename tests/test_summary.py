"""Tests for the reproduction report aggregator."""

import os

from repro.eval.summary import build_report, collect_results, write_report


class TestSummary:
    def _seed_results(self, directory):
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "fig8_headline.txt"), "w") as f:
            f.write("Figure 8 rows\n")
        with open(os.path.join(directory, "custom_extra.txt"), "w") as f:
            f.write("extra content\n")

    def test_collect(self, tmp_path):
        directory = str(tmp_path / "results")
        self._seed_results(directory)
        results = collect_results(directory)
        assert results == {"fig8_headline": "Figure 8 rows\n",
                           "custom_extra": "extra content\n"}

    def test_collect_missing_dir(self, tmp_path):
        assert collect_results(str(tmp_path / "nope")) == {}

    def test_report_orders_sections(self, tmp_path):
        directory = str(tmp_path / "results")
        self._seed_results(directory)
        text = build_report(directory)
        assert text.index("Evaluation (Section 7)") < text.index(
            "Figure 8 rows")
        # Missing outputs are flagged, extras collected at the end.
        assert "not yet generated" in text
        assert "extra content" in text
        assert text.index("Figure 8 rows") < text.index("extra content")

    def test_write_report(self, tmp_path):
        directory = str(tmp_path / "results")
        self._seed_results(directory)
        path = write_report(path=str(tmp_path / "REPORT.md"),
                            directory=directory)
        with open(path) as handle:
            assert "# Reproduction report" in handle.read()

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main
        directory = str(tmp_path / "results")
        self._seed_results(directory)
        os.environ["REPRO_RESULTS_DIR"] = directory
        try:
            out_path = str(tmp_path / "R.md")
            assert main(["report", "--output", out_path]) == 0
            assert os.path.exists(out_path)
        finally:
            del os.environ["REPRO_RESULTS_DIR"]
