"""Tests for the serving layer's resilience machinery.

Covers the chaos-hardening PR end to end at unit scope: protocol edge
cases (split frames, the exact MAX_FRAME_BYTES bound, zero-length
payloads), serve-site fault injection, the circuit breaker ladder,
batch abandonment and the watchdog, drain-rate retry hints, warm-state
checkpoints, server-side idempotency dedup, client retry/hedging and
the supervised re-exec loop. The end-to-end chaos suite (real daemon,
real crashes) lives in ``benchmarks/bench_serve.py --chaos-smoke``.
"""

from __future__ import annotations

import collections
import socket
import struct
import sys
import threading
import time

import pytest

from repro.core.adaptive_cpu import AdaptiveCPU
from repro.errors import (BatchTimeoutError, BusyError, CheckpointError,
                          ConfigurationError, ProtocolError,
                          RetriesExhaustedError)
from repro.exec import faults
from repro.exec.faults import FaultPlan
from repro.obs.metrics import METRICS
from repro.serve import (MicroBatcher, ServeClient, adapt_payload,
                         corpus_fingerprint, load_checkpoint,
                         recv_frame, save_checkpoint, send_frame,
                         serving_corpus)
from repro.serve.admission import (DrainTracker, RETRY_AFTER_MAX_MS,
                                   RETRY_AFTER_MIN_MS, retry_after_ms)
from repro.serve.protocol import MAX_FRAME_BYTES, encode_frame
from repro.serve.server import AdaptationServer, const_predictor
from repro.serve.supervisor import (BatcherSupervisor,
                                    ServeCircuitBreaker, run_supervised)


# ---------------------------------------------------------------------
# Protocol edge cases.
# ---------------------------------------------------------------------
class TestProtocolEdges:
    def _pair(self):
        return socket.socketpair()

    def test_frame_split_byte_by_byte_reassembles(self):
        # A slow peer dribbling one byte at a time must still deliver
        # one intact frame: _recv_exact loops until the length is met.
        a, b = self._pair()
        payload = {"op": "adapt", "trace_index": 3, "tenant": "t0"}
        frame = encode_frame(payload)

        def dribble():
            for i in range(len(frame)):
                a.sendall(frame[i:i + 1])
                if i % 4 == 0:
                    time.sleep(0.001)

        writer = threading.Thread(target=dribble)
        writer.start()
        assert recv_frame(b) == payload
        writer.join()
        a.close(), b.close()

    def test_encode_accepts_exactly_max_frame_bytes(self):
        # Body of exactly MAX_FRAME_BYTES encodes; one byte more is a
        # typed rejection, not a giant allocation on the peer.
        pad = MAX_FRAME_BYTES - len('{"p":""}')
        frame = encode_frame({"p": "a" * pad})
        assert len(frame) == 4 + MAX_FRAME_BYTES
        with pytest.raises(ProtocolError, match="MAX_FRAME_BYTES"):
            encode_frame({"p": "a" * (pad + 1)})

    def test_recv_rejects_length_one_past_the_bound(self):
        a, b = self._pair()
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="MAX_FRAME_BYTES"):
            recv_frame(b)
        a.close(), b.close()

    def test_recv_accepts_length_at_the_bound(self):
        # The header passes validation at exactly MAX_FRAME_BYTES; the
        # failure (peer closed before the body) is the body-read error.
        a, b = self._pair()
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES))
        a.close()
        with pytest.raises(ProtocolError,
                           match="between header and body"):
            recv_frame(b)
        b.close()

    def test_zero_length_payload_is_typed_error(self):
        # length 0 == empty body == not JSON: a ProtocolError, never a
        # hang waiting for bytes that will not come.
        a, b = self._pair()
        a.sendall(struct.pack(">I", 0))
        with pytest.raises(ProtocolError, match="undecodable"):
            recv_frame(b)
        a.close(), b.close()

    def test_empty_object_round_trips(self):
        a, b = self._pair()
        send_frame(a, {})
        assert recv_frame(b) == {}
        a.close(), b.close()


# ---------------------------------------------------------------------
# Serve-site fault injection.
# ---------------------------------------------------------------------
class TestServeFaults:
    def test_serve_kind_spec_round_trip(self):
        plan = FaultPlan(seed=5, conn_drop=0.25, slow_peer=0.1,
                         corrupt_frame=0.2, batch_hang=0.5,
                         daemon_crash=0.05, hang_s=0.1)
        assert FaultPlan.parse(plan.spec()) == plan

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ConfigurationError, match="frobnicate"):
            FaultPlan.parse("seed=1,frobnicate=0.5")

    def test_should_inject_matches_pure_fires(self):
        # should_inject's occurrence counter walks the same schedule
        # the pure decision function describes — the property that
        # lets tests and restarted daemons predict firings.
        plan = FaultPlan(seed=9, corrupt_frame=0.5)
        with faults.inject(plan):
            observed = [faults.should_inject("corrupt_frame", "unit")
                        for _ in range(8)]
        expected = [plan.fires("corrupt_frame", "unit", i)
                    for i in range(8)]
        assert observed == expected

    def test_conn_drop_closes_without_response(self):
        a, b = socket.socketpair()
        with faults.inject(FaultPlan(seed=0, conn_drop=1.0)):
            with pytest.raises(OSError, match="injected conn_drop"):
                send_frame(a, {"ok": True}, fault_key="serve.send/ping")
        assert recv_frame(b) is None  # peer sees clean EOF, no frame
        b.close()

    def test_corrupt_frame_always_fails_decode(self):
        a, b = socket.socketpair()
        with faults.inject(FaultPlan(seed=0, corrupt_frame=1.0)):
            send_frame(a, {"ok": True}, fault_key="serve.send/ping")
        with pytest.raises(ProtocolError, match="undecodable"):
            recv_frame(b)
        a.close(), b.close()

    def test_slow_peer_still_delivers_intact_frame(self):
        a, b = socket.socketpair()
        payload = {"ok": True, "v": [1.5, 2.5]}
        with faults.inject(FaultPlan(seed=0, slow_peer=1.0,
                                     hang_s=0.05)):
            writer = threading.Thread(
                target=send_frame, args=(a, payload),
                kwargs={"fault_key": "serve.send/ping"})
            writer.start()
            start = time.monotonic()
            assert recv_frame(b) == payload
            assert time.monotonic() - start >= 0.04
            writer.join()
        a.close(), b.close()

    def test_no_fault_key_never_injects(self):
        a, b = socket.socketpair()
        with faults.inject(FaultPlan(seed=0, conn_drop=1.0,
                                     corrupt_frame=1.0)):
            send_frame(a, {"ok": True})  # clients pass no fault_key
        assert recv_frame(b) == {"ok": True}
        a.close(), b.close()


# ---------------------------------------------------------------------
# Circuit breaker.
# ---------------------------------------------------------------------
class _FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestServeCircuitBreaker:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ServeCircuitBreaker(0, 1.0)
        with pytest.raises(ValueError):
            ServeCircuitBreaker(1, 0.0)

    def test_escalates_per_threshold_run(self):
        clock = _FakeClock()
        breaker = ServeCircuitBreaker(2, 10.0, clock=clock)
        assert breaker.state() == "closed" and breaker.route() == 0
        breaker.record_failure()
        assert breaker.level == 0  # one failure is not a trip
        breaker.record_failure()
        assert breaker.level == 1 and breaker.state() == "open"
        assert breaker.route() == 1  # serial while open
        breaker.record_failure(), breaker.record_failure()
        assert breaker.level == 2 and breaker.route() == 2  # shed
        breaker.record_failure(), breaker.record_failure()
        assert breaker.level == 2  # capped at shed
        assert breaker.snapshot()["trips"] == 3

    def test_success_resets_the_failure_run(self):
        breaker = ServeCircuitBreaker(2, 10.0, clock=_FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.level == 0  # never two consecutive failures

    def test_half_open_probe_success_walks_back_to_closed(self):
        clock = _FakeClock()
        breaker = ServeCircuitBreaker(1, 10.0, clock=clock)
        breaker.record_failure(), breaker.record_failure()
        assert breaker.level == 2
        clock.now += 10.0
        assert breaker.state() == "half_open"
        assert breaker.route() == 1  # probe one level down
        breaker.record_success()
        assert breaker.level == 1 and breaker.state() == "open"
        clock.now += 10.0
        assert breaker.route() == 0
        breaker.record_success()
        assert breaker.level == 0 and breaker.state() == "closed"

    def test_half_open_probe_failure_restarts_cooldown(self):
        clock = _FakeClock()
        breaker = ServeCircuitBreaker(1, 10.0, clock=clock)
        breaker.record_failure()
        clock.now += 10.0
        assert breaker.route() == 0  # probe armed
        breaker.record_failure()
        assert breaker.level == 1  # probe failed: no escalation...
        assert breaker.state() == "open"  # ...but cooldown restarted
        clock.now += 9.0
        assert breaker.route() == 1  # still open, no probe yet


# ---------------------------------------------------------------------
# Batch abandonment and the watchdog.
# ---------------------------------------------------------------------
class TestAbandonment:
    def _hanging_batcher(self):
        """Batcher whose first batch hangs until ``release`` is set."""
        started = threading.Event()
        release = threading.Event()
        calls = []

        def execute(items):
            calls.append(list(items))
            if len(calls) == 1:
                started.set()
                release.wait(10.0)
            return [f"done:{item}" for item in items]

        batcher = MicroBatcher(execute, max_batch=1, max_wait_us=0,
                               queue_bound=8)
        return batcher, started, release, calls

    def test_abandon_fails_inflight_only_and_drains_queue(self):
        batcher, started, release, calls = self._hanging_batcher()
        outcomes: dict[str, object] = {}

        def submit(name):
            try:
                outcomes[name] = batcher.submit(name)
            except BaseException as exc:  # noqa: BLE001 - asserted below
                outcomes[name] = exc

        first = threading.Thread(target=submit, args=("hung",))
        first.start()
        assert started.wait(5.0)
        second = threading.Thread(target=submit, args=("queued",))
        second.start()
        deadline = time.monotonic() + 5.0
        while batcher.depth() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        stale_thread = batcher._thread
        error = BatchTimeoutError("abandoned by test")
        assert batcher.abandon_inflight(error) == 1
        first.join(timeout=5.0)
        second.join(timeout=5.0)
        # Only the in-flight request failed; the queued one was served
        # by the replacement consumer thread.
        assert outcomes["hung"] is error
        assert outcomes["queued"] == "done:queued"
        assert batcher.restarts == 1
        # The stale thread wakes, observes its stale generation, and
        # discards its work without touching any request.
        before = METRICS.count("serve.stale_batches_discarded")
        release.set()
        stale_thread.join(timeout=5.0)
        assert not stale_thread.is_alive()
        assert METRICS.count("serve.stale_batches_discarded") > before
        # The restarted batcher keeps serving.
        assert batcher.submit("after") == "done:after"
        batcher.close()

    def test_abandon_with_nothing_inflight_is_benign(self):
        batcher = MicroBatcher(lambda items: list(items), max_batch=1,
                               max_wait_us=0, queue_bound=4)
        assert batcher.abandon_inflight(BatchTimeoutError("x")) == 0
        assert batcher.restarts == 0
        batcher.close()

    def test_watchdog_trips_and_records_breaker_failure(self):
        batcher, started, release, _calls = self._hanging_batcher()
        breaker = ServeCircuitBreaker(1, 60.0)
        supervisor = BatcherSupervisor({"adapt": batcher},
                                       timeout_s=0.05,
                                       breakers={"adapt": breaker})
        failures = []

        def submit():
            try:
                batcher.submit("hung")
            except BatchTimeoutError as exc:
                failures.append(exc)

        thread = threading.Thread(target=submit)
        thread.start()
        assert started.wait(5.0)
        time.sleep(0.1)  # in-flight age now exceeds the timeout
        assert supervisor.check_once() == 1
        thread.join(timeout=5.0)
        assert len(failures) == 1
        assert "REPRO_SERVE_BATCH_TIMEOUT" in str(failures[0])
        assert supervisor.trips == 1
        assert breaker.level == 1  # threshold-1 breaker tripped
        snap = supervisor.snapshot()
        assert snap["trips"] == 1
        assert snap["batcher_restarts"]["adapt"] == 1
        release.set()
        batcher.close()

    def test_healthy_batcher_is_left_alone(self):
        batcher = MicroBatcher(lambda items: list(items), max_batch=1,
                               max_wait_us=0, queue_bound=4)
        supervisor = BatcherSupervisor({"adapt": batcher},
                                       timeout_s=0.05)
        assert batcher.submit(1) == 1
        assert supervisor.check_once() == 0
        assert supervisor.trips == 0
        batcher.close()


# ---------------------------------------------------------------------
# Drain tracking / retry hints.
# ---------------------------------------------------------------------
class TestRetryHints:
    def test_drain_rate_over_window(self):
        tracker = DrainTracker(window_s=5.0)
        tracker.record(10, now=100.0)
        tracker.record(10, now=102.0)
        assert tracker.rate_rps(now=104.0) == pytest.approx(20 / 4.0)
        # The older event ages out of the window.
        assert tracker.rate_rps(now=106.0) == pytest.approx(10 / 4.0)
        # Everything aged out: idle.
        assert tracker.rate_rps(now=108.0) == 0.0

    def test_single_burst_span_is_floored(self):
        tracker = DrainTracker(window_s=5.0)
        tracker.record(100, now=50.0)
        # Zero elapsed span would read as an infinite rate; the floor
        # caps it.
        assert tracker.rate_rps(now=50.0) == pytest.approx(100 / 0.05)

    def test_retry_after_from_drain_rate(self):
        assert retry_after_ms(4, 100.0) == 40.0

    def test_retry_after_fallback_and_clamps(self):
        assert retry_after_ms(1, 0.0) == 25.0  # per-request fallback
        assert retry_after_ms(10_000, 0.0) == RETRY_AFTER_MAX_MS
        assert retry_after_ms(1, 1e6) == RETRY_AFTER_MIN_MS
        assert retry_after_ms(0, 0.0) == 25.0  # empty queue floors at 1


# ---------------------------------------------------------------------
# Warm-state checkpoints.
# ---------------------------------------------------------------------
class _FakeTier:
    """Stand-in surrogate tier: just the attributes load-time
    re-attachment touches (model, threshold, n_probes)."""

    def __init__(self, model) -> None:
        self.model = model
        self.threshold = 0.5
        self.n_probes = 3


class TestCheckpoint:
    FP = corpus_fingerprint("const", 2, 1, 48, 11)

    def _state(self):
        return AdaptiveCPU(const_predictor()), serving_corpus(2, 1, 48)

    def test_round_trip_restores_bit_identical_state(self, tmp_path):
        path = str(tmp_path / "serve.ckpt")
        cpu, traces = self._state()
        info = save_checkpoint(path, cpu, traces, self.FP)
        assert info["bytes"] > 0
        state = load_checkpoint(path, self.FP)
        assert len(state["traces"]) == len(traces)
        assert state["age_s"] >= 0.0
        # The restored daemon answers bit-identically to the original.
        original = adapt_payload(cpu.run(traces[0]))
        restored = adapt_payload(state["cpu"].run(state["traces"][0]))
        assert restored == original

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "serve.ckpt")
        cpu, traces = self._state()
        save_checkpoint(path, cpu, traces, self.FP)
        other = corpus_fingerprint("const", 2, 1, 48, 12)
        with pytest.raises(CheckpointError, match="does not match"):
            load_checkpoint(path, other)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(str(tmp_path / "absent.ckpt"), self.FP)

    def _saved_bytes(self, tmp_path) -> tuple[str, bytes]:
        path = str(tmp_path / "serve.ckpt")
        cpu, traces = self._state()
        save_checkpoint(path, cpu, traces, self.FP)
        with open(path, "rb") as fh:
            return path, fh.read()

    def test_crc_corruption_rejected(self, tmp_path):
        path, data = self._saved_bytes(tmp_path)
        corrupted = bytearray(data)
        corrupted[40] ^= 0xFF  # one payload byte
        with open(path, "wb") as fh:
            fh.write(corrupted)
        with pytest.raises(CheckpointError, match="CRC32"):
            load_checkpoint(path, self.FP)

    def test_truncated_payload_rejected(self, tmp_path):
        path, data = self._saved_bytes(tmp_path)
        with open(path, "wb") as fh:
            fh.write(data[:-20])
        with pytest.raises(CheckpointError,
                           match="truncated in payload"):
            load_checkpoint(path, self.FP)

    def test_truncated_header_rejected(self, tmp_path):
        path, data = self._saved_bytes(tmp_path)
        with open(path, "wb") as fh:
            fh.write(data[:10])
        with pytest.raises(CheckpointError,
                           match="truncated in header"):
            load_checkpoint(path, self.FP)

    def test_bad_magic_rejected(self, tmp_path):
        path, data = self._saved_bytes(tmp_path)
        with open(path, "wb") as fh:
            fh.write(b"XXXX" + data[4:])
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(path, self.FP)

    def test_version_mismatch_rejected(self, tmp_path):
        path, data = self._saved_bytes(tmp_path)
        mutated = bytearray(data)
        mutated[7] ^= 0x01  # low byte of the big-endian version field
        with open(path, "wb") as fh:
            fh.write(mutated)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path, self.FP)

    def test_surrogate_tier_reattached_on_load(self, tmp_path):
        path = str(tmp_path / "serve.ckpt")
        cpu, traces = self._state()
        cpu.collector.model._surrogate = _FakeTier(cpu.collector.model)
        save_checkpoint(path, cpu, traces, self.FP)
        state = load_checkpoint(path, self.FP)
        model = state["cpu"].collector.model
        tier = model._surrogate
        assert isinstance(tier, _FakeTier)
        assert tier.model is model  # pointer surgery done
        assert model._surrogate_config == (0.5, 3)

    def test_unpicklable_state_is_typed(self, tmp_path):
        path = str(tmp_path / "serve.ckpt")
        cpu, traces = self._state()
        cpu.collector.model._surrogate = lambda: None  # not picklable
        with pytest.raises(CheckpointError,
                           match="not checkpointable"):
            save_checkpoint(path, cpu, traces, self.FP)


# ---------------------------------------------------------------------
# Server-side idempotency dedup (no sockets: _dispatch directly).
# ---------------------------------------------------------------------
@pytest.fixture()
def bare_server(tmp_path):
    server = AdaptationServer(
        AdaptiveCPU(const_predictor()), serving_corpus(2, 1, 48),
        str(tmp_path / "bare.sock"), max_batch=4, max_wait_us=0,
        queue_bound=8)
    yield server
    server.shutdown()


class TestDedup:
    def test_keyed_retry_returns_original_payload(self, bare_server):
        before = METRICS.count("serve.dedup_hits")
        first = bare_server._dispatch(
            {"id": 1, "op": "adapt", "trace_index": 0, "key": "K1"})
        retry = bare_server._dispatch(
            {"id": 2, "op": "adapt", "trace_index": 0, "key": "K1"})
        assert first["ok"] and retry["ok"]
        assert retry["result"] == first["result"]
        assert METRICS.count("serve.dedup_hits") == before + 1

    def test_failed_execution_does_not_poison_the_key(
            self, bare_server, monkeypatch):
        calls = []

        def routed(op, request, tenant, level):
            calls.append(op)
            if len(calls) == 1:
                raise RuntimeError("transient executor fault")
            return {"value": 42}

        monkeypatch.setattr(bare_server, "_execute_routed", routed)
        request = {"id": 1, "op": "adapt", "trace_index": 0, "key": "R"}
        failed = bare_server._dispatch(request)
        assert not failed["ok"] and failed["error"] == "internal"
        # The failure dropped the entry: the retry re-executes...
        retried = bare_server._dispatch(request)
        assert retried["ok"] and retried["value"] == 42
        assert len(calls) == 2
        # ...and the success is retained: a third attempt is a pure
        # dedup hit.
        deduped = bare_server._dispatch(request)
        assert deduped["ok"] and deduped["value"] == 42
        assert len(calls) == 2

    def test_non_string_key_bypasses_dedup(self, bare_server,
                                           monkeypatch):
        calls = []
        monkeypatch.setattr(
            bare_server, "_execute_routed",
            lambda op, request, tenant, level:
                (calls.append(op) or {"value": 1}))
        request = {"id": 1, "op": "adapt", "trace_index": 0, "key": 99}
        bare_server._dispatch(request)
        bare_server._dispatch(request)
        assert len(calls) == 2

    def test_health_reports_resilience_surface(self, bare_server):
        response = bare_server._dispatch({"id": 5, "op": "health"})
        assert response["ok"]
        health = response["health"]
        assert health["ready"]
        assert health["breakers"]["adapt"]["mode"] == "batched"
        assert health["breakers"]["decide"]["state"] == "closed"
        assert health["watchdog"]["timeout_s"] == \
            bare_server.batch_timeout_s
        assert set(health["queue_depth"]) == {"adapt", "decide"}
        assert "dedup_entries" in health


# ---------------------------------------------------------------------
# Client retry / hedging, against a scripted protocol peer.
# ---------------------------------------------------------------------
class _FakeDaemon:
    """Scripted peer: one action consumed per request received.

    Actions: ``("reply", extra)`` answers ok; ``("busy", hint_ms)``
    sheds; ``("timeout",)`` answers the watchdog's typed response;
    ``("drop",)`` closes the connection without replying;
    ``("silent",)`` swallows the request (for hedging tests).
    """

    def __init__(self, path: str, actions) -> None:
        self.path = path
        self.actions = collections.deque(actions)
        self.requests: list[dict] = []
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(8)
        self._threads: list[threading.Thread] = []
        accept = threading.Thread(target=self._accept, daemon=True)
        accept.start()
        self._threads.append(accept)

    def _accept(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            handler = threading.Thread(target=self._serve, args=(conn,),
                                       daemon=True)
            handler.start()
            self._threads.append(handler)

    def _serve(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = recv_frame(conn)
                except (ProtocolError, OSError):
                    return
                if request is None:
                    return
                with self._lock:
                    self.requests.append(request)
                    action = (self.actions.popleft()
                              if self.actions else ("reply", {}))
                kind = action[0]
                base = {"id": request.get("id")}
                if kind == "reply":
                    send_frame(conn, {**base, "ok": True, **action[1]})
                elif kind == "busy":
                    send_frame(conn, {
                        **base, "ok": False, "error": "busy",
                        "queue_depth": 3, "queue_bound": 4,
                        "retry": True, "retry_after_ms": action[1]})
                elif kind == "timeout":
                    send_frame(conn, {
                        **base, "ok": False, "error": "timeout",
                        "detail": "batch abandoned", "retry": True})
                elif kind == "drop":
                    conn.close()
                    return
                # "silent": no response; loop back to recv.
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass


@pytest.fixture()
def scripted(tmp_path):
    daemons = []

    def factory(actions):
        path = str(tmp_path / f"fake{len(daemons)}.sock")
        daemon = _FakeDaemon(path, actions)
        daemons.append(daemon)
        return daemon

    yield factory
    for daemon in daemons:
        daemon.close()


class TestClientResilience:
    def test_busy_hint_honored_then_success(self, scripted):
        daemon = scripted([("busy", 30.0), ("reply", {"value": 1})])
        with ServeClient(daemon.path, retries=3, seed=7) as client:
            start = time.monotonic()
            response = client.request({"op": "ping"})
            elapsed = time.monotonic() - start
        assert response["value"] == 1
        # Jitter scales the 30ms hint by [0.5, 1.0].
        assert elapsed >= 0.014

    def test_zero_retries_busy_raises_with_hint(self, scripted):
        daemon = scripted([("busy", 30.0)])
        with ServeClient(daemon.path) as client:
            with pytest.raises(BusyError) as excinfo:
                client.request({"op": "ping"})
        assert excinfo.value.retry_after_ms == 30.0
        assert excinfo.value.queue_depth == 3

    def test_budget_exhaustion_is_typed(self, scripted):
        daemon = scripted([("busy", 1.0)] * 3)
        with ServeClient(daemon.path, retries=2, seed=1) as client:
            with pytest.raises(RetriesExhaustedError) as excinfo:
                client.request({"op": "ping"})
        assert isinstance(excinfo.value.last_error, BusyError)
        assert "3 attempt(s)" in str(excinfo.value)

    def test_reconnects_after_drop_under_one_key(self, scripted):
        daemon = scripted([("drop",), ("reply", {"value": 7})])
        with ServeClient(daemon.path, retries=2, seed=2) as client:
            response = client.request({"op": "ping"})
        assert response["value"] == 7
        keys = [r.get("key") for r in daemon.requests]
        assert len(keys) == 2
        assert keys[0] is not None
        assert keys[0] == keys[1]  # resend carries the same key

    def test_unkeyed_transport_error_propagates(self, scripted):
        daemon = scripted([("drop",)])
        client = ServeClient(daemon.path)
        with pytest.raises(ProtocolError):
            client.request({"op": "ping"})
        assert client._sock is None  # closed on the error path
        client.close()

    def test_timeout_response_is_retried(self, scripted):
        daemon = scripted([("timeout",), ("reply", {"value": 3})])
        with ServeClient(daemon.path, retries=2, seed=4) as client:
            assert client.request({"op": "ping"})["value"] == 3

    def test_hedge_wins_over_silent_primary(self, scripted):
        daemon = scripted([("silent",), ("reply", {"value": 9})])
        with ServeClient(daemon.path, hedge_s=0.05, seed=5) as client:
            response = client.request({"op": "ping"})
        assert response["value"] == 9
        keys = [r.get("key") for r in daemon.requests]
        assert len(keys) == 2
        assert keys[0] is not None
        assert keys[0] == keys[1]  # the hedge is the same keyed request

    def test_context_manager_closes_socket(self, scripted):
        daemon = scripted([("reply", {})])
        with ServeClient(daemon.path) as client:
            assert client.ping()
        assert client._sock is None


# ---------------------------------------------------------------------
# Supervised re-exec.
# ---------------------------------------------------------------------
class TestRunSupervised:
    def test_restarts_until_clean_exit(self, tmp_path):
        marker = tmp_path / "crashed.once"
        script = (
            "import os, sys\n"
            "path = sys.argv[1]\n"
            "if os.path.exists(path):\n"
            "    sys.exit(0)\n"
            "open(path, 'w').close()\n"
            "sys.exit(86)\n"
        )
        messages: list[str] = []
        code = run_supervised(
            [sys.executable, "-c", script, str(marker)],
            restarts=3, announce=messages.append)
        assert code == 0
        assert len(messages) == 1
        assert "restarting (1/3)" in messages[0]
        assert "86" in messages[0]

    def test_restart_budget_is_bounded(self):
        messages: list[str] = []
        code = run_supervised(
            [sys.executable, "-c", "import sys; sys.exit(7)"],
            restarts=1, announce=messages.append)
        assert code == 7
        assert len(messages) == 2
        assert "restarting (1/1)" in messages[0]
        assert "exhausted" in messages[1]

    def test_clean_exit_needs_no_restart(self):
        messages: list[str] = []
        code = run_supervised(
            [sys.executable, "-c", "raise SystemExit(0)"],
            restarts=3, announce=messages.append)
        assert code == 0
        assert messages == []
