"""Tests for the cycle-level two-cluster core model."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.uarch.core_model import (
    ClusteredCoreModel,
    simulate_phase_cycle_level,
)
from repro.uarch.isa import (
    MEM_DRAM,
    UopStream,
    UopType,
    synthesize_uops,
)
from repro.uarch.modes import Mode
from repro.workloads.phases import get_archetype


def alu_stream(n, dist, mispredict_every=0):
    idx = np.arange(n)
    src1 = idx - dist
    src1[src1 < 0] = -1
    types = np.zeros(n, dtype=np.int8)
    mispredicted = np.zeros(n, dtype=bool)
    if mispredict_every:
        types[::mispredict_every] = int(UopType.BRANCH)
        mispredicted[::mispredict_every] = True
    return UopStream(
        types=types, src1=src1.astype(np.int64),
        src2=np.full(n, -1, dtype=np.int64),
        mem_level=np.full(n, -1, dtype=np.int8),
        mispredicted=mispredicted,
    )


class TestDataflowScaling:
    @pytest.mark.parametrize("dist,expected", [(1, 1.0), (2, 2.0),
                                               (4, 4.0)])
    def test_chain_limited_ipc(self, dist, expected):
        # High-performance mode may pay a small steering/bypass tax on
        # serial chains (the interval model's 0.93 steering
        # efficiency); it must never exceed the dataflow bound.
        result = ClusteredCoreModel(mode=Mode.HIGH_PERF).execute(
            alu_stream(6000, dist))
        assert expected * 0.90 <= result.ipc <= expected * 1.01

    @pytest.mark.parametrize("dist,expected", [(1, 1.0), (2, 2.0),
                                               (4, 4.0)])
    def test_chain_limited_ipc_single_cluster_exact(self, dist, expected):
        # With one cluster there is no steering: the bound is tight.
        result = ClusteredCoreModel(mode=Mode.LOW_POWER).execute(
            alu_stream(6000, dist))
        assert result.ipc == pytest.approx(expected, rel=0.02)

    def test_wide_mode_exploits_more_ilp(self):
        hp = ClusteredCoreModel(mode=Mode.HIGH_PERF).execute(
            alu_stream(6000, 8))
        lp = ClusteredCoreModel(mode=Mode.LOW_POWER).execute(
            alu_stream(6000, 8))
        assert lp.ipc == pytest.approx(4.0, rel=0.05)
        assert hp.ipc > 6.0

    def test_low_power_capped_at_cluster_width(self):
        result = ClusteredCoreModel(mode=Mode.LOW_POWER).execute(
            alu_stream(6000, 32))
        assert result.ipc <= 4.0 + 1e-6


class TestPenalties:
    def test_mispredicts_cost_cycles(self):
        clean = ClusteredCoreModel(mode=Mode.HIGH_PERF).execute(
            alu_stream(4000, 4))
        dirty = ClusteredCoreModel(mode=Mode.HIGH_PERF).execute(
            alu_stream(4000, 4, mispredict_every=100))
        assert dirty.ipc < clean.ipc
        assert dirty.branch_mispredicts == 40

    def test_dram_misses_counted_and_slow(self):
        n = 3000
        stream = alu_stream(n, 8)
        mem_level = np.full(n, -1, dtype=np.int8)
        types = stream.types.copy()
        types[::10] = int(UopType.LOAD)
        mem_level[::10] = MEM_DRAM
        slow = UopStream(types=types, src1=stream.src1, src2=stream.src2,
                         mem_level=mem_level,
                         mispredicted=stream.mispredicted)
        fast = UopStream(types=types, src1=stream.src1, src2=stream.src2,
                         mem_level=np.where(types == int(UopType.LOAD), 0,
                                            -1).astype(np.int8),
                         mispredicted=stream.mispredicted)
        r_slow = ClusteredCoreModel(mode=Mode.HIGH_PERF).execute(slow)
        r_fast = ClusteredCoreModel(mode=Mode.HIGH_PERF).execute(fast)
        assert r_slow.dram_accesses == 300
        assert r_slow.ipc < r_fast.ipc

    def test_store_bursts_hurt_low_power_more(self):
        """The blindspot mechanism in isolation: a high-dispatch-rate
        store burst saturates the halved store queue and single MEU of
        low-power mode, while an equally wide ALU stream does not."""
        n = 6000
        stores = UopStream(
            types=np.full(n, int(UopType.STORE), dtype=np.int8),
            src1=np.full(n, -1, dtype=np.int64),
            src2=np.full(n, -1, dtype=np.int64),
            mem_level=np.full(n, -1, dtype=np.int8),
            mispredicted=np.zeros(n, dtype=bool),
        )
        ratios = {}
        for name, stream in (("stores", stores),
                             ("alu", alu_stream(n, 32))):
            hp = ClusteredCoreModel(mode=Mode.HIGH_PERF).execute(stream)
            lp = ClusteredCoreModel(mode=Mode.LOW_POWER).execute(stream)
            ratios[name] = lp.ipc / hp.ipc
        assert ratios["stores"] < 0.75 * ratios["alu"]

    def test_mode_switch_cycles_in_low_tens(self):
        model = ClusteredCoreModel(mode=Mode.HIGH_PERF)
        cost = model.mode_switch_cycles(live_registers=32)
        assert 8.0 <= cost <= 40.0
        assert model.mode_switch_cycles(4) < cost


class TestValidationAgainstIntervalModel:
    def test_ipc_rank_agreement(self):
        """The two simulator tiers must rank phases consistently."""
        from scipy.stats import spearmanr
        from repro.uarch.interval_model import IntervalModel
        from repro.workloads.generator import physics_matrix
        from repro.workloads.phases import PHASE_LIBRARY

        interval = IntervalModel()
        cycle_ipc, interval_ipc = [], []
        for arch in PHASE_LIBRARY[::4]:
            phase = arch.sample(rng_mod.stream(1, "val", arch.name))
            res = simulate_phase_cycle_level(phase, 8000,
                                             Mode.HIGH_PERF, 5)
            cycle_ipc.append(res.ipc)
            physics = physics_matrix([phase])
            cpi = sum(interval.cpi_components(
                interval.mode_adjusted_physics(physics, Mode.HIGH_PERF),
                Mode.HIGH_PERF).values())
            interval_ipc.append(1.0 / cpi[0])
        rho = spearmanr(cycle_ipc, interval_ipc).statistic
        assert rho > 0.8

    def test_gating_direction_agreement(self):
        """Phases that gate freely vs expensively agree across tiers."""
        cheap = get_archetype("linked_list_walk").sample(
            rng_mod.stream(2, "c"))
        costly = get_archetype("gemm_tile").sample(rng_mod.stream(2, "g"))
        ratios = {}
        for name, phase in (("cheap", cheap), ("costly", costly)):
            hp = simulate_phase_cycle_level(phase, 10000,
                                            Mode.HIGH_PERF, 5)
            lp = simulate_phase_cycle_level(phase, 10000,
                                            Mode.LOW_POWER, 5)
            ratios[name] = lp.ipc / hp.ipc
        assert ratios["cheap"] > ratios["costly"]


class TestSynthesizeUops:
    def test_mix_matches_phase(self):
        phase = get_archetype("balanced_mixed").sample(
            rng_mod.stream(1, "mix"))
        stream = synthesize_uops(phase, 30000, seed=3)
        counts = stream.type_counts()
        load_frac = counts[UopType.LOAD] / stream.n_uops
        assert load_frac == pytest.approx(phase.frac_load, abs=0.05)

    def test_dependencies_point_backwards(self):
        phase = get_archetype("balanced_mixed").sample(
            rng_mod.stream(1, "dep"))
        stream = synthesize_uops(phase, 5000, seed=3)
        idx = np.arange(stream.n_uops)
        assert np.all((stream.src1 < idx) | (stream.src1 == -1))
        assert np.all((stream.src2 < idx) | (stream.src2 == -1))

    def test_miss_rates_sampled(self):
        phase = get_archetype("linked_list_walk").sample(
            rng_mod.stream(1, "miss"))
        stream = synthesize_uops(phase, 40000, seed=3)
        loads = stream.mem_level[stream.types == int(UopType.LOAD)]
        miss_frac = (loads >= 1).mean()
        per_load = phase.l1d_mpki / (1000.0 * phase.frac_load)
        assert miss_frac == pytest.approx(min(per_load, 1.0), abs=0.08)

    def test_store_bursts_are_bursty(self):
        burst = get_archetype("store_burst_log").sample(
            rng_mod.stream(1, "b"))
        stream = synthesize_uops(burst, 20000, seed=3)
        stores = (stream.types == int(UopType.STORE)).astype(int)
        # Probability a store is followed by a store far exceeds the
        # marginal store rate when bursts exist.
        follow = stores[1:][stores[:-1] == 1].mean()
        assert follow > stores.mean() * 1.15

    def test_deterministic(self):
        phase = get_archetype("balanced_mixed").sample(
            rng_mod.stream(1, "det"))
        a = synthesize_uops(phase, 1000, seed=9)
        b = synthesize_uops(phase, 1000, seed=9)
        assert np.array_equal(a.types, b.types)
        assert np.array_equal(a.src1, b.src1)
