"""Tests for the shared execution engine (repro.exec).

The engine's contract: for any seed, parallel and cached runs produce
bit-identical results to the serial uncached path. Every test here
asserts exact equality, never approximate.
"""

import os

import numpy as np
import pytest

from repro.config import MachineConfig, interval_lru_size
from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.predictor import DualModePredictor
from repro.data.builders import build_mode_dataset
from repro.errors import (
    ConfigurationError,
    DatasetError,
    WorkerTimeoutError,
)
from repro.eval.runner import evaluate_predictor
from repro.exec import (
    EXEC_STATS,
    FaultPlan,
    ParallelMap,
    SimCache,
    close_pools,
    inject,
    reset_default,
)
from repro.exec import shmres
from repro.exec.simcache import default_simcache
from repro.ml.base import Estimator
from repro.ml.crossval import Fold
from repro.ml.hyperscreen import screen_configs
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.interval_model import IntervalModel
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application


def _square(i):
    return i * i


def _block(i):
    """A result big enough to be hoisted into a shm segment."""
    return np.full((40, 8), float(i))


class _ConstModel(Estimator):
    """Fixed-probability model; module level so process pools can
    pickle it."""

    def __init__(self, prob: float) -> None:
        self.prob = prob
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return np.full(x.shape[0], self.prob)


def _const_factory(config):
    return _ConstModel(float(config["prob"]))


def _accuracy(y_true, y_pred, scores):
    return float((y_true == y_pred).mean())


@pytest.fixture(autouse=True)
def _no_global_override():
    reset_default()
    yield
    reset_default()


@pytest.fixture(scope="module")
def traces():
    out = []
    for i, family in enumerate(["pointer_chase", "compute_fp",
                                "store_burst"]):
        app = generate_application(f"exeapp{i}", "test", {family: 1.0},
                                   seed=40 + i)
        out.extend(app.workload(w).trace(90, 0) for w in range(2))
    return out


@pytest.fixture(scope="module")
def predictor():
    return DualModePredictor(
        name="const",
        models={Mode.HIGH_PERF: _ConstModel(0.7),
                Mode.LOW_POWER: _ConstModel(0.4)},
        counter_ids=np.array([0, 1, 2]),
        granularity_factor=1,
    )


class TestParallelMap:
    def test_results_ordered_across_backends(self):
        expected = [_square(i) for i in range(23)]
        for backend in ("serial", "thread", "process"):
            pmap = ParallelMap(backend=backend, n_workers=2, chunk_size=3)
            assert pmap.map(_square, range(23)) == expected, backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelMap(backend="gpu")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelMap(n_workers=0)

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "thread")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "3")
        pmap = ParallelMap()
        assert pmap.backend == "thread"
        assert pmap.n_workers == 3

    def test_unpicklable_fn_falls_back_to_serial(self):
        before = EXEC_STATS.count("parallel.fallback_serial")
        pmap = ParallelMap(backend="process", n_workers=2)
        result = pmap.map(lambda i: i + 1, range(6))
        assert result == [1, 2, 3, 4, 5, 6]
        assert EXEC_STATS.count("parallel.fallback_serial") == before + 1

    def test_task_errors_propagate(self):
        pmap = ParallelMap(backend="serial")
        with pytest.raises(ZeroDivisionError):
            pmap.map(lambda i: 1 // i, [1, 0, 2])

    def test_stage_recorded(self):
        pmap = ParallelMap(backend="serial")
        pmap.map(_square, range(4), stage="unit_stage")
        snap = EXEC_STATS.snapshot()
        assert "unit_stage" in snap["stages"]
        assert snap["counters"]["unit_stage.items"] >= 4


class TestParallelEquivalence:
    """Serial == thread == process, bit for bit (same seeds)."""

    def test_run_many_bitwise_identical(self, traces, predictor,
                                        monkeypatch):
        """serial == thread == process == arena-backed, bit for bit —
        including two back-to-back process runs on a reused warm pool."""
        results = {}
        # Arena off: thread and process ship pickled traces per chunk.
        monkeypatch.setenv("REPRO_EXEC_ARENA", "0")
        for backend in ("serial", "thread", "process"):
            cpu = AdaptiveCPU(predictor, collector=TelemetryCollector())
            results[backend] = cpu.run_many(
                traces, pmap=ParallelMap(backend=backend, n_workers=2))
        # Arena on: process workers attach to the shared mapping; the
        # second call reuses the warm persistent pool.
        monkeypatch.setenv("REPRO_EXEC_ARENA", "1")
        cpu = AdaptiveCPU(predictor, collector=TelemetryCollector())
        arena_pmap = ParallelMap(backend="process", n_workers=2,
                                 persistent=True)
        results["arena"] = cpu.run_many(traces, pmap=arena_pmap)
        reuse_before = EXEC_STATS.count("parallel.pool_reuse")
        results["arena_warm"] = cpu.run_many(traces, pmap=arena_pmap)
        assert EXEC_STATS.count("parallel.pool_reuse") > reuse_before
        serial = results["serial"]
        for variant in ("thread", "process", "arena", "arena_warm"):
            for rs, rp in zip(serial, results[variant]):
                assert rs.trace_name == rp.trace_name, variant
                assert np.array_equal(rs.modes, rp.modes), variant
                assert np.array_equal(rs.ipc, rp.ipc), variant
                assert np.array_equal(rs.cycles, rp.cycles), variant
                assert rs.energy_j == rp.energy_j, variant
                assert rs.switch_count == rp.switch_count, variant

    def test_suite_metrics_bitwise_identical(self, traces, predictor):
        serial = evaluate_predictor(predictor, traces,
                                    collector=TelemetryCollector())
        process = evaluate_predictor(
            predictor, traces, collector=TelemetryCollector(),
            pmap=ParallelMap(backend="process", n_workers=2))
        assert serial.mean_ppw_gain == process.mean_ppw_gain
        assert serial.mean_rsv == process.mean_rsv
        assert serial.mean_pgos == process.mean_pgos
        assert serial.mean_residency == process.mean_residency

    def test_build_dataset_bitwise_identical(self, traces):
        ids = [0, 1, 2, 3]
        serial = build_mode_dataset(traces, Mode.LOW_POWER, ids,
                                    collector=TelemetryCollector())
        for backend in ("thread", "process"):
            parallel = build_mode_dataset(
                traces, Mode.LOW_POWER, ids,
                collector=TelemetryCollector(),
                pmap=ParallelMap(backend=backend, n_workers=2))
            assert np.array_equal(serial.x, parallel.x)
            assert np.array_equal(serial.y, parallel.y)
            assert np.array_equal(serial.traces, parallel.traces)

    def test_hyperscreen_identical(self, traces):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(60, 4))
        y = (x[:, 0] > 0).astype(np.int64)
        folds = [Fold(fold_id=0, tuning_apps=("a",),
                      validation_apps=("b",),
                      tuning_idx=np.arange(0, 40),
                      validation_idx=np.arange(40, 60)),
                 Fold(fold_id=1, tuning_apps=("b",),
                      validation_apps=("a",),
                      tuning_idx=np.arange(20, 60),
                      validation_idx=np.arange(0, 20))]
        configs = [{"prob": 0.2}, {"prob": 0.8}]
        serial = screen_configs(_const_factory, configs, x, y, folds,
                                {"acc": _accuracy})
        process = screen_configs(_const_factory, configs, x, y, folds,
                                 {"acc": _accuracy},
                                 pmap=ParallelMap("process", 2))
        assert [r.config for r in serial] == [r.config for r in process]
        assert [r.per_fold for r in serial] == [r.per_fold for r in process]


def _spool_entries() -> int:
    """Files/dirs currently under the shmres spool root (0 when the
    root was never created or already swept)."""
    root = shmres._SPOOL_ROOT
    if root is None or not os.path.isdir(root):
        return 0
    return sum(len(files) + len(dirs)
               for _, dirs, files in os.walk(root))


class TestShmResults:
    """Shared-memory result return: lifecycle, faults, bit-identity."""

    def test_map_roundtrip_and_spool_clean(self):
        serial = ParallelMap("serial").map(_block, range(12))
        decodes = EXEC_STATS.count("shmres.decodes")
        pmap = ParallelMap("process", n_workers=2)
        out = pmap.map(_block, range(12))
        assert EXEC_STATS.count("shmres.decodes") > decodes
        for a, b in zip(serial, out):
            assert a.dtype == b.dtype and np.array_equal(a, b)
        assert _spool_entries() == 0

    def test_kill_switch_restores_pickled_returns(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_SHMRES", "0")
        segments = EXEC_STATS.count("shmres.segments")
        out = ParallelMap("process", n_workers=2).map(_block, range(8))
        assert EXEC_STATS.count("shmres.segments") == segments
        for a, b in zip(ParallelMap("serial").map(_block, range(8)), out):
            assert np.array_equal(a, b)

    def test_segment_reuse_across_pool_generations(self):
        """Fresh pool generations get fresh spools; results stay
        identical and nothing leaks between generations."""
        expected = ParallelMap("serial").map(_block, range(10))
        pmap = ParallelMap("process", n_workers=2)
        first = pmap.map(_block, range(10))
        close_pools()
        second = pmap.map(_block, range(10))
        for run in (first, second):
            for a, b in zip(expected, run):
                assert np.array_equal(a, b)
        assert _spool_entries() == 0

    def test_corrupt_segment_quarantines_to_pickled(self):
        expected = ParallelMap("serial").map(_block, range(10))
        quarantined = EXEC_STATS.count("shmres.quarantine")
        with inject(FaultPlan(seed=5, corrupt_result=1.0)):
            out = ParallelMap("process", n_workers=2).map(
                _block, range(10))
        assert EXEC_STATS.count("shmres.quarantine") > quarantined
        for a, b in zip(expected, out):
            assert np.array_equal(a, b)
        assert _spool_entries() == 0

    def test_crash_ladder_reclaims_and_stays_identical(self, monkeypatch):
        expected = ParallelMap("serial").map(_block, range(10))
        close_pools()  # new pools must fork with the spec in their env
        monkeypatch.setenv("REPRO_FAULT_SPEC", "seed=5,crash=1.0")
        fallbacks = EXEC_STATS.count("parallel.fallback_serial")
        out = ParallelMap("process", n_workers=2, chunk_size=3,
                          retries=2).map(_block, range(10),
                                         stage="unit_shmcrash")
        assert (EXEC_STATS.count("parallel.fallback_serial")
                == fallbacks + 1)
        for a, b in zip(expected, out):
            assert np.array_equal(a, b)
        assert _spool_entries() == 0
        close_pools()  # drop pools carrying the crash spec

    def test_timeout_sweeps_spool(self, monkeypatch):
        close_pools()  # new pools must fork with the spec in their env
        monkeypatch.setenv("REPRO_FAULT_SPEC", "seed=5,hang=1.0,hang_s=1.0")
        with pytest.raises(WorkerTimeoutError):
            ParallelMap("process", n_workers=2, retries=0,
                        timeout=0.2).map(_block, range(6),
                                         stage="unit_shmhang")
        close_pools()  # drop the poisoned pool and its workers
        assert _spool_entries() == 0

    def test_orphaned_segments_counted_reclaimed(self, tmp_path):
        spool = shmres.open_call_spool()
        (tmp_path / "probe").write_bytes(b"x")  # unrelated file
        with open(os.path.join(spool, "seg-orphan.shm"), "wb") as fh:
            fh.write(b"leftover")
        reclaimed = EXEC_STATS.count("shmres.reclaimed")
        assert shmres.close_call_spool(spool) == 1
        assert EXEC_STATS.count("shmres.reclaimed") == reclaimed + 1
        assert not os.path.isdir(spool)

    def test_small_results_skip_segments(self):
        """Chunks with no array >= MIN_BLOCK_BYTES never touch disk."""
        segments = EXEC_STATS.count("shmres.segments")
        out = ParallelMap("process", n_workers=2).map(_square, range(8))
        assert out == [_square(i) for i in range(8)]
        assert EXEC_STATS.count("shmres.segments") == segments


class TestSharding:
    """REPRO_EXEC_SHARD streams corpora; results stay bit-identical."""

    def test_sharded_build_bitwise_identical(self, traces, monkeypatch):
        ids = [0, 1, 2, 3]
        plain = build_mode_dataset(traces, Mode.LOW_POWER, ids,
                                   collector=TelemetryCollector())
        monkeypatch.setenv("REPRO_EXEC_SHARD", "2")
        shards = EXEC_STATS.count("build_dataset.shards")
        sharded = build_mode_dataset(traces, Mode.LOW_POWER, ids,
                                     collector=TelemetryCollector())
        assert EXEC_STATS.count("build_dataset.shards") > shards
        for field in ("x", "y", "groups", "workloads", "traces"):
            a = getattr(plain, field)
            b = getattr(sharded, field)
            assert a.dtype == b.dtype and np.array_equal(a, b), field

    def test_sharded_build_process_shm_identical(self, traces,
                                                 monkeypatch):
        ids = [0, 1, 2, 3]
        plain = build_mode_dataset(traces, Mode.LOW_POWER, ids,
                                   collector=TelemetryCollector())
        monkeypatch.setenv("REPRO_EXEC_SHARD", "2")
        monkeypatch.setenv("REPRO_EXEC_SHMRES", "1")
        sharded = build_mode_dataset(
            traces, Mode.LOW_POWER, ids, collector=TelemetryCollector(),
            pmap=ParallelMap("process", n_workers=2))
        assert np.array_equal(plain.x, sharded.x)
        assert np.array_equal(plain.y, sharded.y)
        assert _spool_entries() == 0

    def test_sharded_evaluate_identical(self, traces, predictor,
                                        monkeypatch):
        plain = evaluate_predictor(predictor, traces,
                                   collector=TelemetryCollector())
        monkeypatch.setenv("REPRO_EXEC_SHARD", "2")
        shards = EXEC_STATS.count("adaptive_run.shards")
        sharded = evaluate_predictor(predictor, traces,
                                     collector=TelemetryCollector())
        assert EXEC_STATS.count("adaptive_run.shards") > shards
        assert plain.mean_ppw_gain == sharded.mean_ppw_gain
        assert plain.mean_rsv == sharded.mean_rsv
        assert plain.mean_pgos == sharded.mean_pgos

    def test_sharded_hyperscreen_identical(self, monkeypatch):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(60, 4))
        y = (x[:, 0] > 0).astype(np.int64)
        folds = [Fold(fold_id=0, tuning_apps=("a",),
                      validation_apps=("b",),
                      tuning_idx=np.arange(0, 40),
                      validation_idx=np.arange(40, 60))]
        configs = [{"prob": p} for p in (0.2, 0.4, 0.6, 0.8)]
        plain = screen_configs(_const_factory, configs, x, y, folds,
                               {"acc": _accuracy})
        monkeypatch.setenv("REPRO_EXEC_SHARD", "3")
        shards = EXEC_STATS.count("hyperscreen.shards")
        sharded = screen_configs(_const_factory, configs, x, y, folds,
                                 {"acc": _accuracy})
        assert EXEC_STATS.count("hyperscreen.shards") > shards
        assert [r.per_fold for r in plain] == [r.per_fold
                                               for r in sharded]


class TestSimCache:
    def test_roundtrip_bitwise_identical(self, traces, tmp_path):
        trace = traces[0]
        plain = IntervalModel(simcache=None).simulate(trace, Mode.LOW_POWER)
        cache = SimCache(tmp_path / "c")
        writer = IntervalModel(simcache=cache)
        written = writer.simulate(trace, Mode.LOW_POWER)
        hits_before = EXEC_STATS.count("simcache.hit")
        reader = IntervalModel(simcache=cache)  # fresh LRU
        loaded = reader.simulate(trace, Mode.LOW_POWER)
        assert EXEC_STATS.count("simcache.hit") == hits_before + 1
        for result in (written, loaded):
            assert np.array_equal(plain.ipc, result.ipc)
            assert np.array_equal(plain.cycles, result.cycles)
            assert np.array_equal(plain.signals, result.signals)
        assert loaded.trace_name == trace.name
        assert loaded.mode is Mode.LOW_POWER

    def test_machine_config_invalidates(self, traces, tmp_path):
        trace = traces[0]
        cache = SimCache(tmp_path / "c")
        default = MachineConfig()
        slower = MachineConfig(memory_latency=400)
        assert (cache.sim_key(trace, Mode.LOW_POWER, default)
                != cache.sim_key(trace, Mode.LOW_POWER, slower))
        IntervalModel(simcache=cache).simulate(trace, Mode.LOW_POWER)
        misses_before = EXEC_STATS.count("simcache.miss")
        IntervalModel(machine=slower,
                      simcache=cache).simulate(trace, Mode.LOW_POWER)
        assert EXEC_STATS.count("simcache.miss") == misses_before + 1

    def test_mode_and_trace_distinguish_keys(self, traces, tmp_path):
        cache = SimCache(tmp_path / "c")
        machine = MachineConfig()
        keys = {
            cache.sim_key(traces[0], Mode.LOW_POWER, machine),
            cache.sim_key(traces[0], Mode.HIGH_PERF, machine),
            cache.sim_key(traces[1], Mode.LOW_POWER, machine),
        }
        assert len(keys) == 3

    def test_corrupt_entry_treated_as_miss(self, traces, tmp_path):
        trace = traces[0]
        cache = SimCache(tmp_path / "c")
        model = IntervalModel(simcache=cache)
        expected = model.simulate(trace, Mode.LOW_POWER)
        key = cache.sim_key(trace, Mode.LOW_POWER, model.machine)
        path = cache._path(key)
        path.write_bytes(b"not an npz file")
        reloaded = IntervalModel(simcache=cache).simulate(
            trace, Mode.LOW_POWER)
        assert np.array_equal(expected.signals, reloaded.signals)

    def test_dataset_roundtrip_bitwise_identical(self, traces, tmp_path):
        ids = [0, 1, 2]
        plain = build_mode_dataset(traces, Mode.HIGH_PERF, ids,
                                   collector=TelemetryCollector())
        cache = SimCache(tmp_path / "d")
        first = build_mode_dataset(traces, Mode.HIGH_PERF, ids,
                                   collector=TelemetryCollector(),
                                   simcache=cache)
        second = build_mode_dataset(traces, Mode.HIGH_PERF, ids,
                                    collector=TelemetryCollector(),
                                    simcache=cache)
        for ds in (first, second):
            assert np.array_equal(plain.x, ds.x)
            assert np.array_equal(plain.y, ds.y)
            assert np.array_equal(plain.groups, ds.groups)
            assert ds.mode is Mode.HIGH_PERF
            assert ds.granularity == plain.granularity

    def test_env_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SIMCACHE_DIR", raising=False)
        assert default_simcache() is None
        monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path / "env"))
        cache = default_simcache()
        assert cache is not None
        assert cache.root == tmp_path / "env"


class TestIntervalLRU:
    def test_env_configures_bound(self, monkeypatch):
        monkeypatch.setenv("REPRO_INTERVAL_LRU", "2")
        assert interval_lru_size() == 2
        model = IntervalModel(simcache=None)
        assert model._cache_size == 2

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_INTERVAL_LRU", "zero")
        with pytest.raises(ValueError):
            interval_lru_size()
        monkeypatch.setenv("REPRO_INTERVAL_LRU", "0")
        with pytest.raises(ValueError):
            interval_lru_size()

    def test_bound_enforced_and_counters_reported(self, traces):
        model = IntervalModel(cache_size=1, simcache=None)
        misses_before = EXEC_STATS.count("interval_lru.miss")
        hits_before = EXEC_STATS.count("interval_lru.hit")
        model.simulate(traces[0], Mode.LOW_POWER)
        model.simulate(traces[0], Mode.LOW_POWER)  # hit
        model.simulate(traces[1], Mode.LOW_POWER)  # evicts traces[0]
        model.simulate(traces[0], Mode.LOW_POWER)  # miss again
        assert len(model._cache) == 1
        assert EXEC_STATS.count("interval_lru.hit") == hits_before + 1
        assert EXEC_STATS.count("interval_lru.miss") == misses_before + 3


class TestSuiteEvalLookup:
    def test_benchmark_by_name(self, traces, predictor):
        suite = evaluate_predictor(predictor, traces,
                                   collector=TelemetryCollector())
        for bench in suite.per_benchmark:
            assert suite.benchmark(bench.app_name) is bench

    def test_missing_benchmark_raises(self, traces, predictor):
        suite = evaluate_predictor(predictor, traces,
                                   collector=TelemetryCollector())
        with pytest.raises(DatasetError):
            suite.benchmark("no_such_app")


class TestStatsReport:
    def test_report_contains_stages_and_rates(self):
        with EXEC_STATS.stage("report_stage"):
            pass
        EXEC_STATS.incr("simcache.hit")
        text = EXEC_STATS.report()
        assert "report_stage" in text
        assert "simcache hit rate" in text

    def test_snapshot_roundtrip(self):
        EXEC_STATS.add_time("snap_stage", 2.0, busy_s=3.0, workers=2)
        snap = EXEC_STATS.snapshot()
        stage = snap["stages"]["snap_stage"]
        assert stage["workers"] == 2
        assert stage["utilization"] == pytest.approx(0.75)
