"""Tests for the shared execution engine (repro.exec).

The engine's contract: for any seed, parallel and cached runs produce
bit-identical results to the serial uncached path. Every test here
asserts exact equality, never approximate.
"""

import numpy as np
import pytest

from repro.config import MachineConfig, interval_lru_size
from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.predictor import DualModePredictor
from repro.data.builders import build_mode_dataset
from repro.errors import ConfigurationError, DatasetError
from repro.eval.runner import evaluate_predictor
from repro.exec import EXEC_STATS, ParallelMap, SimCache, reset_default
from repro.exec.simcache import default_simcache
from repro.ml.base import Estimator
from repro.ml.crossval import Fold
from repro.ml.hyperscreen import screen_configs
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.interval_model import IntervalModel
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application


def _square(i):
    return i * i


class _ConstModel(Estimator):
    """Fixed-probability model; module level so process pools can
    pickle it."""

    def __init__(self, prob: float) -> None:
        self.prob = prob
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return np.full(x.shape[0], self.prob)


def _const_factory(config):
    return _ConstModel(float(config["prob"]))


def _accuracy(y_true, y_pred, scores):
    return float((y_true == y_pred).mean())


@pytest.fixture(autouse=True)
def _no_global_override():
    reset_default()
    yield
    reset_default()


@pytest.fixture(scope="module")
def traces():
    out = []
    for i, family in enumerate(["pointer_chase", "compute_fp",
                                "store_burst"]):
        app = generate_application(f"exeapp{i}", "test", {family: 1.0},
                                   seed=40 + i)
        out.extend(app.workload(w).trace(90, 0) for w in range(2))
    return out


@pytest.fixture(scope="module")
def predictor():
    return DualModePredictor(
        name="const",
        models={Mode.HIGH_PERF: _ConstModel(0.7),
                Mode.LOW_POWER: _ConstModel(0.4)},
        counter_ids=np.array([0, 1, 2]),
        granularity_factor=1,
    )


class TestParallelMap:
    def test_results_ordered_across_backends(self):
        expected = [_square(i) for i in range(23)]
        for backend in ("serial", "thread", "process"):
            pmap = ParallelMap(backend=backend, n_workers=2, chunk_size=3)
            assert pmap.map(_square, range(23)) == expected, backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelMap(backend="gpu")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelMap(n_workers=0)

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "thread")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "3")
        pmap = ParallelMap()
        assert pmap.backend == "thread"
        assert pmap.n_workers == 3

    def test_unpicklable_fn_falls_back_to_serial(self):
        before = EXEC_STATS.count("parallel.fallback_serial")
        pmap = ParallelMap(backend="process", n_workers=2)
        result = pmap.map(lambda i: i + 1, range(6))
        assert result == [1, 2, 3, 4, 5, 6]
        assert EXEC_STATS.count("parallel.fallback_serial") == before + 1

    def test_task_errors_propagate(self):
        pmap = ParallelMap(backend="serial")
        with pytest.raises(ZeroDivisionError):
            pmap.map(lambda i: 1 // i, [1, 0, 2])

    def test_stage_recorded(self):
        pmap = ParallelMap(backend="serial")
        pmap.map(_square, range(4), stage="unit_stage")
        snap = EXEC_STATS.snapshot()
        assert "unit_stage" in snap["stages"]
        assert snap["counters"]["unit_stage.items"] >= 4


class TestParallelEquivalence:
    """Serial == thread == process, bit for bit (same seeds)."""

    def test_run_many_bitwise_identical(self, traces, predictor,
                                        monkeypatch):
        """serial == thread == process == arena-backed, bit for bit —
        including two back-to-back process runs on a reused warm pool."""
        results = {}
        # Arena off: thread and process ship pickled traces per chunk.
        monkeypatch.setenv("REPRO_EXEC_ARENA", "0")
        for backend in ("serial", "thread", "process"):
            cpu = AdaptiveCPU(predictor, collector=TelemetryCollector())
            results[backend] = cpu.run_many(
                traces, pmap=ParallelMap(backend=backend, n_workers=2))
        # Arena on: process workers attach to the shared mapping; the
        # second call reuses the warm persistent pool.
        monkeypatch.setenv("REPRO_EXEC_ARENA", "1")
        cpu = AdaptiveCPU(predictor, collector=TelemetryCollector())
        arena_pmap = ParallelMap(backend="process", n_workers=2,
                                 persistent=True)
        results["arena"] = cpu.run_many(traces, pmap=arena_pmap)
        reuse_before = EXEC_STATS.count("parallel.pool_reuse")
        results["arena_warm"] = cpu.run_many(traces, pmap=arena_pmap)
        assert EXEC_STATS.count("parallel.pool_reuse") > reuse_before
        serial = results["serial"]
        for variant in ("thread", "process", "arena", "arena_warm"):
            for rs, rp in zip(serial, results[variant]):
                assert rs.trace_name == rp.trace_name, variant
                assert np.array_equal(rs.modes, rp.modes), variant
                assert np.array_equal(rs.ipc, rp.ipc), variant
                assert np.array_equal(rs.cycles, rp.cycles), variant
                assert rs.energy_j == rp.energy_j, variant
                assert rs.switch_count == rp.switch_count, variant

    def test_suite_metrics_bitwise_identical(self, traces, predictor):
        serial = evaluate_predictor(predictor, traces,
                                    collector=TelemetryCollector())
        process = evaluate_predictor(
            predictor, traces, collector=TelemetryCollector(),
            pmap=ParallelMap(backend="process", n_workers=2))
        assert serial.mean_ppw_gain == process.mean_ppw_gain
        assert serial.mean_rsv == process.mean_rsv
        assert serial.mean_pgos == process.mean_pgos
        assert serial.mean_residency == process.mean_residency

    def test_build_dataset_bitwise_identical(self, traces):
        ids = [0, 1, 2, 3]
        serial = build_mode_dataset(traces, Mode.LOW_POWER, ids,
                                    collector=TelemetryCollector())
        for backend in ("thread", "process"):
            parallel = build_mode_dataset(
                traces, Mode.LOW_POWER, ids,
                collector=TelemetryCollector(),
                pmap=ParallelMap(backend=backend, n_workers=2))
            assert np.array_equal(serial.x, parallel.x)
            assert np.array_equal(serial.y, parallel.y)
            assert np.array_equal(serial.traces, parallel.traces)

    def test_hyperscreen_identical(self, traces):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(60, 4))
        y = (x[:, 0] > 0).astype(np.int64)
        folds = [Fold(fold_id=0, tuning_apps=("a",),
                      validation_apps=("b",),
                      tuning_idx=np.arange(0, 40),
                      validation_idx=np.arange(40, 60)),
                 Fold(fold_id=1, tuning_apps=("b",),
                      validation_apps=("a",),
                      tuning_idx=np.arange(20, 60),
                      validation_idx=np.arange(0, 20))]
        configs = [{"prob": 0.2}, {"prob": 0.8}]
        serial = screen_configs(_const_factory, configs, x, y, folds,
                                {"acc": _accuracy})
        process = screen_configs(_const_factory, configs, x, y, folds,
                                 {"acc": _accuracy},
                                 pmap=ParallelMap("process", 2))
        assert [r.config for r in serial] == [r.config for r in process]
        assert [r.per_fold for r in serial] == [r.per_fold for r in process]


class TestSimCache:
    def test_roundtrip_bitwise_identical(self, traces, tmp_path):
        trace = traces[0]
        plain = IntervalModel(simcache=None).simulate(trace, Mode.LOW_POWER)
        cache = SimCache(tmp_path / "c")
        writer = IntervalModel(simcache=cache)
        written = writer.simulate(trace, Mode.LOW_POWER)
        hits_before = EXEC_STATS.count("simcache.hit")
        reader = IntervalModel(simcache=cache)  # fresh LRU
        loaded = reader.simulate(trace, Mode.LOW_POWER)
        assert EXEC_STATS.count("simcache.hit") == hits_before + 1
        for result in (written, loaded):
            assert np.array_equal(plain.ipc, result.ipc)
            assert np.array_equal(plain.cycles, result.cycles)
            assert np.array_equal(plain.signals, result.signals)
        assert loaded.trace_name == trace.name
        assert loaded.mode is Mode.LOW_POWER

    def test_machine_config_invalidates(self, traces, tmp_path):
        trace = traces[0]
        cache = SimCache(tmp_path / "c")
        default = MachineConfig()
        slower = MachineConfig(memory_latency=400)
        assert (cache.sim_key(trace, Mode.LOW_POWER, default)
                != cache.sim_key(trace, Mode.LOW_POWER, slower))
        IntervalModel(simcache=cache).simulate(trace, Mode.LOW_POWER)
        misses_before = EXEC_STATS.count("simcache.miss")
        IntervalModel(machine=slower,
                      simcache=cache).simulate(trace, Mode.LOW_POWER)
        assert EXEC_STATS.count("simcache.miss") == misses_before + 1

    def test_mode_and_trace_distinguish_keys(self, traces, tmp_path):
        cache = SimCache(tmp_path / "c")
        machine = MachineConfig()
        keys = {
            cache.sim_key(traces[0], Mode.LOW_POWER, machine),
            cache.sim_key(traces[0], Mode.HIGH_PERF, machine),
            cache.sim_key(traces[1], Mode.LOW_POWER, machine),
        }
        assert len(keys) == 3

    def test_corrupt_entry_treated_as_miss(self, traces, tmp_path):
        trace = traces[0]
        cache = SimCache(tmp_path / "c")
        model = IntervalModel(simcache=cache)
        expected = model.simulate(trace, Mode.LOW_POWER)
        key = cache.sim_key(trace, Mode.LOW_POWER, model.machine)
        path = cache._path(key)
        path.write_bytes(b"not an npz file")
        reloaded = IntervalModel(simcache=cache).simulate(
            trace, Mode.LOW_POWER)
        assert np.array_equal(expected.signals, reloaded.signals)

    def test_dataset_roundtrip_bitwise_identical(self, traces, tmp_path):
        ids = [0, 1, 2]
        plain = build_mode_dataset(traces, Mode.HIGH_PERF, ids,
                                   collector=TelemetryCollector())
        cache = SimCache(tmp_path / "d")
        first = build_mode_dataset(traces, Mode.HIGH_PERF, ids,
                                   collector=TelemetryCollector(),
                                   simcache=cache)
        second = build_mode_dataset(traces, Mode.HIGH_PERF, ids,
                                    collector=TelemetryCollector(),
                                    simcache=cache)
        for ds in (first, second):
            assert np.array_equal(plain.x, ds.x)
            assert np.array_equal(plain.y, ds.y)
            assert np.array_equal(plain.groups, ds.groups)
            assert ds.mode is Mode.HIGH_PERF
            assert ds.granularity == plain.granularity

    def test_env_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SIMCACHE_DIR", raising=False)
        assert default_simcache() is None
        monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path / "env"))
        cache = default_simcache()
        assert cache is not None
        assert cache.root == tmp_path / "env"


class TestIntervalLRU:
    def test_env_configures_bound(self, monkeypatch):
        monkeypatch.setenv("REPRO_INTERVAL_LRU", "2")
        assert interval_lru_size() == 2
        model = IntervalModel(simcache=None)
        assert model._cache_size == 2

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_INTERVAL_LRU", "zero")
        with pytest.raises(ValueError):
            interval_lru_size()
        monkeypatch.setenv("REPRO_INTERVAL_LRU", "0")
        with pytest.raises(ValueError):
            interval_lru_size()

    def test_bound_enforced_and_counters_reported(self, traces):
        model = IntervalModel(cache_size=1, simcache=None)
        misses_before = EXEC_STATS.count("interval_lru.miss")
        hits_before = EXEC_STATS.count("interval_lru.hit")
        model.simulate(traces[0], Mode.LOW_POWER)
        model.simulate(traces[0], Mode.LOW_POWER)  # hit
        model.simulate(traces[1], Mode.LOW_POWER)  # evicts traces[0]
        model.simulate(traces[0], Mode.LOW_POWER)  # miss again
        assert len(model._cache) == 1
        assert EXEC_STATS.count("interval_lru.hit") == hits_before + 1
        assert EXEC_STATS.count("interval_lru.miss") == misses_before + 3


class TestSuiteEvalLookup:
    def test_benchmark_by_name(self, traces, predictor):
        suite = evaluate_predictor(predictor, traces,
                                   collector=TelemetryCollector())
        for bench in suite.per_benchmark:
            assert suite.benchmark(bench.app_name) is bench

    def test_missing_benchmark_raises(self, traces, predictor):
        suite = evaluate_predictor(predictor, traces,
                                   collector=TelemetryCollector())
        with pytest.raises(DatasetError):
            suite.benchmark("no_such_app")


class TestStatsReport:
    def test_report_contains_stages_and_rates(self):
        with EXEC_STATS.stage("report_stage"):
            pass
        EXEC_STATS.incr("simcache.hit")
        text = EXEC_STATS.report()
        assert "report_stage" in text
        assert "simcache hit rate" in text

    def test_snapshot_roundtrip(self):
        EXEC_STATS.add_time("snap_stage", 2.0, busy_s=3.0, workers=2)
        snap = EXEC_STATS.snapshot()
        stage = snap["stages"]["snap_stage"]
        assert stage["workers"] == 2
        assert stage["utilization"] == pytest.approx(0.75)
