"""Tests for the zero-copy trace arena and adaptive dispatch.

The arena's contract: packing a corpus into a memory-mapped segment
and reconstructing it (in this process or a worker) changes *where*
arrays live, never their values — every test here asserts exact
equality. Adaptive dispatch's contract: backend selection is an
execution detail with no effect on results.
"""

import os
import pickle

import numpy as np
import pytest

from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.predictor import DualModePredictor
from repro.data.builders import build_mode_dataset
from repro.errors import ArenaIntegrityError
from repro.exec import EXEC_STATS, ParallelMap, TraceArena, reset_default
from repro.exec import arena as arena_mod
from repro.exec.parallel import AUTO_MIN_PARALLEL_S
from repro.exec.stats import ExecStats
from repro.ml.base import Estimator
from repro.ml.forest import RandomForestClassifier
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.interval_model import IntervalModel
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application


class _ConstModel(Estimator):
    """Fixed-probability model; module level so pools can pickle it."""

    def __init__(self, prob: float) -> None:
        self.prob = prob
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return np.full(x.shape[0], self.prob)


@pytest.fixture(autouse=True)
def _no_global_override():
    reset_default()
    yield
    reset_default()


@pytest.fixture(scope="module")
def traces():
    out = []
    for i, family in enumerate(["pointer_chase", "compute_fp",
                                "store_burst"]):
        app = generate_application(f"arnapp{i}", "test", {family: 1.0},
                                   seed=50 + i)
        out.extend(app.workload(w).trace(90, 0) for w in range(2))
    return out


@pytest.fixture(scope="module")
def predictor():
    return DualModePredictor(
        name="const",
        models={Mode.HIGH_PERF: _ConstModel(0.7),
                Mode.LOW_POWER: _ConstModel(0.4)},
        counter_ids=np.array([0, 1, 2]),
        granularity_factor=1,
    )


def _results_equal(a, b):
    assert a.trace_name == b.trace_name
    assert np.array_equal(a.modes, b.modes)
    assert np.array_equal(a.ipc, b.ipc)
    assert np.array_equal(a.cycles, b.cycles)
    assert a.energy_j == b.energy_j
    assert a.switch_count == b.switch_count


class TestArenaRoundTrip:
    def test_traces_reconstruct_bit_identical(self, traces):
        arena = TraceArena.build(traces)
        try:
            arena_mod.detach_all()
            attached = TraceArena.attach(arena.handle)
            assert attached.n_traces == len(traces)
            for i, original in enumerate(traces):
                rebuilt = attached.trace(i)
                assert rebuilt.name == original.name
                assert rebuilt.seed == original.seed
                assert (rebuilt.interval_instructions
                        == original.interval_instructions)
                assert np.array_equal(rebuilt.phase_seq,
                                      original.phase_seq)
                assert np.array_equal(rebuilt.physics(),
                                      original.physics())
        finally:
            arena.close()

    def test_views_are_zero_copy_and_read_only(self, traces):
        arena = TraceArena.build(
            traces[:2],
            arrays={"x": np.arange(12, dtype=np.float64).reshape(3, 4)})
        try:
            seq = arena.trace(0).phase_seq
            x = arena.array("x")
            assert not seq.flags.writeable
            assert not x.flags.writeable
            assert not seq.flags.owndata  # a view of the mapping
            with pytest.raises(ValueError):
                x[0, 0] = 99.0
            assert np.array_equal(x,
                                  np.arange(12.0).reshape(3, 4))
        finally:
            arena.close()

    def test_objects_and_machine_round_trip(self, traces):
        model = IntervalModel(simcache=None)
        arena = TraceArena.build(traces[:1],
                                 objects={"payload": {"k": [1, 2, 3]}},
                                 machine=model.machine)
        try:
            arena_mod.detach_all()
            attached = TraceArena.attach(arena.handle)
            assert attached.object("payload") == {"k": [1, 2, 3]}
            assert attached.machine == model.machine
        finally:
            arena.close()

    def test_simulation_equal_on_reconstructed_traces(self, traces):
        arena = TraceArena.build(traces[:2])
        try:
            arena_mod.detach_all()
            attached = TraceArena.attach(arena.handle)
            for i in range(2):
                direct = IntervalModel(simcache=None).simulate(
                    traces[i], Mode.LOW_POWER)
                rebuilt = IntervalModel(simcache=None).simulate(
                    attached.trace(i), Mode.LOW_POWER)
                assert np.array_equal(direct.ipc, rebuilt.ipc)
                assert np.array_equal(direct.cycles, rebuilt.cycles)
                assert np.array_equal(direct.signals, rebuilt.signals)
        finally:
            arena.close()

    def test_attach_is_memoised(self, traces):
        arena = TraceArena.build(traces[:1])
        try:
            hits = EXEC_STATS.count("arena.attach_hit")
            assert TraceArena.attach(arena.handle) is arena
            assert EXEC_STATS.count("arena.attach_hit") == hits + 1
        finally:
            arena.close()

    def test_close_unlinks_backing_file(self, traces):
        arena = TraceArena.build(traces[:1])
        path = arena.handle
        assert os.path.exists(path)
        arena.close()
        assert not os.path.exists(path)
        arena.close()  # idempotent

    def test_non_arena_file_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.bin"
        bogus.write_bytes(b"not an arena" * 10)
        with pytest.raises(ArenaIntegrityError):
            TraceArena.attach(str(bogus))


class TestArenaDispatch:
    def test_kill_switch_equivalent(self, traces, predictor, monkeypatch):
        cpu = AdaptiveCPU(predictor, collector=TelemetryCollector())
        serial = cpu.run_many(traces, pmap=ParallelMap(backend="serial"))
        pmap = ParallelMap(backend="process", n_workers=2)
        monkeypatch.setenv("REPRO_EXEC_ARENA", "0")
        plain = cpu.run_many(traces, pmap=pmap)
        monkeypatch.setenv("REPRO_EXEC_ARENA", "1")
        builds = EXEC_STATS.count("arena.builds")
        packed = cpu.run_many(traces, pmap=pmap)
        assert EXEC_STATS.count("arena.builds") == builds + 1
        for a, b, c in zip(serial, plain, packed):
            _results_equal(a, b)
            _results_equal(a, c)

    def test_pool_reuse_deterministic(self, traces, predictor):
        """Two back-to-back run_many calls on a reused warm pool."""
        cpu = AdaptiveCPU(predictor, collector=TelemetryCollector())
        pmap = ParallelMap(backend="process", n_workers=2,
                           persistent=True)
        first = cpu.run_many(traces, pmap=pmap)
        reuse = EXEC_STATS.count("parallel.pool_reuse")
        second = cpu.run_many(traces, pmap=pmap)
        assert EXEC_STATS.count("parallel.pool_reuse") > reuse
        for a, b in zip(first, second):
            _results_equal(a, b)

    def test_build_dataset_kill_switch_equivalent(self, traces,
                                                  monkeypatch):
        ids = [0, 1, 2]
        serial = build_mode_dataset(traces, Mode.LOW_POWER, ids,
                                    collector=TelemetryCollector())
        pmap = ParallelMap(backend="process", n_workers=2)
        by_arena = {}
        for setting in ("0", "1"):
            monkeypatch.setenv("REPRO_EXEC_ARENA", setting)
            by_arena[setting] = build_mode_dataset(
                traces, Mode.LOW_POWER, ids,
                collector=TelemetryCollector(), pmap=pmap)
        for ds in by_arena.values():
            assert np.array_equal(serial.x, ds.x)
            assert np.array_equal(serial.y, ds.y)
            assert np.array_equal(serial.traces, ds.traces)

    def test_forest_fit_arena_bit_identical(self, monkeypatch):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(400, 6))
        y = (x[:, 0] + 0.3 * x[:, 1] > 0).astype(np.int64)

        def fit(backend, arena):
            monkeypatch.setenv("REPRO_EXEC_ARENA", arena)
            monkeypatch.setenv("REPRO_EXEC_BACKEND", backend)
            return RandomForestClassifier(n_trees=4, max_depth=4,
                                          seed=5).fit(x, y)

        reference = fit("serial", "1")
        for backend, arena in (("process", "1"), ("process", "0"),
                               ("thread", "1")):
            forest = fit(backend, arena)
            assert np.array_equal(reference.predict_proba(x),
                                  forest.predict_proba(x)), \
                (backend, arena)
            assert forest.total_nodes == reference.total_nodes

    def test_shared_model_infers_once_per_model(self, traces):
        """Modes sharing one estimator get one concatenated call."""
        shared = _ConstModel(0.6)
        predictor = DualModePredictor(
            name="shared",
            models={Mode.HIGH_PERF: shared, Mode.LOW_POWER: shared},
            counter_ids=np.array([0, 1, 2]),
            granularity_factor=1,
        )
        cpu = AdaptiveCPU(predictor, collector=TelemetryCollector())
        calls = EXEC_STATS.count("adaptive_infer.model_calls")
        batched = cpu.run_many(traces, pmap=ParallelMap(backend="serial"))
        assert EXEC_STATS.count("adaptive_infer.model_calls") == calls + 1
        singles = [cpu.run(trace) for trace in traces]
        for a, b in zip(singles, batched):
            _results_equal(a, b)

    def test_interval_model_pickles_without_lru(self, traces):
        model = IntervalModel(simcache=None)
        model.simulate(traces[0], Mode.LOW_POWER)
        assert len(model._cache) > 0
        clone = pickle.loads(pickle.dumps(model))
        assert len(clone._cache) == 0
        direct = model.simulate(traces[1], Mode.HIGH_PERF)
        rebuilt = clone.simulate(traces[1], Mode.HIGH_PERF)
        assert np.array_equal(direct.signals, rebuilt.signals)


class TestAdaptiveDispatch:
    def test_auto_single_item_stays_serial(self):
        pmap = ParallelMap(backend="auto", n_workers=2)
        assert pmap._resolve_backend(1, "auto_stage") == "serial"
        creates = EXEC_STATS.count("parallel.pool_create")
        assert pmap.map(lambda v: v + 1, [41],
                        stage="auto_single") == [42]
        assert EXEC_STATS.count("parallel.pool_create") == creates

    def test_auto_probe_keeps_cheap_work_serial(self):
        pmap = ParallelMap(backend="auto", n_workers=2)
        creates = EXEC_STATS.count("parallel.pool_create")
        result = pmap.map(lambda v: v * 2, range(8),
                          stage="auto_cheap_stage")
        assert result == [v * 2 for v in range(8)]
        # Microsecond items never amortise a pool.
        assert EXEC_STATS.count("parallel.pool_create") == creates

    def test_auto_uses_cost_history(self):
        stats = EXEC_STATS
        stage = "auto_history_stage"
        stats.add_time(stage, 1.0, busy_s=1.0)
        stats.incr(f"{stage}.items", 10)  # 0.1 s/item
        pmap = ParallelMap(backend="auto", n_workers=2)
        if (os.cpu_count() or 1) > 1:
            assert pmap._resolve_backend(100, stage) == "process"
            assert pmap.uses_processes(100, stage)
        assert pmap._resolve_backend(
            1, stage) == "serial"

    def test_probe_threshold_decision(self):
        assert ParallelMap._decide_from_probe(
            AUTO_MIN_PARALLEL_S, 1) == "process"
        assert ParallelMap._decide_from_probe(1e-6, 10) == "serial"

    def test_adaptive_chunk_size_from_cost(self):
        stage = "chunk_cost_stage"
        EXEC_STATS.add_time(stage, 1.0, busy_s=1.0)
        EXEC_STATS.incr(f"{stage}.items", 100)  # 0.01 s/item
        pmap = ParallelMap(backend="process", n_workers=2)
        indexed = list(enumerate(range(40)))
        chunks = pmap._chunks(indexed, stage)
        # TARGET_CHUNK_S / 0.01 = 5 items per chunk.
        assert all(len(c) <= 5 for c in chunks)
        assert sum(len(c) for c in chunks) == 40

    def test_env_chunk_size_pins_chunking(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_CHUNK", "7")
        pmap = ParallelMap(backend="process", n_workers=2)
        chunks = pmap._chunks(list(enumerate(range(20))), "env_stage")
        assert [len(c) for c in chunks] == [7, 7, 6]

    def test_payload_bytes_counted_for_process_maps(self, traces,
                                                    predictor):
        stage = "payload_probe_stage"
        before = EXEC_STATS.count(f"{stage}.payload_tasks")
        pmap = ParallelMap(backend="process", n_workers=2)
        pmap.map(abs, range(16), stage=stage)
        assert EXEC_STATS.count(f"{stage}.payload_tasks") == before + 1
        assert EXEC_STATS.count(f"{stage}.payload_bytes") > 0


class TestUtilizationAccounting:
    def test_capacity_tracks_per_call_workers(self):
        stats = ExecStats()
        # A 4-worker parallel call at full tilt...
        stats.add_time("mixed", 1.0, busy_s=4.0, workers=4)
        # ...then a serial-fallback call of the same stage.
        stats.add_time("mixed", 1.0, busy_s=1.0, workers=1)
        stage = stats.snapshot()["stages"]["mixed"]
        # capacity = 4*1 + 1*1 = 5; busy = 5 -> fully utilised, where
        # the old max-workers denominator would report 5/8.
        assert stage["capacity_s"] == pytest.approx(5.0)
        assert stage["utilization"] == pytest.approx(1.0)

    def test_serial_only_stage_reports_full_utilization(self):
        stats = ExecStats()
        stats.add_time("serial_stage", 2.0, busy_s=2.0, workers=1)
        snap = stats.snapshot()["stages"]["serial_stage"]
        assert snap["utilization"] == pytest.approx(1.0)

    def test_per_item_cost(self):
        stats = ExecStats()
        assert stats.per_item_cost("nope") is None
        stats.add_time("costed", 2.0, busy_s=1.0)
        assert stats.per_item_cost("costed") is None  # no items yet
        stats.incr("costed.items", 4)
        assert stats.per_item_cost("costed") == pytest.approx(0.25)
