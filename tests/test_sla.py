"""Direct unit tests for SLA window accounting edge cases.

``sla_window_violations`` is covered in the closed-loop tests only
through full adaptive runs; these pin its edge semantics directly —
empty/short windows, the exact-boundary budget (a window exactly at
the floor complies: the violation test is strict ``<``) and
all-violating runs — plus the streaming :class:`RollingSLA` that the
serving layer's tenant accounting is built on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sla import RollingSLA, sla_window_violations
from repro.errors import DatasetError


class TestSlaWindowViolations:
    def test_empty_window_rejected(self):
        with pytest.raises(DatasetError, match="window_intervals"):
            sla_window_violations(np.ones(8), np.ones(8), 0, 0.9)
        with pytest.raises(DatasetError, match="window_intervals"):
            sla_window_violations(np.ones(8), np.ones(8), -4, 0.9)

    def test_run_shorter_than_one_window(self):
        with pytest.raises(DatasetError, match="too short"):
            sla_window_violations(np.ones(7), np.ones(7), 8, 0.9)

    def test_zero_length_run(self):
        with pytest.raises(DatasetError, match="too short"):
            sla_window_violations(np.empty(0), np.empty(0), 4, 0.9)

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(DatasetError, match="align"):
            sla_window_violations(np.ones(8), np.ones(12), 4, 0.9)

    def test_exact_boundary_window_complies(self):
        # Adaptive takes exactly 1/floor times the baseline cycles:
        # the windowed ratio lands exactly on the floor, and the
        # violation test is strict (<), so the window complies.
        baseline = np.full(8, 90.0)
        adaptive = np.full(8, 100.0)
        acc = sla_window_violations(adaptive, baseline, 4, 0.90)
        assert acc.n_windows == 2
        assert acc.n_violations == 0
        np.testing.assert_allclose(acc.window_ratios, 0.90)
        assert acc.meets_guarantee(0.99)

    def test_epsilon_below_boundary_violates(self):
        baseline = np.full(4, 90.0)
        adaptive = np.full(4, 100.0 + 1e-9)
        acc = sla_window_violations(adaptive, baseline, 4, 0.90)
        assert acc.n_violations == 1

    def test_all_windows_violating(self):
        baseline = np.full(12, 50.0)
        adaptive = np.full(12, 100.0)  # 0.5 ratio, floor 0.9
        acc = sla_window_violations(adaptive, baseline, 4, 0.90)
        assert acc.n_windows == 3
        assert acc.n_violations == 3
        assert acc.violation_rate == 1.0
        assert not acc.meets_guarantee(0.99)
        assert not acc.meets_guarantee(0.01)

    def test_trailing_partial_window_dropped(self):
        baseline = np.full(10, 100.0)
        adaptive = np.full(10, 100.0)
        acc = sla_window_violations(adaptive, baseline, 4, 0.90)
        assert acc.n_windows == 2  # 10 // 4, the tail 2 intervals drop

    def test_violation_rate_requires_windows(self):
        from repro.core.sla import SLAAccounting
        empty = SLAAccounting(n_windows=0, n_violations=0,
                              window_ratios=np.empty(0))
        with pytest.raises(DatasetError, match="no complete"):
            _ = empty.violation_rate


class TestRollingSLA:
    def test_invalid_construction(self):
        with pytest.raises(DatasetError, match="window"):
            RollingSLA(0)
        with pytest.raises(DatasetError, match="guarantee"):
            RollingSLA(4, guarantee=0.0)
        with pytest.raises(DatasetError, match="guarantee"):
            RollingSLA(4, guarantee=1.5)

    def test_empty_window_accounting(self):
        sla = RollingSLA(8)
        assert sla.n_observations == 0
        assert sla.accounting().n_windows == 0
        assert sla.pressure() == 0.0

    def test_exact_boundary_observation_complies(self):
        sla = RollingSLA(4, performance_floor=1.0)
        sla.observe(achieved=0.05, budget=0.05)  # ratio exactly 1.0
        assert sla.accounting().n_violations == 0

    def test_over_budget_violates(self):
        sla = RollingSLA(4, performance_floor=1.0, guarantee=0.75)
        sla.observe(achieved=0.10, budget=0.05)  # 2x over budget
        sla.observe(achieved=0.01, budget=0.05)
        acct = sla.accounting()
        assert acct.n_windows == 2
        assert acct.n_violations == 1
        # rate 0.5 against an allowance of 0.25 -> pressure 2.0.
        assert sla.pressure() == pytest.approx(2.0)

    def test_ring_evicts_oldest(self):
        sla = RollingSLA(2, performance_floor=1.0)
        sla.observe(achieved=1.0, budget=0.1)  # violation
        sla.observe(achieved=0.01, budget=0.1)
        sla.observe(achieved=0.01, budget=0.1)  # evicts the violation
        acct = sla.accounting()
        assert acct.n_windows == 2
        assert acct.n_violations == 0

    def test_zero_achieved_counts_as_compliant_infinite_ratio(self):
        sla = RollingSLA(2, performance_floor=1.0)
        sla.observe(achieved=0.0, budget=0.05)
        assert sla.accounting().n_violations == 0

    def test_strict_guarantee_pressure(self):
        sla = RollingSLA(4, performance_floor=1.0, guarantee=1.0)
        sla.observe(achieved=0.01, budget=0.05)
        assert sla.pressure() == 0.0
        sla.observe(achieved=0.10, budget=0.05)
        assert sla.pressure() == float("inf")

    def test_matches_batch_accounting_semantics(self):
        # The streaming window and the batch function agree on what a
        # violation is for the same ratios.
        baseline = np.array([90.0, 80.0, 95.0, 90.0])
        adaptive = np.array([100.0, 100.0, 100.0, 100.0])
        batch = sla_window_violations(adaptive, baseline, 1, 0.90)
        rolling = RollingSLA(4, performance_floor=0.90)
        for a, b in zip(adaptive, baseline):
            rolling.observe(achieved=a, budget=b)
        acct = rolling.accounting()
        assert acct.n_violations == batch.n_violations
        np.testing.assert_allclose(acct.window_ratios,
                                   batch.window_ratios)
