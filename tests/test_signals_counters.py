"""Tests for base signals and the 936-counter catalog."""

import numpy as np
import pytest

from repro.telemetry.counters import (
    CATALOG_SIZE,
    CHARSTAR_COUNTERS,
    KIND_DEAD,
    KIND_STUCK,
    TABLE4_COUNTERS,
    default_catalog,
)
from repro.uarch.signals import BASE_SIGNALS, N_SIGNALS, signal_index
from repro import rng as rng_mod


class TestSignals:
    def test_signal_names_unique(self):
        names = [s.name for s in BASE_SIGNALS]
        assert len(names) == len(set(names))

    def test_index_roundtrip(self):
        for i, sig in enumerate(BASE_SIGNALS):
            assert signal_index(sig.name) == i

    def test_unknown_signal_raises(self):
        with pytest.raises(KeyError):
            signal_index("bogus")

    def test_core_signals_present(self):
        for name in ("cycles", "instructions", "sq_occupancy",
                     "uopcache_misses", "l2_silent_evictions",
                     "wrong_path_uops", "uops_ready"):
            signal_index(name)


class TestCatalogStructure:
    @pytest.fixture(scope="class")
    def catalog(self):
        return default_catalog()

    def test_size_is_936(self, catalog):
        assert len(catalog) == CATALOG_SIZE == 936

    def test_names_unique(self, catalog):
        names = catalog.names()
        assert len(names) == len(set(names))

    def test_table4_counters_exist(self, catalog):
        ids = catalog.table4_ids
        assert len(ids) == 12
        for counter_id, (name, _sig) in zip(ids, TABLE4_COUNTERS):
            assert catalog[counter_id].name == name

    def test_charstar_counters_exist(self, catalog):
        ids = catalog.charstar_ids
        assert len(ids) == 8
        names = {catalog[i].name for i in ids}
        assert names == {name for name, _ in CHARSTAR_COUNTERS}

    def test_charstar_lacks_store_queue_occupancy(self, catalog):
        # The structural cause of the Figure-9 blindspot.
        sq_id = catalog.by_name("Store Queue Occupancy").counter_id
        assert sq_id not in catalog.charstar_ids
        assert sq_id in catalog.table4_ids

    def test_kind_population(self, catalog):
        kinds = [c.kind for c in catalog.counters]
        assert kinds.count(KIND_DEAD) >= 40
        assert kinds.count(KIND_STUCK) >= 10

    def test_catalog_is_fixed_hardware(self):
        # Two independent constructions agree (no global-seed leakage).
        from repro.telemetry.counters import _build_catalog
        a = _build_catalog()
        b = _build_catalog()
        assert a.names() == b.names()


class TestMaterialize:
    @pytest.fixture(scope="class")
    def setup(self):
        catalog = default_catalog()
        rng = rng_mod.stream(1, "mat")
        signals = np.abs(rng.normal(1000.0, 100.0, (50, N_SIGNALS)))
        noise = rng_mod.stream(2, "noise").standard_normal(
            (50, len(catalog)))
        return catalog, signals, noise

    def test_counts_are_non_negative_integers(self, setup):
        catalog, signals, noise = setup
        counts = catalog.materialize(signals, noise)
        assert np.all(counts >= 0.0)
        assert np.allclose(counts, np.rint(counts))

    def test_dead_counters_read_zero(self, setup):
        catalog, signals, noise = setup
        counts = catalog.materialize(signals, noise)
        dead_ids = [c.counter_id for c in catalog.counters
                    if c.kind == KIND_DEAD]
        assert np.all(counts[:, dead_ids] == 0.0)

    def test_stuck_counters_constant(self, setup):
        catalog, signals, noise = setup
        counts = catalog.materialize(signals, noise)
        stuck_ids = [c.counter_id for c in catalog.counters
                     if c.kind == KIND_STUCK]
        assert np.all(counts[:, stuck_ids].std(axis=0) == 0.0)

    def test_subset_matches_full_slice(self, setup):
        catalog, signals, noise = setup
        full = catalog.materialize(signals, noise)
        subset_ids = catalog.table4_ids
        subset = catalog.materialize(signals, noise, subset_ids)
        assert np.array_equal(subset, full[:, subset_ids])

    def test_alias_counter_tracks_signal(self, setup):
        catalog, signals, noise = setup
        counter = catalog.by_name("Loads Retired")
        counts = catalog.materialize(signals, noise,
                                     [counter.counter_id])
        target = signals[:, signal_index("loads_retired")]
        corr = np.corrcoef(counts[:, 0], target)[0, 1]
        assert corr > 0.9
