"""Capacity-limit scenario tests for the cycle-level core.

Each test builds a micro-stream that isolates one structural resource
(ROB, scheduler, load queue, MSHRs, retire width, execution ports) and
checks the resource actually limits throughput — and stops limiting it
when it is enlarged.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import ClusterConfig, MachineConfig
from repro.uarch.core_model import ClusteredCoreModel
from repro.uarch.isa import MEM_DRAM, UopStream, UopType
from repro.uarch.modes import Mode


def _stream(types, src1=None, mem_level=None):
    n = types.shape[0]
    return UopStream(
        types=types.astype(np.int8),
        src1=(np.full(n, -1, dtype=np.int64) if src1 is None
              else src1.astype(np.int64)),
        src2=np.full(n, -1, dtype=np.int64),
        mem_level=(np.full(n, -1, dtype=np.int8) if mem_level is None
                   else mem_level.astype(np.int8)),
        mispredicted=np.zeros(n, dtype=bool),
    )


def _machine(**cluster_overrides):
    base = MachineConfig()
    if cluster_overrides:
        cluster = dataclasses.replace(base.cluster, **cluster_overrides)
        return dataclasses.replace(base, cluster=cluster)
    return base


def _dram_load_stream(n, every):
    """Independent ALU work with a DRAM load every ``every`` uops."""
    types = np.zeros(n)
    mem = np.full(n, -1)
    types[::every] = int(UopType.LOAD)
    mem[::every] = MEM_DRAM
    return _stream(types, mem_level=mem)


class TestMSHRs:
    def test_more_mshrs_more_memory_parallelism(self):
        stream = _dram_load_stream(4000, every=4)
        few = dataclasses.replace(_machine(mshr_entries=1))
        many = dataclasses.replace(_machine(mshr_entries=16))
        ipc_few = ClusteredCoreModel(few, Mode.LOW_POWER).execute(
            stream).ipc
        ipc_many = ClusteredCoreModel(many, Mode.LOW_POWER).execute(
            stream).ipc
        assert ipc_many > 2.0 * ipc_few

    def test_high_perf_doubles_mshrs(self):
        """Two clusters mean twice the outstanding-miss capacity."""
        stream = _dram_load_stream(4000, every=3)
        machine = _machine(mshr_entries=2)
        lp = ClusteredCoreModel(machine, Mode.LOW_POWER).execute(stream)
        hp = ClusteredCoreModel(machine, Mode.HIGH_PERF).execute(stream)
        assert hp.ipc > 1.3 * lp.ipc


class TestQueues:
    def test_load_queue_limits_inflight_loads(self):
        stream = _dram_load_stream(3000, every=2)
        small = _machine(load_queue_entries=4)
        large = _machine(load_queue_entries=72)
        ipc_small = ClusteredCoreModel(small, Mode.HIGH_PERF).execute(
            stream).ipc
        ipc_large = ClusteredCoreModel(large, Mode.HIGH_PERF).execute(
            stream).ipc
        assert ipc_large > ipc_small

    def test_scheduler_capacity_limits_overlap(self):
        stream = _dram_load_stream(3000, every=2)
        small = _machine(scheduler_entries=4)
        large = _machine(scheduler_entries=96)
        ipc_small = ClusteredCoreModel(small, Mode.HIGH_PERF).execute(
            stream).ipc
        ipc_large = ClusteredCoreModel(large, Mode.HIGH_PERF).execute(
            stream).ipc
        assert ipc_large > ipc_small

    def test_rob_capacity_limits_window(self):
        stream = _dram_load_stream(3000, every=2)
        small = dataclasses.replace(_machine(), rob_entries=8)
        large = dataclasses.replace(_machine(), rob_entries=224)
        ipc_small = ClusteredCoreModel(small, Mode.HIGH_PERF).execute(
            stream).ipc
        ipc_large = ClusteredCoreModel(large, Mode.HIGH_PERF).execute(
            stream).ipc
        assert ipc_large > 1.5 * ipc_small


class TestBandwidthLimits:
    def test_retire_width_caps_throughput(self):
        types = np.zeros(4000)  # independent ALU ops
        stream = _stream(types)
        narrow = dataclasses.replace(_machine(), retire_width=2)
        result = ClusteredCoreModel(narrow, Mode.HIGH_PERF).execute(
            stream)
        assert result.ipc <= 2.05

    def test_port_contention_fp(self):
        types = np.full(4000, int(UopType.FP))
        stream = _stream(types)
        one_fpu = _machine(fpu_units=1)
        two_fpu = _machine(fpu_units=4)
        ipc_one = ClusteredCoreModel(one_fpu, Mode.LOW_POWER).execute(
            stream).ipc
        ipc_two = ClusteredCoreModel(two_fpu, Mode.LOW_POWER).execute(
            stream).ipc
        assert ipc_one <= 1.05
        assert ipc_two > 1.8 * ipc_one

    def test_store_ports_limit_store_streams(self):
        types = np.full(4000, int(UopType.STORE))
        stream = _stream(types)
        machine = _machine(store_ports=1)
        result = ClusteredCoreModel(machine, Mode.LOW_POWER).execute(
            stream)
        # One store port + serial SQ drain: ~<=1 store issued per cycle,
        # with drain backpressure pushing throughput well below that.
        assert result.ipc <= 1.0

    def test_fetch_width_caps_low_power_mode(self):
        types = np.zeros(6000)
        stream = _stream(types)
        result = ClusteredCoreModel(_machine(), Mode.LOW_POWER).execute(
            stream)
        assert result.ipc <= 4.0 + 1e-6
        assert result.ipc > 3.8
