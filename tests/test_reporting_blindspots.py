"""Tests for report rendering and blindspot analytics."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.eval.blindspots import _run_lengths
from repro.eval.reporting import (
    emit,
    format_series,
    format_table,
    percent,
)


class TestFormatting:
    def test_table_alignment(self):
        text = format_table("T", ["a", "bbbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bbbb" in lines[2]
        assert len({len(line) for line in lines[2:4]}) == 1

    def test_float_formatting(self):
        text = format_table("T", ["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_series(self):
        text = format_series("S", "n", {"y": [1.0, 2.0]}, [10, 20])
        assert "10" in text and "2" in text

    def test_percent(self):
        assert percent(0.1234) == "12.3%"
        assert percent(0.1234, 2) == "12.34%"

    def test_emit_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = emit("unit_test_report", "hello\n")
        with open(path) as handle:
            assert handle.read() == "hello\n"


class TestRunLengths:
    def test_empty(self):
        assert _run_lengths(np.zeros(0, dtype=bool)).size == 0

    def test_no_runs(self):
        assert _run_lengths(np.zeros(5, dtype=bool)).size == 0

    def test_single_run(self):
        flags = np.array([False, True, True, True, False])
        assert _run_lengths(flags).tolist() == [3]

    def test_multiple_runs(self):
        flags = np.array([True, False, True, True, False, True])
        assert _run_lengths(flags).tolist() == [1, 2, 1]

    def test_all_true(self):
        assert _run_lengths(np.ones(4, dtype=bool)).tolist() == [4]


class TestQuickDemo:
    def test_quick_demo_smokes(self):
        from repro import quick_demo
        result = quick_demo(seed=5)
        assert set(result) == {"ppw_gain", "rsv", "pgos",
                               "low_power_residency", "avg_performance"}
        assert result["ppw_gain"] > 0.0
        assert 0.0 <= result["rsv"] <= 1.0
        assert 0.5 < result["avg_performance"] <= 1.0
