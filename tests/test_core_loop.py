"""Tests for the gating controller, dual predictor and adaptive CPU."""

import numpy as np
import pytest

from repro.config import DEFAULT_SLA
from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.gating import GatingController
from repro.core.labels import gating_labels
from repro.core.predictor import DualModePredictor
from repro.core.sla import sla_window_violations
from repro.errors import ConfigurationError, DatasetError
from repro.ml.base import Estimator
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application


class _ConstantModel(Estimator):
    """Always predicts a fixed gating probability."""

    def __init__(self, prob: float) -> None:
        self.prob = prob
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return np.full(x.shape[0], self.prob)


class _OracleModel(Estimator):
    """Predicts from a precomputed label array (index-aligned)."""

    def __init__(self, labels: np.ndarray) -> None:
        self.labels = labels
        self.decision_threshold = 0.5
        self._cursor = 0

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        # The adaptive loop precomputes over the whole trace at once.
        return self.labels[:x.shape[0]].astype(float)


def _predictor(models, factor=1, name="test"):
    return DualModePredictor(
        name=name,
        models={Mode.HIGH_PERF: models[0], Mode.LOW_POWER: models[1]},
        counter_ids=np.array([0, 1, 2]),
        granularity_factor=factor,
    )


@pytest.fixture(scope="module")
def collector():
    return TelemetryCollector()


@pytest.fixture(scope="module")
def trace():
    app = generate_application(
        "loop", "test",
        {"pointer_chase": 0.5, "compute_fp": 0.5}, seed=21)
    return app.workload(0).trace(160, 0)


class TestDualModePredictor:
    def test_missing_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            DualModePredictor("x", {Mode.HIGH_PERF: _ConstantModel(0.5)},
                              np.array([0]), 1)

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ConfigurationError):
            _predictor((_ConstantModel(0.5), _ConstantModel(0.5)),
                       factor=0)

    def test_mode_routing(self):
        pred = _predictor((_ConstantModel(0.9), _ConstantModel(0.1)))
        x = np.zeros((5, 3))
        assert np.all(pred.predict(x, Mode.HIGH_PERF) == 1)
        assert np.all(pred.predict(x, Mode.LOW_POWER) == 0)


class TestGatingController:
    def test_decisions_apply_with_horizon_delay(self):
        pred = _predictor((_ConstantModel(1.0), _ConstantModel(1.0)))
        controller = GatingController(pred, horizon=2)
        probs = {m: np.ones(10) for m in Mode}
        modes, _, _ = controller.schedule(probs, trace_seed=1)
        # First `horizon` intervals run in high-perf mode by default.
        assert modes[0] == 0 and modes[1] == 0
        assert np.all(modes[2:] == 1)

    def test_never_gate(self):
        pred = _predictor((_ConstantModel(0.0), _ConstantModel(0.0)))
        controller = GatingController(pred)
        modes, switch_cycles, counts = controller.schedule(
            {m: np.zeros(20) for m in Mode}, trace_seed=1)
        assert np.all(modes == 0)
        assert counts.sum() == 0

    def test_switch_costs_charged_on_transitions(self):
        pred = _predictor((_ConstantModel(1.0), _ConstantModel(0.0)))
        controller = GatingController(pred)
        # HP telemetry says gate, LP telemetry says ungate: oscillation.
        modes, switch_cycles, counts = controller.schedule(
            {Mode.HIGH_PERF: np.ones(30), Mode.LOW_POWER: np.zeros(30)},
            trace_seed=1)
        transitions = int(np.abs(np.diff(modes)).sum())
        assert counts.sum() == transitions > 0
        assert np.all(switch_cycles[counts.astype(bool)] > 0.0)

    def test_switch_cost_bounds(self):
        pred = _predictor((_ConstantModel(0.5), _ConstantModel(0.5)))
        controller = GatingController(pred)
        from repro import rng as rng_mod
        rng = rng_mod.stream(1, "cost")
        gate = controller.switch_cost(Mode.HIGH_PERF, Mode.LOW_POWER, rng)
        ungate = controller.switch_cost(Mode.LOW_POWER, Mode.HIGH_PERF,
                                        rng)
        assert 8.0 <= gate.cycles <= 20.0
        assert gate.transfer_uops <= 32
        assert ungate.cycles < gate.cycles

    def test_invalid_horizon_rejected(self):
        pred = _predictor((_ConstantModel(0.5), _ConstantModel(0.5)))
        with pytest.raises(ConfigurationError):
            GatingController(pred, horizon=0)


class TestAdaptiveCPU:
    def test_never_gating_matches_baseline(self, collector, trace):
        pred = _predictor((_ConstantModel(0.0), _ConstantModel(0.0)))
        result = AdaptiveCPU(pred, collector=collector).run(trace)
        assert result.residency == 0.0
        assert result.ppw_gain == pytest.approx(0.0, abs=1e-9)
        assert result.avg_performance == pytest.approx(1.0)

    def test_oracle_gating_gains_ppw_without_violations(self, collector,
                                                        trace):
        labels = gating_labels(trace, model=collector.model)
        pred = _predictor((_OracleModel(labels.labels),
                           _OracleModel(labels.labels)))
        result = AdaptiveCPU(pred, collector=collector).run(trace)
        assert result.ppw_gain > 0.05
        assert result.avg_performance > 0.95
        # Oracle predictions trail ground truth only by phase changes
        # inside the two-interval horizon.
        agreement = (result.predictions == result.labels).mean()
        assert agreement > 0.9

    def test_always_gating_degrades_performance(self, collector, trace):
        pred = _predictor((_ConstantModel(1.0), _ConstantModel(1.0)))
        result = AdaptiveCPU(pred, collector=collector).run(trace)
        assert result.residency > 0.9
        assert result.avg_performance < 1.0

    def test_coarse_granularity(self, collector, trace):
        pred = _predictor((_ConstantModel(1.0), _ConstantModel(1.0)),
                          factor=4)
        result = AdaptiveCPU(pred, collector=collector).run(trace)
        assert result.granularity == 40_000
        assert result.n_intervals == trace.n_intervals // 4

    def test_energy_accounting_consistent(self, collector, trace):
        pred = _predictor((_ConstantModel(0.0), _ConstantModel(0.0)))
        cpu = AdaptiveCPU(pred, collector=collector)
        result = cpu.run(trace)
        assert result.energy_j == pytest.approx(result.energy_baseline_j,
                                                rel=1e-9)

    def test_too_short_trace_rejected(self, collector):
        app = generate_application("tiny2", "t", {"balanced": 1.0}, seed=2)
        small = app.workload(0).trace(4, 0)
        pred = _predictor((_ConstantModel(0.5), _ConstantModel(0.5)),
                          factor=2)
        with pytest.raises(DatasetError):
            AdaptiveCPU(pred, collector=collector).run(small)


class TestSLAWindows:
    def test_no_degradation_no_violations(self):
        cycles = np.full(40, 100.0)
        acc = sla_window_violations(cycles, cycles, 8, 0.9)
        assert acc.n_windows == 5
        assert acc.n_violations == 0
        assert acc.meets_guarantee()

    def test_slow_window_flagged(self):
        baseline = np.full(16, 100.0)
        adaptive = baseline.copy()
        adaptive[:8] *= 1.5  # first window 33% slower
        acc = sla_window_violations(adaptive, baseline, 8, 0.9)
        assert acc.n_violations == 1
        assert acc.violation_rate == pytest.approx(0.5)

    def test_short_run_rejected(self):
        with pytest.raises(DatasetError):
            sla_window_violations(np.ones(3), np.ones(3), 8, 0.9)

    def test_misaligned_rejected(self):
        with pytest.raises(DatasetError):
            sla_window_violations(np.ones(8), np.ones(9), 4, 0.9)
