"""Tests for the observability layer (``repro.obs``).

The contract: metrics and spans *observe* — they never change results.
Worker-side observations ship home through the chunk-result sidecar,
so a parallel run's merged registry matches a serial run's registry
exactly, and spans recorded inside process-pool workers appear in the
parent's trace with their worker pids intact. Disabled, the tracer
costs one branch and allocates nothing.
"""

import json
import multiprocessing
import time

import pytest

from repro.config import FAULT_SPEC_ENV_VAR, TRACE_ENV_VAR
from repro.errors import DatasetError
from repro.exec import EXEC_STATS, ParallelMap, close_pools
from repro.exec import parallel as parallel_mod
from repro.obs import (METRICS, Metrics, from_chrome_trace, render_report,
                       to_chrome_trace, tracer)
from repro.obs.export import export_trace_file
from repro.obs.tracer import validate_trace


def _double(i):
    return i * 2


def _bump_and_double(i):
    EXEC_STATS.incr("obs_test.work")
    return i * 2


def _spanned_double(i):
    with tracer.span("obs_test.item", item=i):
        return i * 2


@pytest.fixture(autouse=True)
def _quiet_tracer():
    """Every test starts and ends with the tracer off and drained."""
    tracer.disable()
    tracer.reset()
    yield
    tracer.disable()
    tracer.reset()


# ---------------------------------------------------------------------
# Metrics registry.
# ---------------------------------------------------------------------
class TestMetrics:
    def test_counters_gauges_histograms(self):
        m = Metrics()
        m.incr("c", 3)
        m.incr("c")
        m.gauge_add("g", 2)
        m.gauge_add("g", -1)
        m.observe("h", 10.0)
        m.observe("h", 30.0)
        assert m.count("c") == 4
        assert m.gauge("g") == 1
        snap = m.snapshot()
        assert snap["gauges"]["g"] == 1
        h = snap["histograms"]["h"]
        assert (h["count"], h["min"], h["max"]) == (2, 10.0, 30.0)
        assert h["mean"] == 20.0

    def test_delta_contains_only_changes_since_mark(self):
        m = Metrics()
        m.incr("before")
        mark = m.mark()
        m.incr("after", 2)
        m.observe("h", 5.0)
        with m.stage("s"):
            pass
        delta = m.delta(mark)
        assert delta["counters"] == {"after": 2}
        assert "before" not in delta["counters"]
        assert delta["hists"]["h"]["count"] == 1
        assert delta["stages"]["s"]["calls"] == 1

    def test_merge_folds_a_foreign_delta(self):
        m = Metrics()
        delta = {
            "pid": -1,  # never equals os.getpid()
            "stages": {"s": {"calls": 2, "wall_s": 1.0, "busy_s": 0.5,
                             "workers": 1, "capacity_s": 1.0}},
            "counters": {"c": 7},
            "hists": {"h": {"count": 2, "total": 6.0, "min": 1.0,
                            "max": 5.0}},
        }
        assert m.merge(delta) is True
        assert m.count("c") == 7
        assert m.snapshot()["stages"]["s"]["calls"] == 2
        assert m.snapshot()["histograms"]["h"]["max"] == 5.0

    def test_merge_refuses_same_pid_delta(self):
        """A thread 'worker' shares the registry; merging its delta
        would double-count every observation."""
        import os
        m = Metrics()
        m.incr("c")
        delta = m.delta(m.mark())
        delta["pid"] = os.getpid()
        delta["counters"] = {"c": 1}
        assert m.merge(delta) is False
        assert m.count("c") == 1

    def test_worker_merge_equals_serial_bit_for_bit(self):
        """The headline invariant: counters bumped inside process-pool
        workers arrive in the parent exactly as a serial run would
        have recorded them."""
        close_pools()
        items = list(range(12))
        serial_before = EXEC_STATS.count("obs_test.work")
        serial = ParallelMap(backend="serial").map(
            _bump_and_double, items, stage="obs_serial")
        serial_delta = EXEC_STATS.count("obs_test.work") - serial_before

        par_before = EXEC_STATS.count("obs_test.work")
        merges_before = EXEC_STATS.count("obs.worker_merges")
        par = ParallelMap(backend="process", n_workers=2,
                          chunk_size=3).map(
            _bump_and_double, items, stage="obs_process")
        par_delta = EXEC_STATS.count("obs_test.work") - par_before

        assert par == serial
        assert par_delta == serial_delta == len(items)
        assert EXEC_STATS.count("obs.worker_merges") > merges_before
        close_pools()

    def test_report_mentions_gauges_and_histograms(self):
        m = Metrics()
        m.gauge_add("g", 1)
        m.observe("h", 2.0)
        text = m.report()
        assert "gauges:" in text and "histograms:" in text


# ---------------------------------------------------------------------
# Tracer.
# ---------------------------------------------------------------------
class TestTracerDisabled:
    def test_disabled_span_is_the_shared_singleton(self):
        assert not tracer.enabled()
        a = tracer.span("x", foo=1)
        b = tracer.span("y")
        assert a is b  # zero-allocation fast path

    def test_disabled_records_nothing(self):
        with tracer.span("x"):
            with tracer.span("y"):
                pass
        assert tracer.spans_snapshot() == []

    def test_disabled_trace_writes_no_file(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        out = tmp_path / "t.json"
        with tracer.trace("run", path=str(out)):
            pass
        assert not out.exists()


class TestTracerEnabled:
    def test_span_nesting_links_parents(self):
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {s["name"]: s for s in tracer.spans_snapshot()}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None

    def test_thread_backend_spans_nest_per_thread(self):
        close_pools()
        tracer.enable()
        pmap = ParallelMap(backend="thread", n_workers=2, chunk_size=2)
        out = pmap.map(_spanned_double, range(8), stage="obs_tspan")
        assert out == [i * 2 for i in range(8)]
        spans = tracer.spans_snapshot()
        items = [s for s in spans if s["name"] == "obs_test.item"]
        chunks = {s["id"]: s for s in spans if s["name"] == "exec.chunk"}
        assert len(items) == 8
        # Every item span hangs off the exec.chunk span of its thread.
        assert all(s["parent"] in chunks for s in items)
        close_pools()

    def test_attrs_and_set(self):
        tracer.enable()
        with tracer.span("s", a=1) as sp:
            sp.set(b=2)
        [span] = tracer.spans_snapshot()
        assert span["attrs"] == {"a": 1, "b": 2}

    def test_trace_writes_valid_document(self, tmp_path, monkeypatch):
        out = tmp_path / "trace.json"
        monkeypatch.setenv(TRACE_ENV_VAR, str(out))
        with tracer.trace("unit.run"):
            with tracer.span("step", k=1):
                pass
        doc = json.loads(out.read_text())
        assert validate_trace(doc) == []
        assert doc["run"] == "unit.run"
        assert {s["name"] for s in doc["spans"]} == {"unit.run", "step"}
        assert tracer.last_trace_path() == str(out)

    def test_validate_rejects_corrupt_documents(self):
        assert validate_trace([]) != []
        assert any("schema" in p for p in validate_trace({"schema": 99}))
        doc = {"schema": 1, "run": "r", "pid": 1, "started_unix": 0.0,
               "duration_s": 0.0, "dropped_spans": 0, "metrics": {},
               "spans": [{"name": "s", "id": "1:1", "parent": "1:999",
                          "pid": 1, "tid": 1, "start_s": 0.0,
                          "dur_s": -1.0, "attrs": {}}]}
        problems = validate_trace(doc)
        assert any("negative duration" in p for p in problems)
        assert any("does not resolve" in p for p in problems)

    def test_worker_spans_absorbed_with_worker_pid(self, tmp_path,
                                                   monkeypatch):
        """Spans opened inside process-pool workers ride the sidecar
        home and land in the parent's buffer under the worker's pid."""
        import os
        close_pools()  # fresh pools must fork with REPRO_TRACE set
        out = tmp_path / "t.json"
        monkeypatch.setenv(TRACE_ENV_VAR, str(out))
        tracer.refresh()
        pmap = ParallelMap(backend="process", n_workers=2, chunk_size=2)
        result = pmap.map(_spanned_double, range(8), stage="obs_pspan")
        assert result == [i * 2 for i in range(8)]
        items = [s for s in tracer.spans_snapshot()
                 if s["name"] == "obs_test.item"]
        assert len(items) == 8
        worker_pids = {s["pid"] for s in items}
        assert os.getpid() not in worker_pids
        # ids are "<pid>:<seq>", so worker ids can never collide with
        # parent ids even though both counters start at 1.
        assert all(s["id"].startswith(f"{s['pid']}:") for s in items)
        close_pools()


class TestSpanSampling:
    """Above half-capacity the tracer keeps every Nth span instead of
    truncating the head; the policy is counter-based so it never
    consumes randomness or changes results."""

    def test_tail_kept_by_deterministic_sampling(self, monkeypatch):
        monkeypatch.setattr(tracer, "MAX_SPANS", 40)
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "4")
        tracer.refresh()
        tracer.enable()
        for i in range(200):
            with tracer.span("s", i=i):
                pass
        # 20 verbatim below half-full, then every 4th of the next 80
        # admissions (20 kept, 60 sampled out) fills the buffer; the
        # final 100 hit the hard cap.
        assert len(tracer.spans_snapshot()) == 40
        stats = tracer.sample_stats()
        assert stats["sample_rate"] == 4
        assert stats["sampled_out"] == 60
        assert stats["dropped"] == 100
        monkeypatch.delenv("REPRO_TRACE_SAMPLE")
        tracer.refresh()

    def test_rate_one_restores_drop_at_cap(self, monkeypatch):
        monkeypatch.setattr(tracer, "MAX_SPANS", 40)
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "1")
        tracer.refresh()
        tracer.enable()
        for i in range(60):
            with tracer.span("s", i=i):
                pass
        assert len(tracer.spans_snapshot()) == 40
        stats = tracer.sample_stats()
        assert stats["sampled_out"] == 0
        assert stats["dropped"] == 20
        monkeypatch.delenv("REPRO_TRACE_SAMPLE")
        tracer.refresh()

    def test_trace_doc_records_sampling_fields(self, tmp_path,
                                               monkeypatch):
        out = tmp_path / "t.json"
        monkeypatch.setenv(TRACE_ENV_VAR, str(out))
        with tracer.trace("unit.sample"):
            pass
        doc = json.loads(out.read_text())
        assert validate_trace(doc) == []
        assert doc["sampled_spans"] == 0
        assert doc["sample_rate"] == tracer.DEFAULT_SAMPLE_RATE


class TestTracedRunsAreBitIdentical:
    def test_traced_equals_untraced(self, tmp_path, monkeypatch):
        close_pools()
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        tracer.refresh()
        plain = ParallelMap(backend="process", n_workers=2,
                            chunk_size=3).map(
            _double, range(10), stage="obs_plain")
        close_pools()
        monkeypatch.setenv(TRACE_ENV_VAR, str(tmp_path / "t.json"))
        tracer.refresh()
        with tracer.trace("bit.identity"):
            traced = ParallelMap(backend="process", n_workers=2,
                                 chunk_size=3).map(
                _double, range(10), stage="obs_traced")
        assert traced == plain
        close_pools()


# ---------------------------------------------------------------------
# Pool hygiene: the pools_open gauge and the degradation ladder.
# ---------------------------------------------------------------------
class TestPoolGauge:
    def test_ladder_leaks_no_pool(self, monkeypatch):
        """A process pool rebuilt once and then degraded to threads
        must be fully drained by close_pools: the pools_open gauge
        returns to zero and no child processes survive."""
        close_pools()
        assert METRICS.gauge("parallel.pools_open") == 0
        monkeypatch.setenv(FAULT_SPEC_ENV_VAR, "seed=0,crash=1.0")
        pmap = ParallelMap(backend="process", n_workers=2,
                           chunk_size=3, retries=2)
        degrades = EXEC_STATS.count("parallel.degrade_thread")
        assert pmap.map(_double, range(10),
                        stage="obs_ladder") == [i * 2 for i in range(10)]
        assert EXEC_STATS.count("parallel.degrade_thread") == degrades + 1
        monkeypatch.delenv(FAULT_SPEC_ENV_VAR)
        close_pools()
        assert METRICS.gauge("parallel.pools_open") == 0
        assert not parallel_mod._POOLS
        assert not parallel_mod._DISCARDED_POOLS
        # Children from earlier tests' poisoned pools (e.g. the shm
        # hang test's fault-injected workers) can still be mid-exit;
        # give the reaper a bounded moment instead of racing it.
        deadline = time.perf_counter() + 10.0
        while (multiprocessing.active_children()
               and time.perf_counter() < deadline):
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    def test_close_pools_is_idempotent(self):
        close_pools()
        baseline = METRICS.gauge("parallel.pools_open")
        assert baseline == 0
        close_pools()  # second close must not decrement anything
        assert METRICS.gauge("parallel.pools_open") == 0


# ---------------------------------------------------------------------
# Chrome trace export.
# ---------------------------------------------------------------------
class TestChromeExport:
    def _doc(self, tmp_path, monkeypatch):
        out = tmp_path / "trace.json"
        monkeypatch.setenv(TRACE_ENV_VAR, str(out))
        with tracer.trace("export.run"):
            with tracer.span("outer", k=1):
                with tracer.span("inner", label="x"):
                    pass
        return out, json.loads(out.read_text())

    def test_round_trip_is_lossless(self, tmp_path, monkeypatch):
        _, doc = self._doc(tmp_path, monkeypatch)
        chrome = to_chrome_trace(doc)
        assert chrome["displayTimeUnit"] == "ms"
        assert chrome["otherData"]["run"] == "export.run"
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert meta and all(e["name"] == "process_name" for e in meta)
        spans = from_chrome_trace(chrome)
        assert len(spans) == len(doc["spans"])
        for got, want in zip(spans, doc["spans"]):
            for field in ("name", "id", "parent", "pid", "tid", "attrs"):
                assert got[field] == want[field], field
            # Timestamps pass through a seconds -> µs -> seconds
            # conversion; everything else must survive exactly.
            assert got["start_s"] == pytest.approx(want["start_s"],
                                                   abs=1e-9)
            assert got["dur_s"] == pytest.approx(want["dur_s"], abs=1e-9)

    def test_invalid_document_rejected(self):
        with pytest.raises(DatasetError, match="not a valid obs trace"):
            to_chrome_trace({"schema": 99})

    def test_export_trace_file(self, tmp_path, monkeypatch):
        src, doc = self._doc(tmp_path, monkeypatch)
        dst = tmp_path / "trace.chrome.json"
        info = export_trace_file(str(src), str(dst))
        assert info["run"] == "export.run"
        assert info["spans"] == len(doc["spans"])
        chrome = json.loads(dst.read_text())
        assert len(chrome["traceEvents"]) == info["events"]
        assert ({s["name"] for s in from_chrome_trace(chrome)}
                == {s["name"] for s in doc["spans"]})


# ---------------------------------------------------------------------
# Report.
# ---------------------------------------------------------------------
class TestRenderReport:
    def test_report_renders_all_sections(self):
        m = Metrics()
        with m.stage("stage_a"):
            pass
        m.incr("stage_a.items", 100)
        m.incr("simcache.hit", 3)
        m.incr("simcache.miss", 1)
        m.incr("train.payload_tasks", 2)
        m.incr("train.payload_bytes", 1024)
        m.incr("parallel.pool_create", 1)
        m.gauge_add("parallel.pools_open", 1)
        m.incr("parallel.retries", 2)
        m.observe("adaptive_infer.batch_rows", 512)
        m.incr("obs.worker_merges", 4)
        text = render_report(m)
        assert "per-stage profile" in text
        assert "stage_a" in text
        assert "75.0%" in text  # simcache hit ratio
        assert "512 B/task" in text
        assert "open now 1" in text
        assert "parallel.retries" in text
        assert "batch shapes" in text
        assert "worker metric deltas merged: 4" in text

    def test_empty_registry_reports_nothing_recorded(self):
        assert "(nothing recorded)" in render_report(Metrics())
