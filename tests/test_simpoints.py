"""Tests for SimPoint-style region selection."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.workloads.generator import generate_application
from repro.workloads.simpoints import (
    bbv_matrix,
    kmeans,
    select_simpoints,
)


def make_trace(n=400, seed=3):
    app = generate_application(
        "sp", "test", {"pointer_chase": 0.5, "compute_fp": 0.5},
        seed=seed)
    return app.workload(0).trace(n, 0)


class TestBBV:
    def test_rows_are_frequencies(self):
        bbvs = bbv_matrix(make_trace(), window=10)
        assert np.allclose(bbvs.sum(axis=1), 1.0)
        assert np.all(bbvs >= 0.0)

    def test_region_count(self):
        bbvs = bbv_matrix(make_trace(405), window=10)
        assert bbvs.shape[0] == 40

    def test_too_short_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            bbv_matrix(make_trace(5), window=10)

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            bbv_matrix(make_trace(), window=0)

    def test_deterministic(self):
        a = bbv_matrix(make_trace(), window=10)
        b = bbv_matrix(make_trace(), window=10)
        assert np.array_equal(a, b)


class TestKMeans:
    def test_recovers_separated_clusters(self):
        rng = rng_mod.stream(1, "km")
        a = rng.normal(0.0, 0.1, (50, 3))
        b = rng.normal(5.0, 0.1, (40, 3))
        data = np.vstack([a, b])
        _, assign = kmeans(data, 2, rng_mod.stream(2, "km"))
        # Each true cluster maps to exactly one k-means cluster.
        assert len(set(assign[:50])) == 1
        assert len(set(assign[50:])) == 1
        assert assign[0] != assign[-1]

    def test_k_bounds(self):
        data = np.zeros((5, 2))
        with pytest.raises(ConfigurationError):
            kmeans(data, 0, rng_mod.stream(1, "km"))
        with pytest.raises(ConfigurationError):
            kmeans(data, 6, rng_mod.stream(1, "km"))

    def test_assignments_in_range(self):
        data = rng_mod.stream(3, "km").normal(size=(30, 4))
        _, assign = kmeans(data, 3, rng_mod.stream(4, "km"))
        assert assign.min() >= 0
        assert assign.max() < 3


class TestSelectSimPoints:
    def test_weights_sum_to_one(self):
        points = select_simpoints(make_trace(), k=4, window=10)
        assert sum(p.weight for p in points) == pytest.approx(1.0)

    def test_regions_sorted_and_within_trace(self):
        trace = make_trace(390)
        points = select_simpoints(trace, k=3, window=10)
        starts = [p.start_interval for p in points]
        assert starts == sorted(starts)
        for p in points:
            assert 0 <= p.start_interval < p.end_interval <= 390

    def test_k_capped_by_regions(self):
        points = select_simpoints(make_trace(30), k=10, window=10)
        assert len(points) <= 3

    def test_deterministic(self):
        a = select_simpoints(make_trace(), k=4)
        b = select_simpoints(make_trace(), k=4)
        assert a == b
