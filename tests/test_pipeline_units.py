"""Unit tests for pipeline internals not covered by the integration
tests: the calibration split, SRCH's label floor, and counter-set
plumbing."""

import dataclasses

import numpy as np
import pytest

from repro.config import DEFAULT_SLA
from repro.core.pipeline import (
    GRANULARITY_FACTORS,
    SRCHEstimator,
    _calibration_split,
    select_counters,
    train_dual_predictor,
)
from repro.data.builders import dataset_from_traces
from repro.data.dataset import GatingDataset
from repro.ml.forest import RandomForestClassifier
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application


@pytest.fixture(scope="module")
def collector():
    return TelemetryCollector()


@pytest.fixture(scope="module")
def traces():
    apps = [generate_application(
        f"pu{i}", "t", {"pointer_chase": 0.5, "compute_fp": 0.5},
        seed=70 + i) for i in range(8)]
    return [a.workload(w).trace(60, 0) for a in apps for w in range(2)]


def _dataset(rows_per_app=10, n_apps=6):
    rng = np.random.default_rng(0)
    n = rows_per_app * n_apps
    return GatingDataset(
        x=rng.random((n, 3)),
        y=rng.integers(0, 2, n),
        groups=np.repeat([f"a{i}" for i in range(n_apps)], rows_per_app),
        workloads=np.repeat([f"w{i}" for i in range(n_apps)],
                            rows_per_app),
        traces=np.repeat([f"t{i}" for i in range(n_apps)], rows_per_app),
        mode=Mode.HIGH_PERF,
        counter_ids=np.arange(3),
        granularity=10_000,
        sla_floor=0.9,
    )


class TestCalibrationSplit:
    def test_apps_disjoint(self):
        ds = _dataset()
        fit, cal = _calibration_split(ds, 0.3, seed=1)
        assert not set(np.unique(fit.groups)) & set(np.unique(cal.groups))
        assert fit.n_samples + cal.n_samples == ds.n_samples

    def test_at_least_one_calibration_app(self):
        ds = _dataset(n_apps=3)
        _fit, cal = _calibration_split(ds, 0.05, seed=1)
        assert cal.n_applications >= 1

    def test_deterministic(self):
        ds = _dataset()
        a = _calibration_split(ds, 0.25, seed=4)[1]
        b = _calibration_split(ds, 0.25, seed=4)[1]
        assert np.array_equal(a.groups, b.groups)


class TestGranularityTable:
    def test_matches_paper_placements(self):
        assert GRANULARITY_FACTORS == {
            "best_rf": 4, "best_mlp": 5, "charstar": 2, "srch": 4,
            "srch_coarse": 20,
        }


class TestSelectCounters:
    def test_returns_requested_count(self, collector, traces):
        counters = select_counters(traces[:8], collector, r=6)
        assert len(counters) == 6
        assert len(set(counters)) == 6

    def test_prefix_property_through_pipeline(self, collector, traces):
        r8 = select_counters(traces[:8], collector, r=8)
        r6 = select_counters(traces[:8], collector, r=6)
        assert r8[:6] == r6


class TestSRCHEstimator:
    def test_threshold_attribute(self):
        model = SRCHEstimator()
        assert model.decision_threshold == 0.5

    def test_uses_width_buckets(self):
        assert SRCHEstimator().encoder.strategy == "width"

    def test_unweighted_logistic(self):
        assert SRCHEstimator().logreg.class_weight is None


class TestTrainDualPredictor:
    def test_counter_mismatch_rejected(self, collector, traces):
        from repro.errors import ConfigurationError
        ds_a = dataset_from_traces(traces[:4], [0, 1],
                                   collector=collector)
        ds_b = dataset_from_traces(traces[:4], [2, 3],
                                   collector=collector)
        mismatched = {Mode.HIGH_PERF: ds_a[Mode.HIGH_PERF],
                      Mode.LOW_POWER: ds_b[Mode.LOW_POWER]}

        def factory(mode):
            return RandomForestClassifier(2, 3, seed=0)

        with pytest.raises(ConfigurationError):
            train_dual_predictor("bad", factory, mismatched, 1)

    def test_baseline_skips_tuning(self, collector, traces):
        datasets = dataset_from_traces(traces, [0, 1, 2],
                                       collector=collector)

        def factory(mode):
            return RandomForestClassifier(2, 3, seed=0)

        predictor = train_dual_predictor("raw", factory, datasets, 1,
                                         rsv_budget=None)
        assert all(t == 0.5 for t in predictor.thresholds.values())

    def test_relaxed_sla_labels_gate_more(self, collector, traces):
        strict = dataset_from_traces(
            traces, [0], DEFAULT_SLA, collector)[Mode.LOW_POWER]
        relaxed_sla = dataclasses.replace(DEFAULT_SLA,
                                          performance_floor=0.7)
        relaxed = dataset_from_traces(
            traces, [0], relaxed_sla, collector)[Mode.LOW_POWER]
        assert relaxed.positive_rate >= strict.positive_rate
        assert relaxed.sla_floor == pytest.approx(0.7)


def _rf_factory(mode):
    """Module-level (picklable) factory for the arena fan-out test."""
    return RandomForestClassifier(3, 3, seed=11)


class TestArenaTrainFanOut:
    def test_arena_round_trip_preserves_datasets(self):
        from repro.core.pipeline import (
            _build_train_arena,
            _datasets_from_arena,
        )
        datasets = {m: dataclasses.replace(_dataset(), mode=m)
                    for m in Mode}
        arena = _build_train_arena(_rf_factory, datasets)
        try:
            back = _datasets_from_arena(arena)
            for mode, ds in datasets.items():
                twin = back[mode]
                assert np.array_equal(twin.x, ds.x)
                assert np.array_equal(twin.y, ds.y)
                # String columns ride the data region as unicode views.
                assert np.array_equal(twin.groups, ds.groups)
                assert np.array_equal(twin.traces, ds.traces)
                assert twin.granularity == ds.granularity
                assert twin.sla_floor == ds.sla_floor
        finally:
            arena.close()

    def test_process_backend_matches_serial_via_arena(self, monkeypatch):
        from repro.exec import EXEC_STATS, ParallelMap, close_pools
        monkeypatch.setenv("REPRO_EXEC_ARENA", "1")
        datasets = {m: dataclasses.replace(_dataset(rows_per_app=20),
                                           mode=m)
                    for m in Mode}
        serial = train_dual_predictor(
            "t", _rf_factory, datasets, 1, n_candidates=3, seed=5,
            pmap=ParallelMap(backend="serial"))
        close_pools()
        builds = EXEC_STATS.count("arena.builds")
        tasks = EXEC_STATS.count("train_candidates.payload_tasks")
        parallel = train_dual_predictor(
            "t", _rf_factory, datasets, 1, n_candidates=3, seed=5,
            pmap=ParallelMap(backend="process", n_workers=2))
        # The shared matrices rode the arena, not the task pickles.
        assert EXEC_STATS.count("arena.builds") == builds + 1
        assert (EXEC_STATS.count("train_candidates.payload_tasks")
                > tasks)
        x_test = np.random.default_rng(1).random((30, 3))
        for mode in Mode:
            assert np.array_equal(
                serial.models[mode].predict_proba(x_test),
                parallel.models[mode].predict_proba(x_test))
        close_pools()
