"""Tests for machine/microcontroller/SLA configuration and the typed
:class:`~repro.config.ExecConfig` runtime-knob API."""

import argparse

import pytest

from repro.config import (
    DEFAULT_SLA,
    EXEC_ENV_VARS,
    ExecConfig,
    MachineConfig,
    MicrocontrollerConfig,
    SLAConfig,
    SUPPORTED_GRANULARITIES,
    active_exec_config,
    cycle_kernel,
    exec_backend,
    exec_retries,
    exec_shard_size,
    exec_shmres_enabled,
    experiment_scale,
    experiment_seed,
    fault_spec,
    interval_lru_size,
    simcache_dir,
    trace_sample_rate,
    trace_spec,
)
from repro.errors import ConfigurationError


class TestMachineConfig:
    def test_width_high_perf_is_both_clusters(self):
        machine = MachineConfig()
        assert machine.width_high_perf == 8
        assert machine.width_low_power == 4

    def test_peak_mips_matches_table3_header(self):
        # Table 3: CPU: 2.0 GHz, 8-wide, 16,000 MIPS.
        assert MachineConfig().peak_mips == pytest.approx(16_000.0)

    def test_machine_is_frozen(self):
        with pytest.raises(Exception):
            MachineConfig().rob_entries = 1


class TestMicrocontroller:
    def test_mips_matches_paper(self):
        # 500 MHz, 1-wide => 500 MIPS.
        assert MicrocontrollerConfig().mips == pytest.approx(500.0)

    @pytest.mark.parametrize("granularity,budget", [
        (10_000, 156), (20_000, 312), (30_000, 468),
        (40_000, 625), (50_000, 781), (60_000, 937), (100_000, 1562),
    ])
    def test_ops_budget_matches_table3(self, granularity, budget):
        uc = MicrocontrollerConfig()
        assert uc.ops_budget(granularity) == budget

    def test_supported_granularities_cover_10k_to_100k(self):
        assert SUPPORTED_GRANULARITIES[0] == 10_000
        assert SUPPORTED_GRANULARITIES[-1] == 100_000
        assert len(SUPPORTED_GRANULARITIES) == 10


class TestSLAConfig:
    def test_default_sla_matches_section_3_1(self):
        assert DEFAULT_SLA.performance_floor == pytest.approx(0.90)
        assert DEFAULT_SLA.window_ms == pytest.approx(1.0)
        assert DEFAULT_SLA.guarantee == pytest.approx(0.99)

    def test_window_predictions_matches_paper_example(self):
        # 16B inst/s * 1 ms / 10k inst = 1600 predictions.
        w = DEFAULT_SLA.window_predictions(MachineConfig(), 10_000)
        assert w == 1600

    @pytest.mark.parametrize("floor", [0.0, -0.1, 1.5])
    def test_invalid_floor_rejected(self, floor):
        with pytest.raises(ValueError):
            SLAConfig(performance_floor=floor)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SLAConfig(window_ms=0.0)


class TestEnvironmentKnobs:
    def test_default_scale_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert experiment_scale() == pytest.approx(1.0)

    def test_scale_env_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert experiment_scale() == pytest.approx(2.5)

    def test_negative_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            experiment_scale()

    def test_garbage_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(ValueError):
            experiment_scale()

    def test_seed_env_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "123")
        assert experiment_seed() == 123


def _clear_exec_env(monkeypatch):
    for var in EXEC_ENV_VARS:
        monkeypatch.delenv(var, raising=False)


class TestExecConfig:
    def test_defaults_match_historical_behavior(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        config = ExecConfig.from_env()
        assert config == ExecConfig()
        assert config.backend == "serial"
        assert config.workers is None
        assert config.pool == "persistent"
        assert config.arena is True
        assert config.chunk is None
        assert config.retries == 2
        assert config.timeout is None
        assert config.simcache_verify is True
        assert config.cycle_kernel == "soa"
        assert config.batch_sim is True
        assert config.trace is None
        assert config.shmres is True
        assert config.shard is None
        assert config.trace_sample == 8

    def test_every_knob_parses_from_env(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "auto")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "3")
        monkeypatch.setenv("REPRO_EXEC_POOL", "fresh")
        monkeypatch.setenv("REPRO_EXEC_ARENA", "0")
        monkeypatch.setenv("REPRO_EXEC_CHUNK", "16")
        monkeypatch.setenv("REPRO_EXEC_RETRIES", "5")
        monkeypatch.setenv("REPRO_EXEC_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_SIMCACHE_DIR", "/tmp/sc")
        monkeypatch.setenv("REPRO_SIMCACHE_VERIFY", "0")
        monkeypatch.setenv("REPRO_FAULT_SPEC", "seed=1,crash=0.1")
        monkeypatch.setenv("REPRO_CYCLE_KERNEL", "reference")
        monkeypatch.setenv("REPRO_BATCH_SIM", "0")
        monkeypatch.setenv("REPRO_INTERVAL_LRU", "64")
        monkeypatch.setenv("REPRO_TRACE", "out.json")
        monkeypatch.setenv("REPRO_EXEC_SHMRES", "0")
        monkeypatch.setenv("REPRO_EXEC_SHARD", "5000")
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "4")
        config = ExecConfig.from_env()
        assert config == ExecConfig(
            backend="auto", workers=3, pool="fresh", arena=False,
            chunk=16, retries=5, timeout=2.5, simcache_dir="/tmp/sc",
            simcache_verify=False, fault_spec="seed=1,crash=0.1",
            cycle_kernel="reference", batch_sim=False, interval_lru=64,
            trace="out.json", shmres=False, shard=5000, trace_sample=4)

    def test_timeout_zero_means_off(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        monkeypatch.setenv("REPRO_EXEC_TIMEOUT", "0")
        assert ExecConfig.from_env().timeout is None

    def test_trace_zero_means_off(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert ExecConfig.from_env().trace is None

    def test_shard_empty_or_zero_means_unsharded(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        assert exec_shard_size() is None
        monkeypatch.setenv("REPRO_EXEC_SHARD", "")
        assert ExecConfig.from_env().shard is None
        monkeypatch.setenv("REPRO_EXEC_SHARD", "0")
        assert ExecConfig.from_env().shard is None
        monkeypatch.setenv("REPRO_EXEC_SHARD", "250")
        assert exec_shard_size() == 250

    def test_shard_invalid_rejected(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        monkeypatch.setenv("REPRO_EXEC_SHARD", "many")
        with pytest.raises(ValueError):
            ExecConfig.from_env()
        monkeypatch.setenv("REPRO_EXEC_SHARD", "-4")
        with pytest.raises(ValueError):
            ExecConfig.from_env()

    def test_shmres_env_parsed(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        assert exec_shmres_enabled() is True
        monkeypatch.setenv("REPRO_EXEC_SHMRES", "0")
        assert exec_shmres_enabled() is False

    def test_trace_sample_env_parsed(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        assert trace_sample_rate() == 8
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "16")
        assert trace_sample_rate() == 16

    def test_trace_sample_invalid_rejected(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0")
        with pytest.raises(ValueError):
            ExecConfig.from_env()
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "often")
        with pytest.raises(ValueError):
            ExecConfig.from_env()

    def test_serve_knobs_parse_from_env(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        config = ExecConfig.from_env()
        assert config.serve_batch_max == 8
        assert config.serve_batch_wait_us == 2000
        assert config.serve_queue_bound == 64
        monkeypatch.setenv("REPRO_SERVE_BATCH_MAX", "16")
        monkeypatch.setenv("REPRO_SERVE_BATCH_WAIT_US", "0")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_BOUND", "128")
        config = ExecConfig.from_env()
        assert config.serve_batch_max == 16
        assert config.serve_batch_wait_us == 0
        assert config.serve_queue_bound == 128

    def test_serve_knobs_invalid_rejected(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        monkeypatch.setenv("REPRO_SERVE_BATCH_MAX", "0")
        with pytest.raises(ValueError):
            ExecConfig.from_env()
        monkeypatch.delenv("REPRO_SERVE_BATCH_MAX")
        monkeypatch.setenv("REPRO_SERVE_BATCH_WAIT_US", "-1")
        with pytest.raises(ValueError):
            ExecConfig.from_env()
        monkeypatch.delenv("REPRO_SERVE_BATCH_WAIT_US")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_BOUND", "soon")
        with pytest.raises(ValueError):
            ExecConfig.from_env()

    def test_env_round_trip(self, monkeypatch):
        """env -> config -> to_env -> from_env is the identity."""
        _clear_exec_env(monkeypatch)
        original = ExecConfig(backend="process", workers=2, arena=False,
                              chunk=7, retries=1, timeout=0.5,
                              fault_spec="seed=9,crash=0.01",
                              cycle_kernel="reference", interval_lru=32,
                              trace="1", shmres=False, shard=3,
                              trace_sample=2, serve_batch_max=4,
                              serve_batch_wait_us=500,
                              serve_queue_bound=32)
        for var, value in original.to_env().items():
            if value is None:
                monkeypatch.delenv(var, raising=False)
            else:
                monkeypatch.setenv(var, value)
        assert ExecConfig.from_env() == original

    def test_memo_tracks_monkeypatched_env(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        assert ExecConfig.from_env().backend == "serial"
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "thread")
        assert ExecConfig.from_env().backend == "thread"

    def test_override_scopes_without_touching_env(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        import os
        with ExecConfig(backend="thread", retries=7).override():
            assert active_exec_config().backend == "thread"
            assert exec_backend() == "thread"
            assert exec_retries() == 7
            assert "REPRO_EXEC_BACKEND" not in os.environ
        assert exec_backend() == "serial"

    def test_overrides_nest(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        with ExecConfig(retries=5).override():
            with ExecConfig(retries=9).override():
                assert exec_retries() == 9
            assert exec_retries() == 5

    def test_accessor_shims_read_active_config(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        cfg = ExecConfig(simcache_dir="/tmp/x",
                         fault_spec="seed=2,crash=0.5",
                         cycle_kernel="reference", interval_lru=17,
                         trace="t.json")
        with cfg.override():
            assert simcache_dir() == "/tmp/x"
            assert fault_spec() == "seed=2,crash=0.5"
            assert cycle_kernel() == "reference"
            assert interval_lru_size() == 17
            assert trace_spec() == "t.json"

    def test_invalid_backend_is_configuration_error(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            ExecConfig(backend="gpu")
        _clear_exec_env(monkeypatch)
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "gpu")
        with pytest.raises(ConfigurationError):
            ExecConfig.from_env()

    @pytest.mark.parametrize("kwargs", [
        {"pool": "sometimes"},
        {"cycle_kernel": "vector9"},
        {"chunk": 0},
        {"retries": -1},
        {"timeout": -2.0},
        {"interval_lru": 0},
        {"serve_batch_max": 0},
        {"serve_batch_wait_us": -1},
        {"serve_queue_bound": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecConfig(**kwargs)

    def test_invalid_workers_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            ExecConfig(workers=0)

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            ExecConfig().backend = "thread"

    def test_from_cli_layers_flags_over_env(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        monkeypatch.setenv("REPRO_EXEC_RETRIES", "4")
        args = argparse.Namespace(
            exec_backend="process", exec_workers=2, exec_arena=0,
            exec_chunk=None, exec_retries=None, exec_timeout=0.0,
            fault_spec=None, trace="1")
        config = ExecConfig.from_cli(args)
        assert config.backend == "process"
        assert config.workers == 2
        assert config.arena is False
        assert config.retries == 4  # env survives an un-passed flag
        assert config.timeout is None  # 0 disables
        assert config.trace == "1"

    def test_from_cli_tolerates_foreign_namespaces(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        config = ExecConfig.from_cli(argparse.Namespace(model="best_rf"))
        assert config == ExecConfig()

    def test_apply_env_round_trips(self, monkeypatch):
        _clear_exec_env(monkeypatch)
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "8")  # will be cleared
        config = ExecConfig(backend="thread", timeout=1.5)
        config.apply_env()
        assert ExecConfig.from_env() == config
        import os
        assert "REPRO_EXEC_WORKERS" not in os.environ
