"""Tests for machine/microcontroller/SLA configuration."""

import pytest

from repro.config import (
    DEFAULT_SLA,
    MachineConfig,
    MicrocontrollerConfig,
    SLAConfig,
    SUPPORTED_GRANULARITIES,
    experiment_scale,
    experiment_seed,
)


class TestMachineConfig:
    def test_width_high_perf_is_both_clusters(self):
        machine = MachineConfig()
        assert machine.width_high_perf == 8
        assert machine.width_low_power == 4

    def test_peak_mips_matches_table3_header(self):
        # Table 3: CPU: 2.0 GHz, 8-wide, 16,000 MIPS.
        assert MachineConfig().peak_mips == pytest.approx(16_000.0)

    def test_machine_is_frozen(self):
        with pytest.raises(Exception):
            MachineConfig().rob_entries = 1


class TestMicrocontroller:
    def test_mips_matches_paper(self):
        # 500 MHz, 1-wide => 500 MIPS.
        assert MicrocontrollerConfig().mips == pytest.approx(500.0)

    @pytest.mark.parametrize("granularity,budget", [
        (10_000, 156), (20_000, 312), (30_000, 468),
        (40_000, 625), (50_000, 781), (60_000, 937), (100_000, 1562),
    ])
    def test_ops_budget_matches_table3(self, granularity, budget):
        uc = MicrocontrollerConfig()
        assert uc.ops_budget(granularity) == budget

    def test_supported_granularities_cover_10k_to_100k(self):
        assert SUPPORTED_GRANULARITIES[0] == 10_000
        assert SUPPORTED_GRANULARITIES[-1] == 100_000
        assert len(SUPPORTED_GRANULARITIES) == 10


class TestSLAConfig:
    def test_default_sla_matches_section_3_1(self):
        assert DEFAULT_SLA.performance_floor == pytest.approx(0.90)
        assert DEFAULT_SLA.window_ms == pytest.approx(1.0)
        assert DEFAULT_SLA.guarantee == pytest.approx(0.99)

    def test_window_predictions_matches_paper_example(self):
        # 16B inst/s * 1 ms / 10k inst = 1600 predictions.
        w = DEFAULT_SLA.window_predictions(MachineConfig(), 10_000)
        assert w == 1600

    @pytest.mark.parametrize("floor", [0.0, -0.1, 1.5])
    def test_invalid_floor_rejected(self, floor):
        with pytest.raises(ValueError):
            SLAConfig(performance_floor=floor)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SLAConfig(window_ms=0.0)


class TestEnvironmentKnobs:
    def test_default_scale_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert experiment_scale() == pytest.approx(1.0)

    def test_scale_env_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert experiment_scale() == pytest.approx(2.5)

    def test_negative_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            experiment_scale()

    def test_garbage_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(ValueError):
            experiment_scale()

    def test_seed_env_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "123")
        assert experiment_seed() == 123
