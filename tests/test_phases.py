"""Tests for the phase archetype library."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.workloads.phases import (
    PHASE_LIBRARY,
    PhaseInstance,
    archetype_names,
    archetypes_in_families,
    families,
    get_archetype,
    sample_phase_instance,
)


class TestLibrary:
    def test_library_is_reasonably_large(self):
        assert len(PHASE_LIBRARY) >= 40

    def test_names_unique(self):
        names = archetype_names()
        assert len(names) == len(set(names))

    def test_families_cover_expected_behaviours(self):
        fams = set(families())
        for family in ("compute_int", "compute_fp", "pointer_chase",
                       "bandwidth", "branchy", "frontend", "store_burst",
                       "balanced", "dep_chain", "media"):
            assert family in fams

    def test_get_archetype_roundtrip(self):
        for name in archetype_names():
            assert get_archetype(name).name == name

    def test_unknown_archetype_raises(self):
        with pytest.raises(KeyError):
            get_archetype("not_a_phase")

    def test_archetypes_in_families_filters(self):
        members = archetypes_in_families(["store_burst"])
        assert members
        assert all(m.family == "store_burst" for m in members)

    def test_store_burst_has_high_sq_pressure(self):
        for arch in archetypes_in_families(["store_burst"]):
            assert arch.center["sq_pressure"] >= 0.7

    def test_bandwidth_has_high_mlp(self):
        for arch in archetypes_in_families(["bandwidth"]):
            assert arch.center["mlp"] >= 5.0

    def test_pointer_chase_has_low_mlp_high_misses(self):
        for arch in archetypes_in_families(["pointer_chase"]):
            assert arch.center["mlp"] <= 2.0
            assert arch.center["l3_mpki"] >= 5.0


class TestSampling:
    def test_sampling_is_deterministic_per_stream(self):
        a = sample_phase_instance("gemm_tile", rng_mod.stream(1, "s"))
        b = sample_phase_instance("gemm_tile", rng_mod.stream(1, "s"))
        assert a == b

    def test_samples_jitter_between_streams(self):
        a = sample_phase_instance("gemm_tile", rng_mod.stream(1, "s1"))
        b = sample_phase_instance("gemm_tile", rng_mod.stream(1, "s2"))
        assert a.ilp != b.ilp

    def test_all_archetypes_sample_valid_instances(self):
        rng = rng_mod.stream(3, "validity")
        for arch in PHASE_LIBRARY:
            for _ in range(5):
                inst = arch.sample(rng)  # __post_init__ validates
                assert inst.family == arch.family

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           idx=st.integers(0, len(PHASE_LIBRARY) - 1))
    def test_sampled_instances_keep_invariants(self, seed, idx):
        inst = PHASE_LIBRARY[idx].sample(rng_mod.stream(seed, "hyp"))
        assert inst.ilp >= 1.0
        assert inst.mlp >= 1.0
        assert 0.0 <= inst.uopcache_hit_rate <= 1.0
        assert 0.0 <= inst.sq_pressure <= 1.0
        assert inst.l1d_mpki >= inst.l2_mpki >= inst.l3_mpki >= 0.0
        mix = (inst.frac_load + inst.frac_store + inst.frac_branch
               + inst.frac_fp)
        assert mix <= 1.0 + 1e-9
        assert inst.frac_int >= -1e-9


class TestPhaseInstanceValidation:
    def _kwargs(self, **overrides):
        base = dict(
            name="t", family="f", ilp=2.0, frac_load=0.2, frac_store=0.1,
            frac_branch=0.1, frac_fp=0.1, l1d_mpki=10.0, l2_mpki=5.0,
            l3_mpki=2.0, branch_mpki=1.0, icache_mpki=0.1,
            uopcache_hit_rate=0.9, itlb_mpki=0.1, dtlb_mpki=0.1,
            sq_pressure=0.1, mlp=2.0, dirty_frac=0.5, noise_scale=0.05,
        )
        base.update(overrides)
        return base

    def test_valid_instance_accepted(self):
        PhaseInstance(**self._kwargs())

    def test_ilp_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseInstance(**self._kwargs(ilp=0.5))

    def test_mix_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseInstance(**self._kwargs(frac_load=0.9, frac_fp=0.5))

    def test_non_nested_miss_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseInstance(**self._kwargs(l2_mpki=20.0))

    def test_unit_field_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseInstance(**self._kwargs(sq_pressure=1.5))
