"""Tests for the event-based power model."""

import numpy as np
import pytest

from repro.uarch.interval_model import IntervalModel
from repro.uarch.modes import Mode
from repro.uarch.power import PowerModel
from repro.workloads.categories import hdtr_corpus


@pytest.fixture(scope="module")
def sim():
    return IntervalModel()


@pytest.fixture(scope="module")
def power():
    return PowerModel()


@pytest.fixture(scope="module")
def trace():
    apps = hdtr_corpus(3, counts={"hpc_perf": 1, "web_productivity": 1})
    return apps[0].workload(0).trace(150, 0)


class TestStaticPower:
    def test_low_power_static_below_high_perf(self, power):
        assert (power.static_power_w(Mode.LOW_POWER)
                < power.static_power_w(Mode.HIGH_PERF))

    def test_gating_leaves_residual_leakage(self, power):
        lp = power.static_power_w(Mode.LOW_POWER)
        assert lp > power.uncore_static_w + power.cluster_static_w


class TestEnergy:
    def test_energy_positive(self, sim, power, trace):
        result = sim.simulate(trace, Mode.HIGH_PERF)
        energy = power.interval_energy_j(result)
        assert np.all(energy > 0.0)

    def test_breakdown_sums(self, sim, power, trace):
        result = sim.simulate(trace, Mode.HIGH_PERF)
        breakdown = power.breakdown(result)
        total = power.interval_energy_j(result).sum()
        assert breakdown.total_energy_j == pytest.approx(total)

    def test_average_power_in_cpu_range(self, sim, power, trace):
        result = sim.simulate(trace, Mode.HIGH_PERF)
        watts = power.average_power_w(result)
        assert 2.0 < watts < 30.0

    def test_low_power_mode_saves_about_35_percent(self, sim, power):
        """Section 3: low-power mode consumes ~35% less on average."""
        apps = hdtr_corpus(5, counts={
            "hpc_perf": 3, "cloud_security": 3, "web_productivity": 3,
            "multimedia": 3, "ai_analytics": 3, "games_rendering_ar": 3,
        })
        ratios = []
        for app in apps:
            tr = app.workload(0).trace(80, 0)
            hp = power.average_power_w(sim.simulate(tr, Mode.HIGH_PERF))
            lp = power.average_power_w(sim.simulate(tr, Mode.LOW_POWER))
            ratios.append(lp / hp)
        assert 0.55 < float(np.mean(ratios)) < 0.75

    def test_ppw_is_instructions_per_joule(self, sim, power, trace):
        result = sim.simulate(trace, Mode.HIGH_PERF)
        total_inst = result.n_intervals * result.interval_instructions
        expected = total_inst / power.interval_energy_j(result).sum()
        assert power.ppw(result) == pytest.approx(expected)

    def test_mixed_mode_energy_between_pure_modes(self, sim, power, trace):
        hp = sim.simulate(trace, Mode.HIGH_PERF)
        e_hp = power.interval_energy_j(hp).sum()
        half = np.zeros(hp.n_intervals)
        half[::2] = 1
        e_mixed = power.interval_energy_j(hp, modes=half).sum()
        # Same signals/cycles, but half the intervals billed at the
        # lower static power.
        assert e_mixed < e_hp

    def test_per_event_energy_counted(self, sim, power, trace):
        result = sim.simulate(trace, Mode.HIGH_PERF)
        silent = PowerModel(event_energy_nj={})
        e_static_only = silent.interval_energy_j(result).sum()
        e_full = power.interval_energy_j(result).sum()
        assert e_full > e_static_only
