"""Tests for the DVFS model and its interplay with cluster gating."""

import dataclasses

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.errors import ConfigurationError
from repro.uarch.dvfs import DVFSModel, OperatingPoint
from repro.uarch.interval_model import IntervalModel
from repro.uarch.modes import Mode
from repro.uarch.power import PowerModel
from repro.workloads.generator import generate_application


class TestVFCurve:
    def test_nominal_point(self):
        model = DVFSModel()
        assert model.voltage_for(2.0) == pytest.approx(1.0)

    def test_voltage_floors_at_vmin(self):
        model = DVFSModel(f_min_ghz=1.0, v_min=0.72)
        assert model.voltage_for(1.0) == pytest.approx(0.72)
        assert model.voltage_for(0.5) == pytest.approx(0.72)

    def test_monotone_between(self):
        model = DVFSModel()
        voltages = [model.voltage_for(f) for f in (1.0, 1.25, 1.5, 2.0)]
        assert voltages == sorted(voltages)

    def test_overclock_rejected(self):
        with pytest.raises(ConfigurationError):
            DVFSModel().voltage_for(3.0)

    def test_invalid_points_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            DVFSModel(f_min_ghz=3.0)


class TestScaledModels:
    def test_memory_latency_scales_with_frequency(self):
        model = DVFSModel()
        half = model.machine_at(1.0)
        assert half.memory_latency == pytest.approx(100, abs=2)
        assert half.l2_latency == MachineConfig().l2_latency

    def test_power_scales_quadratically_dynamic(self):
        model = DVFSModel()
        pm = model.power_model_at(1.0)
        base = PowerModel()
        v = model.voltage_for(1.0)
        assert pm.event_energy_nj["uops_retired"] == pytest.approx(
            base.event_energy_nj["uops_retired"] * v ** 2)
        assert pm.cluster_static_w == pytest.approx(
            base.cluster_static_w * v ** 2)


class TestGatingComplementsDVFS:
    def test_gating_still_saves_at_vmin(self):
        """Section 2.1's claim: at V_min, DVFS has no headroom left,
        but gating cluster 2 still cuts energy on gateable work."""
        dvfs = DVFSModel()
        app = generate_application(
            "dvfs", "test", {"pointer_chase": 0.7, "balanced": 0.3},
            seed=41)
        trace = app.workload(0).trace(100, 0)

        machine = dvfs.machine_at(dvfs.f_min_ghz)
        power = dvfs.power_model_at(dvfs.f_min_ghz, machine)
        sim = IntervalModel(machine)
        hp = sim.simulate(trace, Mode.HIGH_PERF)
        lp = sim.simulate(trace, Mode.LOW_POWER)
        e_hp = power.interval_energy_j(hp).sum()
        e_lp = power.interval_energy_j(lp).sum()
        # Memory-latency-bound work: gating at V_min saves energy.
        assert e_lp < e_hp * 0.92

    def test_vmin_energy_below_nominal(self):
        dvfs = DVFSModel()
        app = generate_application(
            "dvfs2", "test", {"balanced": 1.0}, seed=42)
        trace = app.workload(0).trace(80, 0)
        energies = {}
        for f in (2.0, 1.0):
            machine = dvfs.machine_at(f)
            sim = IntervalModel(machine)
            power = dvfs.power_model_at(f, machine)
            result = sim.simulate(trace, Mode.HIGH_PERF)
            energies[f] = power.interval_energy_j(result).sum()
        assert energies[1.0] < energies[2.0]
