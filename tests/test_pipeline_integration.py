"""Integration tests: training pipeline, runner, blindspot analysis.

These exercise the full stack end to end on a reduced corpus; the
benchmark harness runs the full-scale versions.
"""

import numpy as np
import pytest

from repro.core.pipeline import (
    GRANULARITY_FACTORS,
    SRCHEstimator,
    build_standard_models,
    train_dual_predictor,
    tune_threshold_for_rsv,
)
from repro.data.builders import dataset_from_traces, hdtr_traces
from repro.errors import ConfigurationError
from repro.eval.blindspots import analyze_blindspots, compare_models
from repro.eval.runner import evaluate_predictor
from repro.ml import RandomForestClassifier
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import default_catalog
from repro.uarch.modes import Mode
from repro.workloads.categories import hdtr_corpus
from repro.workloads.spec2017 import spec2017_traces


@pytest.fixture(scope="module")
def collector():
    return TelemetryCollector()


@pytest.fixture(scope="module")
def train_traces(collector):
    apps = hdtr_corpus(7, counts={
        "hpc_perf": 5, "cloud_security": 5, "web_productivity": 5,
        "multimedia": 4, "ai_analytics": 4, "games_rendering_ar": 4,
    })
    return hdtr_traces(7, apps=apps, workloads_per_app=2,
                       intervals_per_trace=100)


@pytest.fixture(scope="module")
def test_traces():
    return spec2017_traces(99, intervals_per_trace=160,
                           traces_per_workload=1)[::4]


@pytest.fixture(scope="module")
def models(collector, train_traces):
    return build_standard_models(
        train_traces, seed=7, collector=collector,
        include=["best_rf", "charstar"], selection_traces=24)


class TestBuildStandardModels:
    def test_predictors_trained(self, models):
        assert set(models.names()) == {"best_rf", "charstar"}

    def test_granularities_match_table3(self, models):
        assert models["best_rf"].granularity_factor == 4
        assert models["charstar"].granularity_factor == 2
        assert GRANULARITY_FACTORS["best_mlp"] == 5
        assert GRANULARITY_FACTORS["srch"] == 4

    def test_counter_sets(self, models):
        catalog = default_catalog()
        assert len(models.pf_counter_ids) == 12
        assert np.array_equal(models["charstar"].counter_ids,
                              np.array(catalog.charstar_ids))

    def test_best_model_thresholds_tuned(self, models):
        thresholds = models["best_rf"].thresholds
        assert all(0.3 <= t <= 0.999 for t in thresholds.values())

    def test_baseline_thresholds_untouched(self, models):
        assert all(t == 0.5
                   for t in models["charstar"].thresholds.values())

    def test_unknown_model_rejected(self, collector, train_traces):
        with pytest.raises(ConfigurationError):
            build_standard_models(train_traces, seed=1,
                                  collector=collector,
                                  include=["nonsense"])

    def test_firmware_budget_respected(self, models):
        """Every deployed model fits its gating interval's ops budget."""
        from repro.firmware import Microcontroller, compile_model
        uc = Microcontroller()
        for name, predictor in models.predictors.items():
            granularity = predictor.granularity_factor * 10_000
            for mode, model in predictor.models.items():
                program = compile_model(model)
                assert uc.fits(program.ops_per_prediction, granularity), (
                    f"{name}/{mode} exceeds budget at {granularity}"
                )


class TestThresholdTuning:
    def test_tuned_model_meets_budget_on_calibration(self, collector,
                                                     train_traces):
        ds = dataset_from_traces(train_traces[:20],
                                 default_catalog().table4_ids,
                                 collector=collector,
                                 granularity_factor=4)[Mode.LOW_POWER]
        model = RandomForestClassifier(n_trees=4, max_depth=6,
                                       seed=1).fit(ds.x, ds.y)
        tune_threshold_for_rsv(model, ds, max_rsv=0.01)
        from repro.eval.metrics import effective_sla_window, pooled_rsv
        window = effective_sla_window(ds.granularity)
        pairs = []
        scores = model.predict_proba(ds.x)
        for name in np.unique(ds.traces):
            mask = ds.traces == name
            pairs.append((ds.y[mask],
                          (scores[mask] >= model.decision_threshold
                           ).astype(int)))
        assert pooled_rsv(pairs, window) <= 0.01 + 1e-9


class TestDeployment:
    def test_best_rf_beats_charstar_on_rsv(self, models, test_traces,
                                           collector):
        """The headline claim at reduced scale: an order-of-magnitude
        class RSV gap with comparable PPW."""
        best = evaluate_predictor(models["best_rf"], test_traces,
                                  collector=collector)
        base = evaluate_predictor(models["charstar"], test_traces,
                                  collector=collector)
        assert best.mean_rsv <= base.mean_rsv
        assert best.mean_ppw_gain > 0.05
        assert base.mean_ppw_gain > 0.05

    def test_suite_eval_structure(self, models, test_traces, collector):
        suite = evaluate_predictor(models["best_rf"], test_traces,
                                   collector=collector)
        assert suite.granularity == 40_000
        assert len(suite.per_benchmark) >= 10
        names = [b.app_name for b in suite.per_benchmark]
        assert names == sorted(names)
        from repro.workloads.spec2017 import benchmark_names
        int_apps = [n for n in benchmark_names("int") if n in names]
        means = suite.suite_means(int_apps)
        assert set(means) == {"ppw_gain", "rsv", "pgos", "residency",
                              "avg_performance"}

    def test_blindspot_analysis(self, models, test_traces, collector):
        suite = evaluate_predictor(models["charstar"], test_traces,
                                   collector=collector)
        reports = analyze_blindspots(suite)
        assert len(reports) == len(suite.per_benchmark)
        for report in reports:
            assert 0.0 <= report.fp_rate <= 1.0
            assert report.max_fp_run >= 0

    def test_compare_models_rows(self, models, test_traces, collector):
        best = evaluate_predictor(models["best_rf"], test_traces,
                                  collector=collector)
        base = evaluate_predictor(models["charstar"], test_traces,
                                  collector=collector)
        rows = compare_models(base, best)
        assert len(rows) == len(best.per_benchmark)
        for row in rows:
            assert row["rsv_reduction"] == pytest.approx(
                row["ref_rsv"] - row["cand_rsv"])


class TestSRCHEstimator:
    def test_bucketized_features_learn(self, collector, train_traces):
        ds = dataset_from_traces(train_traces[:16],
                                 default_catalog().table4_ids,
                                 collector=collector)[Mode.LOW_POWER]
        model = SRCHEstimator().fit(ds.x, ds.y)
        preds = model.predict(ds.x)
        from repro.ml.metrics_ml import accuracy
        assert accuracy(ds.y, preds) > 0.6
