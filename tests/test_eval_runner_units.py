"""Unit tests for the evaluation runner's aggregation logic."""

import numpy as np
import pytest

from repro.core.adaptive_cpu import AdaptiveRunResult
from repro.errors import DatasetError
from repro.eval.runner import BenchmarkEval, SuiteEval, _aggregate_app


def _run(app, ppw=0.2, labels=None, preds=None, trace="t0"):
    n = 16
    labels = np.zeros(n, int) if labels is None else labels
    preds = np.zeros(n, int) if preds is None else preds
    cycles = np.full(n + 2, 100.0)
    return AdaptiveRunResult(
        trace_name=f"{app}/{trace}",
        app_name=app,
        workload_name=f"{app}/w0",
        predictor_name="unit",
        granularity=40_000,
        modes=np.concatenate(([0, 0], preds)),
        predictions=preds,
        labels=labels,
        ipc=np.ones(n + 2),
        cycles=cycles * (1.0 - 0.1 * ppw),
        cycles_baseline=cycles,
        energy_j=1.0 / (1.0 + ppw),
        energy_baseline_j=1.0,
        switch_count=0,
    )


class TestAggregation:
    def test_ppw_gain_mean_over_traces(self):
        runs = [_run("a", ppw=0.1, trace="t0"),
                _run("a", ppw=0.3, trace="t1")]
        bench = _aggregate_app("a", runs, window=4)
        assert bench.ppw_gain == pytest.approx(0.2, abs=1e-9)
        assert bench.n_traces == 2

    def test_pgos_pooled_over_traces(self):
        labels = np.array([1] * 8 + [0] * 8)
        good = _run("a", labels=labels, preds=labels, trace="t0")
        bad = _run("a", labels=labels,
                   preds=np.zeros(16, int), trace="t1")
        bench = _aggregate_app("a", [good, bad], window=4)
        assert bench.pgos == pytest.approx(0.5)

    def test_rsv_windows_within_traces(self):
        labels = np.zeros(16, int)
        violating = _run("a", labels=labels,
                         preds=np.ones(16, int), trace="t0")
        clean = _run("a", labels=labels,
                     preds=np.zeros(16, int), trace="t1")
        bench = _aggregate_app("a", [violating, clean], window=4)
        assert bench.rsv == pytest.approx(0.5)


class TestSuiteEval:
    def _suite(self):
        benches = (
            BenchmarkEval("a", 0.1, 0.0, 0.8, 0.4, 0.99, 1),
            BenchmarkEval("b", 0.3, 0.1, 0.6, 0.5, 0.97, 1),
        )
        return SuiteEval("unit", 40_000, benches, tuple())

    def test_means(self):
        suite = self._suite()
        assert suite.mean_ppw_gain == pytest.approx(0.2)
        assert suite.mean_rsv == pytest.approx(0.05)

    def test_benchmark_lookup(self):
        suite = self._suite()
        assert suite.benchmark("b").ppw_gain == pytest.approx(0.3)
        with pytest.raises(DatasetError):
            suite.benchmark("missing")

    def test_subset_means(self):
        suite = self._suite()
        means = suite.suite_means(["a"])
        assert means["ppw_gain"] == pytest.approx(0.1)
        with pytest.raises(DatasetError):
            suite.suite_means(["nope"])
