"""Tests for the fail-safe guardrail (Section 3.1)."""

import numpy as np
import pytest

from repro.core.guardrail import (
    GuardedAdaptiveCPU,
    GuardrailConfig,
)
from repro.core.predictor import DualModePredictor
from repro.errors import ConfigurationError
from repro.ml.base import Estimator
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application


class _ConstantModel(Estimator):
    def __init__(self, prob):
        self.prob = prob
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return np.full(x.shape[0], self.prob)


def _predictor(prob):
    return DualModePredictor(
        "const",
        {m: _ConstantModel(prob) for m in Mode},
        np.array([0, 1, 2]), 1)


@pytest.fixture(scope="module")
def collector():
    return TelemetryCollector()


@pytest.fixture(scope="module")
def burst_trace():
    # A store-burst-heavy app: gating it violates the SLA hard.
    app = generate_application(
        "guard", "test", {"store_burst": 0.8, "compute_int": 0.2},
        seed=31)
    return app.workload(0).trace(200, 0)


@pytest.fixture(scope="module")
def friendly_trace():
    app = generate_application(
        "friendly", "test", {"pointer_chase": 1.0}, seed=32)
    return app.workload(0).trace(200, 0)


class TestConfig:
    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            GuardrailConfig(window=0)
        with pytest.raises(ConfigurationError):
            GuardrailConfig(holdoff=0)
        with pytest.raises(ConfigurationError):
            GuardrailConfig(trip_margin=0.0)


class TestGuardrail:
    def test_trips_on_pathological_gating(self, collector, burst_trace):
        """An always-gate policy on a store-burst app must trip."""
        cpu = GuardedAdaptiveCPU(_predictor(1.0), collector=collector,
                                 guardrail=GuardrailConfig(
                                     window=4, holdoff=16))
        result = cpu.run(burst_trace)
        assert result.trips >= 1
        assert result.suppressed_intervals > 0

    def test_bounds_performance_loss(self, collector, burst_trace):
        """The guardrail converts a sustained blindspot into a bounded
        transient: guarded avg performance must beat unguarded."""
        from repro.core.adaptive_cpu import AdaptiveCPU
        bad = _predictor(1.0)
        unguarded = AdaptiveCPU(bad, collector=collector).run(burst_trace)
        guarded = GuardedAdaptiveCPU(
            bad, collector=collector,
            guardrail=GuardrailConfig(window=4, holdoff=16),
        ).run(burst_trace)
        assert guarded.avg_performance > unguarded.avg_performance
        assert guarded.residency < unguarded.residency

    def test_does_not_trip_on_sound_gating(self, collector,
                                           friendly_trace):
        """Gating a pointer-chasing app is safe; no trips expected."""
        cpu = GuardedAdaptiveCPU(_predictor(1.0), collector=collector)
        result = cpu.run(friendly_trace)
        assert result.trips == 0
        assert result.suppressed_intervals == 0
        assert result.residency > 0.9

    def test_never_gate_never_trips(self, collector, burst_trace):
        cpu = GuardedAdaptiveCPU(_predictor(0.0), collector=collector)
        result = cpu.run(burst_trace)
        assert result.trips == 0
        assert result.residency == 0.0

    def test_holdoff_suppresses_then_releases(self, collector,
                                              burst_trace):
        short = GuardedAdaptiveCPU(
            _predictor(1.0), collector=collector,
            guardrail=GuardrailConfig(window=2, holdoff=4),
        ).run(burst_trace)
        long = GuardedAdaptiveCPU(
            _predictor(1.0), collector=collector,
            guardrail=GuardrailConfig(window=2, holdoff=64),
        ).run(burst_trace)
        # A longer hold-off suppresses more gating overall.
        assert long.residency < short.residency

    def test_result_delegates_base_fields(self, collector,
                                          friendly_trace):
        result = GuardedAdaptiveCPU(
            _predictor(1.0), collector=collector).run(friendly_trace)
        assert result.trace_name == friendly_trace.name
        assert result.predictions.shape[0] == result.labels.shape[0]

    def test_energy_reaccounted(self, collector, burst_trace):
        """With a hold-off longer than the trace, a tripped guardrail
        pins the core to high-performance mode, so energy converges to
        the non-adaptive baseline."""
        guarded = GuardedAdaptiveCPU(
            _predictor(1.0), collector=collector,
            guardrail=GuardrailConfig(window=2, holdoff=10_000),
        ).run(burst_trace)
        assert guarded.trips == 1
        assert guarded.energy_j == pytest.approx(
            guarded.energy_baseline_j, rel=0.05)
