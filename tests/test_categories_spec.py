"""Tests for the Table-1 categories and the Table-2 SPEC-like suite."""

import pytest

from repro.workloads.categories import (
    CATEGORIES,
    PAPER_HDTR_APPS,
    PAPER_CATEGORY_COUNTS,
    get_category,
    hdtr_corpus,
    scaled_category_counts,
)
from repro.workloads.spec2017 import (
    SPEC2017_APPS,
    benchmark_names,
    get_benchmark,
    spec2017_suite,
    spec2017_traces,
    suite_summary,
)


class TestCategories:
    def test_six_categories(self):
        assert len(CATEGORIES) == 6

    def test_paper_counts_sum_to_593(self):
        assert sum(PAPER_CATEGORY_COUNTS.values()) == PAPER_HDTR_APPS

    def test_family_weights_reference_real_families(self):
        from repro.workloads.phases import families
        known = set(families())
        for cat in CATEGORIES:
            assert set(cat.family_weights) <= known

    def test_lookup(self):
        assert get_category("multimedia").display_name == "Multimedia"

    def test_scaled_counts_floor(self):
        counts = scaled_category_counts(scale=0.01)
        assert all(v >= 4 for v in counts.values())

    def test_scaled_counts_proportional(self):
        counts = scaled_category_counts(scale=1.0)
        assert counts["hpc_perf"] > counts["ai_analytics"]

    def test_corpus_generation(self):
        apps = hdtr_corpus(7, counts={c.name: 2 for c in CATEGORIES})
        assert len(apps) == 12
        assert len({a.name for a in apps}) == 12

    def test_corpus_deterministic(self):
        counts = {c.name: 2 for c in CATEGORIES}
        a = hdtr_corpus(7, counts=counts)
        b = hdtr_corpus(7, counts=counts)
        assert [x.phases for x in a] == [y.phases for y in b]

    def test_store_burst_rare_in_training(self):
        # The blindspot family must be long-tail in HDTR (Section 7.1).
        weights = get_category("cloud_security").family_weights
        assert weights["store_burst"] <= 0.05


class TestSpec2017:
    def test_twenty_benchmarks(self):
        assert len(SPEC2017_APPS) == 20
        assert len(benchmark_names("int")) == 10
        assert len(benchmark_names("fp")) == 10

    @pytest.mark.parametrize("name,workloads", [
        ("600.perlbench_s", 4), ("602.gcc_s", 7), ("605.mcf_s", 7),
        ("620.omnetpp_s", 9), ("623.xalancbmk_s", 2), ("625.x264_s", 12),
        ("631.deepsjeng_s", 12), ("641.leela_s", 10),
        ("648.exchange2_s", 5), ("657.xz_s", 5), ("603.bwaves_s", 5),
        ("607.cactuBSSN_s", 6), ("619.lbm_s", 3), ("621.wrf_s", 1),
        ("627.cam4_s", 1), ("628.pop2_s", 1), ("638.imagick_s", 12),
        ("644.nab_s", 5), ("649.fotonik3d_s", 5), ("654.roms_s", 5),
    ])
    def test_table2_workload_counts(self, name, workloads):
        assert get_benchmark(name).workloads == workloads

    def test_summary_totals(self):
        summary = suite_summary()
        assert summary["benchmarks"] == 20
        # Table 2 counts sum to 117 (the paper text says 118; see
        # EXPERIMENTS.md).
        assert summary["workloads"] == 117

    def test_roms_carries_the_blindspot_family(self):
        assert get_benchmark("654.roms_s").family_weights[
            "store_burst"] >= 0.4

    def test_suite_apps_deterministic(self):
        a = spec2017_suite(9)["605.mcf_s"]
        b = spec2017_suite(9)["605.mcf_s"]
        assert a.phases == b.phases

    def test_traces_cover_all_workloads(self):
        traces = spec2017_traces(9, intervals_per_trace=20,
                                 traces_per_workload=1)
        assert len(traces) == 117
        apps = {t.app.name for t in traces}
        assert len(apps) == 20

    def test_traces_per_workload_multiplies(self):
        traces = spec2017_traces(9, intervals_per_trace=20,
                                 traces_per_workload=2)
        assert len(traces) == 234
