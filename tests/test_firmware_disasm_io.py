"""Tests for the firmware disassembler and image file persistence."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.core.predictor import DualModePredictor
from repro.errors import ConfigurationError
from repro.firmware.codegen import FirmwareProgram, compile_model
from repro.firmware.deploy import FirmwareImage, package_firmware
from repro.firmware.disasm import disassemble
from repro.firmware.vm import FirmwareVM
from repro.ml import (
    KernelSVM,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)
from repro.uarch.modes import Mode


@pytest.fixture(scope="module")
def data():
    rng = rng_mod.stream(3, "dis")
    x = np.abs(rng.normal(1.0, 0.5, (800, 8)))
    y = (x[:, 0] > x[:, 1]).astype(int)
    return x, y


class TestDisassembler:
    def test_mlp_listing_resembles_listing1(self, data):
        """Paper Listing 1: fld/fmul/fadd inner product + ReLU."""
        x, y = data
        model = MLPClassifier((8, 4), epochs=3).fit(x, y)
        text = disassemble(compile_model(model))
        assert "fld" in text and "fmul" in text
        assert "fucomi" in text  # the branch-free ReLU
        assert "topology 8x8x4x1" in text

    def test_forest_listing_resembles_listing2(self, data):
        """Paper Listing 2: indexed load + fucompi + branch-free step."""
        x, y = data
        model = RandomForestClassifier(4, 4, seed=1).fit(x, y)
        text = disassemble(compile_model(model))
        assert "fucompi" in text
        assert "branch-free" in text
        assert "4 tree(s), depth 4" in text

    @pytest.mark.parametrize("factory", [
        lambda x, y: LogisticRegression().fit(x, y),
        lambda x, y: LinearSVM(n_members=3).fit(x, y),
        lambda x, y: KernelSVM(kernel="chi2", max_support_vectors=60,
                               max_passes=1).fit(x, y),
    ])
    def test_all_kinds_disassemble(self, data, factory):
        x, y = data
        text = disassemble(compile_model(factory(x, y)))
        assert text.startswith(";")
        assert len(text.splitlines()) > 3

    def test_line_cap(self, data):
        x, y = data
        model = RandomForestClassifier(8, 8, seed=1).fit(x, y)
        text = disassemble(compile_model(model), max_lines=10)
        assert len(text.splitlines()) <= 11

    def test_unknown_kind_rejected(self):
        bogus = FirmwareProgram(kind="quantum", image=b"", n_inputs=1,
                                ops_per_prediction=1, metadata={})
        with pytest.raises(ConfigurationError):
            disassemble(bogus)


class TestImageFileIO:
    def _image(self, data):
        x, y = data
        models = {mode: RandomForestClassifier(4, 4, seed=2).fit(x, y)
                  for mode in Mode}
        predictor = DualModePredictor("io", models, np.arange(8), 4)
        return predictor, package_firmware(predictor, version=3)

    def test_save_load_roundtrip(self, data, tmp_path):
        predictor, image = self._image(data)
        path = str(tmp_path / "fw.bin")
        image.save(path)
        loaded = FirmwareImage.load(path)
        assert loaded.verify()
        assert loaded.version == 3
        assert loaded.counter_ids == image.counter_ids
        for mode in Mode:
            assert loaded.programs[mode].image == image.programs[mode].image

    def test_loaded_image_executes_identically(self, data, tmp_path):
        x, _ = data
        predictor, image = self._image(data)
        path = str(tmp_path / "fw.bin")
        image.save(path)
        loaded = FirmwareImage.load(path)
        vm = FirmwareVM()
        for mode in Mode:
            a = vm.run(image.programs[mode], x[:50])
            b = vm.run(loaded.programs[mode], x[:50])
            assert np.array_equal(a.predictions, b.predictions)
            assert a.ops_per_prediction == b.ops_per_prediction

    def test_corrupt_file_rejected(self, data, tmp_path):
        _, image = self._image(data)
        path = str(tmp_path / "fw.bin")
        image.save(path)
        raw = bytearray(open(path, "rb").read())
        raw[-3] ^= 0xFF  # flip a payload byte
        open(path, "wb").write(bytes(raw))
        with pytest.raises(ConfigurationError):
            FirmwareImage.load(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = str(tmp_path / "not_fw.bin")
        open(path, "wb").write(b"ELF\x7f....")
        with pytest.raises(ConfigurationError):
            FirmwareImage.load(path)
