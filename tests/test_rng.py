"""Tests for named deterministic random streams."""

import numpy as np

from repro import rng as rng_mod


class TestStream:
    def test_same_name_same_sequence(self):
        a = rng_mod.stream(7, "x").random(10)
        b = rng_mod.stream(7, "x").random(10)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        a = rng_mod.stream(7, "x").random(10)
        b = rng_mod.stream(7, "y").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = rng_mod.stream(7, "x").random(10)
        b = rng_mod.stream(8, "x").random(10)
        assert not np.array_equal(a, b)

    def test_multi_part_names(self):
        a = rng_mod.stream(7, "a", 1, "b").random(4)
        b = rng_mod.stream(7, "a", 1, "b").random(4)
        assert np.array_equal(a, b)

    def test_name_concatenation_is_not_ambiguous(self):
        # ("ab", "c") and ("a", "bc") must be distinct streams.
        a = rng_mod.stream(7, "ab", "c").random(4)
        b = rng_mod.stream(7, "a", "bc").random(4)
        assert not np.array_equal(a, b)


class TestDeriveSeed:
    def test_deterministic(self):
        assert (rng_mod.derive_seed(7, "child")
                == rng_mod.derive_seed(7, "child"))

    def test_distinct_children(self):
        seeds = {rng_mod.derive_seed(7, "child", i) for i in range(100)}
        assert len(seeds) == 100

    def test_non_negative(self):
        for i in range(20):
            assert rng_mod.derive_seed(3, i) >= 0
