"""Tests for the structural simulation tier.

These close the substitution chain: phase physics -> synthetic
address/branch streams -> real LRU caches and gshare predictor should
recover the miss/mispredict rates the annotated tier assumes.
"""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.uarch.addresses import AddressModel, BranchStream
from repro.uarch.branch import GsharePredictor
from repro.uarch.caches import CacheHierarchy
from repro.uarch.modes import Mode
from repro.uarch.structural import (
    simulate_phase_structural,
    synthesize_structural_stream,
)
from repro.workloads.phases import get_archetype


def _phase(name, seed=3):
    return get_archetype(name).sample(rng_mod.stream(seed, "st", name))


class TestAddressModel:
    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            AddressModel(_phase("balanced_mixed"), 1).generate(0)

    def test_addresses_line_aligned(self):
        addrs = AddressModel(_phase("balanced_mixed"), 1).generate(500)
        assert np.all(addrs % 64 == 0)

    def test_cache_friendly_phase_hits_l1(self):
        phase = _phase("int_crypto_rounds")  # ~0.5 mpki
        model = AddressModel(phase, 1)
        hierarchy = CacheHierarchy()
        addrs = model.generate(8000)
        for a in addrs[:2000]:  # warm
            hierarchy.access(int(a))
        hierarchy.l1.reset_stats()
        for a in addrs[2000:]:
            hierarchy.access(int(a))
        assert hierarchy.l1.stats.miss_rate < 0.05

    def test_pointer_chase_misses_match_physics(self):
        phase = _phase("linked_list_walk")
        model = AddressModel(phase, 1)
        hierarchy = CacheHierarchy()
        addrs = model.generate(20000)
        for a in addrs[:5000]:
            hierarchy.access(int(a))
        hierarchy.l1.reset_stats()
        for a in addrs[5000:]:
            hierarchy.access(int(a))
        target = phase.l1d_mpki / (
            1000.0 * (phase.frac_load + phase.frac_store))
        assert hierarchy.l1.stats.miss_rate == pytest.approx(
            target, abs=0.12)

    def test_streaming_addresses_never_reuse(self):
        phase = _phase("stream_copy")
        addrs = AddressModel(phase, 1).generate(4000)
        high = addrs[addrs >= (1 << 26) * 64]
        assert high.size > 0
        assert np.unique(high).size == high.size


class TestBranchStream:
    def test_predictable_phase_low_miss_rate(self):
        phase = _phase("stream_copy")  # ~0.2 branch mpki
        stream = BranchStream(phase, 1)
        pcs, taken = stream.generate(6000)
        predictor = GsharePredictor()
        misses = 0
        for pc, t in zip(pcs.tolist(), taken.tolist()):
            misses += predictor.predict(pc) != bool(t)
            predictor.update(pc, bool(t))
        assert misses / 6000 < 0.15

    def test_branchy_phase_miss_rate_near_target(self):
        phase = _phase("decision_logic")  # ~19 mpki at ~26% branches
        stream = BranchStream(phase, 1)
        pcs, taken = stream.generate(12000)
        predictor = GsharePredictor()
        misses = 0
        for pc, t in zip(pcs[2000:].tolist(), taken[2000:].tolist()):
            misses += predictor.predict(pc) != bool(t)
            predictor.update(pc, bool(t))
        rate = misses / 10000
        assert rate == pytest.approx(stream.target_rate, abs=0.05)

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            BranchStream(_phase("balanced_mixed"), 1).generate(0)


class TestStructuralCore:
    def test_stream_shapes(self):
        stream = synthesize_structural_stream(
            _phase("balanced_mixed"), 2000, seed=5)
        n = stream.uops.n_uops
        assert stream.addresses.shape == (n,)
        assert stream.branch_pcs.shape == (n,)
        mem = stream.addresses > 0
        from repro.uarch.isa import UopType
        types = stream.uops.types
        is_mem = ((types == int(UopType.LOAD))
                  | (types == int(UopType.STORE)))
        # Every memory uop has an address (address 0 is legal but rare).
        assert mem[is_mem].mean() > 0.99

    def test_structural_run_produces_sane_ipc(self):
        result, model = simulate_phase_structural(
            _phase("balanced_mixed"), 6000, Mode.HIGH_PERF, seed=5)
        assert 0.1 < result.ipc < 8.0

    def test_structural_matches_annotated_direction(self):
        """Cache-friendly compute must out-IPC pointer chasing in the
        structural tier too."""
        fast, _ = simulate_phase_structural(
            _phase("int_crypto_rounds"), 6000, Mode.HIGH_PERF, seed=5)
        slow, _ = simulate_phase_structural(
            _phase("linked_list_walk"), 6000, Mode.HIGH_PERF, seed=5)
        assert fast.ipc > 2.0 * slow.ipc

    def test_structural_miss_rates_close_annotation_loop(self):
        phase = _phase("hash_probe_cold")
        _result, model = simulate_phase_structural(
            phase, 10000, Mode.HIGH_PERF, seed=5, warmup_uops=6000)
        target = phase.l1d_mpki / (
            1000.0 * (phase.frac_load + phase.frac_store))
        assert model.measured_l1_miss_rate() == pytest.approx(
            target, abs=0.15)

    def test_structural_branch_rate_tracks_physics(self):
        phase = _phase("branchy_parser")
        result, model = simulate_phase_structural(
            phase, 10000, Mode.HIGH_PERF, seed=5, warmup_uops=6000)
        per_uop = model.branch_mispredict_count / result.n_uops
        target = phase.branch_mpki / 1000.0
        assert per_uop == pytest.approx(target, abs=0.01)

    def test_width_still_matters_structurally(self):
        phase = _phase("gemm_tile")
        hp, _ = simulate_phase_structural(phase, 8000, Mode.HIGH_PERF,
                                          seed=5)
        lp, _ = simulate_phase_structural(phase, 8000, Mode.LOW_POWER,
                                          seed=5)
        assert lp.ipc < hp.ipc
