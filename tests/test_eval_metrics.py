"""Tests for PGOS/RSV metrics (Eqs. 1-4) and blindspot analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatasetError
from repro.eval.metrics import (
    effective_sla_window,
    expected_false_positive,
    mean_relative_error,
    pgos,
    pooled_rsv,
    rsv,
    spearman,
    violation_indicator_windows,
)


class TestPGOS:
    def test_eq1_definition(self):
        y_true = np.array([1, 1, 1, 0, 0])
        y_pred = np.array([1, 0, 1, 1, 0])
        # 2 correct low-power predictions of 3 opportunities.
        assert pgos(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_opportunities_gives_zero(self):
        assert pgos(np.zeros(5, int), np.ones(5, int)) == 0.0

    def test_perfect_prediction(self):
        y = np.array([0, 1, 0, 1])
        assert pgos(y, y) == 1.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                    min_size=1, max_size=200))
    def test_bounded(self, pairs):
        y_true = np.array([p[0] for p in pairs])
        y_pred = np.array([p[1] for p in pairs])
        assert 0.0 <= pgos(y_true, y_pred) <= 1.0


class TestRSV:
    def test_eq2_expectation(self):
        y_true = np.array([0, 0, 0, 1])
        y_pred = np.array([1, 1, 0, 1])
        assert expected_false_positive(y_true, y_pred) == pytest.approx(0.5)

    def test_window_violation_requires_majority_fp(self):
        y_true = np.zeros(8, int)
        y_pred = np.array([1, 1, 1, 0, 1, 1, 1, 1])
        # Window 1: 3/4 FP -> violation; window 2: 4/4 FP -> violation.
        v = violation_indicator_windows(y_true, y_pred, 4)
        assert v.tolist() == [1, 1]
        y_pred2 = np.array([1, 1, 0, 0, 0, 0, 0, 0])
        v2 = violation_indicator_windows(y_true, y_pred2, 4)
        assert v2.tolist() == [0, 0]

    def test_exactly_half_is_not_violation(self):
        y_true = np.zeros(4, int)
        y_pred = np.array([1, 1, 0, 0])
        assert violation_indicator_windows(y_true, y_pred, 4).tolist() == [0]

    def test_rsv_rate(self):
        y_true = np.zeros(12, int)
        y_pred = np.array([1] * 4 + [0] * 8)
        assert rsv(y_true, y_pred, 4) == pytest.approx(1 / 3)

    def test_false_negatives_never_violate(self):
        y_true = np.ones(8, int)
        y_pred = np.zeros(8, int)  # all missed opportunities
        assert rsv(y_true, y_pred, 4) == 0.0

    def test_partial_tail_dropped(self):
        y_true = np.zeros(10, int)
        y_pred = np.ones(10, int)
        assert violation_indicator_windows(y_true, y_pred, 4).shape == (2,)

    def test_too_short_rejected(self):
        with pytest.raises(DatasetError):
            rsv(np.zeros(3, int), np.zeros(3, int), 4)

    def test_pooled_rsv_skips_short_traces(self):
        long = (np.zeros(8, int), np.ones(8, int))
        short = (np.zeros(2, int), np.zeros(2, int))
        assert pooled_rsv([long, short], 4) == 1.0

    def test_pooled_rsv_all_short_rejected(self):
        with pytest.raises(DatasetError):
            pooled_rsv([(np.zeros(2, int), np.zeros(2, int))], 4)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(4, 64))
    def test_systematic_errors_dominate_spurious(self, window):
        """RSV's purpose: clustered FPs violate, scattered ones do not."""
        n = window * 10
        y_true = np.zeros(n, int)
        clustered = np.zeros(n, int)
        clustered[:n // 2] = 1  # one long wrong phase
        scattered = np.zeros(n, int)
        scattered[::4] = 1  # same FP count, spread out (25% per window)
        assert (rsv(y_true, clustered, window)
                > rsv(y_true, scattered, window))


class TestSpearman:
    """The stdlib/numpy spearman that replaced scipy in the benches."""

    def test_matches_scipy(self):
        from scipy.stats import spearmanr
        rng = np.random.default_rng(7)
        x = rng.normal(size=200)
        y = x + rng.normal(scale=0.5, size=200)
        assert spearman(x, y) == pytest.approx(
            float(spearmanr(x, y).correlation), abs=1e-12)

    def test_matches_scipy_with_ties(self):
        from scipy.stats import spearmanr
        x = [1.0, 2.0, 2.0, 2.0, 3.0, 4.0, 4.0, 5.0]
        y = [3.0, 3.0, 1.0, 4.0, 4.0, 5.0, 5.0, 2.0]
        assert spearman(x, y) == pytest.approx(
            float(spearmanr(x, y).correlation), abs=1e-12)

    def test_perfect_monotone(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert spearman(x, [10.0, 20.0, 22.0, 40.0]) == 1.0
        assert spearman(x, [5.0, 4.0, 3.0, -1.0]) == -1.0

    def test_constant_input_returns_zero(self):
        assert spearman([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_bad_shapes_rejected(self):
        with pytest.raises(DatasetError):
            spearman([1.0], [2.0])
        with pytest.raises(DatasetError):
            spearman([1.0, 2.0], [1.0, 2.0, 3.0])


class TestMeanRelativeError:
    def test_hand_value(self):
        assert mean_relative_error([1.0, 2.0], [1.1, 1.8]) \
            == pytest.approx(0.1)

    def test_exact_prediction_is_zero(self):
        assert mean_relative_error([2.0, 4.0], [2.0, 4.0]) == 0.0

    def test_zero_truth_rejected(self):
        with pytest.raises(DatasetError):
            mean_relative_error([0.0, 1.0], [1.0, 1.0])


class TestEffectiveWindow:
    def test_scales_paper_window(self):
        # Paper window at 10k granularity is 1600; default scale 0.01.
        assert effective_sla_window(10_000) == 16
        assert effective_sla_window(40_000) == 4

    def test_minimum_enforced(self):
        assert effective_sla_window(100_000) >= 4

    def test_custom_scale(self):
        assert effective_sla_window(10_000, window_scale=1.0) == 1600
