"""Tests for continual adaptation (repro.online) and the typed serve API."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.predictor import DualModePredictor
from repro.errors import (CheckpointError, ProtocolError,
                          StaleGenerationError, SwapGateError)
from repro.obs.metrics import METRICS
from repro.online import (DriftDetector, ModelRegistry, OnlineLearner,
                          OP_ADAPT, OP_DECIDE, TelemetryRing,
                          population_stability_index)
from repro.serve import (AdaptRequest, DecideRequest, HealthStatus,
                         SCHEMA_VERSION, ServeClient, adapt_payload,
                         build_server, load_checkpoint, parse_request,
                         save_checkpoint, serving_corpus,
                         wait_until_ready)
from repro.serve.checkpoint import corpus_fingerprint
from repro.serve.server import ConstProbModel, const_predictor
from repro.uarch.modes import Mode


def const_variant(name: str, p_high: float, p_low: float,
                  counter_ids=None,
                  granularity: int = 1) -> DualModePredictor:
    """A const predictor compatible (by default) with const_predictor()."""
    return DualModePredictor(
        name=name,
        models={Mode.HIGH_PERF: ConstProbModel(p_high),
                Mode.LOW_POWER: ConstProbModel(p_low)},
        counter_ids=(np.array([0, 1, 2, 3]) if counter_ids is None
                     else np.asarray(counter_ids)),
        granularity_factor=granularity,
    )


# ---------------------------------------------------------------------
# Telemetry ring.
# ---------------------------------------------------------------------
class TestTelemetryRing:
    def test_validates_construction(self):
        with pytest.raises(ValueError, match="capacity"):
            TelemetryRing(4)
        with pytest.raises(ValueError, match="sample"):
            TelemetryRing(16, sample=0)

    def test_records_and_windows(self):
        ring = TelemetryRing(16)
        for i in range(5):
            assert ring.record_adapt(i, 0, 0.9, 0.1, 0.5)
        assert ring.record_decide(0, 0.25)
        assert ring.occupancy() == 6
        adapt = ring.window(10, op=OP_ADAPT)
        assert adapt.shape[0] == 5
        assert list(adapt["trace_index"]) == [0, 1, 2, 3, 4]
        decide = ring.window(10, op=OP_DECIDE)
        assert decide.shape[0] == 1
        assert decide["trace_index"][0] == -1
        assert decide["low_rate"][0] == pytest.approx(0.25)

    def test_wraparound_keeps_most_recent(self):
        ring = TelemetryRing(8)
        for i in range(20):
            ring.record_adapt(i, 0, 0.5, 0.0, 0.0)
        assert ring.occupancy() == 8
        rows = ring.window(8)
        assert list(rows["trace_index"]) == list(range(12, 20))
        # seq is monotonically increasing, oldest first.
        assert list(rows["seq"]) == list(range(12, 20))
        assert ring.snapshot()["wrapped"]

    def test_sampling_is_deterministic_and_seeded(self):
        a = TelemetryRing(32, sample=3, seed=0)
        b = TelemetryRing(32, sample=3, seed=0)
        shifted = TelemetryRing(32, sample=3, seed=1)
        for i in range(12):
            a.record_adapt(i, 0, 0.5, 0.0, 0.0)
            b.record_adapt(i, 0, 0.5, 0.0, 0.0)
            shifted.record_adapt(i, 0, 0.5, 0.0, 0.0)
        assert a.sampled == b.sampled == 4
        assert list(a.window(8)["trace_index"]) == \
            list(b.window(8)["trace_index"])
        # A different seed samples a different (but deterministic)
        # phase of the same stream.
        assert list(shifted.window(8)["trace_index"]) != \
            list(a.window(8)["trace_index"])


# ---------------------------------------------------------------------
# Drift detection.
# ---------------------------------------------------------------------
def fill(ring, indices, accuracy=0.9):
    for i in indices:
        ring.record_adapt(i, 0, accuracy, 0.1, 0.5)


class TestDriftDetector:
    def test_psi_zero_for_identical_and_large_for_shift(self):
        same = np.array([0, 1, 2, 3] * 4)
        assert population_stability_index(same, same, 4) == \
            pytest.approx(0.0, abs=1e-6)
        shifted = np.full(16, 3)
        assert population_stability_index(same, shifted, 4) > 1.0

    def test_first_full_window_baselines_without_signal(self):
        ring = TelemetryRing(64)
        det = DriftDetector(8, 0.25, n_traces=4)
        assert det.check(ring, 0) is None  # empty ring, no baseline
        assert not det.snapshot()["baselined"]
        fill(ring, [0, 1, 2, 3] * 2)
        assert det.check(ring, 0) is None  # becomes the baseline
        assert det.snapshot()["baselined"]

    def test_stable_mix_never_trips(self):
        ring = TelemetryRing(64)
        det = DriftDetector(8, 0.25, n_traces=4)
        fill(ring, [0, 1, 2, 3] * 2)
        det.check(ring, 0)
        fill(ring, [0, 1, 2, 3] * 2)
        assert det.check(ring, 0) is None
        assert det.last_score == pytest.approx(0.0, abs=1e-6)

    def test_population_shift_trips(self):
        ring = TelemetryRing(64)
        det = DriftDetector(8, 0.25, n_traces=4)
        fill(ring, [0, 1, 2, 3] * 2)
        det.check(ring, 0)
        fill(ring, [3] * 8)
        signal = det.check(ring, generation=7)
        assert signal is not None
        assert signal.kind == "population"
        assert signal.score >= 0.25
        assert signal.generation == 7

    def test_accuracy_drop_trips_when_mix_is_stable(self):
        ring = TelemetryRing(64)
        det = DriftDetector(8, 0.25, n_traces=4)
        fill(ring, [0, 1, 2, 3] * 2, accuracy=0.9)
        det.check(ring, 0)
        fill(ring, [0, 1, 2, 3] * 2, accuracy=0.6)
        signal = det.check(ring, 0)
        assert signal is not None
        assert signal.kind == "accuracy"
        assert signal.score == pytest.approx(0.3, abs=1e-3)

    def test_overlapping_window_is_not_compared(self):
        # Without fresh samples the recent window IS the reference;
        # comparing them would mask real drift forever after.
        ring = TelemetryRing(64)
        det = DriftDetector(8, 0.25, n_traces=4)
        fill(ring, [0, 1, 2, 3] * 2)
        det.check(ring, 0)
        checks = det.checks
        assert det.check(ring, 0) is None
        assert det.checks == checks + 1
        assert det.last_score is None  # no comparison was made

    def test_rebaseline_adopts_recent_window(self):
        ring = TelemetryRing(64)
        det = DriftDetector(8, 0.25, n_traces=4)
        assert not det.rebaseline(ring)  # not enough samples yet
        fill(ring, [0, 1, 2, 3] * 2)
        det.check(ring, 0)
        fill(ring, [3] * 8)
        assert det.check(ring, 0) is not None
        assert det.rebaseline(ring)
        # The shifted mix is now the reference: more of it is stable.
        fill(ring, [3] * 8)
        assert det.check(ring, 0) is None


# ---------------------------------------------------------------------
# Model registry and the swap gate.
# ---------------------------------------------------------------------
class TestModelRegistry:
    def test_swap_bumps_generation_atomically(self):
        registry = ModelRegistry(AdaptiveCPU(const_predictor()))
        assert registry.generation == 0
        entry = registry.swap(const_variant("v2", 0.8, 0.3), tag="v2")
        assert entry.generation == 1
        assert registry.generation == 1
        assert registry.current() is entry
        assert registry.current().cpu.predictor.name == "v2"
        snap = registry.snapshot()
        assert snap["swaps"] == 1 and snap["tag"] == "v2"
        assert snap["last_swap_latency_ms"] is not None

    def test_gate_rejects_changed_counter_set(self):
        registry = ModelRegistry(AdaptiveCPU(const_predictor()))
        bad = const_variant("bad", 0.7, 0.4, counter_ids=[0, 1, 2])
        with pytest.raises(SwapGateError, match="counter set"):
            registry.swap(bad)
        assert registry.generation == 0  # nothing changed

    def test_gate_rejects_changed_granularity(self):
        registry = ModelRegistry(AdaptiveCPU(const_predictor()))
        bad = const_variant("bad", 0.7, 0.4, granularity=2)
        with pytest.raises(SwapGateError, match="granularity"):
            registry.swap(bad)
        assert registry.generation == 0

    def test_swapped_cpu_shares_warm_state_and_arena(self):
        founder = AdaptiveCPU(const_predictor())
        traces = serving_corpus(2, 1, 32, 11)
        founder.install_resident_arena(traces)
        registry = ModelRegistry(founder)
        try:
            shadow = registry.shadow_cpu(const_variant("s", 0.8, 0.3))
            assert shadow.collector is founder.collector
            assert shadow.power is founder.power
            assert shadow._resident_arena is founder._resident_arena
            assert shadow._resident_index is founder._resident_index
        finally:
            registry.close()
        assert founder._resident_arena is None


# ---------------------------------------------------------------------
# Learner: shadow gate promotion/rejection.
# ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def loop_parts():
    """Registry/ring/detector over a tiny const-served corpus, with a
    drift signal already tripped: baseline on traces {2,3}, recent
    window all trace 1 — the trace where an SLA-careless predictor
    realises actual violation windows."""
    traces = serving_corpus(4, 1, 64, 11)

    def build():
        registry = ModelRegistry(AdaptiveCPU(const_predictor()))
        ring = TelemetryRing(128)
        detector = DriftDetector(8, 0.25, n_traces=len(traces))
        fill(ring, [2, 3] * 4)
        detector.check(ring, 0)  # baseline
        fill(ring, [1] * 8)
        return registry, ring, detector

    return traces, build


class TestOnlineLearner:
    def test_no_drift_means_no_retrain(self, loop_parts):
        traces, build = loop_parts
        registry, ring, detector = build()
        detector.rebaseline(ring)  # adopt the shifted mix: quiet again
        learner = OnlineLearner(registry, ring, detector, traces)
        assert learner.step() is None
        assert learner.retrains == 0

    def test_equal_candidate_is_promoted(self, loop_parts):
        traces, build = loop_parts
        registry, ring, detector = build()
        promoted_gens = []
        learner = OnlineLearner(
            registry, ring, detector, traces,
            candidate_fn=lambda lr, sig, gen: const_predictor(),
            on_promote=promoted_gens.append)
        verdict = learner.step()
        assert verdict is not None and verdict.promoted
        assert verdict.generation == 1
        assert verdict.candidate_ppw == pytest.approx(
            verdict.incumbent_ppw)
        assert registry.generation == 1
        assert promoted_gens == [1]
        # Promotion re-baselines: the drifted mix is the new normal.
        assert learner.step() is None

    def test_sla_degrading_candidate_is_rejected(self, loop_parts):
        # Always-switch gates aggressively: higher PPW but it buys the
        # throughput with SLA violations — the RSV axis must veto it.
        traces, build = loop_parts
        registry, ring, detector = build()
        learner = OnlineLearner(
            registry, ring, detector, traces,
            candidate_fn=lambda lr, sig, gen:
                const_variant("always_switch", 1.0, 1.0))
        verdict = learner.step()
        assert verdict is not None and not verdict.promoted
        assert verdict.candidate_rsv > verdict.incumbent_rsv
        assert registry.generation == 0
        assert "rsv" in verdict.reason

    def test_throughput_degrading_candidate_is_rejected(self, loop_parts):
        # Never-switch is perfectly SLA-safe but gains nothing — the
        # PPW axis must veto it.
        traces, build = loop_parts
        registry, ring, detector = build()
        learner = OnlineLearner(
            registry, ring, detector, traces,
            candidate_fn=lambda lr, sig, gen:
                const_variant("never_switch", 0.0, 0.0))
        verdict = learner.step()
        assert verdict is not None and not verdict.promoted
        assert verdict.candidate_ppw < verdict.incumbent_ppw
        assert registry.generation == 0

    def test_gate_incompatible_candidate_is_rejected_not_raised(
            self, loop_parts):
        traces, build = loop_parts
        registry, ring, detector = build()
        learner = OnlineLearner(
            registry, ring, detector, traces,
            candidate_fn=lambda lr, sig, gen:
                const_variant("bad", 0.7, 0.4, counter_ids=[0, 1]))
        verdict = learner.step()
        assert verdict is not None and not verdict.promoted
        assert "swap gate" in verdict.reason
        assert registry.generation == 0

    def test_default_retrain_produces_compatible_forest(self, loop_parts):
        traces, build = loop_parts
        registry, ring, detector = build()
        learner = OnlineLearner(registry, ring, detector, traces,
                                n_trees=4, max_depth=3)
        verdict = learner.step()
        assert verdict is not None
        if verdict.promoted:
            predictor = registry.current().cpu.predictor
            assert predictor.name == "online_gen1"
            assert np.array_equal(predictor.counter_ids,
                                  np.array([0, 1, 2, 3]))


# ---------------------------------------------------------------------
# Typed API.
# ---------------------------------------------------------------------
class TestTypedApi:
    def test_adapt_request_round_trip(self):
        request = AdaptRequest(trace_index=3, tenant="t", budget_ms=5.0,
                               key="k", min_generation=1,
                               pin_generation=2)
        wire = request.to_wire()
        assert wire["op"] == "adapt"
        assert wire["schema_version"] == SCHEMA_VERSION
        assert AdaptRequest.from_wire(wire) == request

    def test_decide_request_round_trip(self):
        request = DecideRequest(mode="low_power",
                                window=[[0.0, 1.0, 2.0, 3.0]])
        assert DecideRequest.from_wire(request.to_wire()) == request

    def test_optional_fields_stay_off_the_wire(self):
        wire = AdaptRequest(trace_index=0).to_wire()
        for absent in ("budget_ms", "key", "min_generation",
                       "pin_generation"):
            assert absent not in wire

    def test_legacy_frames_parse_and_are_counted(self):
        before = METRICS.count("serve.legacy_frames")
        request = parse_request({"op": "adapt", "trace_index": 2})
        assert request.trace_index == 2
        assert request.schema_version == 1
        assert METRICS.count("serve.legacy_frames") == before + 1

    def test_future_schema_version_is_rejected(self):
        with pytest.raises(ProtocolError, match="schema_version"):
            parse_request({"op": "adapt", "trace_index": 0,
                           "schema_version": SCHEMA_VERSION + 1})

    def test_unknown_op_has_no_typed_form(self):
        with pytest.raises(ProtocolError, match="typed"):
            parse_request({"op": "fry"})

    def test_health_status_ignores_unknown_wire_keys(self):
        health = HealthStatus.from_wire({
            "ready": True, "uptime_s": 1.0, "init_s": 0.1,
            "requests": 2, "queue_depth": {}, "drain_rps": {},
            "breakers": {}, "watchdog": {}, "batch_timeout_s": 30.0,
            "checkpoint": None, "dedup_entries": 0,
            "model_generation": 4, "novel_future_key": "x"})
        assert health.model_generation == 4
        assert health.schema_version == 1  # absent -> legacy


# ---------------------------------------------------------------------
# Checkpoint <-> registry interplay.
# ---------------------------------------------------------------------
class TestCheckpointGeneration:
    def test_generation_round_trips(self, tmp_path):
        path = str(tmp_path / "g.ckpt")
        traces = serving_corpus(2, 1, 32, 11)
        cpu = AdaptiveCPU(const_predictor())
        fingerprint = corpus_fingerprint("const", 2, 1, 32, 11)
        save_checkpoint(path, cpu, traces, fingerprint, generation=3)
        assert load_checkpoint(path, fingerprint)["generation"] == 3

    def test_pre_online_checkpoints_load_as_generation_zero(
            self, tmp_path):
        path = str(tmp_path / "g0.ckpt")
        traces = serving_corpus(2, 1, 32, 11)
        fingerprint = corpus_fingerprint("const", 2, 1, 32, 11)
        save_checkpoint(path, AdaptiveCPU(const_predictor()), traces,
                        fingerprint)
        assert load_checkpoint(path, fingerprint)["generation"] == 0

    def test_fingerprint_gate_still_rejects(self, tmp_path):
        path = str(tmp_path / "fp.ckpt")
        traces = serving_corpus(2, 1, 32, 11)
        fingerprint = corpus_fingerprint("const", 2, 1, 32, 11)
        save_checkpoint(path, AdaptiveCPU(const_predictor()), traces,
                        fingerprint, generation=5)
        other = corpus_fingerprint("const", 4, 1, 32, 11)
        with pytest.raises(CheckpointError, match="fingerprint"):
            load_checkpoint(path, other)


# ---------------------------------------------------------------------
# End-to-end: live daemon with the continual loop.
# ---------------------------------------------------------------------
@pytest.fixture
def online_env(monkeypatch):
    monkeypatch.setenv("REPRO_ONLINE", "1")
    monkeypatch.setenv("REPRO_ONLINE_RING", "256")
    monkeypatch.setenv("REPRO_ONLINE_DRIFT_WINDOW", "8")
    monkeypatch.setenv("REPRO_ONLINE_INTERVAL_S", "3600")


class TestOnlineDaemon:
    def _serve(self, tmp_path, checkpoint=None, n_apps=4):
        path = str(tmp_path / "online.sock")
        server = build_server(path, predictor_kind="const",
                              n_apps=n_apps, workloads_per_app=1,
                              intervals=64, checkpoint_path=checkpoint)
        server.start()
        wait_until_ready(path, timeout_s=60.0)
        return server, path

    def _drift(self, server, client):
        """Baseline on traces {0,1}, then shift to {2,3}."""
        for _ in range(4):
            for i in (0, 1):
                client.adapt(i)
        assert server.learner.step() is None  # baselines
        for _ in range(4):
            for i in (2, 3):
                client.adapt(i)

    def test_promotion_persists_and_restart_resumes(self, online_env,
                                                    tmp_path):
        ckpt = str(tmp_path / "online.ckpt")
        server, path = self._serve(tmp_path, checkpoint=ckpt)
        try:
            assert server.online_enabled
            with ServeClient(path) as client:
                assert client.adapt(0)["model_generation"] == 0
                self._drift(server, client)
                server.learner.candidate_fn = \
                    lambda lr, sig, gen: const_predictor()
                verdict = server.learner.step()
                assert verdict is not None and verdict.promoted
                response = client.adapt(0)
                assert response["model_generation"] == 1
                health = client.health_status()
                assert health.model_generation == 1
                assert health.online["registry"]["swaps"] == 1
                assert health.online["learner"]["last_verdict"][
                    "promoted"]
                assert health.online["drift"]["last_signal"][
                    "kind"] == "population"
        finally:
            server.request_stop()
            server.serve_forever()
        # Supervised-restart path: the rewritten checkpoint resumes
        # the daemon warm at the promoted generation.
        server2, path = self._serve(tmp_path, checkpoint=ckpt)
        try:
            assert server2.checkpoint_info["loaded"]
            assert server2.registry.generation == 1
            with ServeClient(path, min_generation=1) as client:
                assert client.adapt(0)["model_generation"] == 1
        finally:
            server2.request_stop()
            server2.serve_forever()

    def test_corpus_change_rejects_checkpoint_and_generation(
            self, online_env, tmp_path):
        ckpt = str(tmp_path / "online.ckpt")
        server, path = self._serve(tmp_path, checkpoint=ckpt)
        try:
            with ServeClient(path) as client:
                self._drift(server, client)
                server.learner.candidate_fn = \
                    lambda lr, sig, gen: const_predictor()
                assert server.learner.step().promoted
        finally:
            server.request_stop()
            server.serve_forever()
        # A different corpus must not resume the promoted state.
        server2, path = self._serve(tmp_path, checkpoint=ckpt, n_apps=2)
        try:
            assert not server2.checkpoint_info["loaded"]
            assert server2.registry.generation == 0
        finally:
            server2.request_stop()
            server2.serve_forever()

    def test_generation_constraints_end_to_end(self, online_env,
                                               tmp_path):
        server, path = self._serve(tmp_path)
        try:
            with ServeClient(path, min_generation=3) as client:
                with pytest.raises(StaleGenerationError) as info:
                    client.adapt(0)
                assert info.value.requested == 3
                assert info.value.current == 0
            with ServeClient(path, pin_generation=0) as client:
                assert client.adapt(0)["model_generation"] == 0
            server.registry.swap(const_variant("v2", 0.8, 0.3))
            with ServeClient(path, pin_generation=0) as client:
                with pytest.raises(StaleGenerationError):
                    client.adapt(0)
            with ServeClient(path, min_generation=1) as client:
                assert client.adapt(0)["model_generation"] == 1
        finally:
            server.request_stop()
            server.serve_forever()

    def test_swap_under_load_is_digest_stable(self, online_env,
                                              tmp_path):
        """The acceptance demo: hot-swap mid-traffic, zero failures,
        every response digest-identical to a direct run on the model
        of its stamped generation."""
        server, path = self._serve(tmp_path)
        candidate = const_variant("v2", 0.9, 0.2)
        try:
            gen0_cpu = server.registry.current().cpu
            direct = {
                0: [adapt_payload(gen0_cpu.run(t))
                    for t in server.traces],
            }
            observed = []
            failures = []
            swapped = threading.Event()

            def worker(cid):
                try:
                    with ServeClient(path, tenant=f"t{cid}") as client:
                        for i in range(30):
                            response = client.adapt(i % 4)
                            observed.append(
                                (response["model_generation"],
                                 i % 4, response["result"]))
                            if i == 10:
                                swapped.wait(10.0)
                except Exception as exc:  # noqa: BLE001 - asserted
                    failures.append(exc)

            threads = [threading.Thread(target=worker, args=(c,))
                       for c in range(4)]
            for t in threads:
                t.start()
            # Let every worker bank generation-0 responses, then swap
            # mid-traffic.
            deadline = time.monotonic() + 30.0
            while (len(observed) < 20
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            entry = server.registry.swap(candidate)
            direct[1] = [adapt_payload(entry.cpu.run(t))
                         for t in server.traces]
            swapped.set()
            for t in threads:
                t.join()
            assert not failures
            generations = {gen for gen, _, _ in observed}
            assert generations == {0, 1}  # traffic spanned the swap
            for gen, index, result in observed:
                assert result == direct[gen][index]
        finally:
            server.request_stop()
            server.serve_forever()

    def test_ring_samples_served_traffic(self, online_env, tmp_path):
        server, path = self._serve(tmp_path)
        try:
            window = np.random.default_rng(3).random((4, 4)).tolist()
            with ServeClient(path) as client:
                for i in range(4):
                    client.adapt(i)
                client.decide("low_power", window)
            assert server.ring.occupancy() == 5
            adapt = server.ring.window(8, op=OP_ADAPT)
            assert sorted(adapt["trace_index"]) == [0, 1, 2, 3]
            assert (adapt["accuracy"] >= 0).all()
            assert server.ring.window(8, op=OP_DECIDE).shape[0] == 1
        finally:
            server.request_stop()
            server.serve_forever()
