"""Tests for CV folds, histogram features, metrics and hyper-screening."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.errors import DatasetError
from repro.ml.crossval import app_kfold, leave_one_app_out
from repro.ml.histogram import CounterHistogramEncoder
from repro.ml.hyperscreen import screen_configs, select_best
from repro.ml.linear import LogisticRegression
from repro.ml.metrics_ml import (
    accuracy,
    confusion_counts,
    f1_score,
    false_positive_rate,
    precision,
    recall,
)


class TestAppKFold:
    def _groups(self, n_apps=10, rows_per_app=7):
        return np.repeat([f"app{i}" for i in range(n_apps)], rows_per_app)

    def test_apps_never_straddle_sets(self):
        groups = self._groups()
        for fold in app_kfold(groups, k=6, seed=1):
            tune = set(np.asarray(groups)[fold.tuning_idx])
            val = set(np.asarray(groups)[fold.validation_idx])
            assert not tune & val

    def test_validation_fraction(self):
        groups = self._groups(n_apps=20)
        fold = app_kfold(groups, k=1, validation_fraction=0.2, seed=1)[0]
        assert len(fold.validation_apps) == 4
        assert len(fold.tuning_apps) == 16

    def test_k_folds_generated(self):
        folds = app_kfold(self._groups(), k=32, seed=1)
        assert len(folds) == 32
        # Randomized partitions must differ across folds.
        assert len({fold.validation_apps for fold in folds}) > 16

    def test_max_tuning_apps_caps(self):
        fold = app_kfold(self._groups(20), k=1, seed=1,
                         max_tuning_apps=5)[0]
        assert len(fold.tuning_apps) == 5

    def test_single_app_rejected(self):
        with pytest.raises(DatasetError):
            app_kfold(["only"] * 10, k=2)

    def test_deterministic(self):
        groups = self._groups()
        a = app_kfold(groups, k=4, seed=9)
        b = app_kfold(groups, k=4, seed=9)
        assert [f.validation_apps for f in a] == [f.validation_apps
                                                  for f in b]


class TestLeaveOneOut:
    def test_one_fold_per_app(self):
        groups = np.repeat(["a", "b", "c"], 5)
        folds = leave_one_app_out(groups)
        assert len(folds) == 3
        held = [f.validation_apps[0] for f in folds]
        assert sorted(held) == ["a", "b", "c"]

    def test_all_rows_covered(self):
        groups = np.repeat(["a", "b", "c"], 4)
        for fold in leave_one_app_out(groups):
            assert (len(fold.tuning_idx) + len(fold.validation_idx)
                    == len(groups))


class TestHistogramEncoder:
    def test_feature_shape(self):
        rng = rng_mod.stream(1, "hist")
        x = rng.random((100, 3))
        enc = CounterHistogramEncoder(n_buckets=10)
        features = enc.fit_transform(x)
        assert features.shape == (100, 30)
        assert enc.n_features == 30

    def test_window_one_is_onehot(self):
        x = np.linspace(0, 1, 50)[:, None]
        features = CounterHistogramEncoder(n_buckets=5,
                                           window=1).fit_transform(x)
        assert np.allclose(features.sum(axis=1), 1.0)
        assert set(np.unique(features)) <= {0.0, 1.0}

    def test_window_accumulates(self):
        x = np.concatenate([np.zeros(10), np.ones(10)])[:, None]
        enc = CounterHistogramEncoder(n_buckets=2, window=4)
        features = enc.fit_transform(x)
        # Mid-transition rows mix the two buckets.
        mixed = features[11]
        assert 0.0 < mixed[0] < 1.0

    def test_quantile_strategy_balances_buckets(self):
        rng = rng_mod.stream(2, "hist")
        x = rng.exponential(size=(4000, 1))  # heavy tail
        quant = CounterHistogramEncoder(n_buckets=4, strategy="quantile")
        width = CounterHistogramEncoder(n_buckets=4, strategy="width")
        occ_q = quant.fit_transform(x).mean(axis=0)
        occ_w = width.fit_transform(x).mean(axis=0)
        assert occ_q.std() < occ_w.std()

    def test_invalid_params_rejected(self):
        with pytest.raises(DatasetError):
            CounterHistogramEncoder(n_buckets=1)
        with pytest.raises(DatasetError):
            CounterHistogramEncoder(window=0)
        with pytest.raises(DatasetError):
            CounterHistogramEncoder(strategy="magic")


class TestMetrics:
    def test_confusion_counts(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        counts = confusion_counts(y_true, y_pred)
        assert counts == {"tp": 2, "fp": 1, "tn": 1, "fn": 1}

    def test_recall_precision_f1(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        assert recall(y_true, y_pred) == pytest.approx(2 / 3)
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_fp_rate(self):
        y_true = np.array([0, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1])
        assert false_positive_rate(y_true, y_pred) == pytest.approx(1 / 3)

    def test_degenerate_cases(self):
        empty_pos = np.zeros(4, dtype=int)
        assert recall(empty_pos, empty_pos) == 0.0
        assert precision(empty_pos, empty_pos) == 0.0

    def test_accuracy_validates(self):
        with pytest.raises(DatasetError):
            accuracy(np.zeros(3), np.zeros(4))


class TestHyperScreen:
    def _data(self):
        rng = rng_mod.stream(4, "screen")
        x = rng.normal(size=(600, 4))
        y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
        groups = np.repeat([f"a{i}" for i in range(12)], 50)
        return x, y, groups

    def test_screening_produces_records(self):
        x, y, groups = self._data()
        folds = app_kfold(groups, k=3, seed=1)
        records = screen_configs(
            model_factory=lambda cfg: LogisticRegression(l2=cfg["l2"]),
            configs=[{"l2": 1e-4}, {"l2": 10.0}],
            x=x, y=y, folds=folds,
            metric_fns={"acc": lambda yt, yp, s: accuracy(yt, yp)},
        )
        assert len(records) == 2
        for record in records:
            assert len(record.per_fold["acc"]) == 3
            mean, std = record.metrics["acc"]
            assert 0.0 <= mean <= 1.0 and std >= 0.0

    def test_select_best_prefers_low_std_at_high_mean(self):
        from repro.ml.hyperscreen import ScreenRecord
        records = [
            ScreenRecord(config={"id": "risky"},
                         metrics={"pgos": (0.82, 0.10)},
                         per_fold={"pgos": (0.72, 0.92)}),
            ScreenRecord(config={"id": "stable"},
                         metrics={"pgos": (0.80, 0.02)},
                         per_fold={"pgos": (0.78, 0.82)}),
            ScreenRecord(config={"id": "weak"},
                         metrics={"pgos": (0.40, 0.01)},
                         per_fold={"pgos": (0.39, 0.41)}),
        ]
        best = select_best(records, metric="pgos", mean_margin=0.05)
        assert best.config["id"] == "stable"

    def test_empty_inputs_rejected(self):
        with pytest.raises(DatasetError):
            select_best([])
        with pytest.raises(DatasetError):
            screen_configs(lambda c: LogisticRegression(), [],
                           np.zeros((2, 2)), np.zeros(2), [], {})
