"""Tests for the structural branch predictors, caches and TLBs."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.uarch.branch import (
    BimodalPredictor,
    GsharePredictor,
    measure_mispredict_rate,
)
from repro.uarch.caches import Cache, CacheHierarchy, TLB


class TestBranchPredictors:
    def test_bimodal_learns_biased_branch(self):
        rng = rng_mod.stream(1, "br")
        pcs = np.full(2000, 0x400)
        outcomes = rng.random(2000) < 0.95  # strongly taken
        rate = measure_mispredict_rate(BimodalPredictor(), pcs, outcomes)
        assert rate < 0.12

    def test_gshare_learns_alternating_pattern(self):
        pcs = np.full(2000, 0x400)
        outcomes = np.arange(2000) % 2 == 0  # TNTN...
        bimodal = measure_mispredict_rate(BimodalPredictor(), pcs,
                                          outcomes)
        gshare = measure_mispredict_rate(GsharePredictor(), pcs, outcomes)
        assert gshare < 0.05
        assert gshare < bimodal

    def test_random_branches_unpredictable(self):
        rng = rng_mod.stream(2, "br")
        pcs = rng.integers(0, 1 << 20, 3000)
        outcomes = rng.random(3000) < 0.5
        rate = measure_mispredict_rate(GsharePredictor(), pcs, outcomes)
        assert rate > 0.35

    def test_history_bits_bound(self):
        with pytest.raises(ConfigurationError):
            GsharePredictor(table_bits=8, history_bits=10)

    def test_mismatched_streams_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_mispredict_rate(BimodalPredictor(),
                                    np.zeros(3, dtype=int),
                                    np.zeros(4, dtype=bool))


class TestCache:
    def test_repeated_access_hits(self):
        cache = Cache(32, 8)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_shares_entry(self):
        cache = Cache(32, 8)
        cache.access(0x1000)
        assert cache.access(0x103F)  # same 64B line
        assert not cache.access(0x1040)  # next line

    def test_lru_eviction(self):
        cache = Cache(32, 8, line_bytes=64)
        set_stride = cache.n_sets * 64
        # Fill one set beyond its ways.
        for i in range(9):
            cache.access(i * set_stride)
        assert cache.stats.evictions == 1
        # The first (LRU) line was evicted.
        assert not cache.access(0)

    def test_dirty_eviction_is_writeback(self):
        cache = Cache(32, 8)
        set_stride = cache.n_sets * 64
        cache.access(0, write=True)
        for i in range(1, 9):
            cache.access(i * set_stride)
        assert cache.stats.writebacks == 1
        assert cache.stats.silent_evictions == 0

    def test_clean_eviction_is_silent(self):
        cache = Cache(32, 8)
        set_stride = cache.n_sets * 64
        for i in range(9):
            cache.access(i * set_stride)
        assert cache.stats.silent_evictions == 1
        assert cache.stats.writebacks == 0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            Cache(1, 7, line_bytes=64)


class TestTLB:
    def test_page_locality_hits(self):
        tlb = TLB(entries=4)
        assert not tlb.access(0x1000)
        assert tlb.access(0x1800)  # same 4K page
        assert not tlb.access(0x5000)

    def test_capacity_eviction(self):
        tlb = TLB(entries=2)
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x2000)  # evicts page 0
        assert not tlb.access(0x0000)

    def test_invalid_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            TLB(entries=0)


class TestHierarchy:
    def test_miss_walks_down_levels(self):
        hier = CacheHierarchy()
        first = hier.access(0x123456)
        assert first.level == 3  # cold: DRAM
        second = hier.access(0x123456)
        assert second.level == 0  # now L1 resident
        assert second.latency < first.latency

    def test_l1_evict_still_hits_l2(self):
        hier = CacheHierarchy(l1_kib=1, l2_kib=64, l3_kib=256)
        stride = hier.l1.n_sets * 64
        hier.access(0)
        # Thrash the L1 set containing address 0.
        for i in range(1, 10):
            hier.access(i * stride)
        result = hier.access(0)
        assert result.level == 1  # L2 hit after L1 eviction

    def test_tlb_miss_adds_penalty(self):
        hier = CacheHierarchy()
        cold = hier.access(0x9999000)
        assert cold.tlb_miss
        hier.access(0x9999000)
        warm = hier.access(0x9999040)
        assert not warm.tlb_miss
