"""Property-based tests on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import rng as rng_mod
from repro.core.labels import coarsen_cycles
from repro.eval.metrics import pgos, rsv
from repro.ml.base import StandardScaler
from repro.ml.metrics_ml import (
    confusion_counts,
    f1_score,
    precision,
    recall,
)
from repro.ml.tree import DecisionTreeClassifier, entropy


@st.composite
def label_pred_arrays(draw, min_size=4, max_size=256):
    n = draw(st.integers(min_size, max_size))
    y_true = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    y_pred = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    return np.array(y_true), np.array(y_pred)


class TestMetricProperties:
    @settings(max_examples=80, deadline=None)
    @given(label_pred_arrays())
    def test_confusion_partitions_samples(self, arrays):
        y_true, y_pred = arrays
        counts = confusion_counts(y_true, y_pred)
        assert sum(counts.values()) == y_true.shape[0]

    @settings(max_examples=80, deadline=None)
    @given(label_pred_arrays())
    def test_metric_bounds(self, arrays):
        y_true, y_pred = arrays
        for metric in (recall, precision, f1_score, pgos):
            assert 0.0 <= metric(y_true, y_pred) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(label_pred_arrays(min_size=8))
    def test_rsv_bounds_and_perfect_prediction(self, arrays):
        y_true, _ = arrays
        assert rsv(y_true, y_true, 4) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(label_pred_arrays(min_size=8))
    def test_rsv_monotone_in_window_violations(self, arrays):
        y_true, y_pred = arrays
        value = rsv(y_true, y_pred, 4)
        assert 0.0 <= value <= 1.0
        # RSV is invariant to flipping predictions on positive slots
        # from 1 to ... (FPs only involve y_true == 0): force-seizing
        # every true opportunity cannot raise RSV.
        seized = np.where(y_true == 1, 1, y_pred)
        assert rsv(y_true, seized, 4) == pytest.approx(value)


class TestCoarsenProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 10), st.integers(1, 200))
    def test_cycles_conserved_up_to_tail(self, factor, n):
        assume(n >= factor)
        rng = rng_mod.stream(n, "coarse", factor)
        cycles = rng.uniform(1.0, 100.0, n)
        coarse = coarsen_cycles(cycles, factor)
        t_full = (n // factor) * factor
        assert coarse.sum() == pytest.approx(cycles[:t_full].sum())

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 10), st.integers(10, 200))
    def test_shape(self, factor, n):
        cycles = np.ones(n)
        assert coarsen_cycles(cycles, factor).shape == (n // factor,)


class TestScalerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 60), st.integers(1, 8),
           st.integers(0, 2**31 - 1))
    def test_transform_is_affine_invertible(self, n, d, seed):
        rng = rng_mod.stream(seed, "scaler")
        x = rng.normal(3.0, 5.0, (n, d))
        scaler = StandardScaler().fit(x)
        z = scaler.transform(x)
        back = z * scaler.scale_ + scaler.mean_
        assert np.allclose(back, x)


class TestEntropyProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 1000), st.integers(1, 1000))
    def test_entropy_bounds(self, pos, total):
        assume(pos <= total)
        h = float(entropy(np.array(float(pos)), np.array(float(total))))
        assert -1e-9 <= h <= 1.0 + 1e-9

    def test_entropy_maximal_at_half(self):
        h_half = float(entropy(np.array(5.0), np.array(10.0)))
        h_skew = float(entropy(np.array(1.0), np.array(10.0)))
        assert h_half == pytest.approx(1.0)
        assert h_skew < h_half


class TestTreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 6))
    def test_tree_never_exceeds_depth(self, seed, depth):
        rng = rng_mod.stream(seed, "treeprop")
        x = rng.normal(size=(200, 3))
        y = (rng.random(200) < 0.5).astype(int)
        tree = DecisionTreeClassifier(max_depth=depth, min_samples_leaf=2,
                                      min_samples_split=4).fit(x, y)
        assert tree.depth <= depth

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_tree_probabilities_bounded(self, seed):
        rng = rng_mod.stream(seed, "treeprop2")
        x = rng.normal(size=(150, 4))
        y = (x[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        probs = tree.predict_proba(rng.normal(size=(50, 4)))
        assert np.all((probs >= 0.0) & (probs <= 1.0))


class TestFirmwareRoundTripProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_logistic_image_roundtrip(self, seed):
        from repro.firmware import FirmwareVM
        from repro.firmware.codegen import compile_logistic
        from repro.ml import LogisticRegression
        rng = rng_mod.stream(seed, "fwprop")
        x = rng.normal(size=(300, 5))
        y = (x @ rng.normal(size=5) > 0).astype(int)
        model = LogisticRegression().fit(x, y)
        trace = FirmwareVM().run(compile_logistic(model), x[:64])
        assert np.abs(trace.probabilities
                      - model.predict_proba(x[:64])).max() < 1e-4
