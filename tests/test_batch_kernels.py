"""Bit-identity properties of the vectorized batch-simulation kernels.

Three layers each ship a batched implementation next to a reference
path, and every one must be *bit-identical* to it:

* the SoA cycle-model scoreboard vs the per-uop reference loop;
* ``IntervalModel.simulate_batch`` vs looped ``simulate`` (including
  batches that mix LRU hits, disk hits and misses);
* the batched ``AdaptiveCPU.run_many`` closed loop vs per-trace
  ``run`` (one concatenated inference call vs many small ones).
"""

import dataclasses

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.config import batch_sim_enabled, cycle_kernel
from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.pipeline import train_dual_predictor
from repro.data.builders import build_mode_dataset, dataset_from_traces
from repro.exec.parallel import ParallelMap
from repro.exec.simcache import SimCache
from repro.ml.forest import RandomForestClassifier
from repro.ml.mlp import MLPClassifier
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.core_model import ClusteredCoreModel
from repro.uarch.interval_model import IntervalModel
from repro.uarch.isa import (
    MEM_DRAM,
    MEM_L1,
    MEM_L2,
    MEM_L3,
    UopStream,
    UopType,
    synthesize_uops,
)
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application
from repro.workloads.phases import PHASE_LIBRARY, sample_phase_instance


def _assert_same_result(a, b, context=""):
    for field in dataclasses.fields(a):
        va = getattr(a, field.name)
        vb = getattr(b, field.name)
        assert va == vb, (context, field.name, va, vb)


def _stream(types, src1=None, src2=None, mem_level=None,
            mispredicted=None):
    """Hand-built UopStream with benign defaults."""
    types = np.asarray(types, dtype=np.int8)
    n = types.shape[0]
    none = np.full(n, -1, dtype=np.int64)
    levels = np.where(types == UopType.LOAD, MEM_L1, -1).astype(np.int64)
    return UopStream(
        types=types,
        src1=none if src1 is None else np.asarray(src1, dtype=np.int64),
        src2=none if src2 is None else np.asarray(src2, dtype=np.int64),
        mem_level=(levels if mem_level is None
                   else np.asarray(mem_level, dtype=np.int64)),
        mispredicted=(np.zeros(n, dtype=bool) if mispredicted is None
                      else np.asarray(mispredicted, dtype=bool)),
    )


class TestCycleKernelIdentity:
    """SoA scoreboard == reference loop, field for field."""

    @pytest.mark.parametrize("mode", list(Mode))
    def test_archetype_streams(self, mode):
        for i, arch in enumerate(PHASE_LIBRARY[::6]):
            rng = np.random.default_rng(100 + i)
            phase = sample_phase_instance(arch.name, rng)
            stream = synthesize_uops(phase, 6000, seed=17 + i)
            soa = ClusteredCoreModel(mode=mode, kernel="soa")
            ref = ClusteredCoreModel(mode=mode, kernel="reference")
            _assert_same_result(soa.execute(stream), ref.execute(stream),
                                context=(arch.name, mode))

    @pytest.mark.parametrize("mode", list(Mode))
    def test_branch_heavy_stream(self, mode):
        rng = rng_mod.stream(5, "branch-heavy")
        n = 4000
        types = rng.choice(
            [UopType.ALU, UopType.BRANCH], size=n,
            p=[0.4, 0.6]).astype(np.int8)
        mispred = rng.random(n) < 0.5  # pathological misprediction rate
        stream = _stream(types, mispredicted=mispred)
        soa = ClusteredCoreModel(mode=mode, kernel="soa").execute(stream)
        ref = ClusteredCoreModel(
            mode=mode, kernel="reference").execute(stream)
        _assert_same_result(soa, ref, context=("branch-heavy", mode))
        assert soa.branch_mispredicts > 0

    @pytest.mark.parametrize("mode", list(Mode))
    def test_store_burst_stream(self, mode):
        # Long runs of stores slam the store queue and drain logic.
        types = np.tile(
            np.concatenate([np.full(48, UopType.STORE),
                            np.full(4, UopType.ALU)]), 60)
        stream = _stream(types)
        soa = ClusteredCoreModel(mode=mode, kernel="soa").execute(stream)
        ref = ClusteredCoreModel(
            mode=mode, kernel="reference").execute(stream)
        _assert_same_result(soa, ref, context=("store-burst", mode))

    @pytest.mark.parametrize("mode", list(Mode))
    def test_bypass_heavy_stream(self, mode):
        # Tight dependency chains keep values in the bypass window and
        # force steering to chase producers across clusters.
        rng = rng_mod.stream(6, "bypass-heavy")
        n = 4000
        types = rng.choice(
            [UopType.ALU, UopType.MUL, UopType.FP], size=n,
            p=[0.5, 0.25, 0.25]).astype(np.int8)
        idx = np.arange(n)
        src1 = np.maximum(idx - 1, -1)
        src2 = np.where(idx >= 2, idx - 2, -1)
        stream = _stream(types, src1=src1, src2=src2)
        soa = ClusteredCoreModel(mode=mode, kernel="soa").execute(stream)
        ref = ClusteredCoreModel(
            mode=mode, kernel="reference").execute(stream)
        _assert_same_result(soa, ref, context=("bypass-heavy", mode))

    def test_memory_level_mix(self):
        # Loads at every hierarchy level, including DRAM MSHR pressure.
        rng = rng_mod.stream(7, "mem-mix")
        n = 3000
        types = rng.choice(
            [UopType.LOAD, UopType.ALU], size=n, p=[0.6, 0.4]
        ).astype(np.int8)
        levels = np.where(
            types == UopType.LOAD,
            rng.choice([MEM_L1, MEM_L2, MEM_L3, MEM_DRAM], size=n,
                       p=[0.4, 0.3, 0.2, 0.1]),
            -1)
        stream = _stream(types, mem_level=levels)
        for mode in Mode:
            soa = ClusteredCoreModel(mode=mode, kernel="soa")
            ref = ClusteredCoreModel(mode=mode, kernel="reference")
            _assert_same_result(soa.execute(stream), ref.execute(stream),
                                context=("mem-mix", mode))

    def test_unknown_kernel_rejected(self):
        with pytest.raises(Exception):
            ClusteredCoreModel(kernel="simd")

    def test_env_default(self):
        assert cycle_kernel() in ("soa", "reference")
        assert ClusteredCoreModel().kernel == cycle_kernel()

    def test_subclass_hooks_fall_back_to_reference(self):
        class Hooked(ClusteredCoreModel):
            def branch_outcome(self, i, stream):
                return True

        rng = np.random.default_rng(3)
        phase = sample_phase_instance(PHASE_LIBRARY[0].name, rng)
        stream = synthesize_uops(phase, 800, seed=3)
        hooked = Hooked(kernel="soa")
        # The SoA decode assumes trace-annotated outcomes; a subclass
        # overriding a hook must transparently use the reference loop.
        reference = ClusteredCoreModel(kernel="reference").execute(stream)
        assert hooked.execute(stream).branch_mispredicts \
            != reference.branch_mispredicts


def _traces(n, base_seed, intervals=70):
    fams = [{"pointer_chase": 0.5, "compute_fp": 0.5},
            {"bandwidth": 1.0},
            {"branchy": 0.6, "store_burst": 0.4}]
    out = []
    for i in range(n):
        app = generate_application(f"bk{base_seed}_{i}", "test",
                                   fams[i % len(fams)],
                                   seed=base_seed + i)
        out.append(app.workload(0).trace(intervals, 0))
    return out


def _assert_same_interval(a, b, context=""):
    assert a.trace_name == b.trace_name, context
    assert a.mode is b.mode, context
    assert a.interval_instructions == b.interval_instructions, context
    for field in ("ipc", "cycles", "signals"):
        assert np.array_equal(getattr(a, field), getattr(b, field)), \
            (context, field)


class TestSimulateBatchIdentity:
    """Stacked interval passes == looped simulate, bit for bit."""

    def test_batch_matches_loop(self):
        traces = _traces(4, 300)
        looped = IntervalModel()
        batched = IntervalModel()
        batch = batched.simulate_batch(traces)
        for trace in traces:
            for mode in Mode:
                key = (trace.name, trace.seed, trace.n_intervals, mode)
                _assert_same_interval(
                    batch[key], looped.simulate(trace, mode),
                    context=(trace.name, mode))

    def test_mixed_cache_states(self, tmp_path):
        traces = _traces(5, 320)
        cache = SimCache(tmp_path / "sc")
        model = IntervalModel(simcache=cache)
        # Warm trace 0 through the LRU+disk, trace 1 only on disk (a
        # fresh model instance shares the directory but not the LRU).
        model.simulate(traces[0], Mode.HIGH_PERF)
        IntervalModel(simcache=cache).simulate(traces[1], Mode.LOW_POWER)
        batch = model.simulate_batch(traces)
        clean = IntervalModel()
        for trace in traces:
            for mode in Mode:
                key = (trace.name, trace.seed, trace.n_intervals, mode)
                _assert_same_interval(
                    batch[key], clean.simulate(trace, mode),
                    context=(trace.name, mode, "mixed"))

    def test_simulate_both_uses_identical_results(self):
        trace = _traces(1, 340)[0]
        both = IntervalModel().simulate_both(trace)
        clean = IntervalModel()
        for mode in Mode:
            _assert_same_interval(both[mode], clean.simulate(trace, mode),
                                  context=("both", mode))

    def test_mode_subset(self):
        trace = _traces(1, 350)[0]
        model = IntervalModel()
        batch = model.simulate_batch([trace], modes=[Mode.LOW_POWER])
        assert len(batch) == 1
        key = (trace.name, trace.seed, trace.n_intervals, Mode.LOW_POWER)
        _assert_same_interval(batch[key],
                              IntervalModel().simulate(trace,
                                                       Mode.LOW_POWER))


class TestBatchedClosedLoop:
    """run_many's concatenated inference == per-trace run."""

    @pytest.fixture(scope="class")
    def setup(self, tmp_path_factory):
        traces = _traces(5, 400, intervals=80)
        cache = SimCache(tmp_path_factory.mktemp("bk-loop"))
        collector = TelemetryCollector(
            model=IntervalModel(simcache=cache))
        datasets = dataset_from_traces(
            traces[:3], list(range(10)), collector=collector,
            granularity_factor=2)
        return traces, collector, datasets

    @pytest.mark.parametrize("est", ["mlp", "rf"])
    def test_run_many_matches_run(self, setup, est):
        traces, collector, datasets = setup
        factories = {
            "mlp": lambda mode: MLPClassifier(hidden_layers=(8,),
                                              epochs=10, seed=5),
            "rf": lambda mode: RandomForestClassifier(n_trees=3,
                                                      max_depth=4,
                                                      seed=5),
        }
        predictor = train_dual_predictor(est, factories[est], datasets,
                                         2, seed=9)
        cpu = AdaptiveCPU(predictor, collector=collector)
        scalar = [cpu.run(t) for t in traces]
        for pmap in (ParallelMap(backend="serial"),
                     ParallelMap(backend="thread", n_workers=2,
                                 chunk_size=2)):
            batched = cpu.run_many(traces, pmap=pmap)
            for a, b in zip(scalar, batched):
                for field in dataclasses.fields(a):
                    va = getattr(a, field.name)
                    vb = getattr(b, field.name)
                    if isinstance(va, np.ndarray):
                        assert np.array_equal(va, vb), \
                            (est, pmap.backend, field.name)
                    else:
                        assert va == vb, (est, pmap.backend, field.name)


class TestBatchDisableSwitch:
    """REPRO_BATCH_SIM=0 reproduces the scalar flow end to end."""

    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIM", "0")
        assert not batch_sim_enabled()
        traces = _traces(2, 500, intervals=60)
        ds_off = build_mode_dataset(traces, Mode.HIGH_PERF,
                                    list(range(8)))
        monkeypatch.setenv("REPRO_BATCH_SIM", "1")
        assert batch_sim_enabled()
        ds_on = build_mode_dataset(traces, Mode.HIGH_PERF,
                                   list(range(8)))
        assert np.array_equal(ds_off.x, ds_on.x)
        assert np.array_equal(ds_off.y, ds_on.y)

    def test_invalid_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIM", "maybe")
        with pytest.raises(ValueError):
            batch_sim_enabled()
