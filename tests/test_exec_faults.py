"""Chaos-mode tests for the fault-tolerant execution engine.

The resilience contract (``repro.exec``): under any deterministic
fault plan — worker crashes, task hangs, unpicklable payloads,
cache bit-rot, corrupt arena segments — a run either produces results
bit-identical to the fault-free serial path, or raises a typed
:class:`~repro.errors.ExecFaultError`. It never silently returns a
wrong answer. Every equivalence assertion here is exact, never
approximate.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.config import FAULT_SPEC_ENV_VAR
from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.predictor import DualModePredictor
from repro.data.builders import build_mode_dataset
from repro.errors import (
    ArenaIntegrityError,
    ConfigurationError,
    ExecFaultError,
    WorkerTimeoutError,
)
from repro.exec import (
    EXEC_STATS,
    FaultPlan,
    ParallelMap,
    SimCache,
    TraceArena,
    close_pools,
    inject,
    install_fault_plan,
    reset_default,
)
from repro.exec import parallel as parallel_mod
from repro.exec.arena import MAGIC, _PREFIX_LEN
from repro.exec.faults import active_plan
from repro.exec.simcache import _flip_byte
from repro.ml.base import Estimator
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.interval_model import IntervalModel
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application


def _square(i):
    return i * i


def _inverse(i):
    return 1 // i


class _ConstModel(Estimator):
    """Fixed-probability model; module level so process pools can
    pickle it."""

    def __init__(self, prob: float) -> None:
        self.prob = prob
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return np.full(x.shape[0], self.prob)


@pytest.fixture(autouse=True)
def _fault_hygiene(monkeypatch):
    """No plan leaks in or out of a test; pools never outlive one."""
    reset_default()
    install_fault_plan(None)
    monkeypatch.delenv(FAULT_SPEC_ENV_VAR, raising=False)
    yield
    install_fault_plan(None)
    close_pools()
    reset_default()


@pytest.fixture(scope="module")
def traces():
    out = []
    for i, family in enumerate(["pointer_chase", "compute_fp",
                                "store_burst"]):
        app = generate_application(f"fltapp{i}", "test", {family: 1.0},
                                   seed=60 + i)
        out.extend(app.workload(w).trace(80, 0) for w in range(2))
    return out


@pytest.fixture(scope="module")
def predictor():
    return DualModePredictor(
        name="const",
        models={Mode.HIGH_PERF: _ConstModel(0.7),
                Mode.LOW_POWER: _ConstModel(0.4)},
        counter_ids=np.array([0, 1, 2]),
        granularity_factor=1,
    )


def _results_equal(a, b, context=""):
    assert a.trace_name == b.trace_name, context
    assert np.array_equal(a.modes, b.modes), context
    assert np.array_equal(a.ipc, b.ipc), context
    assert np.array_equal(a.cycles, b.cycles), context
    assert a.energy_j == b.energy_j, context
    assert a.switch_count == b.switch_count, context


class TestFaultPlan:
    def test_parse_and_spec_round_trip(self):
        plan = FaultPlan.parse("seed=7,crash=0.05,corrupt_cache=0.1,"
                               "hang_s=0.5")
        assert plan.seed == 7
        assert plan.crash == 0.05
        assert plan.corrupt_cache == 0.1
        assert plan.hang_s == 0.5
        assert FaultPlan.parse(plan.spec()) == plan

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("bogus")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("unknown_kind=0.5")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("crash=lots")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("crash=1.5")
        with pytest.raises(ConfigurationError):
            FaultPlan(hang_s=-1.0)

    def test_fires_is_deterministic_and_rate_bounded(self):
        plan = FaultPlan(seed=11, crash=0.3)
        first = [plan.fires("crash", f"site{i}") for i in range(2000)]
        second = [plan.fires("crash", f"site{i}") for i in range(2000)]
        assert first == second
        rate = sum(first) / len(first)
        assert 0.25 < rate < 0.35
        assert not any(FaultPlan(seed=11).fires("crash", f"site{i}")
                       for i in range(100))
        assert all(FaultPlan(seed=11, crash=1.0).fires("crash", f"s{i}")
                   for i in range(100))

    def test_occurrences_draw_fresh_decisions(self):
        plan = FaultPlan(seed=4, corrupt_cache=0.5)
        draws = {plan.fires("corrupt_cache", "key", occurrence=i)
                 for i in range(64)}
        assert draws == {True, False}

    def test_install_overrides_env(self, monkeypatch):
        assert active_plan() is None
        monkeypatch.setenv(FAULT_SPEC_ENV_VAR, "seed=1,crash=0.2")
        assert active_plan() == FaultPlan(seed=1, crash=0.2)
        installed = FaultPlan(seed=9, hang=0.4)
        install_fault_plan(installed)
        assert active_plan() is installed
        install_fault_plan(None)
        assert active_plan() == FaultPlan(seed=1, crash=0.2)


class TestCrashRecovery:
    def test_thread_crash_retries_then_serial(self):
        expected = [_square(i) for i in range(9)]
        with inject(FaultPlan(seed=0, crash=1.0)):
            pmap = ParallelMap(backend="thread", n_workers=2,
                               chunk_size=3, retries=1)
            retries_before = EXEC_STATS.count("parallel.retries")
            serial_before = EXEC_STATS.count("parallel.fallback_serial")
            assert pmap.map(_square, range(9),
                            stage="unit_tcrash") == expected
        assert EXEC_STATS.count("parallel.retries") >= retries_before + 1
        assert (EXEC_STATS.count("parallel.fallback_serial")
                == serial_before + 1)
        assert EXEC_STATS.count("faults.injected.crash") >= 2

    def test_process_crash_walks_the_full_ladder(self, monkeypatch):
        close_pools()  # new pools must fork with the spec in their env
        monkeypatch.setenv(FAULT_SPEC_ENV_VAR, "seed=0,crash=1.0")
        pmap = ParallelMap(backend="process", n_workers=2,
                           chunk_size=3, retries=2)
        rebuilds = EXEC_STATS.count("parallel.pool_rebuild")
        degrades = EXEC_STATS.count("parallel.degrade_thread")
        fallbacks = EXEC_STATS.count("parallel.fallback_serial")
        expected = [_square(i) for i in range(10)]
        assert pmap.map(_square, range(10),
                        stage="unit_pcrash") == expected
        assert EXEC_STATS.count("parallel.pool_rebuild") == rebuilds + 1
        assert (EXEC_STATS.count("parallel.degrade_thread")
                == degrades + 1)
        assert (EXEC_STATS.count("parallel.fallback_serial")
                == fallbacks + 1)

    def test_genuine_task_error_is_never_retried(self):
        with inject(FaultPlan(seed=0)):
            pmap = ParallelMap(backend="thread", n_workers=2, retries=3)
            retries_before = EXEC_STATS.count("parallel.retries")
            with pytest.raises(ZeroDivisionError):
                pmap.map(_inverse, [1, 0, 2], stage="unit_generr")
            assert EXEC_STATS.count("parallel.retries") == retries_before


class TestTimeouts:
    def test_hang_recovered_by_retry(self):
        # A plan whose hang fires on attempt 0 but not on attempt 1 at
        # the (stage, first_index) site the single chunk maps to.
        seed = next(
            s for s in range(4000)
            if FaultPlan(seed=s, hang=0.6).fires("hang", "unit_hrec/0/0")
            and not FaultPlan(seed=s, hang=0.6).fires("hang",
                                                      "unit_hrec/0/1")
        )
        expected = [_square(i) for i in range(6)]
        with inject(FaultPlan(seed=seed, hang=0.6, hang_s=0.4)):
            pmap = ParallelMap(backend="thread", n_workers=2,
                               chunk_size=10, retries=2, timeout=0.05)
            timeouts_before = EXEC_STATS.count("parallel.timeouts")
            assert pmap.map(_square, range(6),
                            stage="unit_hrec") == expected
        assert (EXEC_STATS.count("parallel.timeouts")
                == timeouts_before + 1)

    def test_timeout_exhaustion_raises_typed_error(self):
        with inject(FaultPlan(seed=0, hang=1.0, hang_s=0.4)):
            pmap = ParallelMap(backend="thread", n_workers=2,
                               chunk_size=20, retries=1, timeout=0.05)
            with pytest.raises(WorkerTimeoutError):
                pmap.map(_square, range(4), stage="unit_hfatal")
        assert EXEC_STATS.count("parallel.timeouts") >= 2

    def test_retries_and_timeout_validated(self):
        with pytest.raises(ConfigurationError):
            ParallelMap(retries=-1)
        with pytest.raises(ConfigurationError):
            ParallelMap(timeout=0)

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_RETRIES", "5")
        monkeypatch.setenv("REPRO_EXEC_TIMEOUT", "2.5")
        pmap = ParallelMap()
        assert pmap._retries() == 5
        assert pmap._timeout() == 2.5
        monkeypatch.setenv("REPRO_EXEC_TIMEOUT", "0")
        assert pmap._timeout() is None
        assert ParallelMap(retries=0, timeout=9.0)._retries() == 0


class TestPayloadFaults:
    def test_payload_fault_falls_back_serial(self):
        expected = [_square(i) for i in range(8)]
        with inject(FaultPlan(seed=0, payload=1.0)):
            serial_before = EXEC_STATS.count("parallel.fallback_serial")
            pmap = ParallelMap(backend="process", n_workers=2)
            assert pmap.map(_square, range(8),
                            stage="unit_payload") == expected
            assert (EXEC_STATS.count("parallel.fallback_serial")
                    == serial_before + 1)
        assert EXEC_STATS.count("faults.injected.payload") >= 1


class TestSimCacheIntegrity:
    def _stale_digest_entry(self, cache):
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, __meta__=np.array(json.dumps({"m": 1})),
                 __digest__=np.array("0" * 64), a=np.arange(3))
        return key, path

    def test_digest_mismatch_quarantined(self, tmp_path):
        cache = SimCache(tmp_path / "c")
        key, path = self._stale_digest_entry(cache)
        quarantined = EXEC_STATS.count("simcache.quarantine")
        assert cache._read(key) is None
        assert EXEC_STATS.count("simcache.quarantine") == quarantined + 1
        assert not path.exists()
        assert (cache.root / "quarantine" / path.name).exists()

    def test_verify_can_be_disabled(self, monkeypatch, tmp_path):
        cache = SimCache(tmp_path / "c")
        key, _ = self._stale_digest_entry(cache)
        monkeypatch.setenv("REPRO_SIMCACHE_VERIFY", "0")
        entry = cache._read(key)
        assert entry is not None
        payload, meta = entry
        assert meta == {"m": 1}
        assert np.array_equal(payload["a"], np.arange(3))

    def test_flipped_byte_detected_and_recomputed(self, traces, tmp_path):
        trace = traces[0]
        plain = IntervalModel(simcache=None).simulate(trace,
                                                      Mode.LOW_POWER)
        cache = SimCache(tmp_path / "c")
        model = IntervalModel(simcache=cache)
        model.simulate(trace, Mode.LOW_POWER)
        key = cache.sim_key(trace, Mode.LOW_POWER, model.machine)
        _flip_byte(cache._path(key))
        quarantined = EXEC_STATS.count("simcache.quarantine")
        reloaded = IntervalModel(simcache=cache).simulate(
            trace, Mode.LOW_POWER)
        assert EXEC_STATS.count("simcache.quarantine") == quarantined + 1
        assert np.array_equal(plain.ipc, reloaded.ipc)
        assert np.array_equal(plain.cycles, reloaded.cycles)
        assert np.array_equal(plain.signals, reloaded.signals)

    def test_injected_corruption_recovers_bit_identical(self, traces,
                                                        tmp_path):
        trace = traces[1]
        plain = IntervalModel(simcache=None).simulate(trace,
                                                      Mode.LOW_POWER)
        cache = SimCache(tmp_path / "c")
        IntervalModel(simcache=cache).simulate(trace, Mode.LOW_POWER)
        quarantined = EXEC_STATS.count("simcache.quarantine")
        with inject(FaultPlan(seed=0, corrupt_cache=1.0)):
            loaded = IntervalModel(simcache=cache).simulate(
                trace, Mode.LOW_POWER)
        assert EXEC_STATS.count("simcache.quarantine") == quarantined + 1
        assert EXEC_STATS.count("faults.injected.corrupt_cache") >= 1
        assert np.array_equal(plain.ipc, loaded.ipc)
        assert np.array_equal(plain.signals, loaded.signals)

    def test_chaotic_cached_dataset_bit_identical(self, traces, tmp_path):
        ids = [0, 1, 2]
        plain = build_mode_dataset(traces, Mode.HIGH_PERF, ids,
                                   collector=TelemetryCollector())
        cache = SimCache(tmp_path / "d")
        with inject(FaultPlan(seed=3, corrupt_cache=0.5)):
            first = build_mode_dataset(traces, Mode.HIGH_PERF, ids,
                                       collector=TelemetryCollector(),
                                       simcache=cache)
            second = build_mode_dataset(traces, Mode.HIGH_PERF, ids,
                                        collector=TelemetryCollector(),
                                        simcache=cache)
        for ds in (first, second):
            assert np.array_equal(plain.x, ds.x)
            assert np.array_equal(plain.y, ds.y)
            assert np.array_equal(plain.groups, ds.groups)


class TestArenaIntegrity:
    def test_truncated_segment_rejected(self, traces, tmp_path):
        arena = TraceArena.build(traces[:2])
        try:
            blob = Path(arena.handle).read_bytes()
            bad = tmp_path / "trunc.bin"
            bad.write_bytes(blob[:len(MAGIC) + 4])
            with pytest.raises(ArenaIntegrityError):
                TraceArena.attach(str(bad))
        finally:
            arena.close()

    def test_corrupt_header_fails_checksum(self, traces, tmp_path):
        arena = TraceArena.build(traces[:2])
        try:
            blob = bytearray(Path(arena.handle).read_bytes())
            blob[len(MAGIC) + _PREFIX_LEN + 3] ^= 0xFF
            bad = tmp_path / "rot.bin"
            bad.write_bytes(bytes(blob))
            with pytest.raises(ArenaIntegrityError):
                TraceArena.attach(str(bad))
        finally:
            arena.close()

    def test_injected_attach_fault_falls_back_bit_identical(
            self, traces, predictor, monkeypatch):
        cpu = AdaptiveCPU(predictor, collector=TelemetryCollector())
        serial = cpu.run_many(traces,
                              pmap=ParallelMap(backend="serial"))
        close_pools()
        monkeypatch.setenv(FAULT_SPEC_ENV_VAR, "seed=1,corrupt_arena=1.0")
        monkeypatch.setenv("REPRO_EXEC_ARENA", "1")
        fallbacks = EXEC_STATS.count("arena.attach_fallback")
        chaotic = cpu.run_many(
            traces, pmap=ParallelMap(backend="process", n_workers=2))
        assert (EXEC_STATS.count("arena.attach_fallback")
                == fallbacks + 1)
        for rs, rc in zip(serial, chaotic):
            _results_equal(rs, rc, "corrupt_arena")


class TestChaosEquivalence:
    """The headline contract, end to end: any plan, any backend —
    bit-identical results or a typed error, never a wrong answer."""

    PLANS = (
        "seed=3,crash=0.3",
        "seed=5,hang=0.2,hang_s=0.05",
        "seed=2,corrupt_arena=1.0",
        "seed=9,payload=1.0",
    )

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("spec", PLANS)
    def test_run_many_under_chaos(self, traces, predictor, monkeypatch,
                                  spec, backend):
        cpu = AdaptiveCPU(predictor, collector=TelemetryCollector())
        serial = cpu.run_many(traces,
                              pmap=ParallelMap(backend="serial"))
        close_pools()  # pools must fork after the spec lands in env
        monkeypatch.setenv(FAULT_SPEC_ENV_VAR, spec)
        pmap = ParallelMap(backend=backend, n_workers=2, retries=2,
                           timeout=30.0)
        try:
            chaotic = cpu.run_many(traces, pmap=pmap)
        except ExecFaultError:
            return  # typed surrender is allowed; silent wrongness is not
        for rs, rc in zip(serial, chaotic):
            _results_equal(rs, rc, f"{spec}/{backend}")

    def test_serial_injected_run_is_fault_free_identical(
            self, traces, predictor, monkeypatch):
        """Crash/hang faults only exist where there is a worker, so a
        serial run under an aggressive plan is still bit-identical."""
        cpu = AdaptiveCPU(predictor, collector=TelemetryCollector())
        baseline = cpu.run_many(traces,
                                pmap=ParallelMap(backend="serial"))
        with inject(FaultPlan(seed=0, crash=1.0, hang=1.0, hang_s=0.0)):
            injected = cpu.run_many(traces,
                                    pmap=ParallelMap(backend="serial"))
        for rs, ri in zip(baseline, injected):
            _results_equal(rs, ri, "serial-under-injection")


class TestPoolHygiene:
    def test_close_pools_drains_discarded(self):
        pool = parallel_mod._get_pool("thread", 2)
        parallel_mod._discard_pool("thread", 2, pool)
        assert pool in parallel_mod._DISCARDED_POOLS
        close_pools()
        assert not parallel_mod._DISCARDED_POOLS
        assert ("thread", 2) not in parallel_mod._POOLS


class TestResilienceReport:
    def test_report_has_resilience_section(self):
        EXEC_STATS.incr("parallel.retries")
        EXEC_STATS.incr("faults.injected.crash")
        text = EXEC_STATS.report()
        assert "resilience:" in text
        assert "parallel.retries" in text
        assert "faults.injected.crash" in text
        resilience = EXEC_STATS.resilience()
        assert resilience["parallel.retries"] >= 1
        assert resilience["faults.injected.crash"] >= 1
