"""Property-based tests on the control loop and firmware invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import rng as rng_mod
from repro.core.gating import GatingController
from repro.core.predictor import DualModePredictor
from repro.ml.base import Estimator
from repro.uarch.modes import Mode


class _ArrayModel(Estimator):
    """Replays a fixed probability array."""

    def __init__(self, probs):
        self.probs = np.asarray(probs, dtype=float)
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return self.probs[:x.shape[0]]


def _controller(hp_probs, lp_probs, horizon=2):
    predictor = DualModePredictor(
        "prop",
        {Mode.HIGH_PERF: _ArrayModel(hp_probs),
         Mode.LOW_POWER: _ArrayModel(lp_probs)},
        np.array([0]), 1)
    return GatingController(predictor, horizon=horizon)


@st.composite
def prob_pair(draw):
    n = draw(st.integers(6, 80))
    hp = draw(st.lists(st.floats(0.0, 1.0), min_size=n, max_size=n))
    lp = draw(st.lists(st.floats(0.0, 1.0), min_size=n, max_size=n))
    return np.array(hp), np.array(lp)


class TestControllerProperties:
    @settings(max_examples=60, deadline=None)
    @given(prob_pair(), st.integers(1, 4))
    def test_first_horizon_intervals_high_perf(self, pair, horizon):
        hp, lp = pair
        controller = _controller(hp, lp, horizon=horizon)
        modes, _, _ = controller.schedule(
            {Mode.HIGH_PERF: hp, Mode.LOW_POWER: lp}, trace_seed=1)
        assert np.all(modes[:horizon] == 0)

    @settings(max_examples=60, deadline=None)
    @given(prob_pair())
    def test_switch_accounting_matches_transitions(self, pair):
        hp, lp = pair
        controller = _controller(hp, lp)
        modes, cycles, counts = controller.schedule(
            {Mode.HIGH_PERF: hp, Mode.LOW_POWER: lp}, trace_seed=1)
        transitions = int(np.abs(np.diff(modes)).sum())
        assert int(counts.sum()) == transitions
        assert np.all(cycles[counts == 0] == 0.0)
        assert np.all(cycles[counts == 1] > 0.0)

    @settings(max_examples=60, deadline=None)
    @given(prob_pair())
    def test_decision_provenance(self, pair):
        """Every mode decision must equal thresholding the probability
        of the mode active ``horizon`` intervals earlier."""
        hp, lp = pair
        controller = _controller(hp, lp)
        probs = {Mode.HIGH_PERF: hp, Mode.LOW_POWER: lp}
        modes, _, _ = controller.schedule(probs, trace_seed=1)
        for t in range(2, modes.shape[0]):
            src = Mode.LOW_POWER if modes[t - 2] else Mode.HIGH_PERF
            expected = int(probs[src][t - 2] >= 0.5)
            assert modes[t] == expected

    @settings(max_examples=40, deadline=None)
    @given(prob_pair())
    def test_deterministic(self, pair):
        hp, lp = pair
        probs = {Mode.HIGH_PERF: hp, Mode.LOW_POWER: lp}
        a = _controller(hp, lp).schedule(probs, trace_seed=9)
        b = _controller(hp, lp).schedule(probs, trace_seed=9)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])


class TestFirmwareProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 3),
           st.integers(2, 6))
    def test_forest_vm_parity_random_models(self, seed, n_trees, depth):
        from repro.firmware import FirmwareVM, compile_model
        from repro.ml import RandomForestClassifier
        rng = rng_mod.stream(seed, "fw-prop")
        x = rng.normal(size=(300, 5))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = RandomForestClassifier(n_trees, depth, seed=seed)
        model.fit(x, y)
        trace = FirmwareVM().run(compile_model(model), x[:64])
        host = model.predict_proba(x[:64])
        assert np.abs(trace.probabilities - host).max() < 0.01

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_image_checksum_detects_any_flip(self, seed):
        import dataclasses
        from repro.core.predictor import DualModePredictor
        from repro.firmware.deploy import package_firmware
        from repro.ml import LogisticRegression
        rng = rng_mod.stream(seed, "chk")
        x = rng.normal(size=(120, 4))
        y = (x[:, 0] > 0).astype(int)
        predictor = DualModePredictor(
            "chk", {m: LogisticRegression().fit(x, y) for m in Mode},
            np.arange(4), 1)
        image = package_firmware(predictor)
        flip_at = int(rng.integers(
            len(image.programs[Mode.HIGH_PERF].image)))
        raw = bytearray(image.programs[Mode.HIGH_PERF].image)
        raw[flip_at] ^= 0x01
        tampered = dataclasses.replace(
            image,
            programs={
                Mode.HIGH_PERF: dataclasses.replace(
                    image.programs[Mode.HIGH_PERF], image=bytes(raw)),
                Mode.LOW_POWER: image.programs[Mode.LOW_POWER],
            })
        assert image.verify()
        assert not tampered.verify()
