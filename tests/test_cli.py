"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_evaluate_model_choices(self):
        args = build_parser().parse_args(["evaluate", "--model",
                                          "charstar"])
        assert args.model == "charstar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--model", "nope"])


class TestCommands:
    def test_budget(self, capsys):
        assert main(["budget"]) == 0
        out = capsys.readouterr().out
        assert "156" in out and "1562" in out

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "counters: 936" in out
        assert "Store Queue Occupancy" in out

    def test_counters(self, capsys):
        assert main(["counters", "-r", "4", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 4

    def test_residency(self, capsys):
        assert main(["residency", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "AVERAGE" in out
        assert "654.roms_s" in out

    def test_demo(self, capsys):
        assert main(["demo", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "ppw_gain" in out
