"""Tests for firmware compilation, the VM, budgets and deployment."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.errors import BudgetExceededError, ConfigurationError, NotFittedError
from repro.firmware import (
    FirmwareStore,
    FirmwareVM,
    Microcontroller,
    compile_model,
    cost_report,
)
from repro.firmware.codegen import (
    compile_forest,
    compile_logistic,
    compile_mlp,
    compile_srch,
    compile_tree,
)
from repro.firmware.deploy import package_firmware
from repro.firmware.opcount import forest_ops, mlp_ops
from repro.ml import (
    DecisionTreeClassifier,
    KernelSVM,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)


@pytest.fixture(scope="module")
def data():
    rng = rng_mod.stream(1, "fw")
    x = np.abs(rng.normal(1.0, 0.5, (1500, 12)))
    y = ((x[:, 0] * x[:, 1] > x[:, 2]) | (x[:, 3] > 1.5)).astype(int)
    return x, y


@pytest.fixture(scope="module")
def vm():
    return FirmwareVM()


class TestBudgetTable:
    def test_compute_ratio_is_32(self):
        assert Microcontroller().compute_ratio == pytest.approx(32.0)

    def test_budget_rows_match_table3(self):
        rows = {r.granularity: (r.max_ops, r.ops_budget)
                for r in Microcontroller().budget_table()}
        assert rows[10_000] == (312, 156)
        assert rows[40_000] == (1250, 625)
        assert rows[100_000] == (3125, 1562)

    def test_finest_granularity_placements(self):
        """The paper's model placements: RF@40k, Best MLP@50k."""
        uc = Microcontroller()
        assert uc.finest_granularity(538) == 40_000
        assert uc.finest_granularity(678) == 50_000
        assert uc.finest_granularity(292) == 20_000

    def test_over_budget_model_rejected(self):
        with pytest.raises(BudgetExceededError):
            Microcontroller().finest_granularity(10_000)

    def test_fits_checks_memory_too(self):
        uc = Microcontroller()
        assert uc.fits(100, 10_000)
        assert not uc.fits(100, 10_000, memory_bytes=1 << 30)


class TestOpsFormulas:
    def test_best_mlp_cost_near_paper(self):
        """Paper: 3-layer 8/8/4 on 12 counters costs 678 ops."""
        ops = mlp_ops([12, 8, 8, 4, 1])
        assert abs(ops - 678) <= 15

    def test_large_mlp_cost_near_paper(self):
        """Paper: 3-layer 32/32/16 costs 6,162 ops."""
        ops = mlp_ops([12, 32, 32, 16, 1])
        assert abs(ops - 6162) / 6162 < 0.02

    def test_best_rf_cost_near_paper(self):
        """Paper: 8 trees of depth 8 cost 538 ops."""
        assert abs(forest_ops(8, 8) - 538) <= 10

    def test_depth16_tree_near_paper(self):
        """Paper: one depth-16 tree costs 133 ops."""
        assert abs(forest_ops(1, 16) - 133) <= 10


class TestCompileAndVM:
    def test_mlp_parity(self, data, vm):
        x, y = data
        model = MLPClassifier(hidden_layers=(8, 8, 4), epochs=15,
                              seed=2).fit(x, y)
        program = compile_mlp(model)
        trace = vm.run(program, x[:300])
        host = model.predict_proba(x[:300])
        assert np.abs(trace.probabilities - host).max() < 1e-4
        assert (trace.predictions == model.predict(x[:300])).mean() > 0.999

    def test_forest_parity(self, data, vm):
        x, y = data
        model = RandomForestClassifier(n_trees=8, max_depth=8,
                                       seed=2).fit(x, y)
        program = compile_forest(model)
        trace = vm.run(program, x[:300])
        host = model.predict_proba(x[:300])
        # Leaf probabilities quantised to 1/255.
        assert np.abs(trace.probabilities - host).max() < 0.01

    def test_tree_padding_preserves_semantics(self, data, vm):
        x, y = data
        model = DecisionTreeClassifier(max_depth=6).fit(x, y)
        program = compile_tree(model)
        trace = vm.run(program, x[:300])
        host = model.predict_proba(x[:300])
        assert np.abs(trace.probabilities - host).max() < 0.01

    def test_logistic_parity(self, data, vm):
        x, y = data
        model = LogisticRegression().fit(x, y)
        program = compile_logistic(model)
        trace = vm.run(program, x[:300])
        assert np.abs(trace.probabilities
                      - model.predict_proba(x[:300])).max() < 1e-5

    def test_linear_svm_parity(self, data, vm):
        x, y = data
        model = LinearSVM(n_members=5, seed=1).fit(x, y)
        trace = vm.run(compile_model(model), x[:200])
        assert np.abs(trace.probabilities
                      - model.predict_proba(x[:200])).max() < 1e-4

    def test_kernel_svm_parity(self, data, vm):
        x, y = data
        model = KernelSVM(kernel="chi2", max_support_vectors=150,
                          max_passes=2, seed=1).fit(x[:600], y[:600])
        trace = vm.run(compile_model(model), x[:100])
        assert np.abs(trace.probabilities
                      - model.predict_proba(x[:100])).max() < 1e-4

    def test_srch_parity(self, data, vm):
        from repro.core.pipeline import SRCHEstimator
        x, y = data
        model = SRCHEstimator().fit(x, y)
        trace = vm.run(compile_srch(model), x[:200])
        assert np.abs(trace.probabilities
                      - model.predict_proba(x[:200])).max() < 1e-4

    def test_ops_metered_equal_static(self, data, vm):
        x, y = data
        model = RandomForestClassifier(n_trees=4, max_depth=6,
                                       seed=2).fit(x, y)
        program = compile_model(model)
        trace = vm.run(program, x[:50])
        assert trace.ops_per_prediction == program.ops_per_prediction
        assert trace.ops_executed == 50 * program.ops_per_prediction

    def test_threshold_embedded(self, data, vm):
        x, y = data
        model = LogisticRegression().fit(x, y)
        model.decision_threshold = 0.9
        program = compile_logistic(model)
        trace = vm.run(program, x[:200])
        expected = (model.predict_proba(x[:200]) >= 0.9)
        assert (trace.predictions == expected).mean() > 0.99

    def test_unfitted_model_rejected(self):
        with pytest.raises(NotFittedError):
            compile_mlp(MLPClassifier())

    def test_wrong_input_width_rejected(self, data, vm):
        x, y = data
        program = compile_logistic(LogisticRegression().fit(x, y))
        with pytest.raises(ConfigurationError):
            vm.run(program, x[:10, :5])

    def test_cost_report_fields(self, data):
        x, y = data
        model = RandomForestClassifier(n_trees=8, max_depth=8,
                                       seed=1).fit(x, y)
        report = cost_report(model, "best_rf")
        assert report.finest_granularity == 40_000
        assert report.ops_per_prediction == forest_ops(8, 8)
        assert report.memory_bytes > 0
        # Paper accounting: 5 bytes/node on full trees = 20.44 KB.
        assert report.paper_footprint_bytes == pytest.approx(20_440)


class TestDeploy:
    def _predictor(self, data):
        from repro.core.predictor import DualModePredictor
        from repro.uarch.modes import Mode
        x, y = data
        models = {mode: LogisticRegression().fit(x, y) for mode in Mode}
        return DualModePredictor("lr", models, np.arange(12), 4)

    def test_package_and_verify(self, data):
        image = package_firmware(self._predictor(data))
        assert image.verify()
        assert image.total_bytes > 0
        assert "checksum" in image.manifest()

    def test_tampered_image_rejected(self, data):
        import dataclasses
        image = package_firmware(self._predictor(data))
        bad = dataclasses.replace(image, checksum="0" * 64)
        store = FirmwareStore()
        with pytest.raises(ConfigurationError):
            store.install(bad)

    def test_install_activate_rollback(self, data):
        store = FirmwareStore()
        v1 = package_firmware(self._predictor(data), version=1)
        v2 = package_firmware(self._predictor(data), version=2)
        store.install(v1)
        store.install(v2)
        assert store.active.version == 2
        rolled = store.rollback()
        assert rolled.version == 1
        assert store.active.version == 1

    def test_activate_by_name(self, data):
        store = FirmwareStore()
        v1 = package_firmware(self._predictor(data), version=1)
        v2 = package_firmware(self._predictor(data), version=2)
        store.install(v1)
        store.install(v2, activate=False)
        assert store.active.version == 1
        store.activate("lr", 2)
        assert store.active.version == 2

    def test_rollback_without_history_rejected(self):
        with pytest.raises(ConfigurationError):
            FirmwareStore().rollback()

    def test_capacity_evicts_oldest_inactive(self, data):
        store = FirmwareStore(capacity=2)
        for version in (1, 2, 3):
            store.install(package_firmware(self._predictor(data),
                                           version=version))
        versions = [img.version for img in store.history]
        assert len(versions) == 2
        assert store.active.version == 3
