"""Tests for dataset containers, builders, labels and caching."""

import numpy as np
import pytest

from repro.config import DEFAULT_SLA, SLAConfig
from repro.core.labels import coarsen_cycles, gating_labels, ideal_residency
from repro.data.builders import (
    PREDICTION_HORIZON,
    build_mode_dataset,
    dataset_from_traces,
    hdtr_traces,
)
from repro.data.dataset import (
    DatasetAssembler,
    GatingDataset,
    concat_datasets,
)
from repro.data.store import cached_build, load_dataset, save_dataset
from repro.errors import DatasetError
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import default_catalog
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application


@pytest.fixture(scope="module")
def collector():
    return TelemetryCollector()


@pytest.fixture(scope="module")
def traces():
    apps = [
        generate_application(
            f"dsapp{i}", "test",
            {"pointer_chase": 0.5, "compute_fp": 0.3, "balanced": 0.2},
            seed=50 + i)
        for i in range(4)
    ]
    out = []
    for app in apps:
        for input_id in range(2):
            out.append(app.workload(input_id).trace(80, 0))
    return out


class TestLabels:
    def test_labels_match_ratio_threshold(self, collector, traces):
        labels = gating_labels(traces[0], model=collector.model)
        expected = (labels.ratio >= DEFAULT_SLA.performance_floor)
        assert np.array_equal(labels.labels, expected.astype(np.int64))

    def test_relaxed_sla_gates_more(self, collector, traces):
        strict = gating_labels(traces[0], SLAConfig(performance_floor=0.95),
                               collector.model)
        relaxed = gating_labels(traces[0], SLAConfig(performance_floor=0.7),
                                collector.model)
        assert relaxed.residency >= strict.residency

    def test_coarsening_aggregates_cycles(self, collector, traces):
        fine = gating_labels(traces[0], model=collector.model)
        coarse = gating_labels(traces[0], model=collector.model,
                               granularity_factor=4)
        assert coarse.n_intervals == fine.n_intervals // 4
        assert coarse.cycles_high[0] == pytest.approx(
            fine.cycles_high[:4].sum())

    def test_coarsen_cycles_validation(self):
        with pytest.raises(DatasetError):
            coarsen_cycles(np.ones(3), 0)
        with pytest.raises(DatasetError):
            coarsen_cycles(np.ones(3), 5)

    def test_ideal_residency_in_unit_range(self, collector, traces):
        res = ideal_residency(traces, model=collector.model)
        assert 0.0 <= res <= 1.0


class TestBuilders:
    def test_feature_label_alignment(self, collector, traces):
        """x_t must pair with y_{t+2} (Figure 3)."""
        trace = traces[0]
        ids = default_catalog().table4_ids
        ds = build_mode_dataset([trace], Mode.HIGH_PERF, ids,
                                collector=collector)
        labels = gating_labels(trace, model=collector.model)
        t_count = labels.n_intervals
        assert ds.n_samples == t_count - PREDICTION_HORIZON
        assert np.array_equal(ds.y, labels.labels[PREDICTION_HORIZON:])
        snap = collector.snapshot(trace, Mode.HIGH_PERF, ids)
        assert np.allclose(ds.x,
                           snap.normalized[:t_count - PREDICTION_HORIZON])

    def test_groups_and_workloads_recorded(self, collector, traces):
        ids = default_catalog().table4_ids[:4]
        ds = build_mode_dataset(traces, Mode.LOW_POWER, ids,
                                collector=collector)
        assert ds.n_applications == 4
        assert len(np.unique(ds.workloads)) == 8

    def test_granularity_recorded(self, collector, traces):
        ids = [0, 1]
        ds = build_mode_dataset(traces[:2], Mode.HIGH_PERF, ids,
                                collector=collector, granularity_factor=4)
        assert ds.granularity == 40_000

    def test_both_modes_built(self, collector, traces):
        ds = dataset_from_traces(traces[:2], [0, 1], collector=collector)
        assert set(ds) == {Mode.HIGH_PERF, Mode.LOW_POWER}
        assert ds[Mode.HIGH_PERF].n_samples == ds[Mode.LOW_POWER].n_samples

    def test_too_short_trace_rejected(self, collector):
        app = generate_application("tiny", "t", {"balanced": 1.0}, seed=1)
        trace = app.workload(0).trace(5, 0)
        with pytest.raises(DatasetError):
            build_mode_dataset([trace], Mode.HIGH_PERF, [0],
                               collector=collector, granularity_factor=4)

    def test_empty_traces_rejected(self, collector):
        with pytest.raises(DatasetError):
            build_mode_dataset([], Mode.HIGH_PERF, [0],
                               collector=collector)

    def test_hdtr_traces_scaled(self):
        from repro.workloads.categories import hdtr_corpus
        apps = hdtr_corpus(3, counts={"hpc_perf": 2})
        out = hdtr_traces(3, apps=apps, workloads_per_app=3,
                          intervals_per_trace=20)
        assert len(out) == 6
        assert all(t.n_intervals == 20 for t in out)


class TestDatasetContainer:
    def _make(self, collector, traces):
        return build_mode_dataset(traces, Mode.HIGH_PERF, [0, 1],
                                  collector=collector)

    def test_subset_filters_rows(self, collector, traces):
        ds = self._make(collector, traces)
        app = ds.groups[0]
        sub = ds.for_applications([app])
        assert set(np.unique(sub.groups)) == {app}
        assert sub.n_samples < ds.n_samples

    def test_positive_rate(self, collector, traces):
        ds = self._make(collector, traces)
        assert ds.positive_rate == pytest.approx(ds.y.mean())

    def test_concat_roundtrip(self, collector, traces):
        a = self._make(collector, traces[:3])
        b = self._make(collector, traces[3:])
        both = concat_datasets([a, b])
        assert both.n_samples == a.n_samples + b.n_samples

    def test_concat_rejects_mode_mismatch(self, collector, traces):
        a = self._make(collector, traces[:2])
        b = build_mode_dataset(traces[2:4], Mode.LOW_POWER, [0, 1],
                               collector=collector)
        with pytest.raises(DatasetError):
            concat_datasets([a, b])

    def test_misaligned_rows_rejected(self):
        with pytest.raises(DatasetError):
            GatingDataset(
                x=np.zeros((4, 2)), y=np.zeros(3),
                groups=np.array(["a"] * 4),
                workloads=np.array(["w"] * 4),
                traces=np.array(["t"] * 4),
                mode=Mode.HIGH_PERF, counter_ids=np.array([0, 1]),
                granularity=10_000, sla_floor=0.9)

    def test_assembler_matches_concat_bitwise(self, collector, traces):
        parts = [self._make(collector, traces[i:i + 2])
                 for i in range(0, len(traces), 2)]
        whole = concat_datasets(parts)
        assembler = DatasetAssembler()
        for part in parts:
            assembler.append(part)
        assert assembler.n_rows == whole.n_samples
        streamed = assembler.finish()
        for field in ("x", "y", "groups", "workloads", "traces"):
            a = getattr(whole, field)
            b = getattr(streamed, field)
            assert a.dtype == b.dtype and np.array_equal(a, b), field

    def test_assembler_rejects_mode_mismatch(self, collector, traces):
        assembler = DatasetAssembler()
        assembler.append(self._make(collector, traces[:2]))
        other = build_mode_dataset(traces[2:4], Mode.LOW_POWER, [0, 1],
                                   collector=collector)
        with pytest.raises(DatasetError):
            assembler.append(other)

    def test_assembler_rejects_dtype_mismatch(self, collector, traces):
        first = self._make(collector, traces[:2])
        assembler = DatasetAssembler()
        assembler.append(first)
        import dataclasses
        narrowed = dataclasses.replace(
            first, x=first.x.astype(np.float32))
        with pytest.raises(DatasetError):
            assembler.append(narrowed)

    def test_assembler_empty_finish_rejected(self):
        with pytest.raises(DatasetError):
            DatasetAssembler().finish()


class TestStore:
    def test_save_load_roundtrip(self, collector, traces, tmp_path,
                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ds = build_mode_dataset(traces[:2], Mode.HIGH_PERF, [0, 1],
                                collector=collector)
        save_dataset("key1", ds)
        loaded = load_dataset("key1")
        assert loaded is not None
        assert np.allclose(loaded.x, ds.x)
        assert np.array_equal(loaded.y, ds.y)
        assert loaded.mode is ds.mode
        assert loaded.granularity == ds.granularity

    def test_miss_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert load_dataset("nothing-here") is None

    def test_cached_build_builds_once(self, collector, traces, tmp_path,
                                      monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def builder():
            calls.append(1)
            return build_mode_dataset(traces[:2], Mode.HIGH_PERF, [0],
                                      collector=collector)

        first = cached_build("key2", builder)
        second = cached_build("key2", builder)
        assert len(calls) == 1
        assert np.allclose(first.x, second.x)
