#!/usr/bin/env python
"""Tour of the microarchitecture substrate.

Shows the pieces under the experiment pipeline:

* the cycle-level two-cluster core executing synthetic micro-op
  streams of different phase archetypes, in both operating modes,
  including the mode-switch microcode cost;
* the structural cache hierarchy and branch predictors;
* the telemetry catalog: healthy, redundant, rare, dead and stuck
  counters, and what the screening pass removes;
* the event-based power model's breakdown per mode.

Run: ``python examples/explore_microarchitecture.py``
"""

import numpy as np

from repro import rng as rng_mod
from repro.config import experiment_seed
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import default_catalog
from repro.uarch.branch import BimodalPredictor, GsharePredictor, \
    measure_mispredict_rate
from repro.uarch.caches import CacheHierarchy
from repro.uarch.core_model import ClusteredCoreModel, \
    simulate_phase_cycle_level
from repro.uarch.modes import Mode
from repro.uarch.power import PowerModel
from repro.workloads.generator import generate_application
from repro.workloads.phases import get_archetype


def tour_cycle_core(seed: int) -> None:
    print("== Cycle-level core: per-phase IPC in both modes ==")
    print(f"{'phase':24s} {'hp ipc':>7s} {'lp ipc':>7s} {'lp/hp':>6s}")
    for name in ("gemm_tile", "linked_list_walk", "branchy_parser",
                 "store_burst_log", "balanced_mixed"):
        phase = get_archetype(name).sample(rng_mod.stream(seed, name))
        hp = simulate_phase_cycle_level(phase, 8000, Mode.HIGH_PERF, seed)
        lp = simulate_phase_cycle_level(phase, 8000, Mode.LOW_POWER, seed)
        print(f"{name:24s} {hp.ipc:7.2f} {lp.ipc:7.2f} "
              f"{lp.ipc / hp.ipc:6.2f}")
    model = ClusteredCoreModel(mode=Mode.HIGH_PERF)
    print(f"mode-switch microcode: "
          f"{model.mode_switch_cycles(32):.0f} cycles worst case, "
          f"{model.mode_switch_cycles(8):.0f} typical\n")


def tour_memory(seed: int) -> None:
    print("== Structural cache hierarchy ==")
    hierarchy = CacheHierarchy()
    rng = rng_mod.stream(seed, "addr")
    hot = rng.integers(0, 256, 8000) * 64  # 16 KiB working set
    cold = rng.integers(0, 1 << 17, 8000) * 64  # 8 MiB working set
    for name, stream in (("16KiB working set", hot),
                         ("8MiB working set", cold)):
        for addr in stream:
            hierarchy.access(int(addr))
        print(f"  {name}: L1 miss {hierarchy.l1.stats.miss_rate:.1%}, "
              f"L2 miss {hierarchy.l2.stats.miss_rate:.1%}, "
              f"L2 silent evictions "
              f"{hierarchy.l2.stats.silent_evictions}")
        hierarchy.l1.reset_stats()
        hierarchy.l2.reset_stats()

    print("== Branch predictors on a loop-heavy stream ==")
    pcs = np.tile(np.arange(8) * 4 + 0x1000, 500)
    outcomes = np.tile(np.array([1, 1, 1, 0, 1, 0, 1, 1], bool), 500)
    for predictor in (BimodalPredictor(), GsharePredictor()):
        rate = measure_mispredict_rate(predictor, pcs, outcomes)
        print(f"  {type(predictor).__name__}: "
              f"mispredict rate {rate:.1%}")
    print()


def tour_telemetry(seed: int) -> None:
    print("== Telemetry catalog (936 counters) ==")
    catalog = default_catalog()
    kinds = {}
    for counter in catalog.counters:
        kinds[counter.kind_name] = kinds.get(counter.kind_name, 0) + 1
    print("  kinds:", ", ".join(f"{k}={v}" for k, v in
                                sorted(kinds.items())))
    collector = TelemetryCollector()
    app = generate_application(
        "tour", "demo", {"pointer_chase": 0.5, "store_burst": 0.5},
        seed=seed)
    trace = app.workload(0).trace(60, 0)
    snap = collector.snapshot(trace, Mode.HIGH_PERF,
                              catalog.table4_ids)
    print("  Table-4 counter means (per cycle):")
    for i, (name, _) in zip(range(4),
                            [(catalog[c].name, c)
                             for c in catalog.table4_ids]):
        print(f"    {name:28s} {snap.normalized[:, i].mean():.4f}")
    print()


def tour_power(seed: int) -> None:
    print("== Power model breakdown ==")
    collector = TelemetryCollector()
    power = PowerModel()
    app = generate_application(
        "power-demo", "demo", {"compute_fp": 0.6, "pointer_chase": 0.4},
        seed=seed)
    trace = app.workload(0).trace(120, 0)
    for mode in Mode:
        result = collector.model.simulate(trace, mode)
        breakdown = power.breakdown(result)
        print(f"  {mode.value:10s}: {breakdown.average_power_w:5.2f} W "
              f"(static {breakdown.static_energy_j * 1e3:.2f} mJ, "
              f"dynamic {breakdown.dynamic_energy_j * 1e3:.2f} mJ, "
              f"ppw {power.ppw(result) / 1e9:.2f} GInst/J)")


def main() -> None:
    seed = experiment_seed()
    tour_cycle_core(seed)
    tour_memory(seed)
    tour_telemetry(seed)
    tour_power(seed)


if __name__ == "__main__":
    main()
