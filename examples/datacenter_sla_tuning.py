#!/usr/bin/env python
"""Datacenter scenario: one chip, three SLAs, via firmware updates.

Section 3.2 / Table 5: a datacenter optimises total cost of ownership
by relaxing the gating SLA during the off-season and reverting to
peak-performance firmware when demand spikes — the same silicon, three
operating points, switched through the firmware store exactly as DCIM
software would push updates.

Run: ``python examples/datacenter_sla_tuning.py``
"""

import dataclasses

from repro import rng as rng_mod
from repro.config import DEFAULT_SLA, experiment_seed
from repro.core.pipeline import build_standard_models, train_dual_predictor
from repro.data.builders import dataset_from_traces, hdtr_traces
from repro.eval.runner import evaluate_predictor
from repro.firmware.deploy import FirmwareStore, package_firmware
from repro.ml.forest import RandomForestClassifier
from repro.telemetry.collector import TelemetryCollector
from repro.workloads.categories import hdtr_corpus
from repro.workloads.spec2017 import spec2017_traces


def main() -> None:
    seed = experiment_seed()
    collector = TelemetryCollector()
    apps = hdtr_corpus(seed)[::3]
    train = hdtr_traces(seed, apps=apps, workloads_per_app=2,
                        intervals_per_trace=120)
    test = spec2017_traces(seed + 92, intervals_per_trace=200,
                           traces_per_workload=1)[::3]

    print("Training the P_SLA=0.90 flagship model...")
    models = build_standard_models(train, seed=seed, collector=collector,
                                   include=["best_rf"],
                                   selection_traces=40)
    store = FirmwareStore()

    results = {}
    for version, floor in enumerate((0.90, 0.80, 0.70), start=1):
        if floor == 0.90:
            predictor = models["best_rf"]
        else:
            print(f"Retraining for P_SLA={floor:.2f} "
                  "(labels re-derived from the same telemetry)...")
            sla = dataclasses.replace(DEFAULT_SLA,
                                      performance_floor=floor)
            datasets = dataset_from_traces(
                train, models.pf_counter_ids, sla, collector,
                granularity_factor=4)

            def factory(mode, _floor=floor):
                return RandomForestClassifier(
                    8, 8, seed=rng_mod.derive_seed(seed, _floor,
                                                   mode.value))

            predictor = train_dual_predictor(
                f"best_rf_p{int(floor * 100)}", factory, datasets,
                granularity_factor=4, seed=seed)
        image = package_firmware(predictor, version=version,
                                 sla_floor=floor)
        store.install(image)
        sla = dataclasses.replace(DEFAULT_SLA, performance_floor=floor)
        results[floor] = evaluate_predictor(predictor, test, sla,
                                            collector=collector)

    print("\nFirmware store history:")
    for image in store.history:
        print(f"  v{image.version}: {image.name} "
              f"(P_SLA={image.sla_floor}, {image.total_bytes} B, "
              f"checksum {image.checksum[:12]}...)")

    print("\nOne chip, three products (held-out suite; note: this "
          "example uses a reduced corpus for speed, so RSV is noisy — "
          "benchmarks/bench_table5_sla_sweep.py runs the full-scale "
          "version):")
    print(f"{'P_SLA':>6s} {'PPW gain':>9s} {'avg perf':>9s} {'RSV':>7s}")
    for floor, suite in results.items():
        print(f"{floor:6.2f} {suite.mean_ppw_gain * 100:8.1f}% "
              f"{suite.mean_avg_performance * 100:8.1f}% "
              f"{suite.mean_rsv * 100:6.2f}%")

    print("\nHoliday demand spike: rolling back to the flagship...")
    store.activate(models['best_rf'].name, 1)
    print(f"  active firmware: {store.active.name} "
          f"(P_SLA={store.active.sla_floor})")


if __name__ == "__main__":
    main()
