#!/usr/bin/env python
"""Optimization-as-a-service: retrain the adaptation model for one app.

Section 7.3 / Table 6's usage model: a datacenter customer runs one
application across thousands of machines. They trace a few executions
on-site, ship the traces back, and receive firmware whose random
forest blends 4 high-diversity trees with 4 trees trained on their
application — boosting PPW on *future inputs* of that application.

Run: ``python examples/app_specific_retraining.py [benchmark]``
(default benchmark: 602.gcc_s)
"""

import sys

import numpy as np

from repro import rng as rng_mod
from repro.config import experiment_seed
from repro.core.pipeline import build_standard_models
from repro.core.predictor import DualModePredictor
from repro.data.builders import dataset_from_traces, hdtr_traces
from repro.eval.runner import evaluate_predictor
from repro.firmware.deploy import package_firmware
from repro.ml.forest import RandomForestClassifier, merge_forests
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.modes import Mode
from repro.workloads.categories import hdtr_corpus
from repro.workloads.spec2017 import get_benchmark, spec_application


def train_half_forest(datasets, seed, tag):
    """A 4-tree half of the blended Best-RF-shaped model."""
    models = {}
    for mode in Mode:
        model = RandomForestClassifier(
            n_trees=4, max_depth=8,
            seed=rng_mod.derive_seed(seed, tag, mode.value))
        model.fit(datasets[mode].x, datasets[mode].y)
        models[mode] = model
    return models


def main() -> None:
    bench_name = sys.argv[1] if len(sys.argv) > 1 else "602.gcc_s"
    seed = experiment_seed()
    collector = TelemetryCollector()

    print("Vendor side: general-purpose model from the diverse corpus.")
    apps = hdtr_corpus(seed)[::3]
    train = hdtr_traces(seed, apps=apps, workloads_per_app=2,
                        intervals_per_trace=120)
    models = build_standard_models(train, seed=seed, collector=collector,
                                   include=["best_rf"],
                                   selection_traces=40)
    counter_ids = models.pf_counter_ids
    hdtr_half_ds = dataset_from_traces(train[::2], counter_ids,
                                       collector=collector,
                                       granularity_factor=4)
    hdtr_half = train_half_forest(hdtr_half_ds, seed, "hdtr")

    print(f"Customer side: tracing {bench_name} on-site...")
    bench = get_benchmark(bench_name)
    app = spec_application(bench, seed + 92)
    workloads = list(range(bench.workloads))
    # Customer traces all inputs but the last; the last stands in for
    # the future inputs the deployed firmware will see.
    customer_traces = [app.workload(w).trace(200, 0)
                       for w in workloads[:-1]]
    future_traces = [app.workload(workloads[-1]).trace(200, t)
                     for t in range(2)]

    app_ds = dataset_from_traces(customer_traces, counter_ids,
                                 collector=collector,
                                 granularity_factor=4)
    app_half = train_half_forest(app_ds, seed, bench_name)

    blended = DualModePredictor(
        name=f"best_rf+{bench_name}",
        models={m: merge_forests(hdtr_half[m], app_half[m])
                for m in Mode},
        counter_ids=np.asarray(counter_ids),
        granularity_factor=4)
    image = package_firmware(blended, version=2)
    print(f"Shipping firmware update: {image.total_bytes} B, "
          f"checksum {image.checksum[:12]}...")

    print("\nDeployment on FUTURE inputs (never traced):")
    general = evaluate_predictor(models["best_rf"], future_traces,
                                 collector=collector)
    specific = evaluate_predictor(blended, future_traces,
                                  collector=collector)
    delta = specific.mean_ppw_gain - general.mean_ppw_gain
    print(f"  general model:      PPW {general.mean_ppw_gain * 100:6.2f}%"
          f"  RSV {general.mean_rsv * 100:5.2f}%"
          f"  PGOS {general.mean_pgos * 100:5.1f}%")
    print(f"  app-specific blend: PPW {specific.mean_ppw_gain * 100:6.2f}%"
          f"  RSV {specific.mean_rsv * 100:5.2f}%"
          f"  PGOS {specific.mean_pgos * 100:5.1f}%")
    print(f"  PPW delta: {delta * 100:+.2f}% "
          "(paper: +0.6% to +8.5% for 8 of 11 apps)")


if __name__ == "__main__":
    main()
