#!/usr/bin/env python
"""Inspect the firmware a trained adaptation model compiles into.

Mirrors Section 5 of the paper: train a small Best-RF-shaped model and
a CHARSTAR-style MLP, compile both, print the paper-style cost
comparison (ops per prediction, memory footprint, finest supported
gating interval) and the pseudo-assembly of their inner loops
(Listings 1 and 2), then package, save, reload and re-execute the
firmware image to show the update path is bit-faithful.

Run: ``python examples/firmware_inspection.py``
"""

import os
import tempfile

import numpy as np

from repro import rng as rng_mod
from repro.config import experiment_seed
from repro.core.predictor import DualModePredictor
from repro.data.builders import dataset_from_traces, hdtr_traces
from repro.firmware import (
    FirmwareImage,
    FirmwareVM,
    Microcontroller,
    compile_model,
    cost_report,
    disassemble,
)
from repro.firmware.deploy import package_firmware
from repro.ml import MLPClassifier, RandomForestClassifier
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import default_catalog
from repro.uarch.modes import Mode
from repro.workloads.categories import hdtr_corpus


def main() -> None:
    seed = experiment_seed()
    collector = TelemetryCollector()
    apps = hdtr_corpus(seed)[::6]
    traces = hdtr_traces(seed, apps=apps, workloads_per_app=1,
                         intervals_per_trace=80)
    counters = default_catalog().table4_ids
    ds = dataset_from_traces(traces, counters, collector=collector,
                             granularity_factor=4)[Mode.LOW_POWER]

    rf = RandomForestClassifier(8, 8, seed=seed).fit(ds.x, ds.y)
    mlp = MLPClassifier((10,), epochs=30, seed=seed).fit(ds.x, ds.y)

    print("== Section 5: inference cost comparison ==")
    uc = Microcontroller()
    for name, model in (("Best RF (8 trees, depth 8)", rf),
                        ("CHARSTAR-style MLP (1x10)", mlp)):
        report = cost_report(model, name, uc)
        print(f"  {name}: {report.ops_per_prediction} ops, "
              f"{report.memory_bytes} B image, finest interval "
              f"{report.finest_granularity} instructions")

    print("\n== Listing-2 style: one forest tree, branch-free ==")
    print(disassemble(compile_model(rf), max_lines=22))
    print("== Listing-1 style: one MLP filter ==")
    print(disassemble(compile_model(mlp), max_lines=24))

    print("== Firmware update path: package -> save -> load -> run ==")
    predictor = DualModePredictor(
        "inspect_rf",
        {mode: RandomForestClassifier(
            8, 8, seed=rng_mod.derive_seed(seed, mode.value)
        ).fit(ds.x, ds.y) for mode in Mode},
        np.asarray(counters), granularity_factor=4)
    image = package_firmware(predictor, version=1)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "adaptation.fw")
        image.save(path)
        loaded = FirmwareImage.load(path)
        vm = FirmwareVM()
        sample = ds.x[:256]
        original = vm.run(image.programs[Mode.LOW_POWER], sample)
        reloaded = vm.run(loaded.programs[Mode.LOW_POWER], sample)
        identical = np.array_equal(original.predictions,
                                   reloaded.predictions)
        print(f"  image: {os.path.getsize(path)} B on flash, checksum "
              f"{loaded.checksum[:12]}..., verified={loaded.verify()}")
        print(f"  reloaded firmware predicts identically: {identical}")
        print(f"  ops metered per prediction: "
              f"{reloaded.ops_per_prediction}")


if __name__ == "__main__":
    main()
