#!/usr/bin/env python
"""Quickstart: train and deploy a predictive cluster-gating model.

Walks the full loop of the paper on a small scaled corpus in about a
minute:

1. generate a diverse training corpus (HDTR-like) and simulate it in
   both cluster configurations;
2. select telemetry counters with PF Counter Selection;
3. train the Best RF adaptation model (8 trees, depth 8) per telemetry
   mode and tune its sensitivity;
4. compile it to firmware and check the microcontroller budget;
5. deploy it closed-loop on held-out SPEC2017-like benchmarks and
   report PPW gain, RSV and PGOS.

Run: ``python examples/quickstart.py``
"""

import time

from repro.config import experiment_seed
from repro.core.pipeline import build_standard_models
from repro.data.builders import hdtr_traces
from repro.eval.runner import evaluate_predictor
from repro.firmware import Microcontroller, compile_model
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import default_catalog
from repro.uarch.modes import Mode
from repro.workloads.categories import hdtr_corpus
from repro.workloads.spec2017 import spec2017_traces


def main() -> None:
    seed = experiment_seed()
    t0 = time.time()
    collector = TelemetryCollector()
    catalog = default_catalog()

    print("== 1. Training corpus ==")
    apps = hdtr_corpus(seed)[::3]
    train = hdtr_traces(seed, apps=apps, workloads_per_app=2,
                        intervals_per_trace=120)
    print(f"   {len(apps)} applications, {len(train)} traces, "
          f"{sum(t.instructions for t in train) / 1e6:.0f}M instructions")

    print("== 2 & 3. Counter selection + Best RF training ==")
    models = build_standard_models(train, seed=seed, collector=collector,
                                   include=["best_rf"],
                                   selection_traces=40)
    predictor = models["best_rf"]
    names = [catalog[i].name for i in models.pf_counter_ids]
    print("   PF counters:", ", ".join(names[:6]), "...")
    print("   thresholds:", {m.value: round(t, 2)
                             for m, t in predictor.thresholds.items()})

    print("== 4. Firmware compilation ==")
    uc = Microcontroller()
    for mode in Mode:
        program = compile_model(predictor.models[mode])
        finest = uc.finest_granularity(program.ops_per_prediction)
        print(f"   {mode.value}: {program.ops_per_prediction} ops, "
              f"{program.memory_bytes} B -> finest interval {finest} "
              f"instructions")

    print("== 5. Deployment on held-out benchmarks ==")
    test = spec2017_traces(seed + 92, intervals_per_trace=200,
                           traces_per_workload=1)[::3]
    suite = evaluate_predictor(predictor, test, collector=collector)
    print(f"   benchmarks: {len(suite.per_benchmark)}, "
          f"gating interval: {suite.granularity} instructions")
    print(f"   PPW gain:        {suite.mean_ppw_gain * 100:6.2f}%  "
          f"(paper: 21.9%)")
    print(f"   RSV:             {suite.mean_rsv * 100:6.2f}%  "
          f"(paper: 0.3%)")
    print(f"   PGOS:            {suite.mean_pgos * 100:6.2f}%")
    print(f"   LP residency:    {suite.mean_residency * 100:6.2f}%")
    print(f"   avg performance: "
          f"{suite.mean_avg_performance * 100:6.2f}%  (SLA floor: 90%)")
    print(f"\nDone in {time.time() - t0:.1f}s.")


if __name__ == "__main__":
    main()
