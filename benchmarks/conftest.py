"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure from the
paper's evaluation. The expensive shared state — the scaled HDTR
training corpus, the held-out SPEC2017-like suite, and the trained
model zoo — is built once per session here.

Scale knobs: ``REPRO_SCALE`` grows the datasets toward paper scale;
outputs land in ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.config import experiment_seed
from repro.core.pipeline import build_standard_models
from repro.data.builders import hdtr_traces
from repro.eval.runner import evaluate_predictor
from repro.exec.simcache import SIMCACHE_ENV_VAR, SimCache
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.interval_model import IntervalModel
from repro.workloads.spec2017 import spec2017_traces

#: Seed offset separating the held-out suite from training generation.
TEST_SEED_OFFSET = 92


@pytest.fixture(scope="session")
def seed():
    return experiment_seed()


@pytest.fixture(scope="session")
def simcache(tmp_path_factory):
    """One on-disk simulation cache shared by every benchmark.

    ``REPRO_SIMCACHE_DIR`` (when set) names a persistent directory so
    warm re-runs skip simulation, snapshot materialisation and dataset
    assembly entirely; otherwise a session-scoped temp dir still lets
    the benchmarks of one run share each other's work.
    """
    root = os.environ.get(SIMCACHE_ENV_VAR)
    if root:
        return SimCache(Path(root))
    return SimCache(tmp_path_factory.mktemp("simcache"))


@pytest.fixture(scope="session")
def collector(simcache):
    return TelemetryCollector(model=IntervalModel(simcache=simcache))


@pytest.fixture(scope="session")
def train_traces(seed):
    return hdtr_traces(seed)


@pytest.fixture(scope="session")
def test_traces(seed):
    return spec2017_traces(seed + TEST_SEED_OFFSET,
                           intervals_per_trace=240,
                           traces_per_workload=1)


@pytest.fixture(scope="session")
def standard_models(seed, collector, train_traces):
    """The full Section-7 model zoo, trained once per session."""
    return build_standard_models(train_traces, seed=seed,
                                 collector=collector)


@pytest.fixture(scope="session")
def suite_evals(standard_models, test_traces, collector):
    """Deployment evaluations per model, computed lazily and cached."""
    cache: dict[str, object] = {}

    def get(name: str):
        if name not in cache:
            cache[name] = evaluate_predictor(
                standard_models[name], test_traces, collector=collector)
        return cache[name]

    return get
