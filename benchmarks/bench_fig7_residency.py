"""Figure 7: ideal low-power residency per SPEC2017 benchmark.

Paper: across SPEC2017, applications would ideally run in low-power
mode 45.7% of the time on average, with large per-benchmark spread.
We compute oracle gating labels (IPC ratio >= 0.9) over the held-out
suite and report the per-benchmark ideal residency series.
"""

import numpy as np

from repro.core.labels import gating_labels
from repro.eval.reporting import emit, format_table, percent

PAPER_MEAN_RESIDENCY = 0.457


def _run(collector, test_traces):
    by_app = {}
    for trace in test_traces:
        labels = gating_labels(trace, model=collector.model)
        by_app.setdefault(trace.app.name, []).append(labels.residency)
    rows = [[app, len(vals), percent(float(np.mean(vals)))]
            for app, vals in sorted(by_app.items())]
    mean = float(np.mean([np.mean(v) for v in by_app.values()]))
    return rows, mean, by_app


def bench_fig7_ideal_residency(benchmark, collector, test_traces):
    rows, mean, by_app = benchmark.pedantic(
        _run, args=(collector, test_traces), rounds=1, iterations=1)
    text = format_table(
        "Figure 7 - ideal low-power residency per benchmark "
        f"(ours: {percent(mean)} avg; paper: "
        f"{percent(PAPER_MEAN_RESIDENCY)} avg)",
        ["Benchmark", "Traces", "Ideal residency"],
        rows)
    emit("fig7_residency", text)

    # The average lands in the paper's band and the spread is wide:
    # some benchmarks barely gate, others gate almost always.
    assert 0.35 < mean < 0.60
    residencies = [float(np.mean(v)) for v in by_app.values()]
    assert min(residencies) < 0.15
    assert max(residencies) > 0.85
