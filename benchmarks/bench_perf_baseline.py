"""Performance baseline for the execution engine.

Times the dataset-scale hot paths — trace generation, serial vs
parallel ``evaluate_predictor``, cold- vs warm-cache runs, and the
batched kernels (SoA cycle scoreboard, stacked interval passes,
batched closed-loop inference) against the scalar reference paths —
and writes a machine-readable ``BENCH_perf.json`` at the repo root so
future PRs have a perf trajectory to compare against.

Run standalone (no pytest session fixtures needed)::

    PYTHONPATH=src python benchmarks/bench_perf_baseline.py

``--quick`` runs only the batched-vs-reference warm comparison on a
small corpus and exits non-zero if the batched path is slower — the
CI perf smoke. It also fails when any recorded ``BENCH_perf.json``
section's keys diverge from what the current benchmarks emit (a stale
file that was never regenerated).

``--surrogate`` runs the tier-0 learned-surrogate tier: cold train and
warm load cost, accept rate, and the cache-cold dataset-build speedup
over the interval tier (alternating best-of-N trials), merged into the
``surrogate`` section (``--surrogate-smoke`` shrinks the corpus and
relaxes the speedup bar for CI).

``--scale`` runs the large-corpus tier: a ≥10^5-trace dataset build,
sharded with shared-memory result return under a hard peak-RSS budget,
against the unsharded pickled path — asserted bit-identical, with
bytes-returned-per-task and shard throughput merged into the ``scale``
section of ``BENCH_perf.json`` (``--scale-smoke`` relaxes the guards
for CI's small-corpus run).

Scale knobs: ``--workers`` (default 4), ``--apps``/``--intervals`` to
grow the corpus. The deployed predictor is a fixed-probability stub so
the measurement isolates the simulation/evaluation pipeline from model
training.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import shutil
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.config import BATCH_SIM_ENV_VAR, DEFAULT_SLA
from repro.config import DEFAULT_SURROGATE_PROBES
from repro.config import DEFAULT_SURROGATE_THRESHOLD
from repro.config import EXEC_ARENA_ENV_VAR
from repro.config import EXEC_SHARD_ENV_VAR, EXEC_SHMRES_ENV_VAR
from repro.config import SIMCACHE_DIR_ENV_VAR, SURROGATE_ENV_VAR
from repro.core.predictor import DualModePredictor
from repro.data.builders import build_mode_dataset
from repro.eval.runner import evaluate_predictor
from repro.exec import EXEC_STATS, ParallelMap, SimCache, close_pools
from repro.ml.base import Estimator
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.core_model import ClusteredCoreModel
from repro.uarch.interval_model import IntervalModel
from repro.uarch.isa import synthesize_uops
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application
from repro.workloads.phases import sample_phase_instance

REPO_ROOT = Path(__file__).resolve().parent.parent

_FAMILIES = ("pointer_chase", "compute_fp", "store_burst", "branchy",
             "bandwidth", "compute_int", "dep_chain", "media")

#: The keys every ``BENCH_perf.json`` section must carry, exactly.
#: ``run_quick`` fails when a *recorded* section's keys diverge from
#: this table (a stale file: the benchmark's emission changed and the
#: numbers were never regenerated) and when a *freshly computed*
#: section diverges (a stale table: the emission changed and this
#: inventory was not updated). Either way: regenerate, then commit.
SECTION_KEYS: dict[str, frozenset] = {
    "evaluate_predictor": frozenset({
        "serial_s", "parallel_s", "backend", "workers", "single_cpu",
        "speedup", "parallel_vs_serial_ratio"}),
    "simcache": frozenset({
        "evaluate_cold_s", "evaluate_warm_s", "evaluate_speedup",
        "dataset_cold_s", "dataset_warm_s", "dataset_speedup"}),
    "batched": frozenset({
        "evaluate_scalar_warm_s", "evaluate_batched_warm_s",
        "evaluate_speedup", "dataset_scalar_warm_s",
        "dataset_batched_warm_s", "dataset_speedup"}),
    "arena": frozenset({
        "workers", "payload_pickled_bytes_per_task",
        "payload_arena_bytes_per_task", "payload_reduction",
        "pool_fresh_s", "pool_persistent_s", "pool_reuse_speedup",
        "repeats"}),
    "cycle_kernel": frozenset({
        "n_uops", "soa_s", "reference_s", "speedup"}),
    "resilience": frozenset({
        "verify_on_s", "verify_off_s", "overhead_ratio"}),
    "observability": frozenset({
        "span_iters", "disabled_span_ns", "untraced_s", "traced_s",
        "overhead_ratio"}),
    "scale": frozenset({
        "n_traces", "intervals_per_trace", "n_samples", "shard_traces",
        "n_shards", "workers", "chunk_traces", "generation_s",
        "sharded_shm_build_s", "unsharded_pickled_build_s",
        "shard_throughput_traces_per_s", "sharded_peak_rss_mb",
        "unsharded_peak_rss_mb", "rss_budget_mb",
        "result_bytes_per_task_shm", "result_bytes_per_task_pickled",
        "result_reduction", "bit_identical"}),
    "surrogate": frozenset({
        "n_traces", "intervals_per_trace", "trials", "threshold",
        "probes", "train_cold_s", "train_warm_load_s", "active",
        "agreement", "accepted_pairs", "fallback_pairs",
        "accepted_fraction", "interval_build_trials_s",
        "surrogate_build_trials_s", "interval_build_s",
        "surrogate_build_s", "speedup", "labels_identical"}),
}


def _merge_bench_doc(output: Path | None, sections: dict) -> Path:
    """Fold ``sections`` into the perf JSON, preserving other tiers.

    Every writer (full run, ``--scale``, ``--surrogate``) merges into
    the same document instead of overwriting it, so the slow tiers'
    numbers survive a re-run of the cheap ones.
    """
    output = output or (REPO_ROOT / "BENCH_perf.json")
    doc = {"schema": 1}
    if output.exists():
        doc = json.loads(output.read_text())
    doc.update(sections)
    output.write_text(json.dumps(doc, indent=2) + "\n")
    return output


class _ConstModel(Estimator):
    """Fixed-probability stub model (picklable for process pools)."""

    def __init__(self, prob: float) -> None:
        self.prob = prob
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return np.full(x.shape[0], self.prob)


def _predictor() -> DualModePredictor:
    return DualModePredictor(
        name="bench_const",
        models={Mode.HIGH_PERF: _ConstModel(0.7),
                Mode.LOW_POWER: _ConstModel(0.4)},
        counter_ids=np.array([0, 1, 2, 3]),
        granularity_factor=1,
    )


def _generate_corpus(n_apps: int, workloads_per_app: int,
                     intervals: int, seed: int = 11):
    traces = []
    for i in range(n_apps):
        family = _FAMILIES[i % len(_FAMILIES)]
        app = generate_application(f"perfapp{i}", "bench",
                                   {family: 0.7, "balanced": 0.3},
                                   seed=seed + i)
        for w in range(workloads_per_app):
            traces.append(app.workload(w).trace(intervals, 0))
    return traces


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


@contextlib.contextmanager
def _env(var: str, value: str):
    """Temporarily pin one environment variable."""
    saved = os.environ.get(var)
    os.environ[var] = value
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = saved


def _batch_sim(enabled: bool):
    """Temporarily force the batch-simulation layer on or off."""
    return _env(BATCH_SIM_ENV_VAR, "1" if enabled else "0")


def _bench_cycle_kernel(n_uops: int = 20000) -> dict:
    """SoA scoreboard vs reference loop on one synthetic stream."""
    rng = np.random.default_rng(23)
    phase = sample_phase_instance("balanced_mixed", rng)
    stream = synthesize_uops(phase, n_uops, seed=23)
    soa_s, soa = _timed(
        lambda: ClusteredCoreModel(kernel="soa").execute(stream))
    ref_s, ref = _timed(
        lambda: ClusteredCoreModel(kernel="reference").execute(stream))
    assert soa == ref, "SoA cycle kernel diverged from reference"
    speedup = ref_s / soa_s if soa_s > 0 else float("inf")
    print(f"cycle kernel ({n_uops} uops): soa {soa_s:.3f}s, "
          f"reference {ref_s:.3f}s ({speedup:.2f}x)")
    return {
        "n_uops": n_uops,
        "soa_s": round(soa_s, 4),
        "reference_s": round(ref_s, 4),
        "speedup": round(speedup, 3),
    }


def _bench_batched(traces, cache_dir: Path) -> dict:
    """Warm batched vs warm scalar: the acceptance measurement.

    Both measurements run against the same warm on-disk simulation
    cache; only the batch layer differs. The dataset-level cache entry
    is evicted before each build so the comparison exercises the build
    itself, not the whole-matrix cache hit (which predates batching).
    """
    predictor = _predictor()
    counter_ids = list(range(12))

    def _collector():
        return TelemetryCollector(
            model=IntervalModel(simcache=SimCache(cache_dir)))

    # Warm every cache tier with the batch layer on: sim results and
    # the deployed counter set's snapshots via evaluation, the build's
    # counter set's snapshots and the label sets via one build.
    with _batch_sim(True):
        evaluate_predictor(predictor, traces, collector=_collector(),
                           pmap=ParallelMap("serial"))
        build_mode_dataset(traces, Mode.LOW_POWER, counter_ids,
                           collector=_collector(),
                           simcache=SimCache(cache_dir))

    def _eval(enabled: bool):
        with _batch_sim(enabled):
            return _timed(lambda: evaluate_predictor(
                predictor, traces, collector=_collector(),
                pmap=ParallelMap("serial")))

    def _build(enabled: bool):
        with _batch_sim(enabled):
            cache = SimCache(cache_dir)
            collector = _collector()
            key = cache.dataset_key(
                traces, Mode.LOW_POWER, np.asarray(counter_ids),
                DEFAULT_SLA, 1, 2, collector.model.machine,
                catalog_token=collector.catalog_token())
            cache.evict(key)
            return _timed(lambda: build_mode_dataset(
                traces, Mode.LOW_POWER, counter_ids,
                collector=collector, simcache=cache))

    eval_scalar_s, scalar_suite = _eval(False)
    eval_batched_s, batched_suite = _eval(True)
    assert scalar_suite.mean_ppw_gain == batched_suite.mean_ppw_gain, \
        "batched evaluation diverged from scalar"
    ds_scalar_s, ds_scalar = _build(False)
    ds_batched_s, ds_batched = _build(True)
    assert np.array_equal(ds_scalar.x, ds_batched.x), \
        "batched dataset build diverged from scalar"
    eval_speedup = (eval_scalar_s / eval_batched_s
                    if eval_batched_s > 0 else float("inf"))
    ds_speedup = (ds_scalar_s / ds_batched_s
                  if ds_batched_s > 0 else float("inf"))
    print(f"evaluate_predictor warm: scalar {eval_scalar_s:.3f}s, "
          f"batched {eval_batched_s:.3f}s ({eval_speedup:.2f}x)")
    print(f"build_mode_dataset warm: scalar {ds_scalar_s:.3f}s, "
          f"batched {ds_batched_s:.3f}s ({ds_speedup:.2f}x)")
    return {
        "evaluate_scalar_warm_s": round(eval_scalar_s, 4),
        "evaluate_batched_warm_s": round(eval_batched_s, 4),
        "evaluate_speedup": round(eval_speedup, 3),
        "dataset_scalar_warm_s": round(ds_scalar_s, 4),
        "dataset_batched_warm_s": round(ds_batched_s, 4),
        "dataset_speedup": round(ds_speedup, 3),
    }


def _payload_counters(stage: str) -> tuple[int, int]:
    return (EXEC_STATS.count(f"{stage}.payload_bytes"),
            EXEC_STATS.count(f"{stage}.payload_tasks"))


def _bench_arena(traces, workers: int = 2, repeats: int = 3) -> dict:
    """Arena vs pickled dispatch, and warm-pool vs pool-per-call.

    Both comparisons run the same process-backend deployment; only the
    arena kill-switch / pool persistence differ, and both variants are
    asserted bit-identical before any number is reported. Payload
    bytes per task come from the engine's own sampling counters
    (``adaptive_prepare.payload_bytes`` / ``.payload_tasks``).
    """
    predictor = _predictor()
    stage = "adaptive_prepare"

    def _deploy(arena_on: bool, persistent: bool):
        with _env(EXEC_ARENA_ENV_VAR, "1" if arena_on else "0"):
            pmap = ParallelMap("process", n_workers=workers,
                               persistent=persistent)
            return _timed(lambda: evaluate_predictor(
                predictor, traces, collector=TelemetryCollector(),
                pmap=pmap))

    bytes0, tasks0 = _payload_counters(stage)
    _, pickled_suite = _deploy(False, True)
    bytes1, tasks1 = _payload_counters(stage)
    _, arena_suite = _deploy(True, True)
    bytes2, tasks2 = _payload_counters(stage)
    assert pickled_suite.mean_ppw_gain == arena_suite.mean_ppw_gain, \
        "arena-backed run diverged from pickled dispatch"
    pickled_bpt = (bytes1 - bytes0) / max(1, tasks1 - tasks0)
    arena_bpt = (bytes2 - bytes1) / max(1, tasks2 - tasks1)
    ratio = pickled_bpt / arena_bpt if arena_bpt > 0 else float("inf")
    print(f"task payload: pickled {pickled_bpt:.0f} B/task, "
          f"arena {arena_bpt:.0f} B/task ({ratio:.1f}x smaller)")

    def _repeated(persistent: bool) -> float:
        close_pools()  # start both variants pool-cold
        total = 0.0
        for _ in range(repeats):
            elapsed, _suite = _deploy(True, persistent)
            total += elapsed
        return total

    fresh_s = _repeated(False)
    warm_s = _repeated(True)
    close_pools()
    reuse_speedup = fresh_s / warm_s if warm_s > 0 else float("inf")
    print(f"pool lifecycle ({repeats} deployments): fresh pools "
          f"{fresh_s:.3f}s, persistent pool {warm_s:.3f}s "
          f"({reuse_speedup:.2f}x)")
    return {
        "workers": workers,
        "payload_pickled_bytes_per_task": round(pickled_bpt, 1),
        "payload_arena_bytes_per_task": round(arena_bpt, 1),
        "payload_reduction": round(ratio, 2),
        "pool_fresh_s": round(fresh_s, 4),
        "pool_persistent_s": round(warm_s, 4),
        "pool_reuse_speedup": round(reuse_speedup, 3),
        "repeats": repeats,
    }


def _bench_obs(traces, span_iters: int = 200_000) -> dict:
    """Observability overhead: tracing must be (nearly) free.

    Two measurements: the per-call cost of a disabled ``tracer.span()``
    — one env-cached branch plus a shared null singleton, budgeted in
    nanoseconds — and a traced vs untraced warm deployment, asserted
    bit-identical before the ratio is reported.
    """
    from repro.config import TRACE_ENV_VAR
    from repro.obs import tracer

    tracer.refresh()
    assert not tracer.enabled()
    span = tracer.span
    start = time.perf_counter()
    for _ in range(span_iters):
        with span("bench.noop"):
            pass
    disabled_ns = (time.perf_counter() - start) / span_iters * 1e9

    predictor = _predictor()

    def _deploy():
        return _timed(lambda: evaluate_predictor(
            predictor, traces, collector=TelemetryCollector(),
            pmap=ParallelMap("serial")))

    _deploy()  # equalise one-time costs (imports, allocator warm-up)
    plain_s, plain_suite = _deploy()
    fd, trace_path = tempfile.mkstemp(prefix="repro-obs-bench-",
                                      suffix=".json")
    os.close(fd)
    try:
        with _env(TRACE_ENV_VAR, trace_path):
            with tracer.trace("bench.obs"):
                traced_s, traced_suite = _deploy()
    finally:
        tracer.refresh()
        os.unlink(trace_path)
    assert plain_suite.mean_ppw_gain == traced_suite.mean_ppw_gain, \
        "traced run diverged from untraced"
    ratio = traced_s / plain_s if plain_s > 0 else 1.0
    print(f"obs: disabled span() {disabled_ns:.0f} ns/call; traced "
          f"evaluate {traced_s:.3f}s vs untraced {plain_s:.3f}s "
          f"({(ratio - 1) * 100:+.1f}%)")
    return {
        "span_iters": span_iters,
        "disabled_span_ns": round(disabled_ns, 1),
        "untraced_s": round(plain_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead_ratio": round(ratio, 4),
    }


def run(workers: int = 4, n_apps: int = 8, workloads_per_app: int = 3,
        intervals: int = 240,
        output: Path | None = None) -> dict:
    """Execute every measurement and write ``BENCH_perf.json``."""
    predictor = _predictor()

    gen_s, traces = _timed(
        lambda: _generate_corpus(n_apps, workloads_per_app, intervals))
    print(f"trace generation: {len(traces)} traces in {gen_s:.3f}s")

    # Serial vs parallel deployment evaluation. Fresh collectors keep
    # the in-process LRU from leaking work between measurements.
    serial_s, serial_suite = _timed(lambda: evaluate_predictor(
        predictor, traces, collector=TelemetryCollector(),
        pmap=ParallelMap("serial")))
    parallel_s, parallel_suite = _timed(lambda: evaluate_predictor(
        predictor, traces, collector=TelemetryCollector(),
        pmap=ParallelMap("process", n_workers=workers)))
    assert serial_suite.mean_ppw_gain == parallel_suite.mean_ppw_gain, \
        "parallel run diverged from serial"
    cpus = os.cpu_count() or 1
    ratio = serial_s / parallel_s if parallel_s > 0 else float("inf")
    if cpus > 1:
        # A measured multi-core speedup is only meaningful when there
        # is more than one core to run on.
        print(f"evaluate_predictor: serial {serial_s:.3f}s, "
              f"{workers}-worker process {parallel_s:.3f}s "
              f"({ratio:.2f}x measured speedup, {cpus} CPUs visible)")
    else:
        print(f"evaluate_predictor: serial {serial_s:.3f}s, "
              f"{workers}-worker process {parallel_s:.3f}s "
              f"(single CPU visible: {ratio:.2f}x is pool overhead, "
              f"not a speedup)")

    # Cold vs warm simulation cache, same corpus.
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-simcache-bench-"))
    try:
        def _cached_collector():
            return TelemetryCollector(
                model=IntervalModel(simcache=SimCache(cache_dir)))

        cold_s, cold_suite = _timed(lambda: evaluate_predictor(
            predictor, traces, collector=_cached_collector(),
            pmap=ParallelMap("serial")))
        warm_s, warm_suite = _timed(lambda: evaluate_predictor(
            predictor, traces, collector=_cached_collector(),
            pmap=ParallelMap("serial")))
        assert warm_suite.mean_ppw_gain == serial_suite.mean_ppw_gain, \
            "cached run diverged from uncached"
        cache_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        print(f"evaluate_predictor cache: cold {cold_s:.3f}s, "
              f"warm {warm_s:.3f}s ({cache_speedup:.2f}x)")

        # Dataset building hits the cache at whole-matrix granularity,
        # so a warm build skips simulation, telemetry and labelling.
        counter_ids = list(range(12))
        ds_cold_s, _ = _timed(lambda: build_mode_dataset(
            traces, Mode.LOW_POWER, counter_ids,
            collector=_cached_collector(),
            simcache=SimCache(cache_dir)))
        ds_warm_s, _ = _timed(lambda: build_mode_dataset(
            traces, Mode.LOW_POWER, counter_ids,
            collector=_cached_collector(),
            simcache=SimCache(cache_dir)))
        ds_speedup = ds_cold_s / ds_warm_s if ds_warm_s > 0 else float("inf")
        print(f"build_mode_dataset cache: cold {ds_cold_s:.3f}s, "
              f"warm {ds_warm_s:.3f}s ({ds_speedup:.2f}x)")

        batched = _bench_batched(traces, cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    arena = _bench_arena(traces, workers=min(2, workers))
    kernel = _bench_cycle_kernel()
    resilience = _bench_resilience(traces)
    obs = _bench_obs(traces)

    payload = {
        "schema": 1,
        "cpus_visible": os.cpu_count(),
        "corpus": {
            "n_traces": len(traces),
            "intervals_per_trace": intervals,
            "n_apps": n_apps,
        },
        "trace_generation_s": round(gen_s, 4),
        "evaluate_predictor": {
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "backend": "process",
            "workers": workers,
            # A real measured speedup only exists with >1 CPU; on a
            # single-CPU host the serial/parallel ratio is recorded
            # separately so it cannot be read as a speedup claim.
            "single_cpu": cpus == 1,
            "speedup": round(ratio, 3) if cpus > 1 else None,
            "parallel_vs_serial_ratio": round(ratio, 3),
        },
        "simcache": {
            "evaluate_cold_s": round(cold_s, 4),
            "evaluate_warm_s": round(warm_s, 4),
            "evaluate_speedup": round(cache_speedup, 3),
            "dataset_cold_s": round(ds_cold_s, 4),
            "dataset_warm_s": round(ds_warm_s, 4),
            "dataset_speedup": round(ds_speedup, 3),
        },
        "batched": batched,
        "arena": arena,
        "cycle_kernel": kernel,
        "resilience": resilience,
        "observability": obs,
        "exec_stats": EXEC_STATS.snapshot(),
    }
    output = _merge_bench_doc(output, payload)
    print(f"wrote {output}")
    return payload


def _bench_resilience(traces, repeats: int = 3,
                      loads_per_sample: int = 5) -> dict:
    """Fault-free cost of the integrity layer.

    Times warm cached dataset loads with per-entry checksum
    verification on (the default) vs off (``REPRO_SIMCACHE_VERIFY=0``);
    min-of-repeats over multi-load samples to stay above timer noise.
    The retry/timeout bookkeeping has no toggle because its fault-free
    cost is a handful of integer compares per chunk — verification is
    the only resilience feature that touches every cached byte.
    """
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-resil-bench-"))
    counter_ids = list(range(12))
    try:
        cache = SimCache(cache_dir)
        collector = TelemetryCollector(
            model=IntervalModel(simcache=cache))
        build_mode_dataset(traces, Mode.LOW_POWER, counter_ids,
                           collector=collector, simcache=cache)

        def _sample() -> float:
            start = time.perf_counter()
            for _ in range(loads_per_sample):
                build_mode_dataset(traces, Mode.LOW_POWER, counter_ids,
                                   collector=collector, simcache=cache)
            return time.perf_counter() - start

        with _env("REPRO_SIMCACHE_VERIFY", "1"):
            verify_on = min(_sample() for _ in range(repeats))
        with _env("REPRO_SIMCACHE_VERIFY", "0"):
            verify_off = min(_sample() for _ in range(repeats))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    ratio = verify_on / verify_off if verify_off > 0 else 1.0
    print(f"simcache verify overhead: on {verify_on:.4f}s, "
          f"off {verify_off:.4f}s ({(ratio - 1) * 100:+.1f}%)")
    return {
        "verify_on_s": round(verify_on, 4),
        "verify_off_s": round(verify_off, 4),
        "overhead_ratio": round(ratio, 4),
    }


def _rss_bytes() -> int:
    """Current resident set size of this process (Linux)."""
    with open("/proc/self/statm") as fh:
        return int(fh.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")


class _RssSampler:
    """Background peak-RSS sampler for one benchmark phase."""

    def __init__(self, interval_s: float = 0.02) -> None:
        self._interval = interval_s
        self._stop = threading.Event()
        self._peak = _rss_bytes()
        self._thread = threading.Thread(target=self._poll, daemon=True)

    def _poll(self) -> None:
        while not self._stop.is_set():
            self._peak = max(self._peak, _rss_bytes())
            self._stop.wait(self._interval)

    def __enter__(self) -> "_RssSampler":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> bool:
        self._stop.set()
        self._thread.join()
        self._peak = max(self._peak, _rss_bytes())
        return False

    @property
    def peak_mb(self) -> float:
        return self._peak / 2 ** 20


def _result_counters(stage: str) -> tuple[int, int]:
    return (EXEC_STATS.count(f"{stage}.result_bytes"),
            EXEC_STATS.count(f"{stage}.result_tasks"))


def run_scale(n_traces: int = 100_000, intervals: int = 24,
              shard: int = 5_000, workers: int = 2, chunk: int = 50,
              rss_budget_mb: float = 4096.0,
              output: Path | None = None,
              full_guards: bool = True) -> tuple[dict, list[str]]:
    """The ``--scale`` tier: a ≥10^5-trace dataset build, two ways.

    Builds the same corpus once sharded with shared-memory result
    return (``REPRO_EXEC_SHARD`` + ``REPRO_EXEC_SHMRES=1``) under a
    hard peak-RSS budget, then once unsharded over pickled returns,
    asserts bitwise identity, and records bytes-returned-per-task for
    both paths plus shard throughput into the ``scale`` section of
    ``BENCH_perf.json``. The chunk size is pinned so per-task result
    bytes are directly comparable between the two runs.

    ``full_guards=False`` (the CI scale smoke, which runs a far
    smaller corpus) only guards that shm results are smaller than
    pickled ones; the full tier also enforces the RSS budget and the
    ≥10x per-task reduction.
    """
    counter_ids = list(range(8))
    stage = "build_dataset"
    n_apps = 8
    gen_s, traces = _timed(lambda: _generate_corpus(
        n_apps, -(-n_traces // n_apps), intervals))
    traces = traces[:n_traces]
    n_shards = -(-len(traces) // shard)
    print(f"scale corpus: {len(traces)} traces x {intervals} intervals "
          f"generated in {gen_s:.3f}s")

    def _build():
        return build_mode_dataset(
            traces, Mode.LOW_POWER, counter_ids,
            collector=TelemetryCollector(),
            pmap=ParallelMap("process", n_workers=workers,
                             chunk_size=chunk))

    close_pools()
    bytes0, tasks0 = _result_counters(stage)
    with _env(EXEC_SHMRES_ENV_VAR, "1"), \
            _env(EXEC_SHARD_ENV_VAR, str(shard)), \
            _RssSampler() as shm_rss:
        shm_s, ds_shm = _timed(_build)
    bytes1, tasks1 = _result_counters(stage)
    close_pools()
    with _env(EXEC_SHMRES_ENV_VAR, "0"), _env(EXEC_SHARD_ENV_VAR, ""), \
            _RssSampler() as pickled_rss:
        pickled_s, ds_pickled = _timed(_build)
    bytes2, tasks2 = _result_counters(stage)
    close_pools()

    failures: list[str] = []
    for field in ("x", "y", "groups", "workloads", "traces"):
        a = getattr(ds_shm, field)
        b = getattr(ds_pickled, field)
        if a.dtype != b.dtype or not np.array_equal(a, b):
            failures.append(
                f"sharded shm build diverged from unsharded pickled "
                f"build on {field!r}")
    shm_bpt = (bytes1 - bytes0) / max(1, tasks1 - tasks0) / chunk
    pickled_bpt = (bytes2 - bytes1) / max(1, tasks2 - tasks1) / chunk
    reduction = pickled_bpt / shm_bpt if shm_bpt > 0 else float("inf")
    throughput = len(traces) / shm_s if shm_s > 0 else float("inf")
    print(f"scale build ({n_shards} shards of {shard}): shm "
          f"{shm_s:.1f}s ({throughput:.0f} traces/s, peak RSS "
          f"{shm_rss.peak_mb:.0f} MB); unsharded pickled "
          f"{pickled_s:.1f}s (peak RSS {pickled_rss.peak_mb:.0f} MB)")
    print(f"result return: shm {shm_bpt:.0f} B/task, pickled "
          f"{pickled_bpt:.0f} B/task ({reduction:.1f}x smaller)")

    if shm_bpt >= pickled_bpt:
        failures.append(
            f"shm result payload not smaller than pickled "
            f"({shm_bpt:.0f} vs {pickled_bpt:.0f} B/task)")
    if full_guards:
        if reduction < 10.0:
            failures.append(
                f"per-task result bytes reduced only {reduction:.1f}x "
                f"(budget: >=10x)")
        if shm_rss.peak_mb > rss_budget_mb:
            failures.append(
                f"sharded build peak RSS {shm_rss.peak_mb:.0f} MB "
                f"exceeds the {rss_budget_mb:.0f} MB budget")

    section = {
        "n_traces": len(traces),
        "intervals_per_trace": intervals,
        "n_samples": int(ds_shm.n_samples),
        "shard_traces": shard,
        "n_shards": n_shards,
        "workers": workers,
        "chunk_traces": chunk,
        "generation_s": round(gen_s, 3),
        "sharded_shm_build_s": round(shm_s, 3),
        "unsharded_pickled_build_s": round(pickled_s, 3),
        "shard_throughput_traces_per_s": round(throughput, 1),
        "sharded_peak_rss_mb": round(shm_rss.peak_mb, 1),
        "unsharded_peak_rss_mb": round(pickled_rss.peak_mb, 1),
        "rss_budget_mb": round(rss_budget_mb, 1),
        "result_bytes_per_task_shm": round(shm_bpt, 1),
        "result_bytes_per_task_pickled": round(pickled_bpt, 1),
        "result_reduction": round(reduction, 2),
        "bit_identical": not any("diverged" in f for f in failures),
    }
    output = _merge_bench_doc(output, {"scale": section})
    print(f"wrote scale section to {output}")
    for failure in failures:
        print(f"SCALE REGRESSION: {failure}")
    return section, failures


def run_surrogate(n_traces: int = 10_000, intervals: int = 100,
                  trials: int = 2, output: Path | None = None,
                  full_guards: bool = True) -> tuple[dict, list[str]]:
    """The ``--surrogate`` tier: learned tier-0 fast path vs interval.

    Three measurements on one corpus:

    * **Train cost.** Cold train of the tier against a fresh SimCache,
      then the warm load of the persisted tier — the price every fresh
      process pays, and the price after the first one.
    * **Accept rate.** The accepted/fallback split over a cache-cold
      dataset build with the surrogate on.
    * **End-to-end speedup.** Cache-cold ``build_mode_dataset`` with
      the surrogate off vs on. Trials alternate off/on and the ratio
      is best-of-N each way, so a scheduling hiccup on a shared VM
      lands on one trial, not one side of the ratio. Labels are
      asserted identical between the paths before any number is
      reported.

    ``full_guards`` additionally enforces the acceptance bars: the
    agreement gate must pass (Spearman >= 0.95, MRE <= 5% per mode)
    and the best-of-N speedup must reach 3x. The CI smoke
    (``--surrogate-smoke``) runs a corpus too small to amortise
    training, so it only guards gate passage and a non-empty accept
    set.
    """
    from repro.surrogate import SurrogateTier

    threshold = DEFAULT_SURROGATE_THRESHOLD
    probes = DEFAULT_SURROGATE_PROBES
    n_apps = 12
    gen_s, traces = _timed(lambda: _generate_corpus(
        n_apps, -(-n_traces // n_apps), intervals))
    traces = traces[:n_traces]
    counter_ids = [0, 1, 2, 3]
    print(f"surrogate corpus: {len(traces)} traces x {intervals} "
          f"intervals generated in {gen_s:.3f}s")

    failures: list[str] = []
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-surrogate-bench-"))
    try:
        def _tier():
            return SurrogateTier(
                IntervalModel(simcache=SimCache(cache_dir)),
                threshold=threshold, n_probes=probes)

        tier = _tier()
        train_s, _ = _timed(tier.train)
        warm = _tier()
        load_s, _ = _timed(warm.train)
        print(f"surrogate train: cold {train_s:.3f}s, warm load "
              f"{load_s:.3f}s; agreement {tier.agreement}")
        if not tier.active:
            failures.append(
                f"surrogate agreement gate refused activation: "
                f"{tier.agreement}")
        if full_guards:
            for mode_name, scores in tier.agreement.items():
                if scores["rho"] < 0.95:
                    failures.append(
                        f"held-out Spearman rho {scores['rho']:.3f} "
                        f"< 0.95 for mode {mode_name}")
                if scores["mre"] > 0.05:
                    failures.append(
                        f"held-out IPC MRE {scores['mre']:.4f} > 5% "
                        f"for mode {mode_name}")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # Cache-cold builds: no disk cache, a fresh collector per trial, so
    # every trial pays full simulation (or surrogate) cost.
    def _build(surrogate_on: bool):
        with _env(SIMCACHE_DIR_ENV_VAR, ""), \
                _env(SURROGATE_ENV_VAR, "1" if surrogate_on else "0"):
            return _timed(lambda: build_mode_dataset(
                traces, Mode.HIGH_PERF, counter_ids,
                collector=TelemetryCollector()))

    accepted0 = EXEC_STATS.count("surrogate.accepted")
    fallback0 = EXEC_STATS.count("surrogate.fallback")
    interval_trials: list[float] = []
    surrogate_trials: list[float] = []
    ds_off = ds_on = None
    for _ in range(trials):
        off_s, ds_off = _build(False)
        on_s, ds_on = _build(True)
        interval_trials.append(off_s)
        surrogate_trials.append(on_s)
    accepted = EXEC_STATS.count("surrogate.accepted") - accepted0
    fallback = EXEC_STATS.count("surrogate.fallback") - fallback0
    fraction = accepted / max(1, accepted + fallback)
    labels_ok = (np.array_equal(ds_off.y, ds_on.y)
                 and np.array_equal(ds_off.traces, ds_on.traces))
    interval_s = min(interval_trials)
    surrogate_s = min(surrogate_trials)
    speedup = interval_s / surrogate_s if surrogate_s > 0 else float("inf")
    print(f"cache-cold build x{trials}: interval best {interval_s:.3f}s, "
          f"surrogate best {surrogate_s:.3f}s ({speedup:.2f}x); "
          f"accepted {accepted}/{accepted + fallback} pairs "
          f"({fraction:.1%})")

    if not labels_ok:
        failures.append(
            "surrogate-path dataset labels diverged from the interval "
            "path")
    if accepted == 0:
        failures.append("surrogate accepted zero pairs")
    if full_guards and speedup < 3.0:
        failures.append(
            f"cache-cold build speedup {speedup:.2f}x below the 3x bar")

    section = {
        "n_traces": len(traces),
        "intervals_per_trace": intervals,
        "trials": trials,
        "threshold": threshold,
        "probes": probes,
        "train_cold_s": round(train_s, 4),
        "train_warm_load_s": round(load_s, 4),
        "active": bool(tier.active),
        "agreement": {mode: {k: round(v, 5) for k, v in scores.items()}
                      for mode, scores in tier.agreement.items()},
        "accepted_pairs": accepted,
        "fallback_pairs": fallback,
        "accepted_fraction": round(fraction, 4),
        "interval_build_trials_s": [round(t, 3) for t in interval_trials],
        "surrogate_build_trials_s": [round(t, 3)
                                     for t in surrogate_trials],
        "interval_build_s": round(interval_s, 3),
        "surrogate_build_s": round(surrogate_s, 3),
        "speedup": round(speedup, 3),
        "labels_identical": labels_ok,
    }
    output = _merge_bench_doc(output, {"surrogate": section})
    print(f"wrote surrogate section to {output}")
    for failure in failures:
        print(f"SURROGATE REGRESSION: {failure}")
    return section, failures


def _bench_parallel_quick(traces, workers: int = 2) -> dict | None:
    """Measured multi-core ``evaluate_predictor`` speedup, CI-sized.

    The full ``run()`` records this section, but full runs mostly
    happen on single-CPU containers where ``speedup`` is honestly
    ``null``. When the quick tier lands on a multi-core host it
    re-measures serial vs process-parallel evaluation and refreshes
    the section with a *real* speedup; on one CPU it returns ``None``
    and the recorded ``single_cpu: true`` annotation stands.
    """
    cpus = os.cpu_count() or 1
    if cpus == 1:
        print("evaluate_predictor: single CPU visible; keeping the "
              "recorded single_cpu annotation (no measured speedup)")
        return None
    predictor = _predictor()
    serial_s, serial_suite = _timed(lambda: evaluate_predictor(
        predictor, traces, collector=TelemetryCollector(),
        pmap=ParallelMap("serial")))
    parallel_s, parallel_suite = _timed(lambda: evaluate_predictor(
        predictor, traces, collector=TelemetryCollector(),
        pmap=ParallelMap("process", n_workers=workers)))
    assert serial_suite.mean_ppw_gain == parallel_suite.mean_ppw_gain, \
        "parallel run diverged from serial"
    ratio = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"evaluate_predictor: serial {serial_s:.3f}s, "
          f"{workers}-worker process {parallel_s:.3f}s "
          f"({ratio:.2f}x measured on {cpus} CPUs)")
    return {
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "backend": "process",
        "workers": workers,
        "single_cpu": False,
        "speedup": round(ratio, 3),
        "parallel_vs_serial_ratio": round(ratio, 3),
    }


def _staleness_failures(computed: dict) -> list[str]:
    """Cross-check section keys: emissions vs SECTION_KEYS vs the file."""
    failures = []
    for name, section in computed.items():
        if set(section) != SECTION_KEYS[name]:
            failures.append(
                f"benchmark section {name!r} now emits keys that "
                f"diverge from SECTION_KEYS — update the table and "
                f"regenerate BENCH_perf.json")
    path = REPO_ROOT / "BENCH_perf.json"
    if not path.exists():
        return failures
    doc = json.loads(path.read_text())
    for name, expected in SECTION_KEYS.items():
        recorded = doc.get(name)
        if isinstance(recorded, dict) and set(recorded) != expected:
            missing = sorted(expected - set(recorded))
            extra = sorted(set(recorded) - expected)
            failures.append(
                f"BENCH_perf.json section {name!r} is stale (missing "
                f"keys {missing}, stray keys {extra}) — regenerate it "
                f"with the matching benchmark tier")
    return failures


def run_quick(n_apps: int = 3, workloads_per_app: int = 2,
              intervals: int = 100) -> int:
    """CI perf smoke: batched must not be slower than the scalar path.

    Runs only the warm batched-vs-scalar comparison (plus the cycle
    kernel micro and the resilience-overhead guard) on a small corpus;
    exits non-zero on a regression.
    """
    traces = _generate_corpus(n_apps, workloads_per_app, intervals)
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-quick-bench-"))
    try:
        batched = _bench_batched(traces, cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    arena = _bench_arena(traces, workers=2, repeats=2)
    kernel = _bench_cycle_kernel(n_uops=12000)
    resilience = _bench_resilience(traces)
    obs = _bench_obs(traces, span_iters=100_000)
    parallel_eval = _bench_parallel_quick(traces)
    # Staleness guard: the recorded BENCH_perf.json must carry exactly
    # the keys the current benchmarks emit, or its numbers describe a
    # measurement that no longer exists.
    computed = {
        "batched": batched,
        "arena": arena,
        "cycle_kernel": kernel,
        "resilience": resilience,
        "observability": obs,
    }
    if parallel_eval is not None:
        computed["evaluate_predictor"] = parallel_eval
        # A real multi-core measurement supersedes any recorded
        # single-CPU annotation for this section.
        _merge_bench_doc(None, {"evaluate_predictor": parallel_eval})
    failures = _staleness_failures(computed)
    # Checksumming every loaded entry must stay in the noise: fail only
    # when the overhead is both >5% relative AND >50 ms absolute, so a
    # microsecond-scale wobble on a fast machine cannot flake CI.
    if (resilience["overhead_ratio"] > 1.05
            and (resilience["verify_on_s"] - resilience["verify_off_s"])
            > 0.05):
        failures.append(
            f"simcache verification overhead "
            f"{(resilience['overhead_ratio'] - 1) * 100:.1f}% exceeds "
            f"the 5% budget")
    if batched["evaluate_speedup"] < 1.0:
        failures.append(
            f"warm evaluate_predictor: batched slower than scalar "
            f"({batched['evaluate_speedup']:.2f}x)")
    if batched["dataset_speedup"] < 1.0:
        failures.append(
            f"warm build_mode_dataset: batched slower than scalar "
            f"({batched['dataset_speedup']:.2f}x)")
    if (arena["payload_arena_bytes_per_task"]
            >= arena["payload_pickled_bytes_per_task"]):
        failures.append(
            f"arena dispatch ships more payload than pickled baseline "
            f"({arena['payload_arena_bytes_per_task']:.0f} vs "
            f"{arena['payload_pickled_bytes_per_task']:.0f} B/task)")
    if kernel["speedup"] < 1.0:
        failures.append(
            f"cycle kernel: soa slower than reference "
            f"({kernel['speedup']:.2f}x)")
    # A disabled span is one branch + a shared singleton; 2 µs/call is
    # ~10x its expected cost, so tripping this means the fast path grew
    # an allocation. The traced-run gate is relative AND absolute so
    # timer noise on a fast corpus cannot flake CI.
    if obs["disabled_span_ns"] > 2000:
        failures.append(
            f"disabled tracer span costs "
            f"{obs['disabled_span_ns']:.0f} ns/call (budget 2000 ns)")
    if (obs["overhead_ratio"] > 1.25
            and (obs["traced_s"] - obs["untraced_s"]) > 0.1):
        failures.append(
            f"tracing overhead {(obs['overhead_ratio'] - 1) * 100:.1f}% "
            f"exceeds the 25% budget")
    for failure in failures:
        print(f"PERF REGRESSION: {failure}")
    print("perf smoke:", "FAIL" if failures else "OK")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--apps", type=int, default=8)
    parser.add_argument("--workloads-per-app", type=int, default=3)
    parser.add_argument("--intervals", type=int, default=240)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--quick", action="store_true",
                        help="perf smoke: batched vs reference only, "
                             "non-zero exit if batched is slower")
    parser.add_argument("--scale", action="store_true",
                        help="scale tier: sharded shm dataset build vs "
                             "unsharded pickled on a large corpus; "
                             "merges a 'scale' section into the "
                             "perf JSON, non-zero exit on regression")
    parser.add_argument("--scale-traces", type=int, default=100_000,
                        help="corpus size for --scale (default 100000)")
    parser.add_argument("--scale-shard", type=int, default=5_000,
                        help="traces per shard for --scale "
                             "(default 5000)")
    parser.add_argument("--scale-smoke", action="store_true",
                        help="with --scale: only guard shm < pickled "
                             "result bytes (CI smoke on a small corpus)")
    parser.add_argument("--rss-budget-mb", type=float, default=4096.0,
                        help="peak-RSS budget for the sharded --scale "
                             "build (default 4096)")
    parser.add_argument("--surrogate", action="store_true",
                        help="surrogate tier: learned tier-0 fast path "
                             "vs the interval tier on a cache-cold "
                             "corpus; merges a 'surrogate' section "
                             "into the perf JSON, non-zero exit on "
                             "regression")
    parser.add_argument("--surrogate-traces", type=int, default=10_000,
                        help="corpus size for --surrogate "
                             "(default 10000)")
    parser.add_argument("--surrogate-smoke", action="store_true",
                        help="with --surrogate: small corpus, only "
                             "guard gate passage and a non-empty "
                             "accept set (CI smoke)")
    args = parser.parse_args(argv)
    if args.quick:
        return run_quick()
    if args.surrogate:
        smoke = args.surrogate_smoke
        _, failures = run_surrogate(
            n_traces=600 if smoke else args.surrogate_traces,
            intervals=60 if smoke else 100,
            trials=1 if smoke else 2,
            output=args.output, full_guards=not smoke)
        print("surrogate bench:", "FAIL" if failures else "OK")
        return 1 if failures else 0
    if args.scale:
        _, failures = run_scale(
            n_traces=args.scale_traces, shard=args.scale_shard,
            workers=args.workers, rss_budget_mb=args.rss_budget_mb,
            output=args.output, full_guards=not args.scale_smoke)
        print("scale bench:", "FAIL" if failures else "OK")
        return 1 if failures else 0
    run(workers=args.workers, n_apps=args.apps,
        workloads_per_app=args.workloads_per_app,
        intervals=args.intervals, output=args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
