"""Performance baseline for the execution engine.

Times the dataset-scale hot paths — trace generation, serial vs
parallel ``evaluate_predictor``, and cold- vs warm-cache runs — and
writes a machine-readable ``BENCH_perf.json`` at the repo root so
future PRs have a perf trajectory to compare against.

Run standalone (no pytest session fixtures needed)::

    PYTHONPATH=src python benchmarks/bench_perf_baseline.py

Scale knobs: ``--workers`` (default 4), ``--apps``/``--intervals`` to
grow the corpus. The deployed predictor is a fixed-probability stub so
the measurement isolates the simulation/evaluation pipeline from model
training.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.predictor import DualModePredictor
from repro.data.builders import build_mode_dataset
from repro.eval.runner import evaluate_predictor
from repro.exec import EXEC_STATS, ParallelMap, SimCache
from repro.ml.base import Estimator
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.interval_model import IntervalModel
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application

REPO_ROOT = Path(__file__).resolve().parent.parent

_FAMILIES = ("pointer_chase", "compute_fp", "store_burst", "branchy",
             "bandwidth", "compute_int", "dep_chain", "media")


class _ConstModel(Estimator):
    """Fixed-probability stub model (picklable for process pools)."""

    def __init__(self, prob: float) -> None:
        self.prob = prob
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return np.full(x.shape[0], self.prob)


def _predictor() -> DualModePredictor:
    return DualModePredictor(
        name="bench_const",
        models={Mode.HIGH_PERF: _ConstModel(0.7),
                Mode.LOW_POWER: _ConstModel(0.4)},
        counter_ids=np.array([0, 1, 2, 3]),
        granularity_factor=1,
    )


def _generate_corpus(n_apps: int, workloads_per_app: int,
                     intervals: int, seed: int = 11):
    traces = []
    for i in range(n_apps):
        family = _FAMILIES[i % len(_FAMILIES)]
        app = generate_application(f"perfapp{i}", "bench",
                                   {family: 0.7, "balanced": 0.3},
                                   seed=seed + i)
        for w in range(workloads_per_app):
            traces.append(app.workload(w).trace(intervals, 0))
    return traces


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run(workers: int = 4, n_apps: int = 8, workloads_per_app: int = 3,
        intervals: int = 240,
        output: Path | None = None) -> dict:
    """Execute every measurement and write ``BENCH_perf.json``."""
    predictor = _predictor()

    gen_s, traces = _timed(
        lambda: _generate_corpus(n_apps, workloads_per_app, intervals))
    print(f"trace generation: {len(traces)} traces in {gen_s:.3f}s")

    # Serial vs parallel deployment evaluation. Fresh collectors keep
    # the in-process LRU from leaking work between measurements.
    serial_s, serial_suite = _timed(lambda: evaluate_predictor(
        predictor, traces, collector=TelemetryCollector(),
        pmap=ParallelMap("serial")))
    parallel_s, parallel_suite = _timed(lambda: evaluate_predictor(
        predictor, traces, collector=TelemetryCollector(),
        pmap=ParallelMap("process", n_workers=workers)))
    assert serial_suite.mean_ppw_gain == parallel_suite.mean_ppw_gain, \
        "parallel run diverged from serial"
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"evaluate_predictor: serial {serial_s:.3f}s, "
          f"{workers}-worker process {parallel_s:.3f}s "
          f"({speedup:.2f}x, {os.cpu_count()} CPUs visible)")

    # Cold vs warm simulation cache, same corpus.
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-simcache-bench-"))
    try:
        def _cached_collector():
            return TelemetryCollector(
                model=IntervalModel(simcache=SimCache(cache_dir)))

        cold_s, cold_suite = _timed(lambda: evaluate_predictor(
            predictor, traces, collector=_cached_collector(),
            pmap=ParallelMap("serial")))
        warm_s, warm_suite = _timed(lambda: evaluate_predictor(
            predictor, traces, collector=_cached_collector(),
            pmap=ParallelMap("serial")))
        assert warm_suite.mean_ppw_gain == serial_suite.mean_ppw_gain, \
            "cached run diverged from uncached"
        cache_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        print(f"evaluate_predictor cache: cold {cold_s:.3f}s, "
              f"warm {warm_s:.3f}s ({cache_speedup:.2f}x)")

        # Dataset building hits the cache at whole-matrix granularity,
        # so a warm build skips simulation, telemetry and labelling.
        counter_ids = list(range(12))
        ds_cold_s, _ = _timed(lambda: build_mode_dataset(
            traces, Mode.LOW_POWER, counter_ids,
            collector=_cached_collector(),
            simcache=SimCache(cache_dir)))
        ds_warm_s, _ = _timed(lambda: build_mode_dataset(
            traces, Mode.LOW_POWER, counter_ids,
            collector=_cached_collector(),
            simcache=SimCache(cache_dir)))
        ds_speedup = ds_cold_s / ds_warm_s if ds_warm_s > 0 else float("inf")
        print(f"build_mode_dataset cache: cold {ds_cold_s:.3f}s, "
              f"warm {ds_warm_s:.3f}s ({ds_speedup:.2f}x)")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    payload = {
        "schema": 1,
        "cpus_visible": os.cpu_count(),
        "corpus": {
            "n_traces": len(traces),
            "intervals_per_trace": intervals,
            "n_apps": n_apps,
        },
        "trace_generation_s": round(gen_s, 4),
        "evaluate_predictor": {
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "backend": "process",
            "workers": workers,
            "speedup": round(speedup, 3),
        },
        "simcache": {
            "evaluate_cold_s": round(cold_s, 4),
            "evaluate_warm_s": round(warm_s, 4),
            "evaluate_speedup": round(cache_speedup, 3),
            "dataset_cold_s": round(ds_cold_s, 4),
            "dataset_warm_s": round(ds_warm_s, 4),
            "dataset_speedup": round(ds_speedup, 3),
        },
        "exec_stats": EXEC_STATS.snapshot(),
    }
    output = output or (REPO_ROOT / "BENCH_perf.json")
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--apps", type=int, default=8)
    parser.add_argument("--workloads-per-app", type=int, default=3)
    parser.add_argument("--intervals", type=int, default=240)
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)
    run(workers=args.workers, n_apps=args.apps,
        workloads_per_app=args.workloads_per_app,
        intervals=args.intervals, output=args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
