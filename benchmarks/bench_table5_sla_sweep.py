"""Table 5: post-silicon SLA differentiation.

Paper: retraining Best RF to relaxed SLA floors turns one chip into
three products —

====== ====== ========= =============
P_SLA  RSV    PPW gain  Avg perf
====== ====== ========= =============
0.90   0.3%   21.9%     98.2%
0.80   0.2%   28.2%     95.8%
0.70   <0.1%  31.4%     93.4%
====== ====== ========= =============

We retrain the Best RF with ground-truth labels regenerated under each
floor, deploy via a firmware update (the deployment path is exercised
through the firmware store), and evaluate against *that* SLA on the
held-out suite.
"""

import dataclasses

import numpy as np

from repro import rng as rng_mod
from repro.config import DEFAULT_SLA
from repro.core.pipeline import train_dual_predictor
from repro.data.builders import dataset_from_traces
from repro.eval.reporting import emit, format_table, percent
from repro.eval.runner import evaluate_predictor
from repro.firmware.deploy import FirmwareStore, package_firmware
from repro.ml.forest import RandomForestClassifier

PAPER_ROWS = {0.90: (0.003, 0.219, 0.982),
              0.80: (0.002, 0.282, 0.958),
              0.70: (0.001, 0.314, 0.934)}

FLOORS = (0.90, 0.80, 0.70)


def _run(seed, collector, train_traces, test_traces, standard_models,
         suite_evals):
    store = FirmwareStore()
    rows = []
    results = {}
    for version, floor in enumerate(FLOORS, start=1):
        sla = dataclasses.replace(DEFAULT_SLA, performance_floor=floor)
        if floor == DEFAULT_SLA.performance_floor:
            predictor = standard_models["best_rf"]
            suite = suite_evals("best_rf")
        else:
            datasets = dataset_from_traces(
                train_traces, standard_models.pf_counter_ids, sla,
                collector, granularity_factor=4)

            def factory(mode, _floor=floor):
                return RandomForestClassifier(
                    n_trees=8, max_depth=8,
                    seed=rng_mod.derive_seed(seed, "sla-rf", _floor,
                                             mode.value))

            predictor = train_dual_predictor(
                f"best_rf_sla{int(floor * 100)}", factory, datasets,
                granularity_factor=4, seed=seed)
            suite = evaluate_predictor(predictor, test_traces, sla,
                                       collector=collector)
        store.install(package_firmware(predictor, version=version,
                                       sla_floor=floor))
        paper_rsv, paper_ppw, paper_perf = PAPER_ROWS[floor]
        results[floor] = suite
        rows.append([f"{floor:.2f}",
                     percent(suite.mean_rsv, 2), percent(paper_rsv, 1),
                     percent(suite.mean_ppw_gain), percent(paper_ppw),
                     percent(suite.mean_avg_performance),
                     percent(paper_perf),
                     percent(suite.mean_residency)])
    return rows, results, store


def bench_table5_sla_differentiation(benchmark, seed, collector,
                                     train_traces, test_traces,
                                     standard_models, suite_evals):
    rows, results, store = benchmark.pedantic(
        _run, args=(seed, collector, train_traces, test_traces,
                    standard_models, suite_evals),
        rounds=1, iterations=1)
    text = format_table(
        "Table 5 - one chip, three SLAs via firmware retraining",
        ["SLA floor", "RSV", "Paper RSV", "PPW gain", "Paper PPW",
         "Avg perf", "Paper perf", "Residency"],
        rows)
    text += (f"\nFirmware store now holds {len(store.history)} images; "
             f"active: {store.active.name} "
             f"(P_SLA={store.active.sla_floor}).\n")
    emit("table5_sla_sweep", text)

    ppw = {floor: results[floor].mean_ppw_gain for floor in FLOORS}
    perf = {floor: results[floor].mean_avg_performance
            for floor in FLOORS}
    # Relaxing the SLA must buy PPW monotonically...
    assert ppw[0.70] > ppw[0.80] > ppw[0.90]
    # ...at a modest and monotone performance cost (paper: 98.2% ->
    # 95.8% -> 93.4%).
    assert perf[0.90] > perf[0.80] > perf[0.70] > 0.85
    # The strict product honours its SLA tightly; the relaxed products
    # stay within a few percent. (The paper reports ~0.2% for relaxed
    # floors; our synthetic phase mass sits closer to the relaxed
    # boundaries — see EXPERIMENTS.md.)
    assert results[0.90].mean_rsv < 0.02
    for floor in FLOORS:
        assert results[floor].mean_rsv < 0.07
    # The relaxed models are real products: meaningful extra PPW
    # headroom from 0.90 to 0.70, as in the paper (21.9% -> 31.4%).
    assert ppw[0.70] - ppw[0.90] > 0.03
