"""CI chaos smoke: the closed loop under a low-rate fault plan.

Runs the real pipeline — ``AdaptiveCPU.run_many`` over a process pool
(arena dispatch on) and a cached ``build_mode_dataset`` — with
``REPRO_FAULT_SPEC`` injecting worker crashes, task hangs, payload
corruption, cache bit-rot and arena attach failures, then checks the
resilience contract end to end: every run is bit-identical to a
fault-free serial baseline, or surrenders with a typed
:class:`~repro.errors.ExecFaultError`. Any silent divergence fails the
job. The resilience section of the exec report shows which recovery
paths the plan actually exercised.

Run standalone::

    REPRO_FAULT_SPEC="seed=13,crash=0.05,corrupt_arena=0.25" \
        PYTHONPATH=src python benchmarks/chaos_smoke.py

Without ``REPRO_FAULT_SPEC`` a default low-rate plan covering every
fault kind is used.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.config import FAULT_SPEC_ENV_VAR
from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.predictor import DualModePredictor
from repro.data.builders import build_mode_dataset
from repro.errors import ExecFaultError
from repro.exec import EXEC_STATS, ParallelMap, SimCache, close_pools
from repro.ml.base import Estimator
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application

#: Rates tuned (deterministically, per seed 13 and this workload) so
#: one run exercises every recovery path: pool retry/rebuild, thread
#: degrade, serial fallback, cache quarantine, and arena fallback.
DEFAULT_SPEC = ("seed=13,crash=0.3,hang=0.1,hang_s=0.05,payload=0.2,"
                "corrupt_cache=0.5,corrupt_arena=0.25")


class _ConstModel(Estimator):
    """Fixed-probability stub model (picklable for process pools)."""

    def __init__(self, prob: float) -> None:
        self.prob = prob
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return np.full(x.shape[0], self.prob)


def _corpus(n_apps: int = 3, workloads_per_app: int = 2,
            intervals: int = 80):
    families = ("pointer_chase", "compute_fp", "store_burst")
    traces = []
    for i in range(n_apps):
        app = generate_application(f"chaosapp{i}", "chaos",
                                   {families[i % len(families)]: 1.0},
                                   seed=70 + i)
        for w in range(workloads_per_app):
            traces.append(app.workload(w).trace(intervals, 0))
    return traces


def _predictor() -> DualModePredictor:
    return DualModePredictor(
        name="chaos_const",
        models={Mode.HIGH_PERF: _ConstModel(0.7),
                Mode.LOW_POWER: _ConstModel(0.4)},
        counter_ids=np.array([0, 1, 2, 3]),
        granularity_factor=1,
    )


def main() -> int:
    spec = os.environ.pop(FAULT_SPEC_ENV_VAR, None) or DEFAULT_SPEC
    traces = _corpus()
    predictor = _predictor()
    counter_ids = list(range(8))
    failures: list[str] = []

    # Fault-free serial ground truth (the spec is out of the env here).
    cpu = AdaptiveCPU(predictor, collector=TelemetryCollector())
    baseline = cpu.run_many(traces, pmap=ParallelMap(backend="serial"))
    ds_baseline = build_mode_dataset(traces, Mode.LOW_POWER, counter_ids,
                                     collector=TelemetryCollector())

    # Chaos: pools must fork after the spec lands in the environment.
    close_pools()
    os.environ[FAULT_SPEC_ENV_VAR] = spec
    print(f"chaos plan: {spec}")
    pmap = ParallelMap(backend="process", n_workers=2, retries=2,
                       timeout=30.0)

    try:
        chaotic = cpu.run_many(traces, pmap=pmap)
    except ExecFaultError as exc:
        print(f"run_many surrendered (allowed): "
              f"{type(exc).__name__}: {exc}")
    else:
        for base, chaos in zip(baseline, chaotic):
            if not (base.trace_name == chaos.trace_name
                    and np.array_equal(base.modes, chaos.modes)
                    and np.array_equal(base.ipc, chaos.ipc)
                    and np.array_equal(base.cycles, chaos.cycles)
                    and base.energy_j == chaos.energy_j):
                failures.append(
                    f"run_many diverged on {base.trace_name}")

    cache_dir = Path(tempfile.mkdtemp(prefix="repro-chaos-smoke-"))
    try:
        cache = SimCache(cache_dir)
        # Two passes: the first populates the cache under injection,
        # the second reads it back through quarantine-and-recompute.
        for label in ("cold", "warm"):
            try:
                ds = build_mode_dataset(
                    traces, Mode.LOW_POWER, counter_ids,
                    collector=TelemetryCollector(), simcache=cache,
                    pmap=pmap)
            except ExecFaultError as exc:
                print(f"build_mode_dataset[{label}] surrendered "
                      f"(allowed): {type(exc).__name__}: {exc}")
                break
            if not (np.array_equal(ds.x, ds_baseline.x)
                    and np.array_equal(ds.y, ds_baseline.y)):
                failures.append(f"build_mode_dataset[{label}] diverged")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    close_pools()

    resilience = EXEC_STATS.resilience()
    print("resilience counters:")
    for name, value in resilience.items():
        print(f"  {name:<30s} {value}")
    for failure in failures:
        print(f"CHAOS DIVERGENCE: {failure}")
    print("chaos smoke:", "FAIL" if failures else "OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
