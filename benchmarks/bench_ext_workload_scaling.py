"""Extension bench: app-specific gains vs customer workload count.

Section 7.3's closing paragraph: "we expect these gains to grow and
RSV to fall further when 100's of workloads are available for
application-specific training ... we earmark building this dataset as
important future work." Our synthetic substrate can build that
dataset: for one application we sweep the number of customer workloads
used to train the app-specific half-forest and measure PPW and RSV on
unseen inputs.
"""

import numpy as np

from repro import rng as rng_mod
from repro.core.predictor import DualModePredictor
from repro.data.builders import dataset_from_traces
from repro.eval.reporting import emit, format_table, percent
from repro.eval.runner import evaluate_predictor
from repro.ml.forest import RandomForestClassifier, merge_forests
from repro.uarch.modes import Mode
from repro.workloads.spec2017 import get_benchmark, spec_application

TARGET_APP = "625.x264_s"  # 12 workloads in Table 2
WORKLOAD_COUNTS = (1, 2, 4, 8)
N_TEST_INPUTS = 3


def _half(datasets, seed, tag):
    models = {}
    for mode in Mode:
        model = RandomForestClassifier(
            4, 8, seed=rng_mod.derive_seed(seed, "ws", tag, mode.value))
        model.fit(datasets[mode].x, datasets[mode].y)
        models[mode] = model
    return models


def _run(seed, collector, train_traces, standard_models):
    counter_ids = standard_models.pf_counter_ids
    hdtr_ds = dataset_from_traces(train_traces[::2], counter_ids,
                                  collector=collector,
                                  granularity_factor=4)
    hdtr_half = _half(hdtr_ds, seed, "hdtr")

    bench = get_benchmark(TARGET_APP)
    app = spec_application(bench, seed + 92)
    # The last N inputs stand in for future executions.
    test = [app.workload(w).trace(220, 0)
            for w in range(bench.workloads - N_TEST_INPUTS,
                           bench.workloads)]
    general = evaluate_predictor(standard_models["best_rf"], test,
                                 collector=collector)

    rows = []
    deltas = []
    for count in WORKLOAD_COUNTS:
        customer = [app.workload(w).trace(220, 0) for w in range(count)]
        app_ds = dataset_from_traces(customer, counter_ids,
                                     collector=collector,
                                     granularity_factor=4)
        app_half = _half(app_ds, seed, count)
        blended = DualModePredictor(
            f"blend{count}",
            {m: merge_forests(hdtr_half[m], app_half[m]) for m in Mode},
            np.asarray(counter_ids), granularity_factor=4)
        suite = evaluate_predictor(blended, test, collector=collector)
        delta = suite.mean_ppw_gain - general.mean_ppw_gain
        deltas.append(delta)
        rows.append([count, percent(suite.mean_ppw_gain),
                     f"{delta * 100:+.2f}%",
                     percent(suite.mean_rsv, 2),
                     percent(suite.mean_pgos)])
    return rows, deltas, general


def bench_ext_workload_scaling(benchmark, seed, collector, train_traces,
                               standard_models):
    rows, deltas, general = benchmark.pedantic(
        _run, args=(seed, collector, train_traces, standard_models),
        rounds=1, iterations=1)
    text = format_table(
        f"Extension - app-specific gains vs customer workloads "
        f"({TARGET_APP}; general Best RF: "
        f"{percent(general.mean_ppw_gain)} PPW)",
        ["Customer workloads", "Blend PPW", "Delta vs general", "RSV",
         "PGOS"],
        rows)
    emit("ext_workload_scaling", text)

    # More customer data never hurts much, and the largest budget
    # should be at least as good as the smallest (the paper's
    # projected trend).
    assert deltas[-1] >= deltas[0] - 0.01
    assert max(deltas) > 0.0
