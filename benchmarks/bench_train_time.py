"""Section 7 training-time reference.

Paper: "our 12-counter HDTR telemetry ... is 626MB. On an Intel 3.3GHz
Core i9-7900X, Best-RF trains on one core in 9s, and Best-MLP in 87s."

We time training of the two deployed models on the scaled HDTR
matrices — this is the one bench where pytest-benchmark's timing IS
the result — and report dataset size alongside.
"""

from repro import rng as rng_mod
from repro.data.builders import dataset_from_traces
from repro.eval.reporting import emit, format_table
from repro.ml.forest import RandomForestClassifier
from repro.ml.mlp import MLPClassifier
from repro.uarch.modes import Mode

_STATE = {}


def _dataset(collector, train_traces, counter_ids):
    key = "ds"
    if key not in _STATE:
        _STATE[key] = dataset_from_traces(
            train_traces, counter_ids, collector=collector,
            granularity_factor=4)[Mode.LOW_POWER]
    return _STATE[key]


def bench_train_time_best_rf(benchmark, seed, collector, train_traces,
                             standard_models):
    ds = _dataset(collector, train_traces,
                  standard_models.pf_counter_ids)

    def train():
        return RandomForestClassifier(
            8, 8, seed=rng_mod.derive_seed(seed, "tt-rf")).fit(ds.x, ds.y)

    model = benchmark.pedantic(train, rounds=3, iterations=1)
    emit("train_time_rf", format_table(
        "Training-time reference - Best RF (paper: 9 s on 626 MB "
        "telemetry; ours is the scaled corpus)",
        ["Samples", "Features", "Matrix MB"],
        [[ds.n_samples, ds.n_features,
          f"{ds.x.nbytes / 1e6:.1f}"]]))
    assert model.total_nodes > 0


def bench_train_time_best_mlp(benchmark, seed, collector, train_traces,
                              standard_models):
    ds = _dataset(collector, train_traces,
                  standard_models.pf_counter_ids)

    def train():
        return MLPClassifier(
            hidden_layers=(8, 8, 4), epochs=60,
            seed=rng_mod.derive_seed(seed, "tt-mlp")).fit(ds.x, ds.y)

    model = benchmark.pedantic(train, rounds=1, iterations=1)
    emit("train_time_mlp", format_table(
        "Training-time reference - Best MLP (paper: 87 s; the RF/MLP "
        "time ratio, not the absolute number, is the portable shape)",
        ["Samples", "Features", "Epochs"],
        [[ds.n_samples, ds.n_features, 60]]))
    assert model.loss_curve_[-1] < model.loss_curve_[0]
