"""Table 3: ML inference in firmware — budgets, costs and PGOS.

Left half: the microcontroller ops budget per gating granularity
(312/156 at 10k ... 3125/1562 at 100k). Right half: per model class,
the input counter count, ops per prediction, memory footprint and the
percentage of gating opportunities seized on validation data.

Model classes reproduce the paper's list: three MLP topologies
(32/32/16, 8/8/4, and the 1-layer 10-filter CHARSTAR-style network), a
depth-16 decision tree, 16- and 8-tree random forests, the chi-square
and linear-ensemble SVMs, and logistic regression.
"""

import numpy as np

from repro.core.pipeline import select_counters
from repro.data.builders import dataset_from_traces
from repro.eval.metrics import pgos
from repro.eval.reporting import emit, format_table, percent
from repro.firmware import FirmwareVM, Microcontroller, compile_model
from repro.ml import (
    DecisionTreeClassifier,
    KernelSVM,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)
from repro.uarch.modes import Mode

#: Paper's Table 3 right half for reference in the emitted report.
PAPER_ROWS = {
    "MLP 3x(32/32/16)": (6162, "640B", 81.38),
    "Decision tree d16": (133, "655.36KB", 77.78),
    "SVM chi2 (1000 SV)": (121_000, "48.88KB", 67.54),
    "RF 16 trees d8": (1074, "40.48KB", 66.67),
    "RF 8 trees d8": (538, "20.48KB", 65.68),
    "MLP 3x(8/8/4)": (678, "160B", 60.99),
    "MLP 1x10 (CHARSTAR)": (292, "80B", 57.90),
    "Linear SVM x5": (412, "484B", 54.50),
    "Logistic regression": (158, "8B", 38.33),
}


def _model_zoo(seed):
    return {
        "MLP 3x(32/32/16)": MLPClassifier((32, 32, 16), epochs=40,
                                          seed=seed),
        "Decision tree d16": DecisionTreeClassifier(
            max_depth=16, min_samples_leaf=2, min_samples_split=4),
        "SVM chi2 (1000 SV)": KernelSVM(
            kernel="chi2", max_support_vectors=1000, max_passes=3,
            seed=seed),
        "RF 16 trees d8": RandomForestClassifier(16, 8, seed=seed),
        "RF 8 trees d8": RandomForestClassifier(8, 8, seed=seed),
        "MLP 3x(8/8/4)": MLPClassifier((8, 8, 4), epochs=60, seed=seed),
        "MLP 1x10 (CHARSTAR)": MLPClassifier((10,), epochs=60,
                                             seed=seed),
        "Linear SVM x5": LinearSVM(n_members=5, seed=seed),
        "Logistic regression": LogisticRegression(),
    }


def _run(seed, collector, train_traces):
    counters = select_counters(train_traces[::8][:40], collector, r=12)
    split = int(len(train_traces) * 0.8)
    datasets = dataset_from_traces(train_traces[:split][::2], counters,
                                   collector=collector)
    holdout = dataset_from_traces(train_traces[split:][::2], counters,
                                  collector=collector)
    tune = datasets[Mode.LOW_POWER]
    val = holdout[Mode.LOW_POWER]
    uc = Microcontroller()
    vm = FirmwareVM()
    rows = []
    for name, model in _model_zoo(seed).items():
        if "chi2" in name:
            # Subsample the kernel-SVM tuning set for tractability.
            model.fit(tune.x[::4], tune.y[::4])
        else:
            model.fit(tune.x, tune.y)
        program = compile_model(model)
        trace = vm.run(program, val.x)
        score = pgos(val.y, trace.predictions)
        try:
            finest = uc.finest_granularity(program.ops_per_prediction)
        except Exception:
            finest = None
        paper_ops, paper_mem, paper_pgos = PAPER_ROWS[name]
        rows.append([name, program.n_inputs,
                     program.ops_per_prediction, paper_ops,
                     f"{program.memory_bytes}B", paper_mem,
                     finest if finest else ">100k",
                     percent(score), f"{paper_pgos:.1f}%"])
    rows.sort(key=lambda r: -float(r[7].rstrip("%")))
    budget_rows = [[r.granularity, r.max_ops, r.ops_budget]
                   for r in uc.budget_table()]
    return rows, budget_rows


def bench_table3_firmware_costs(benchmark, seed, collector, train_traces):
    rows, budget_rows = benchmark.pedantic(
        _run, args=(seed, collector, train_traces), rounds=1,
        iterations=1)
    text = format_table(
        "Table 3 (left) - microcontroller ops budget per granularity",
        ["Granularity (inst)", "Max uC ops", "Prediction ops budget"],
        budget_rows)
    text += "\n" + format_table(
        "Table 3 (right) - model classes: cost, footprint, PGOS",
        ["Model", "#Counters", "Ops", "Paper ops", "Memory",
         "Paper mem", "Finest gran.", "PGOS", "Paper PGOS"],
        rows)
    emit("table3_firmware", text)

    by_name = {r[0]: r for r in rows}
    # Budget-table anchor points (paper's left half).
    assert budget_rows[0][1:] == [312, 156]
    assert budget_rows[3][1:] == [1250, 625]
    # Ops land near the paper's counts for the key models.
    assert abs(by_name["RF 8 trees d8"][2] - 538) <= 10
    assert abs(by_name["MLP 3x(8/8/4)"][2] - 678) <= 15
    assert abs(by_name["Logistic regression"][2] - 158) <= 5
    # Shape: the chi-square SVM costs an order of magnitude more per
    # prediction than any model that fits the microcontroller budget.
    deployable = [r[2] for r in rows if r[6] != ">100k"]
    assert by_name["SVM chi2 (1000 SV)"][2] > 10 * max(deployable)
    # All deployable nonlinear models seize most opportunities. (Our
    # synthetic gating boundary is more linearly separable than real
    # telemetry, so logistic regression lands above the paper's 38%;
    # see EXPERIMENTS.md.)
    for name in ("RF 8 trees d8", "RF 16 trees d8", "MLP 3x(8/8/4)",
                 "Decision tree d16"):
        assert float(by_name[name][7].rstrip("%")) > 55.0
