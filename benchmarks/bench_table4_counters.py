"""Table 4: the counters identified by PF Counter Selection.

Paper: the two screens cut 936 counters to 308; PF spectral selection
then picks the 12 of Table 4 (uop-cache misses/hits, L2 silent
evictions, wrong-path flushes, SQ occupancy, L1D reads/hits, stall
count, P-reg refs, loads retired, uops stalled on dep., uops ready).

We run the identical procedure on the synthetic catalog and report the
selected counters, the screen survivor count, and the semantic overlap
with Table 4 (same underlying base signal, directly or via the removed
redundancy group).
"""

from repro.eval.reporting import emit, format_table
from repro.telemetry.counters import TABLE4_COUNTERS, default_catalog
from repro.telemetry.selection import (
    gather_selection_stats,
    pf_counter_selection,
    screen_low_activity,
    screen_low_std,
)


def _run(collector, train_traces):
    stats = gather_selection_stats(collector, train_traces[::6][:60])
    survivors_activity = screen_low_activity(stats)
    survivors = screen_low_std(stats, survivors_activity)
    result = pf_counter_selection(stats, r=12)
    catalog = default_catalog()

    table4_signals = {sig for _, sig in TABLE4_COUNTERS}
    rows = []
    signal_hits = 0
    for rank, (counter_id, group) in enumerate(
            zip(result.selected_ids, result.groups), start=1):
        counter = catalog[counter_id]
        base_sig = _base_signal_name(catalog, counter_id)
        group_signals = {_base_signal_name(catalog, c) for c in group}
        overlap = bool(({base_sig} | group_signals) & table4_signals)
        signal_hits += overlap
        rows.append([rank, counter.name, base_sig, len(group),
                     "yes" if overlap else "no"])
    return (rows, len(survivors_activity), len(survivors), signal_hits,
            result)


def _base_signal_name(catalog, counter_id):
    from repro.uarch.signals import BASE_SIGNALS
    return BASE_SIGNALS[catalog[counter_id].base1].name


def bench_table4_pf_counter_selection(benchmark, collector, train_traces):
    rows, n_activity, n_survivors, hits, result = benchmark.pedantic(
        _run, args=(collector, train_traces), rounds=1, iterations=1)
    text = format_table(
        "Table 4 - PF Counter Selection "
        f"(screens: 936 -> {n_activity} -> {n_survivors}; paper: 936 "
        f"-> 308; selected groups covering a Table-4 signal: {hits}/12)",
        ["Rank", "Selected counter", "Base signal", "Group size",
         "Covers Table-4 signal"],
        rows)
    text += "\nPaper's Table 4: " + ", ".join(
        name for name, _ in TABLE4_COUNTERS) + "\n"
    emit("table4_counters", text)

    # Screens land in the paper's band and selection returns 12
    # informationally distinct counters.
    assert 200 <= n_survivors <= 420
    assert len(rows) == 12
    # The Store Queue Occupancy signal family - the blindspot
    # discriminator - must be covered.
    covered = {row[2] for row in rows}
    grouped = set()
    catalog = default_catalog()
    for group in result.groups:
        grouped |= {_base_signal_name(catalog, c) for c in group}
    assert {"sq_occupancy", "sq_full_stall_cycles"} & (covered | grouped)
