"""Table 2: the SPEC2017-like held-out test suite.

Paper: 20 speed benchmarks, 118 workloads, 571 SimPoint traces. We
regenerate the structural suite (exact benchmark names and per-app
workload counts) and the scaled trace set, and demonstrate SimPoint
region selection on one trace.
"""

from repro.eval.reporting import emit, format_table
from repro.workloads.simpoints import select_simpoints
from repro.workloads.spec2017 import (
    PAPER_TEST_TRACES,
    PAPER_TEST_WORKLOADS,
    SPEC2017_APPS,
    suite_summary,
)


def _build(test_traces):
    per_app = {}
    for trace in test_traces:
        per_app.setdefault(trace.app.name, []).append(trace)
    rows = []
    for bench in SPEC2017_APPS:
        traces = per_app.get(bench.name, [])
        rows.append([bench.name, bench.suite, bench.workloads,
                     len(traces)])
    simpoints = select_simpoints(test_traces[0], k=4, window=10)
    return rows, suite_summary(), simpoints


def bench_table2_test_suite(benchmark, test_traces):
    rows, summary, simpoints = benchmark.pedantic(
        _build, args=(test_traces,), rounds=1, iterations=1)
    text = format_table(
        "Table 2 - SPEC2017-like held-out suite "
        f"(paper: {PAPER_TEST_WORKLOADS} workloads, "
        f"{PAPER_TEST_TRACES} traces; ours: {summary['workloads']} "
        f"workloads, {len(test_traces)} traces)",
        ["Benchmark", "Suite", "Workloads (Table 2)", "Traces built"],
        rows)
    text += "\nSimPoint regions of the first trace: " + ", ".join(
        f"[{p.start_interval},{p.end_interval}) w={p.weight:.2f}"
        for p in simpoints) + "\n"
    emit("table2_testset", text)
    assert summary["benchmarks"] == 20
    assert summary["int_benchmarks"] == summary["fp_benchmarks"] == 10
    assert abs(sum(p.weight for p in simpoints) - 1.0) < 1e-9
