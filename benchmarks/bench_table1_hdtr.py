"""Table 1: composition of the high-diversity training set (HDTR).

Paper: 2,648 traces of 593 applications across six categories
(176 / 75 / 34 / 171 / 80 / 57). We regenerate the scaled equivalent
and report both the paper's counts and ours, plus trace totals.
"""

from repro.eval.reporting import emit, format_table
from repro.workloads.categories import (
    CATEGORIES,
    PAPER_HDTR_APPS,
    PAPER_HDTR_TRACES,
    scaled_category_counts,
)


def _build(train_traces):
    counts = scaled_category_counts()
    by_category = {cat.name: 0 for cat in CATEGORIES}
    for trace in train_traces:
        by_category[trace.app.category] += 1
    rows = []
    for cat in CATEGORIES:
        rows.append([cat.display_name, "server" if cat.server else
                     "client", cat.paper_app_count, counts[cat.name],
                     by_category[cat.name]])
    rows.append(["TOTAL", "", PAPER_HDTR_APPS,
                 sum(counts.values()), len(train_traces)])
    return rows, counts


def bench_table1_hdtr_composition(benchmark, train_traces):
    rows, counts = benchmark.pedantic(
        _build, args=(train_traces,), rounds=1, iterations=1)
    text = format_table(
        "Table 1 - HDTR training corpus composition "
        f"(paper: {PAPER_HDTR_APPS} apps, {PAPER_HDTR_TRACES} traces)",
        ["Category", "Side", "Paper apps", "Scaled apps", "Traces"],
        rows)
    emit("table1_hdtr", text)
    # Every category must be represented and proportions preserved.
    assert all(count >= 4 for count in counts.values())
    assert counts["hpc_perf"] > counts["ai_analytics"]
    assert len(train_traces) >= 2 * sum(counts.values())
