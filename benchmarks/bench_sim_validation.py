"""Substitution check: cycle-level vs interval-level simulator tiers.

The paper's data comes from one proprietary cycle-accurate simulator;
our experiments run on a fast analytical interval model calibrated
against a cycle-level dataflow model of the same machine. This bench
quantifies their agreement across the phase library: IPC rank
correlation per mode, and directional agreement on which phase
families gate cheaply.
"""

import numpy as np

from repro import rng as rng_mod
from repro.eval.metrics import spearman
from repro.eval.reporting import emit, format_table
from repro.uarch.core_model import simulate_phase_cycle_level
from repro.uarch.interval_model import IntervalModel, UOPS_PER_INSTRUCTION
from repro.uarch.modes import Mode
from repro.workloads.generator import physics_matrix
from repro.workloads.phases import PHASE_LIBRARY

GATE_FREE_FAMILIES = {"pointer_chase", "dep_chain", "branchy"}
GATE_COSTLY_FAMILIES = {"compute_fp", "ai_kernel", "bandwidth"}


def _run(seed):
    interval = IntervalModel()
    rows = []
    for arch in PHASE_LIBRARY[::2]:
        phase = arch.sample(rng_mod.stream(seed, "simval", arch.name))
        cyc = {mode: simulate_phase_cycle_level(phase, 10_000, mode,
                                                seed)
               for mode in Mode}
        physics = physics_matrix([phase])
        ipc = {}
        for mode in Mode:
            adjusted = interval.mode_adjusted_physics(physics, mode)
            cpi = sum(interval.cpi_components(adjusted, mode).values())
            ipc[mode] = float(np.minimum(
                1.0 / cpi, interval.effective_width(mode))[0])
        rows.append({
            "phase": arch.name,
            "family": arch.family,
            "cyc_hp": cyc[Mode.HIGH_PERF].ipc,
            "int_hp": ipc[Mode.HIGH_PERF] * UOPS_PER_INSTRUCTION,
            "cyc_ratio": cyc[Mode.LOW_POWER].ipc / cyc[Mode.HIGH_PERF].ipc,
            "int_ratio": ipc[Mode.LOW_POWER] / ipc[Mode.HIGH_PERF],
        })
    return rows


def bench_sim_tier_agreement(benchmark, seed):
    rows = benchmark.pedantic(_run, args=(seed,), rounds=1, iterations=1)
    rho_ipc = spearman([r["cyc_hp"] for r in rows],
                       [r["int_hp"] for r in rows])

    def family_ratio(tier, families):
        vals = [r[tier] for r in rows if r["family"] in families]
        return float(np.mean(vals)) if vals else float("nan")

    table_rows = [[r["phase"], f"{r['cyc_hp']:.2f}", f"{r['int_hp']:.2f}",
                   f"{r['cyc_ratio']:.2f}", f"{r['int_ratio']:.2f}"]
                  for r in rows]
    text = format_table(
        f"Simulator tier validation (IPC spearman rho = {rho_ipc:.3f})",
        ["Phase", "Cycle IPC (hp)", "Interval IPC (hp)",
         "Cycle LP/HP", "Interval LP/HP"],
        table_rows)
    text += (
        "\nMean LP/HP ratio by family group:\n"
        f"  gate-free families   cycle={family_ratio('cyc_ratio', GATE_FREE_FAMILIES):.2f} "
        f"interval={family_ratio('int_ratio', GATE_FREE_FAMILIES):.2f}\n"
        f"  gate-costly families cycle={family_ratio('cyc_ratio', GATE_COSTLY_FAMILIES):.2f} "
        f"interval={family_ratio('int_ratio', GATE_COSTLY_FAMILIES):.2f}\n")
    emit("sim_validation", text)

    # The tiers must rank phases consistently...
    assert rho_ipc > 0.85
    # ...and agree on the direction that drives gating labels: wide-
    # issue-hungry families lose more when gated than latency-bound
    # ones, in both tiers.
    for tier in ("cyc_ratio", "int_ratio"):
        assert (family_ratio(tier, GATE_COSTLY_FAMILIES)
                < family_ratio(tier, GATE_FREE_FAMILIES))
