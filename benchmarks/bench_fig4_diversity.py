"""Figure 4: training-set diversity mitigates blindspots.

Paper: training a 3-layer 32/32/16 MLP on low-power telemetry with
tuning sets of 1 to 440 applications. ~20 applications already seize
most gating opportunities, but scaling to hundreds halves the PGOS
standard deviation (10.8% -> 5.0%) and cuts RSV 2.5-fold (7.1% ->
2.8%).

We sweep scaled tuning-set sizes with per-application cross-validation
folds and report mean/std PGOS and RSV per size.
"""

import numpy as np

from repro import rng as rng_mod
from repro.data.builders import dataset_from_traces
from repro.eval.metrics import effective_sla_window, pgos, pooled_rsv
from repro.eval.reporting import emit, format_series, percent
from repro.ml.crossval import app_kfold
from repro.ml.mlp import MLPClassifier
from repro.uarch.modes import Mode

#: Tuning-set sizes (applications); the paper sweeps 1..440.
SIZES = (1, 3, 6, 12, 25, 50, 100)

N_FOLDS = 6


def _rsv_per_fold(ds, fold_idx, y_pred, window):
    traces = ds.traces[fold_idx]
    pairs = []
    for name in np.unique(traces):
        mask = traces == name
        pairs.append((ds.y[fold_idx][mask], y_pred[mask]))
    return pooled_rsv(pairs, window)


def _run(seed, collector, train_traces, standard_models):
    ds = dataset_from_traces(
        train_traces, standard_models.pf_counter_ids,
        collector=collector)[Mode.LOW_POWER]
    window = effective_sla_window(ds.granularity)
    max_apps = ds.n_applications
    sizes = [s for s in SIZES if s <= int(max_apps * 0.8)]
    results = {"pgos_mean": [], "pgos_std": [], "rsv_mean": []}
    for size in sizes:
        fold_pgos, fold_rsv = [], []
        for fold in app_kfold(ds.groups, k=N_FOLDS, seed=seed,
                              max_tuning_apps=size):
            model = MLPClassifier(
                hidden_layers=(32, 32, 16), epochs=30,
                seed=rng_mod.derive_seed(seed, "fig4", size,
                                         fold.fold_id))
            model.fit(ds.x[fold.tuning_idx], ds.y[fold.tuning_idx])
            preds = model.predict(ds.x[fold.validation_idx])
            fold_pgos.append(pgos(ds.y[fold.validation_idx], preds))
            fold_rsv.append(_rsv_per_fold(ds, fold.validation_idx,
                                          preds, window))
        results["pgos_mean"].append(float(np.mean(fold_pgos)))
        results["pgos_std"].append(float(np.std(fold_pgos)))
        results["rsv_mean"].append(float(np.mean(fold_rsv)))
    return sizes, results


def bench_fig4_training_diversity(benchmark, seed, collector,
                                  train_traces, standard_models):
    sizes, results = benchmark.pedantic(
        _run, args=(seed, collector, train_traces, standard_models),
        rounds=1, iterations=1)
    text = format_series(
        "Figure 4 - PGOS and RSV vs tuning-set size (paper: PGOS std "
        "10.8% -> 5.0%, RSV 7.1% -> 2.8% as apps scale 20 -> 440)",
        "#Apps",
        {
            "PGOS mean": [percent(v) for v in results["pgos_mean"]],
            "PGOS std": [percent(v) for v in results["pgos_std"]],
            "RSV": [percent(v, 2) for v in results["rsv_mean"]],
        },
        sizes)
    emit("fig4_diversity", text)

    few = sizes.index(min(s for s in sizes if s >= 3))
    # A handful of applications already seizes most opportunities...
    mid = len(sizes) // 2
    assert results["pgos_mean"][mid] > 0.55
    # ...but diversity is what stabilises behaviour: both PGOS
    # variance and RSV fall substantially from few to many apps.
    assert (results["pgos_std"][-1] < 0.7 * results["pgos_std"][few]
            or results["pgos_std"][-1] < 0.02)
    assert results["rsv_mean"][-1] < 0.7 * max(results["rsv_mean"][:3])
