"""Figure 8: the headline result — PPW gain and RSV per model.

Paper (SPEC2017 averages):

=================  =========  ======
model              PPW gain   RSV
=================  =========  ======
SRCH @ 10M         5.8%       3.8%
SRCH @ 40k         11.8%      0.3%
CHARSTAR @ 20k     18.4%      10.9%
Best MLP @ 50k     20.6%      1.5%
Best RF @ 40k      21.9%      0.3%
=================  =========  ======

The reproduction's checked *shape*: fine-grained SRCH beats coarse
SRCH; the paper's models match or beat CHARSTAR's PPW while cutting
RSV by an order-of-magnitude class; Best RF is the best all-round
model; and per-suite (int/fp) consistency is higher for the paper's
models than for CHARSTAR.
"""

from repro.eval.reporting import emit, format_table, percent
from repro.workloads.spec2017 import benchmark_names

PAPER = {
    "srch_coarse": (0.058, 0.038),
    "srch": (0.118, 0.003),
    "charstar": (0.184, 0.109),
    "best_mlp": (0.206, 0.015),
    "best_rf": (0.219, 0.003),
}

ORDER = ["srch_coarse", "srch", "charstar", "best_mlp", "best_rf"]


def _run(suite_evals):
    rows = []
    metrics = {}
    int_apps = benchmark_names("int")
    fp_apps = benchmark_names("fp")
    for name in ORDER:
        suite = suite_evals(name)
        means_int = suite.suite_means(
            [a for a in int_apps
             if any(b.app_name == a for b in suite.per_benchmark)])
        means_fp = suite.suite_means(
            [a for a in fp_apps
             if any(b.app_name == a for b in suite.per_benchmark)])
        paper_ppw, paper_rsv = PAPER[name]
        metrics[name] = (suite.mean_ppw_gain, suite.mean_rsv,
                         means_int, means_fp)
        rows.append([
            name, f"{suite.granularity // 1000}k",
            percent(suite.mean_ppw_gain), percent(paper_ppw),
            percent(suite.mean_rsv, 2), percent(paper_rsv, 2),
            percent(suite.mean_pgos), percent(suite.mean_residency),
            percent(suite.mean_avg_performance),
        ])
    return rows, metrics


def bench_fig8_headline(benchmark, suite_evals):
    rows, metrics = benchmark.pedantic(_run, args=(suite_evals,),
                                       rounds=1, iterations=1)
    text = format_table(
        "Figure 8 - PPW gain and RSV per adaptation model (SPEC-like "
        "suite)",
        ["Model", "Gran.", "PPW gain", "Paper PPW", "RSV", "Paper RSV",
         "PGOS", "Residency", "Avg perf"],
        rows)
    emit("fig8_headline", text)

    ppw = {name: metrics[name][0] for name in ORDER}
    rsv = {name: metrics[name][1] for name in ORDER}

    # Shape checks mirroring the paper's Figure-8 narrative.
    # 1. Fine-grained adaptation beats coarse (SRCH 40k vs "10M").
    assert ppw["srch"] > ppw["srch_coarse"]
    # 2. SRCH is by far the most conservative model.
    assert ppw["srch"] < 0.6 * ppw["charstar"]
    # 3. The paper's models cut RSV well below CHARSTAR's...
    assert rsv["best_rf"] < 0.5 * rsv["charstar"]
    assert rsv["best_mlp"] < 0.7 * rsv["charstar"]
    # ...while staying in CHARSTAR's PPW class (within 4 points).
    assert ppw["best_rf"] > ppw["charstar"] - 0.04
    # 4. Best RF is the best all-round model: among the two paper
    # models it has the higher PPW, and its RSV stays in SRCH's class.
    assert ppw["best_rf"] >= ppw["best_mlp"]
    assert rsv["best_rf"] < 0.02
    # 5. Meaningful absolute gains (tens of percent PPW).
    assert ppw["best_rf"] > 0.12
