"""Figure 10: step-by-step blindspot mitigation.

Paper's waterfall, starting from the CHARSTAR baseline MLP:

1. baseline MLP trained only on SPEC2017 data ......... 16.5% RSV
2. + high-diversity HDTR training ..................... 10.9% RSV
3. + PF-selected counters (information content) ....... 4.3% RSV
4. + hyperparameter screening (3-layer topology) ...... 1.2% RSV

We rebuild each stage and measure held-out RSV. Stage 1 trains the
baseline on SPEC-like data with leave-some-out folds (the paper's
footnote-2 protocol, batched into 4 folds for tractability).
"""

import numpy as np

from repro import rng as rng_mod
from repro.core.pipeline import train_dual_predictor
from repro.data.builders import dataset_from_traces
from repro.eval.reporting import emit, format_table, percent
from repro.eval.runner import evaluate_predictor
from repro.ml.mlp import MLPClassifier
from repro.telemetry.counters import default_catalog
from repro.uarch.modes import Mode

PAPER_WATERFALL = [0.165, 0.109, 0.043, 0.012]


def _mlp_factory(hidden, seed, tag):
    def make(mode):
        return MLPClassifier(hidden_layers=hidden, epochs=60,
                             seed=rng_mod.derive_seed(seed, tag,
                                                      mode.value))
    return make


def _spec_trained_stage(seed, collector, test_traces, counter_ids,
                        n_folds=4):
    """Stage 1: the baseline MLP trained on SPEC-like data only."""
    apps = sorted({t.app.name for t in test_traces})
    rng = rng_mod.stream(seed, "fig10-folds")
    order = list(rng.permutation(apps))
    fold_size = max(1, len(order) // n_folds)
    rsvs, ppws = [], []
    for fold in range(n_folds):
        held = set(order[fold * fold_size:(fold + 1) * fold_size])
        train = [t for t in test_traces if t.app.name not in held]
        test = [t for t in test_traces if t.app.name in held]
        if not test:
            continue
        datasets = dataset_from_traces(train, counter_ids,
                                       collector=collector,
                                       granularity_factor=2)
        predictor = train_dual_predictor(
            "spec_only", _mlp_factory((10,), seed, f"s1f{fold}"),
            datasets, granularity_factor=2, rsv_budget=None)
        suite = evaluate_predictor(predictor, test, collector=collector)
        rsvs.append(suite.mean_rsv)
        ppws.append(suite.mean_ppw_gain)
    return float(np.mean(rsvs)), float(np.mean(ppws))


def _run(seed, collector, train_traces, test_traces, standard_models,
         suite_evals):
    catalog = default_catalog()
    stages = []

    # Stage 1: baseline topology + expert counters + SPEC-only data.
    rsv1, ppw1 = _spec_trained_stage(seed, collector, test_traces,
                                     catalog.charstar_ids)
    stages.append(("1-layer MLP, expert counters, SPEC-only training",
                   rsv1, ppw1))

    # Stage 2: + HDTR diversity (this is exactly the CHARSTAR model).
    charstar = suite_evals("charstar")
    stages.append(("+ high-diversity (HDTR) training",
                   charstar.mean_rsv, charstar.mean_ppw_gain))

    # Stage 3: + PF counters, same 1-layer topology. From this stage
    # on the model follows the paper's own methodology, which includes
    # the Section-6.3 sensitivity tuning.
    datasets = dataset_from_traces(train_traces,
                                   standard_models.pf_counter_ids,
                                   collector=collector,
                                   granularity_factor=2)
    stage3 = train_dual_predictor(
        "charstar_pf", _mlp_factory((10,), seed, "s3"), datasets,
        granularity_factor=2, seed=seed)
    suite3 = evaluate_predictor(stage3, test_traces, collector=collector)
    stages.append(("+ PF-selected counters",
                   suite3.mean_rsv, suite3.mean_ppw_gain))

    # Stage 4: + hyperparameter screening => the Best MLP.
    best_mlp = suite_evals("best_mlp")
    stages.append(("+ hyperparameter screening (3-layer topology)",
                   best_mlp.mean_rsv, best_mlp.mean_ppw_gain))
    return stages


def bench_fig10_blindspot_mitigation(benchmark, seed, collector,
                                     train_traces, test_traces,
                                     standard_models, suite_evals):
    stages = benchmark.pedantic(
        _run, args=(seed, collector, train_traces, test_traces,
                    standard_models, suite_evals),
        rounds=1, iterations=1)
    rows = [[name, percent(rsv, 2), percent(paper, 1), percent(ppw)]
            for (name, rsv, ppw), paper in zip(stages, PAPER_WATERFALL)]
    text = format_table(
        "Figure 10 - blindspot mitigation waterfall "
        "(paper: 16.5% -> 10.9% -> 4.3% -> 1.2% RSV)",
        ["Stage", "RSV", "Paper RSV", "PPW gain"],
        rows)
    emit("fig10_mitigation", text)

    rsvs = [stage[1] for stage in stages]
    # The end-to-end reduction must be large (paper: 14x).
    assert rsvs[-1] < 0.5 * rsvs[0]
    # SPEC-only training is the worst stage; the full recipe the best.
    assert rsvs[0] == max(rsvs)
    assert rsvs[-1] <= min(rsvs) + 1e-9
