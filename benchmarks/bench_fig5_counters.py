"""Figure 5: telemetry information content vs counter count.

Paper: sweeping the number of PF-selected counters from 2 to 32 with a
fixed tuning-set size, 8 counters are the minimum for consistently
high PGOS, and 12 minimise RSV; PF-selected counters beat the
model-specific expert set (validation RSV 2.4% vs 3.6%, std 1.0% vs
1.6%).
"""

import numpy as np

from repro import rng as rng_mod
from repro.core.pipeline import select_counters
from repro.data.builders import dataset_from_traces
from repro.eval.metrics import effective_sla_window, pgos, pooled_rsv
from repro.eval.reporting import emit, format_series, percent
from repro.ml.crossval import app_kfold
from repro.ml.mlp import MLPClassifier
from repro.telemetry.counters import default_catalog
from repro.uarch.modes import Mode

COUNTER_COUNTS = (2, 4, 8, 12, 16, 24, 32)
N_FOLDS = 5


def _fold_metrics(ds, columns, seed, tag, window):
    fold_pgos, fold_rsv = [], []
    x = ds.x[:, columns] if columns is not None else ds.x
    for fold in app_kfold(ds.groups, k=N_FOLDS, seed=seed):
        model = MLPClassifier(
            hidden_layers=(32, 32, 16), epochs=30,
            seed=rng_mod.derive_seed(seed, "fig5", tag, fold.fold_id))
        model.fit(x[fold.tuning_idx], ds.y[fold.tuning_idx])
        preds = model.predict(x[fold.validation_idx])
        fold_pgos.append(pgos(ds.y[fold.validation_idx], preds))
        pairs = []
        traces = ds.traces[fold.validation_idx]
        for name in np.unique(traces):
            mask = traces == name
            pairs.append((ds.y[fold.validation_idx][mask], preds[mask]))
        fold_rsv.append(pooled_rsv(pairs, window))
    return (float(np.mean(fold_pgos)), float(np.std(fold_pgos)),
            float(np.mean(fold_rsv)), float(np.std(fold_rsv)))


def _run(seed, collector, train_traces):
    pf32 = select_counters(train_traces[::6][:60], collector, r=32)
    ds = dataset_from_traces(train_traces[::2], pf32,
                             collector=collector)[Mode.LOW_POWER]
    window = effective_sla_window(ds.granularity)
    series = {"pgos_mean": [], "pgos_std": [], "rsv_mean": []}
    counts = [c for c in COUNTER_COUNTS if c <= len(pf32)]
    for count in counts:
        p_mean, p_std, r_mean, _ = _fold_metrics(
            ds, list(range(count)), seed, count, window)
        series["pgos_mean"].append(p_mean)
        series["pgos_std"].append(p_std)
        series["rsv_mean"].append(r_mean)

    # PF-12 vs the expert (CHARSTAR) counter set, same protocol.
    expert_ds = dataset_from_traces(
        train_traces[::2], default_catalog().charstar_ids,
        collector=collector)[Mode.LOW_POWER]
    expert = _fold_metrics(expert_ds, None, seed, "expert", window)
    pf12 = _fold_metrics(ds, list(range(12)), seed, "pf12", window)
    return counts, series, expert, pf12


def bench_fig5_counter_information(benchmark, seed, collector,
                                   train_traces):
    counts, series, expert, pf12 = benchmark.pedantic(
        _run, args=(seed, collector, train_traces), rounds=1,
        iterations=1)
    text = format_series(
        "Figure 5 - PGOS/RSV vs number of PF counters "
        "(paper: 8 counters minimum for high PGOS; 12 minimise RSV)",
        "#Counters",
        {
            "PGOS mean": [percent(v) for v in series["pgos_mean"]],
            "PGOS std": [percent(v) for v in series["pgos_std"]],
            "RSV": [percent(v, 2) for v in series["rsv_mean"]],
        },
        counts)
    text += (
        f"\nPF-12 counters: RSV {percent(pf12[2], 2)} "
        f"(std {percent(pf12[3], 2)}), PGOS {percent(pf12[0])}\n"
        f"Expert (model-specific) counters: RSV {percent(expert[2], 2)} "
        f"(std {percent(expert[3], 2)}), PGOS {percent(expert[0])}\n"
        "Paper: PF improves validation RSV 3.6% -> 2.4%, std 1.6% -> "
        "1.0%.\n")
    emit("fig5_counters", text)

    # Few counters starve the model; more counters help markedly.
    assert series["pgos_mean"][0] < series["pgos_mean"][-1]
    idx8 = counts.index(8)
    assert series["pgos_mean"][idx8] > 0.9 * series["pgos_mean"][-1]
    # Information-content selection "reduces variation" (Section 6.2):
    # cross-fold RSV spread shrinks vs the expert set. (The *mean* RSV
    # advantage appears on the held-out suite, where the blindspot
    # phases live — bench_fig10 measures it; HDTR-internal validation
    # barely contains them.)
    assert pf12[3] < expert[3]
    assert pf12[0] > expert[0] - 0.03
