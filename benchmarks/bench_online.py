"""Benchmark for the continual-adaptation loop (repro.online).

Drives the full drift -> retrain -> shadow-gate -> hot-swap story
against a live daemon under closed-loop client load and writes a
machine-readable ``BENCH_online.json`` at the repo root:

* **continual** — a workload-mix shift is served until the drift
  detector trips, the learner retrains on the drifted window and the
  promoted model hot-swaps in, all while client threads hammer the
  daemon. Records drift-to-promotion time, request p99 in steady state
  vs during the retrain/swap window, and that a deliberately degraded
  candidate offered at the *next* drift event is rejected by the
  shadow gate.
* **swap** — the fence's observables: swap latency, every response's
  digest checked against a direct run on the model of its stamped
  generation (zero mismatches tolerated), and the pin/stale behavior
  across the promotion.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_online.py

``--smoke`` is the CI mode: a small corpus and short load, with hard
assertions — zero failed requests, zero digest mismatches, promotion
reached, degraded candidate rejected — plus the ``BENCH_online.json``
staleness guard. Exits non-zero on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.errors import StaleGenerationError
from repro.serve import (ServeClient, adapt_payload, build_server,
                         wait_until_ready)
from repro.serve.server import AdaptationServer

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Keys every recorded ``BENCH_online.json`` section must carry —
#: the same staleness contract as BENCH_serve.json / BENCH_perf.json.
SECTION_KEYS: dict[str, frozenset] = {
    "continual": frozenset({
        "clients", "requests", "failed", "drift_to_promotion_s",
        "steady_p99_ms", "retrain_p99_ms", "pre_swap_generation",
        "post_swap_generation", "promoted", "retrains_to_promotion",
        "degraded_rejected", "ring_samples", "drift_checks"}),
    "swap": frozenset({
        "swaps", "swap_latency_ms", "digests_checked",
        "digest_mismatches", "stale_pin_errors"}),
}


def _merge_bench_doc(output: Path | None, sections: dict) -> Path:
    output = output or (REPO_ROOT / "BENCH_online.json")
    doc = {"schema": 1}
    if output.exists():
        doc = json.loads(output.read_text())
    doc.update(sections)
    output.write_text(json.dumps(doc, indent=2) + "\n")
    return output


def check_recorded_sections(path: Path) -> list[str]:
    """Key-diffs between a recorded ``BENCH_online.json`` and this file."""
    problems = []
    if not path.exists():
        return problems
    doc = json.loads(path.read_text())
    for section, keys in SECTION_KEYS.items():
        recorded = doc.get(section)
        if recorded is None:
            continue
        got = frozenset(recorded)
        if got != keys:
            problems.append(
                f"section {section!r}: recorded keys {sorted(got)} != "
                f"expected {sorted(keys)} — regenerate "
                f"BENCH_online.json"
            )
    return problems


def _pctl(latencies_s: list[float], q: float) -> float:
    """Percentile in milliseconds (0.0 when the bucket is empty)."""
    if not latencies_s:
        return 0.0
    return float(np.percentile(np.asarray(latencies_s), q) * 1e3)


def _sock_path() -> str:
    return os.path.join(tempfile.mkdtemp(prefix="repro_online_"),
                        "serve.sock")


def degraded_candidate(learner, _signal, _generation):
    """A deliberately bad candidate for the rejection check:
    never-switch gains zero PPW, so the gate's throughput axis must
    veto it regardless of how safe it is."""
    from repro.core.predictor import DualModePredictor
    from repro.serve.server import ConstProbModel
    from repro.uarch.modes import Mode
    incumbent = learner.registry.current().cpu.predictor
    return DualModePredictor(
        name="degraded_never_switch",
        models={Mode.HIGH_PERF: ConstProbModel(0.0),
                Mode.LOW_POWER: ConstProbModel(0.0)},
        counter_ids=np.asarray(incumbent.counter_ids),
        granularity_factor=incumbent.granularity_factor,
    )


def _step_until_verdict(server: AdaptationServer, timeout_s: float,
                        require_promotion: bool = False):
    """Poll the learner until a drift window completes and is judged.

    Returns ``(verdict, step_started, step_finished)`` — the
    timestamps bracket the retraining/shadow-eval/swap work, so
    requests completing inside them measure serving latency *during*
    a retrain.

    With ``require_promotion`` the loop keeps going through gate
    rejections: a rejection does not rebaseline the detector, so the
    drift keeps firing and the learner retrains on a fresh window each
    round — exactly what the continual loop does in production.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        started = time.perf_counter()
        verdict = server.learner.step()
        finished = time.perf_counter()
        if verdict is not None and (verdict.promoted
                                    or not require_promotion):
            return verdict, started, finished
        time.sleep(0.05)
    raise RuntimeError(
        f"no drift verdict within {timeout_s}s "
        f"(detector: {server.detector.snapshot()})"
    )


def run_scenario(clients: int, corpus: dict,
                 load_timeout_s: float = 120.0) -> tuple[dict, dict]:
    """The full continual-adaptation scenario; returns both sections."""
    server = build_server(_sock_path(), predictor_kind="forest",
                          **corpus)
    server.start()
    wait_until_ready(server.address)
    assert server.online_enabled, "REPRO_ONLINE env not applied"
    n_traces = len(server.traces)
    half = n_traces // 2
    window = server.detector.window

    records: list[tuple] = []  # (done_ts, generation, index, digest, s)
    failures: list[BaseException] = []
    stop = threading.Event()
    phase = {"range": (0, half)}

    def worker(cid: int) -> None:
        rng = np.random.default_rng(cid)
        try:
            with ServeClient(server.address, tenant=f"t{cid}") as c:
                while not stop.is_set():
                    lo, hi = phase["range"]
                    index = int(rng.integers(lo, hi))
                    started = time.perf_counter()
                    response = c.adapt(index)
                    done = time.perf_counter()
                    records.append((done,
                                    response["model_generation"],
                                    index,
                                    response["result"]["digest"],
                                    done - started))
        except BaseException as exc:  # noqa: BLE001 - reported below
            failures.append(exc)

    threads = [threading.Thread(target=worker, args=(c,))
               for c in range(clients)]
    for t in threads:
        t.start()
    try:
        # Steady phase on the first half of the corpus until the ring
        # holds a full window, then baseline the detector.
        deadline = time.monotonic() + load_timeout_s
        while (server.ring.occupancy() < window
               and time.monotonic() < deadline):
            time.sleep(0.02)
        assert server.learner.step() is None  # captures the baseline

        gen0_cpu = server.registry.current().cpu
        steady_end = time.perf_counter()

        # Shift the served mix to the second half; the drift detector
        # trips once a disjoint window of the new mix has been served,
        # and the learner retrains + shadow-gates + swaps.
        phase["range"] = (half, n_traces)
        drift_started = time.perf_counter()
        verdict, step_started, step_finished = _step_until_verdict(
            server, load_timeout_s, require_promotion=True)
        promotion_s = time.perf_counter() - drift_started
        promoted = bool(verdict.promoted)
        retrains_to_promotion = int(server.learner.retrains)
        post_gen = server.registry.generation
        gen1_cpu = server.registry.current().cpu

        # Keep serving post-swap so generation-1 responses accumulate.
        post_deadline = time.monotonic() + 1.0
        count_at_swap = len(records)
        while (len(records) < count_at_swap + clients * 2
               and time.monotonic() < post_deadline):
            time.sleep(0.02)

        # Second drift event: shift back to the first half and offer a
        # deliberately degraded candidate — the gate must reject it.
        server.learner.candidate_fn = degraded_candidate
        phase["range"] = (0, half)
        rejection, _, _ = _step_until_verdict(server, load_timeout_s)
        degraded_rejected = not rejection.promoted
        final_gen = server.registry.generation
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=30.0)
        ring_samples = server.ring.snapshot()["sampled"]
        drift_checks = server.detector.snapshot()["checks"]
        swap_latency_ms = (
            None if server.registry.last_swap_latency_s is None
            else round(server.registry.last_swap_latency_s * 1e3, 3))

        # Digest stability: every response must be bit-identical to a
        # direct run on the model of its stamped generation.
        direct = {
            0: [adapt_payload(gen0_cpu.run(t))["digest"]
                for t in server.traces],
        }
        if post_gen != 0:
            direct[post_gen] = [adapt_payload(gen1_cpu.run(t))["digest"]
                                for t in server.traces]
        mismatches = sum(
            1 for _, gen, index, digest, _ in records
            if digest != direct[gen][index])

        # Pin behavior across the promotion.
        stale_pin_errors = 0
        with ServeClient(server.address, pin_generation=0) as c:
            try:
                c.adapt(0)
            except StaleGenerationError:
                stale_pin_errors = 1
        server.request_stop()
        server.serve_forever()

    steady_lat = [lat for done, _, _, _, lat in records
                  if done <= steady_end]
    retrain_lat = [lat for done, _, _, _, lat in records
                   if step_started <= done <= step_finished]
    generations = {gen for _, gen, _, _, _ in records}
    print(f"continual: {len(records)} requests over generations "
          f"{sorted(generations)}, {len(failures)} failed, "
          f"drift->promotion {promotion_s:.2f}s, swap "
          f"{swap_latency_ms}ms, steady p99 "
          f"{_pctl(steady_lat, 99):.2f}ms vs retrain p99 "
          f"{_pctl(retrain_lat, 99):.2f}ms, degraded rejected: "
          f"{degraded_rejected} (final gen {final_gen})")
    if failures:
        raise RuntimeError(f"{len(failures)} client failures; first: "
                           f"{failures[0]!r}")
    continual = {
        "clients": clients,
        "requests": len(records),
        "failed": len(failures),
        "drift_to_promotion_s": round(promotion_s, 3),
        "steady_p99_ms": round(_pctl(steady_lat, 99), 3),
        "retrain_p99_ms": round(_pctl(retrain_lat, 99), 3),
        "pre_swap_generation": 0,
        "post_swap_generation": post_gen,
        "promoted": promoted,
        "retrains_to_promotion": retrains_to_promotion,
        "degraded_rejected": degraded_rejected,
        "ring_samples": int(ring_samples),
        "drift_checks": int(drift_checks),
    }
    swap = {
        "swaps": int(server.registry.swaps),
        "swap_latency_ms": swap_latency_ms,
        "digests_checked": len(records),
        "digest_mismatches": int(mismatches),
        "stale_pin_errors": stale_pin_errors,
    }
    return continual, swap


def _online_env(window: int, ring: int) -> None:
    """Continual-loop knobs for the benchmark daemon (read at server
    construction through the active exec config)."""
    os.environ["REPRO_ONLINE"] = "1"
    os.environ["REPRO_ONLINE_RING"] = str(ring)
    os.environ["REPRO_ONLINE_SAMPLE"] = "1"
    os.environ["REPRO_ONLINE_DRIFT_WINDOW"] = str(window)
    # The benchmark drives learner.step() itself for deterministic
    # bracketing; the background thread just sleeps.
    os.environ["REPRO_ONLINE_INTERVAL_S"] = "3600"


def run_full(args: argparse.Namespace) -> int:
    _online_env(window=32, ring=1024)
    corpus = {"n_apps": args.apps,
              "workloads_per_app": args.workloads_per_app,
              "intervals": args.intervals}
    continual, swap = run_scenario(args.clients, corpus)
    out = _merge_bench_doc(args.output,
                           {"continual": continual, "swap": swap})
    print(f"wrote {out}")
    return 0


def run_smoke(args: argparse.Namespace) -> int:
    """CI gate: the end-to-end loop with hard acceptance assertions."""
    _online_env(window=16, ring=512)
    corpus = {"n_apps": 8, "workloads_per_app": 1, "intervals": 64}
    continual, swap = run_scenario(clients=4, corpus=corpus)

    problems = check_recorded_sections(
        args.output or (REPO_ROOT / "BENCH_online.json"))
    if continual["failed"]:
        problems.append(
            f"{continual['failed']} requests failed during the swap")
    if not continual["promoted"]:
        problems.append("drift did not lead to a promotion")
    if continual["post_swap_generation"] != 1:
        problems.append(
            f"expected generation 1 after promotion, got "
            f"{continual['post_swap_generation']}")
    if not continual["degraded_rejected"]:
        problems.append(
            "shadow gate promoted the deliberately degraded candidate")
    if swap["digest_mismatches"]:
        problems.append(
            f"{swap['digest_mismatches']} responses were not "
            f"bit-identical to their generation's direct run")
    if swap["stale_pin_errors"] != 1:
        problems.append(
            "pin_generation=0 was not refused after the promotion")
    if problems:
        for problem in problems:
            print(f"SMOKE FAIL: {problem}")
        return 1
    print("smoke ok: drift -> retrain -> shadow gate -> hot swap, "
          f"{continual['requests']} requests, 0 failed, 0 digest "
          "mismatches, degraded candidate rejected")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small corpus, hard assertions")
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--apps", type=int, default=8)
    parser.add_argument("--workloads-per-app", type=int, default=2)
    parser.add_argument("--intervals", type=int, default=96)
    parser.add_argument("--output", type=Path, default=None,
                        help="bench doc path (default: repo-root "
                             "BENCH_online.json)")
    args = parser.parse_args()
    if args.smoke:
        return run_smoke(args)
    return run_full(args)


if __name__ == "__main__":
    raise SystemExit(main())
