"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one methodological choice the paper argues for and
measures the consequence:

* per-application vs random-row cross-validation partitioning
  (Section 4.3's leakage argument);
* counter normalisation by cycles on/off (Section 4.1);
* the t+2 prediction horizon vs reacting at t (requirement 2 of
  Section 2.2) — evaluated as label-alignment accuracy;
* dual-mode (two models) vs a single shared model (Section 4.1);
* gating granularity sweep 10k -> 100k (Section 7's "finest
  granularity maximises PPW").
"""

import numpy as np

from repro import rng as rng_mod
from repro.core.pipeline import train_dual_predictor
from repro.core.predictor import DualModePredictor
from repro.data.builders import build_mode_dataset, dataset_from_traces
from repro.eval.metrics import pgos
from repro.eval.reporting import emit, format_table, percent
from repro.eval.runner import evaluate_predictor
from repro.ml.crossval import app_kfold
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics_ml import accuracy
from repro.uarch.modes import Mode


def _rf(seed, tag):
    def factory(mode):
        return RandomForestClassifier(
            n_trees=8, max_depth=8,
            seed=rng_mod.derive_seed(seed, tag, mode.value))
    return factory


# ----------------------------------------------------------------------
def _run_partitioning(seed, collector, train_traces, counter_ids):
    ds = dataset_from_traces(train_traces[::2], counter_ids,
                             collector=collector)[Mode.LOW_POWER]
    rng = rng_mod.stream(seed, "ablate-rows")
    scores = {"per_app": [], "random_rows": []}
    folds = app_kfold(ds.groups, k=4, seed=seed)
    for fold in folds:
        model = RandomForestClassifier(8, 8, seed=fold.fold_id)
        model.fit(ds.x[fold.tuning_idx], ds.y[fold.tuning_idx])
        scores["per_app"].append(
            accuracy(ds.y[fold.validation_idx],
                     model.predict(ds.x[fold.validation_idx])))
        # Random-row partition of the same sizes (leaky protocol).
        order = rng.permutation(ds.n_samples)
        n_val = len(fold.validation_idx)
        val, tune = order[:n_val], order[n_val:]
        leaky = RandomForestClassifier(8, 8, seed=fold.fold_id)
        leaky.fit(ds.x[tune], ds.y[tune])
        scores["random_rows"].append(
            accuracy(ds.y[val], leaky.predict(ds.x[val])))
    return (float(np.mean(scores["per_app"])),
            float(np.mean(scores["random_rows"])))


def bench_ablation_partitioning(benchmark, seed, collector, train_traces,
                                standard_models):
    per_app, random_rows = benchmark.pedantic(
        _run_partitioning,
        args=(seed, collector, train_traces,
              standard_models.pf_counter_ids),
        rounds=1, iterations=1)
    text = format_table(
        "Ablation - CV partitioning (Section 4.3: random-row splits "
        "leak telemetry of common code and overestimate accuracy)",
        ["Protocol", "Validation accuracy"],
        [["per-application (paper)", percent(per_app)],
         ["random rows (leaky)", percent(random_rows)]])
    emit("ablation_partitioning", text)
    assert random_rows > per_app + 0.01


# ----------------------------------------------------------------------
def _run_normalisation(seed, collector, train_traces, counter_ids):
    from repro.ml.mlp import MLPClassifier
    ds = dataset_from_traces(train_traces[::2], counter_ids,
                             collector=collector)[Mode.LOW_POWER]
    raw_x = _raw_counts_matrix(collector, train_traces[::2], counter_ids)
    folds = app_kfold(ds.groups, k=4, seed=seed)
    results = {}
    for name, x in (("normalised (paper)", ds.x),
                    ("raw counts", raw_x)):
        scores = []
        for fold in folds:
            model = MLPClassifier(
                hidden_layers=(8, 8, 4), epochs=30,
                seed=rng_mod.derive_seed(seed, "norm", name,
                                         fold.fold_id))
            model.fit(x[fold.tuning_idx], ds.y[fold.tuning_idx])
            scores.append(pgos(ds.y[fold.validation_idx],
                               model.predict(x[fold.validation_idx])))
        results[name] = (float(np.mean(scores)), float(np.std(scores)))
    return results


_RAW_CACHE = {}


def _raw_counts_matrix(collector, traces, counter_ids):
    key = (id(collector), len(traces), tuple(counter_ids))
    if key not in _RAW_CACHE:
        from repro.data.builders import PREDICTION_HORIZON
        parts = []
        for trace in traces:
            snap = collector.snapshot(trace, Mode.LOW_POWER, counter_ids)
            from repro.core.labels import gating_labels
            labels = gating_labels(trace, model=collector.model)
            t_count = min(snap.n_intervals, labels.n_intervals)
            parts.append(snap.counts[:t_count - PREDICTION_HORIZON])
        _RAW_CACHE[key] = np.concatenate(parts)
    return _RAW_CACHE[key]


def bench_ablation_normalisation(benchmark, seed, collector,
                                 train_traces, standard_models):
    results = benchmark.pedantic(
        _run_normalisation,
        args=(seed, collector, train_traces,
              standard_models.pf_counter_ids),
        rounds=1, iterations=1)
    rows = [[name, percent(mean), percent(std)]
            for name, (mean, std) in results.items()]
    text = format_table(
        "Ablation - cycle normalisation (Section 4.1: normalising "
        "counters by interval cycles improves model accuracy; the "
        "effect is on scale-sensitive learners like the MLP)",
        ["Features", "PGOS mean", "PGOS std"],
        rows)
    emit("ablation_normalisation", text)
    norm = results["normalised (paper)"][0]
    raw = results["raw counts"][0]
    assert norm >= raw - 0.02  # normalisation never hurts, usually helps


# ----------------------------------------------------------------------
def _run_horizon(collector, train_traces, counter_ids):
    rows = []
    transition_rows = []
    for horizon in (1, 2, 4):
        ds = build_mode_dataset(train_traces[::4], Mode.LOW_POWER,
                                counter_ids, collector=collector,
                                horizon=horizon)
        model = RandomForestClassifier(8, 8, seed=horizon)
        split = int(ds.n_samples * 0.8)
        model.fit(ds.x[:split], ds.y[:split])
        preds = model.predict(ds.x[split:])
        y_val = ds.y[split:]
        rows.append([f"predict t+{horizon}",
                     float(accuracy(y_val, preds))])
        if horizon == 2:
            # Transition intervals: where the best configuration at
            # t+2 differs from the one at t. A reactive controller
            # (carry forward the configuration that was best at t)
            # misses every one of these by construction; a predictor
            # can anticipate some of them from leading indicators.
            ds0 = build_mode_dataset(train_traces[::4], Mode.LOW_POWER,
                                     counter_ids, collector=collector,
                                     horizon=1)
            current = ds0.y[split - 1:split - 1 + y_val.shape[0] - 1]
            future = y_val[1:]
            transitions = current != future
            trans_acc = float((preds[1:][transitions]
                               == future[transitions]).mean())
            transition_rows = [
                ["react (carry current config)", 0.0],
                ["predict t+2", trans_acc],
            ]
    return rows, transition_rows


def bench_ablation_horizon(benchmark, collector, train_traces,
                           standard_models):
    rows, transition_rows = benchmark.pedantic(
        _run_horizon,
        args=(collector, train_traces, standard_models.pf_counter_ids),
        rounds=1, iterations=1)
    text = format_table(
        "Ablation - prediction horizon (Section 2.2: predict, don't "
        "react; Figure 3's t+2 pipeline)",
        ["Strategy", "Accuracy"],
        [[name, percent(value)] for name, value in rows])
    text += "\n" + format_table(
        "Accuracy on configuration-transition intervals only",
        ["Strategy", "Transition accuracy"],
        [[name, percent(value)] for name, value in transition_rows])
    emit("ablation_horizon", text)
    by_name = dict(rows)
    by_trans = dict(transition_rows)
    # Nearer horizons are easier than farther ones...
    assert by_name["predict t+1"] >= by_name["predict t+4"] - 0.02
    # ...and prediction anticipates transitions that reaction, by
    # construction, always misses.
    assert by_trans["predict t+2"] > 0.15
    assert by_trans["react (carry current config)"] == 0.0


# ----------------------------------------------------------------------
def _run_dualmode(seed, collector, train_traces, test_traces,
                  counter_ids):
    datasets = dataset_from_traces(train_traces[::2], counter_ids,
                                   collector=collector,
                                   granularity_factor=4)
    dual = train_dual_predictor("dual", _rf(seed, "dual"), datasets,
                                granularity_factor=4, seed=seed)
    # Single shared model: concatenate both modes' rows.
    merged_x = np.concatenate([datasets[m].x for m in Mode])
    merged_y = np.concatenate([datasets[m].y for m in Mode])
    shared = RandomForestClassifier(
        8, 8, seed=rng_mod.derive_seed(seed, "shared"))
    shared.fit(merged_x, merged_y)
    shared.decision_threshold = float(np.mean(
        [dual.models[m].decision_threshold for m in Mode]))
    single = DualModePredictor(
        "single", {m: shared for m in Mode},
        np.asarray(counter_ids), granularity_factor=4)
    ev_dual = evaluate_predictor(dual, test_traces[::2],
                                 collector=collector)
    ev_single = evaluate_predictor(single, test_traces[::2],
                                   collector=collector)
    return ev_dual, ev_single


def bench_ablation_dualmode(benchmark, seed, collector, train_traces,
                            test_traces, standard_models):
    ev_dual, ev_single = benchmark.pedantic(
        _run_dualmode,
        args=(seed, collector, train_traces, test_traces,
              standard_models.pf_counter_ids),
        rounds=1, iterations=1)
    text = format_table(
        "Ablation - dual-mode predictor (Section 4.1: one model per "
        "telemetry mode) vs one shared model",
        ["Variant", "PPW gain", "RSV", "PGOS"],
        [["dual-mode (paper)", percent(ev_dual.mean_ppw_gain),
          percent(ev_dual.mean_rsv, 2), percent(ev_dual.mean_pgos)],
         ["single shared", percent(ev_single.mean_ppw_gain),
          percent(ev_single.mean_rsv, 2), percent(ev_single.mean_pgos)]])
    emit("ablation_dualmode", text)
    # The shared model mixes two telemetry distributions; the dual
    # design should hold or improve the PPW-at-RSV operating point.
    dual_score = ev_dual.mean_ppw_gain - 2.0 * ev_dual.mean_rsv
    single_score = ev_single.mean_ppw_gain - 2.0 * ev_single.mean_rsv
    assert dual_score >= single_score - 0.02


# ----------------------------------------------------------------------
def _run_granularity(seed, collector, train_traces, test_traces,
                     counter_ids):
    rows = []
    for factor in (1, 2, 4, 10):
        datasets = dataset_from_traces(train_traces[::2], counter_ids,
                                       collector=collector,
                                       granularity_factor=factor)
        predictor = train_dual_predictor(
            f"rf_{factor}", _rf(seed, f"gran{factor}"), datasets,
            granularity_factor=factor, seed=seed)
        suite = evaluate_predictor(predictor, test_traces[::2],
                                   collector=collector)
        rows.append([factor * 10_000, suite.mean_ppw_gain,
                     suite.mean_rsv, suite.mean_pgos])
    return rows


def bench_ablation_granularity(benchmark, seed, collector, train_traces,
                               test_traces, standard_models):
    rows = benchmark.pedantic(
        _run_granularity,
        args=(seed, collector, train_traces, test_traces,
              standard_models.pf_counter_ids),
        rounds=1, iterations=1)
    text = format_table(
        "Ablation - gating granularity (Section 7: finest supported "
        "granularity maximises PPW; SRCH's 10M interval halves gains)",
        ["Granularity (inst)", "PPW gain", "RSV", "PGOS"],
        [[g, percent(p), percent(r, 2), percent(s)]
         for g, p, r, s in rows])
    emit("ablation_granularity", text)
    ppw = {g: p for g, p, _, _ in rows}
    # Finer granularity captures more opportunity than the coarsest.
    assert ppw[10_000] > ppw[100_000]
    assert ppw[20_000] > ppw[100_000]
