"""Extension bench: cluster gating complements DVFS at V_min.

Section 2.1: "DVFS has also been applied at both system and core
levels, and we note that cluster gating is a complementary technique
that can further reduce power at V_min." We sweep DVFS operating
points and, at each, measure the additional energy saving from oracle
cluster gating — showing the gating headroom that remains once voltage
scaling runs out.
"""

import numpy as np

from repro.core.labels import gating_labels
from repro.eval.reporting import emit, format_table, percent
from repro.uarch.dvfs import DVFSModel
from repro.uarch.interval_model import IntervalModel
from repro.uarch.modes import Mode

FREQUENCIES = (2.0, 1.5, 1.0)


def _run(collector, test_traces):
    dvfs = DVFSModel()
    traces = test_traces[::6]
    rows = []
    gains_at = {}
    nominal_energy = None
    for freq in FREQUENCIES:
        machine = dvfs.machine_at(freq)
        sim = IntervalModel(machine)
        power = dvfs.power_model_at(freq, machine)
        e_hp, e_gated = 0.0, 0.0
        for trace in traces:
            hp = sim.simulate(trace, Mode.HIGH_PERF)
            lp = sim.simulate(trace, Mode.LOW_POWER)
            labels = gating_labels(trace, model=sim)
            gated = labels.labels.astype(bool)
            per_hp = power.interval_energy_j(hp)
            per_lp = power.interval_energy_j(lp)
            e_hp += float(per_hp.sum())
            e_gated += float(np.where(gated, per_lp, per_hp).sum())
        gating_gain = e_hp / e_gated - 1.0
        gains_at[freq] = gating_gain
        if nominal_energy is None:
            nominal_energy = e_hp
        rows.append([f"{freq:.1f} GHz",
                     f"{dvfs.voltage_for(freq):.2f} V",
                     percent(1.0 - e_hp / nominal_energy),
                     percent(gating_gain),
                     percent(1.0 - e_gated / nominal_energy)])
    return rows, gains_at


def bench_ext_dvfs_interplay(benchmark, collector, test_traces):
    rows, gains_at = benchmark.pedantic(
        _run, args=(collector, test_traces), rounds=1, iterations=1)
    text = format_table(
        "Extension - cluster gating on top of DVFS (oracle gating; "
        "energy relative to the nominal 2.0 GHz ungated run)",
        ["Operating point", "Voltage", "DVFS-only saving",
         "Extra gating PPW at this point", "Combined saving"],
        rows)
    emit("ext_dvfs", text)

    # Gating keeps delivering double-digit-class PPW even at V_min,
    # where DVFS has no voltage headroom left (Section 2.1's claim).
    assert gains_at[1.0] > 0.08
    # And the techniques compose: combined beats DVFS alone.
    assert all(g > 0.05 for g in gains_at.values())
