"""CI observability smoke: trace schema, span coverage, merge parity.

Runs a small but real deployment — ``AdaptiveCPU.run_many`` over a
process pool plus a cached ``build_mode_dataset`` — twice: once with
tracing off and once with ``REPRO_TRACE`` writing a trace file. Then
asserts the observability contract end to end:

1. the traced run is **bit-identical** to the untraced run (tracing
   observes, never perturbs);
2. the emitted trace document passes :func:`repro.obs.validate_trace`
   and contains at least one span for every instrumented stage the
   run exercised;
3. worker-side counters merged back into the parent registry: the
   process-pool run records the same per-item counters a serial run
   does, and spans recorded inside workers carry worker pids;
4. the ``--obs-report`` renderer produces its profile sections.

Run standalone::

    PYTHONPATH=src python benchmarks/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.config import TRACE_ENV_VAR
from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.predictor import DualModePredictor
from repro.data.builders import build_mode_dataset
from repro.exec import EXEC_STATS, ParallelMap, close_pools
from repro.ml.base import Estimator
from repro.obs import render_report, tracer, validate_trace
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.modes import Mode
from repro.workloads.generator import generate_application

#: Span names the traced deployment below must record at least once.
EXPECTED_SPANS = (
    "exec.map_chunks",
    "exec.chunk",
    "deploy.prepare",
    "deploy.infer",
    "deploy.finalize",
    "interval.simulate_batch",
    "build_dataset",
    "arena.build",
)


class _ConstModel(Estimator):
    """Fixed-probability stub model (picklable for process pools)."""

    def __init__(self, prob: float) -> None:
        self.prob = prob
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return np.full(x.shape[0], self.prob)


def _corpus(n_apps: int = 3, workloads_per_app: int = 2,
            intervals: int = 80):
    families = ("pointer_chase", "compute_fp", "store_burst")
    traces = []
    for i in range(n_apps):
        app = generate_application(f"obsapp{i}", "obs",
                                   {families[i % len(families)]: 1.0},
                                   seed=50 + i)
        for w in range(workloads_per_app):
            traces.append(app.workload(w).trace(intervals, 0))
    return traces


def _predictor() -> DualModePredictor:
    return DualModePredictor(
        name="obs_const",
        models={Mode.HIGH_PERF: _ConstModel(0.7),
                Mode.LOW_POWER: _ConstModel(0.4)},
        counter_ids=np.array([0, 1, 2, 3]),
        granularity_factor=1,
    )


def _deploy(traces, pmap):
    cpu = AdaptiveCPU(_predictor(), collector=TelemetryCollector())
    runs = cpu.run_many(traces, pmap=pmap)
    ds = build_mode_dataset(traces, Mode.LOW_POWER, list(range(8)),
                            collector=TelemetryCollector(), pmap=pmap)
    return runs, ds


def _runs_equal(a, b) -> bool:
    return all(
        x.trace_name == y.trace_name
        and np.array_equal(x.modes, y.modes)
        and np.array_equal(x.ipc, y.ipc)
        and np.array_equal(x.cycles, y.cycles)
        and x.energy_j == y.energy_j
        for x, y in zip(a, b)
    )


def main() -> int:
    failures: list[str] = []
    traces = _corpus()
    os.environ.pop(TRACE_ENV_VAR, None)
    tracer.refresh()

    # Serial ground truth, and its deterministic per-pair counter.
    pairs_before = EXEC_STATS.count("interval_batch.pairs")
    serial_runs, serial_ds = _deploy(
        traces, ParallelMap(backend="serial"))
    serial_pairs = EXEC_STATS.count("interval_batch.pairs") - pairs_before

    # Untraced process-pool run: worker counters must merge to the
    # exact serial totals (the pre-PR-5 bug was that they vanished).
    close_pools()
    pairs_before = EXEC_STATS.count("interval_batch.pairs")
    merges_before = EXEC_STATS.count("obs.worker_merges")
    pmap = ParallelMap(backend="process", n_workers=2)
    plain_runs, plain_ds = _deploy(traces, pmap)
    plain_pairs = EXEC_STATS.count("interval_batch.pairs") - pairs_before
    if not _runs_equal(serial_runs, plain_runs):
        failures.append("process run diverged from serial")
    if plain_pairs != serial_pairs:
        failures.append(
            f"worker-side interval_batch.pairs merged to {plain_pairs}, "
            f"serial recorded {serial_pairs}")
    if EXEC_STATS.count("obs.worker_merges") <= merges_before:
        failures.append("no worker sidecar was merged")

    # Traced process-pool run: bit-identical, schema-valid, covered.
    close_pools()
    fd, trace_path = tempfile.mkstemp(prefix="repro-obs-smoke-",
                                      suffix=".json")
    os.close(fd)
    os.environ[TRACE_ENV_VAR] = trace_path
    try:
        with tracer.trace("obs_smoke"):
            traced_runs, traced_ds = _deploy(
                traces, ParallelMap(backend="process", n_workers=2))
        close_pools()
        if not _runs_equal(plain_runs, traced_runs):
            failures.append("traced run diverged from untraced run")
        if not (np.array_equal(plain_ds.x, traced_ds.x)
                and np.array_equal(plain_ds.y, traced_ds.y)):
            failures.append("traced dataset diverged from untraced")

        doc = json.loads(Path(trace_path).read_text())
        problems = validate_trace(doc)
        for problem in problems:
            failures.append(f"trace schema: {problem}")
        by_name: dict[str, int] = {}
        for span in doc["spans"]:
            by_name[span["name"]] = by_name.get(span["name"], 0) + 1
        print(f"trace: {len(doc['spans'])} spans, "
              f"{doc['dropped_spans']} dropped, schema ok: "
              f"{not problems}")
        for name in EXPECTED_SPANS:
            count = by_name.get(name, 0)
            print(f"  {name:<26s} {count:5d}")
            if count == 0:
                failures.append(f"no spans recorded for {name!r}")
        parent = os.getpid()
        worker_spans = [s for s in doc["spans"] if s["pid"] != parent]
        if not worker_spans:
            failures.append("no worker-side spans were absorbed")
    finally:
        os.environ.pop(TRACE_ENV_VAR, None)
        tracer.refresh()
        os.unlink(trace_path)

    report = render_report()
    print(report)
    for section in ("per-stage profile", "cache hit ratios"):
        if section not in report:
            failures.append(f"report is missing its {section!r} section")

    for failure in failures:
        print(f"OBS FAILURE: {failure}")
    print("obs smoke:", "FAIL" if failures else "OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
