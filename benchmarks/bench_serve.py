"""Latency/throughput benchmark for the adaptation-serving daemon.

Measures the serving layer's four headline properties and writes a
machine-readable ``BENCH_serve.json`` at the repo root:

* **resident_vs_cold** — per-request adapt latency against a resident
  daemon vs one full cold CLI invocation (``repro request --oneshot``:
  fresh interpreter, corpus synthesis, predictor training, one
  answer). The daemon must be at least 10x faster at p50.
* **closed_loop** — sustained mixed load: N client threads, each
  issuing back-to-back adapt/decide requests; p50/p95/p99 per op and
  aggregate throughput.
* **open_loop** — bursty load: Poisson arrivals at a fixed offered
  rate; latency is measured from the *scheduled* arrival (queue wait
  included), plus how many requests admission control shed.
* **batching** — the micro-batcher's acceptance criterion: decide
  throughput with ``max_batch=8`` must be at least 2x the
  ``max_batch=1`` throughput under 8 concurrent clients.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py

``--smoke`` is the CI mode: a small corpus, a short mixed load, a
generous p99 budget, response bit-identity against direct in-process
:class:`~repro.core.adaptive_cpu.AdaptiveCPU` calls, and the
``BENCH_serve.json`` staleness guard — exits non-zero on any failure.

``--chaos-smoke`` is the resilience CI mode, writing the
``resilience`` section: a deterministic serve-fault plan (conn_drop,
slow_peer, corrupt_frame, batch_hang) is injected under a retrying
keyed client and every response must be digest-identical to the
fault-free direct run with no request lost; then a supervised
``daemon_crash`` run (subprocess, checkpoint fast-restart) must
recover mid-stream with identical digests, a warm restart at least 5x
faster than the cold start, and no leaked worker processes.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.obs.metrics import METRICS
from repro.serve import ServeClient, adapt_payload, decide_payload
from repro.serve.server import AdaptationServer, build_server
from repro.uarch.modes import Mode

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The keys every ``BENCH_serve.json`` section must carry, exactly —
#: the same staleness contract ``BENCH_perf.json`` enforces: when a
#: recorded section's keys diverge from this table the file predates
#: the current benchmark and must be regenerated.
SECTION_KEYS: dict[str, frozenset] = {
    "resident_vs_cold": frozenset({
        "requests", "resident_p50_ms", "resident_p95_ms",
        "cold_oneshot_s", "cold_trials", "speedup"}),
    "closed_loop": frozenset({
        "clients", "requests", "throughput_rps", "adapt_p50_ms",
        "adapt_p95_ms", "adapt_p99_ms", "decide_p50_ms",
        "decide_p95_ms", "decide_p99_ms"}),
    "open_loop": frozenset({
        "arrival_rate_rps", "duration_s", "offered", "completed",
        "shed", "p50_ms", "p95_ms", "p99_ms"}),
    "batching": frozenset({
        "clients", "requests_per_client", "batch1_throughput_rps",
        "batch8_throughput_rps", "speedup", "batch1_mean",
        "batch8_mean"}),
    "resilience": frozenset({
        "chaos_requests", "injected", "watchdog_trips",
        "breaker_trips", "dedup_hits", "crash_requests", "restarts",
        "cold_init_ms", "warm_init_ms", "restart_speedup"}),
}


def _merge_bench_doc(output: Path | None, sections: dict) -> Path:
    output = output or (REPO_ROOT / "BENCH_serve.json")
    doc = {"schema": 1}
    if output.exists():
        doc = json.loads(output.read_text())
    doc.update(sections)
    output.write_text(json.dumps(doc, indent=2) + "\n")
    return output


def check_recorded_sections(path: Path) -> list[str]:
    """Key-diffs between a recorded ``BENCH_serve.json`` and this file."""
    problems = []
    if not path.exists():
        return problems
    doc = json.loads(path.read_text())
    for section, keys in SECTION_KEYS.items():
        recorded = doc.get(section)
        if recorded is None:
            continue
        got = frozenset(recorded)
        if got != keys:
            problems.append(
                f"section {section!r}: recorded keys {sorted(got)} != "
                f"expected {sorted(keys)} — regenerate BENCH_serve.json"
            )
    return problems


def _pctl(latencies_s: list[float], q: float) -> float:
    """Percentile in milliseconds."""
    return float(np.percentile(np.asarray(latencies_s), q) * 1e3)


def _sock_path() -> str:
    return os.path.join(tempfile.mkdtemp(prefix="repro_serve_"),
                        "serve.sock")


def _start(predictor: str, corpus: dict, **knobs) -> AdaptationServer:
    server = build_server(_sock_path(), predictor_kind=predictor,
                          **corpus, **knobs)
    server.start()
    return server


def _stop(server: AdaptationServer) -> None:
    server.request_stop()
    server.serve_forever()


def _decide_window(server: AdaptationServer, rows: int = 16,
                   seed: int = 5) -> list[list[float]]:
    width = len(server.cpu.predictor.counter_ids)
    return np.random.default_rng(seed).random((rows, width)).tolist()


# ---------------------------------------------------------------------
# Sections.
# ---------------------------------------------------------------------
def bench_resident_vs_cold(server: AdaptationServer, requests: int,
                           corpus: dict, cold_trials: int) -> dict:
    """Resident per-request adapt latency vs one cold CLI invocation."""
    latencies = []
    with ServeClient(server.address) as client:
        client.adapt(0)  # warm the interval-model LRU, as a daemon is
        for i in range(requests):
            start = time.perf_counter()
            client.adapt(i % len(server.traces))
            latencies.append(time.perf_counter() - start)
    cold_best = float("inf")
    cmd = [sys.executable, "-m", "repro", "request", "--oneshot",
           "--predictor", "forest", "--trace-index", "0",
           "--apps", str(corpus["n_apps"]),
           "--workloads-per-app", str(corpus["workloads_per_app"]),
           "--intervals", str(corpus["intervals"])]
    env = {**os.environ,
           "PYTHONPATH": str(REPO_ROOT / "src")}
    for _ in range(cold_trials):
        start = time.perf_counter()
        proc = subprocess.run(cmd, env=env, capture_output=True,
                              text=True)
        elapsed = time.perf_counter() - start
        if proc.returncode != 0:
            raise RuntimeError(
                f"cold oneshot failed:\n{proc.stderr[-2000:]}"
            )
        cold_best = min(cold_best, elapsed)
    p50 = _pctl(latencies, 50)
    speedup = cold_best * 1e3 / p50
    print(f"resident adapt p50 {p50:.2f}ms vs cold oneshot "
          f"{cold_best:.2f}s ({speedup:.0f}x)")
    return {
        "requests": requests,
        "resident_p50_ms": round(p50, 3),
        "resident_p95_ms": round(_pctl(latencies, 95), 3),
        "cold_oneshot_s": round(cold_best, 3),
        "cold_trials": cold_trials,
        "speedup": round(speedup, 1),
    }


def bench_closed_loop(server: AdaptationServer, clients: int,
                      requests_per_client: int) -> dict:
    """Sustained mixed adapt/decide load from N closed-loop clients."""
    window = _decide_window(server)
    n_traces = len(server.traces)
    adapt_lat: list[float] = []
    decide_lat: list[float] = []
    lock = threading.Lock()

    def worker(cid: int) -> None:
        with ServeClient(server.address, tenant=f"t{cid % 4}") as c:
            for i in range(requests_per_client):
                start = time.perf_counter()
                # Deterministic 1-in-4 adapt / 3-in-4 decide mix.
                if (cid + i) % 4 == 0:
                    c.adapt((cid + i) % n_traces, budget_ms=100.0)
                    bucket = adapt_lat
                else:
                    c.decide(Mode.LOW_POWER.value, window,
                             budget_ms=50.0)
                    bucket = decide_lat
                elapsed = time.perf_counter() - start
                with lock:
                    bucket.append(elapsed)

    threads = [threading.Thread(target=worker, args=(cid,))
               for cid in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    total = clients * requests_per_client
    print(f"closed loop: {total} reqs / {clients} clients in "
          f"{wall:.2f}s ({total / wall:.0f} rps)")
    return {
        "clients": clients,
        "requests": total,
        "throughput_rps": round(total / wall, 1),
        "adapt_p50_ms": round(_pctl(adapt_lat, 50), 3),
        "adapt_p95_ms": round(_pctl(adapt_lat, 95), 3),
        "adapt_p99_ms": round(_pctl(adapt_lat, 99), 3),
        "decide_p50_ms": round(_pctl(decide_lat, 50), 3),
        "decide_p95_ms": round(_pctl(decide_lat, 95), 3),
        "decide_p99_ms": round(_pctl(decide_lat, 99), 3),
    }


def bench_open_loop(server: AdaptationServer, rate_rps: float,
                    duration_s: float, workers: int = 16,
                    seed: int = 17) -> dict:
    """Bursty Poisson arrivals at a fixed offered rate.

    Latency is measured from each request's *scheduled* arrival time,
    so a backlog shows up as latency (the open-loop property closed
    loops hide). ``shed`` counts typed busy responses.
    """
    from repro.errors import BusyError

    rng = np.random.default_rng(seed)
    arrivals = []
    t = 0.0
    while t < duration_s:
        t += float(rng.exponential(1.0 / rate_rps))
        if t < duration_s:
            arrivals.append(t)
    window = _decide_window(server)
    n_traces = len(server.traces)
    latencies: list[float] = []
    shed = [0]
    lock = threading.Lock()
    queue: list[tuple[float, int]] = [(a, i)
                                      for i, a in enumerate(arrivals)]
    queue.reverse()  # pop() from the front of the schedule
    epoch = time.perf_counter()

    def worker() -> None:
        with ServeClient(server.address) as c:
            while True:
                with lock:
                    if not queue:
                        return
                    scheduled, i = queue.pop()
                delay = (epoch + scheduled) - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    if i % 4 == 0:
                        c.adapt(i % n_traces)
                    else:
                        c.decide(Mode.LOW_POWER.value, window)
                except BusyError:
                    with lock:
                        shed[0] += 1
                    continue
                done = time.perf_counter()
                with lock:
                    latencies.append(done - (epoch + scheduled))

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    print(f"open loop: offered {len(arrivals)} @ {rate_rps:.0f} rps, "
          f"completed {len(latencies)}, shed {shed[0]}, "
          f"p99 {_pctl(latencies, 99):.1f}ms")
    return {
        "arrival_rate_rps": rate_rps,
        "duration_s": duration_s,
        "offered": len(arrivals),
        "completed": len(latencies),
        "shed": shed[0],
        "p50_ms": round(_pctl(latencies, 50), 3),
        "p95_ms": round(_pctl(latencies, 95), 3),
        "p99_ms": round(_pctl(latencies, 99), 3),
    }


def bench_batching(corpus: dict, clients: int,
                   requests_per_client: int) -> dict:
    """Decide throughput, ``max_batch=8`` vs ``max_batch=1``.

    Same daemon configuration, same offered concurrency; the only
    difference is whether the micro-batcher may coalesce. Batch-size
    means come from METRICS histogram deltas (the registry is
    process-global, so absolute values would mix trials).
    """
    def trial(max_batch: int) -> tuple[float, float]:
        server = _start("forest", corpus, max_batch=max_batch,
                        max_wait_us=2000)
        window = _decide_window(server)
        with ServeClient(server.address) as c:
            c.decide(Mode.LOW_POWER.value, window)  # warm
        before = dict(METRICS.snapshot()["histograms"].get(
            "serve.batch_size", {"count": 0, "total": 0.0}))

        def worker() -> None:
            with ServeClient(server.address) as c:
                for _ in range(requests_per_client):
                    c.decide(Mode.LOW_POWER.value, window)

        threads = [threading.Thread(target=worker)
                   for _ in range(clients)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
        after = METRICS.snapshot()["histograms"]["serve.batch_size"]
        batches = after["count"] - before.get("count", 0)
        items = after["total"] - before.get("total", 0.0)
        mean = items / batches if batches else 0.0
        _stop(server)
        return clients * requests_per_client / wall, mean

    tput1, mean1 = trial(1)
    tput8, mean8 = trial(8)
    speedup = tput1 and tput8 / tput1
    print(f"batching: batch=1 {tput1:.0f} rps, batch=8 {tput8:.0f} rps "
          f"({speedup:.2f}x, mean batch {mean8:.2f})")
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "batch1_throughput_rps": round(tput1, 1),
        "batch8_throughput_rps": round(tput8, 1),
        "speedup": round(speedup, 3),
        "batch1_mean": round(mean1, 3),
        "batch8_mean": round(mean8, 3),
    }


# ---------------------------------------------------------------------
# Bit-identity: the daemon's answers vs direct in-process calls.
# ---------------------------------------------------------------------
def check_bit_identity(server: AdaptationServer) -> None:
    """Daemon responses must equal the direct-call projections exactly."""
    window = _decide_window(server, rows=9, seed=29)
    with ServeClient(server.address) as client:
        for index in range(min(4, len(server.traces))):
            served = client.adapt(index)["result"]
            direct = adapt_payload(server.cpu.run(server.traces[index]))
            assert served == direct, (
                f"adapt response diverged from direct run for trace "
                f"{index}: {served} != {direct}"
            )
        for mode in Mode:
            served = client.decide(mode.value, window)
            probs = server.cpu.predictor.predict_proba(
                np.asarray(window, dtype=np.float64), mode)
            threshold = server.cpu.predictor.model_for(
                mode).decision_threshold
            direct = decide_payload(probs, threshold)
            for key in ("probs", "decisions", "digest"):
                assert served[key] == direct[key], (
                    f"decide {key} diverged in mode {mode.value}"
                )
    print("bit-identity: daemon == direct AdaptiveCPU (ok)")


# ---------------------------------------------------------------------
# Chaos: serve faults under a retrying client, digest-checked.
# ---------------------------------------------------------------------
def _serve_counter_deltas(before: dict) -> dict:
    """Deltas of the chaos-relevant counters since ``before``."""
    interesting = ("serve.watchdog_trips", "serve.breaker_trips",
                   "serve.dedup_hits",
                   *(f"faults.injected.{k}"
                     for k in ("conn_drop", "slow_peer",
                               "corrupt_frame", "batch_hang")))
    return {name: METRICS.count(name) - before.get(name, 0)
            for name in interesting}


def chaos_in_process(corpus: dict, requests: int = 24,
                     fault_seed: int = 3) -> dict:
    """Serve-site faults against an in-process daemon.

    Every fault on the ladder short of process death: dropped and
    corrupted response frames, mid-frame stalls, and executor hangs
    long enough to trip the watchdog (``hang_s`` > batch timeout). A
    keyed retrying client must land *every* request with a digest
    identical to the fault-free direct run — nothing silently lost,
    nothing silently wrong.
    """
    from repro.exec import faults

    server = _start("forest", corpus, batch_timeout_s=0.3)
    try:
        # Fault-free reference digests, computed via direct calls on
        # the very same CPU before any fault plan is active.
        n_traces = len(server.traces)
        expected = [adapt_payload(server.cpu.run(t))["digest"]
                    for t in server.traces]
        before = {name: METRICS.count(name)
                  for name in _serve_counter_deltas({}).keys()}
        plan = faults.FaultPlan(seed=fault_seed, conn_drop=0.25,
                                corrupt_frame=0.25, slow_peer=0.1,
                                batch_hang=0.2, hang_s=0.6)
        with faults.inject(plan):
            with ServeClient(server.address, retries=8,
                             seed=fault_seed) as client:
                for i in range(requests):
                    response = client.adapt(i % n_traces)
                    got = response["result"]["digest"]
                    want = expected[i % n_traces]
                    assert got == want, (
                        f"request {i}: digest diverged under faults "
                        f"({got} != {want})"
                    )
        deltas = _serve_counter_deltas(before)
    finally:
        _stop(server)
    injected = {k: deltas[f"faults.injected.{k}"]
                for k in ("conn_drop", "slow_peer", "corrupt_frame",
                          "batch_hang")}
    missing = [k for k in ("conn_drop", "corrupt_frame", "batch_hang")
               if injected[k] == 0]
    if missing:
        raise RuntimeError(
            f"chaos plan injected none of {missing} across "
            f"{requests} requests — the run exercised nothing; "
            f"raise the rates or change fault_seed"
        )
    print(f"chaos in-process: {requests} requests all "
          f"digest-identical under {injected} "
          f"(watchdog {deltas['serve.watchdog_trips']}, dedup "
          f"{deltas['serve.dedup_hits']})")
    return {
        "chaos_requests": requests,
        "injected": injected,
        "watchdog_trips": deltas["serve.watchdog_trips"],
        "breaker_trips": deltas["serve.breaker_trips"],
        "dedup_hits": deltas["serve.dedup_hits"],
    }


def _crash_seed(rate: float, lo: int = 3, hi: int = 8) -> int:
    """A fault seed whose first ``daemon_crash`` firing at the adapt
    dispatch site lands mid-stream (occurrence in [lo, hi))."""
    from repro.exec.faults import FaultPlan

    for seed in range(1000):
        plan = FaultPlan(seed=seed, daemon_crash=rate)
        fires = [occ for occ in range(hi)
                 if plan.fires("daemon_crash", "serve.dispatch/adapt",
                               occ)]
        if fires and fires[0] >= lo:
            return seed
    raise RuntimeError("no crash seed found")  # unreachable in practice


def chaos_supervised_crash(corpus: dict, requests: int = 12) -> dict:
    """``daemon_crash`` against a supervised subprocess daemon.

    The daemon (checkpoint-enabled, under ``--supervise``) is killed
    by an injected ``os._exit`` mid-stream; the supervising parent
    re-execs it, the replacement warm-starts from the checkpoint, and
    the retrying client's stream completes with digests identical to
    the fault-free in-process run. The warm restart must reach ready
    at least 5x faster than the cold start.
    """
    import re
    import shutil

    from repro.core.adaptive_cpu import AdaptiveCPU
    from repro.serve import (quick_forest_predictor, serving_corpus,
                             wait_until_ready)

    seed = 7  # pinned REPRO_SEED for the child, mirrored here
    traces = serving_corpus(corpus["n_apps"],
                            corpus["workloads_per_app"],
                            corpus["intervals"], seed)
    expected = [adapt_payload(AdaptiveCPU(
        quick_forest_predictor(traces)).run(t))["digest"]
        for t in traces]

    workdir = tempfile.mkdtemp(prefix="repro_chaos_")
    sock = os.path.join(workdir, "serve.sock")
    ckpt = os.path.join(workdir, "ckpt.bin")
    fault_seed = _crash_seed(rate=0.2)
    env = {**os.environ,
           "PYTHONPATH": str(REPO_ROOT / "src"),
           "REPRO_SEED": str(seed),
           "REPRO_FAULT_SPEC": f"seed={fault_seed},daemon_crash=0.2"}
    cmd = [sys.executable, "-m", "repro", "serve", "--socket", sock,
           "--predictor", "forest",
           "--apps", str(corpus["n_apps"]),
           "--workloads-per-app", str(corpus["workloads_per_app"]),
           "--intervals", str(corpus["intervals"]),
           "--checkpoint", ckpt, "--supervise", "--serve-restarts", "3"]
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    try:
        wait_until_ready(sock, timeout_s=120.0)
        with ServeClient(sock, retries=10, seed=fault_seed) as client:
            for i in range(requests):
                response = client.adapt(i % len(traces))
                got = response["result"]["digest"]
                want = expected[i % len(traces)]
                assert got == want, (
                    f"request {i}: digest diverged across the "
                    f"supervised restart ({got} != {want})"
                )
            client.shutdown()
        out, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
        shutil.rmtree(workdir, ignore_errors=True)
    inits = re.findall(r"init ([0-9.]+)ms (cold|warm)", out)
    restarts = len(re.findall(r"restarting \(", out))
    cold = [float(ms) for ms, kind in inits if kind == "cold"]
    warm = [float(ms) for ms, kind in inits if kind == "warm"]
    if proc.returncode != 0:
        raise RuntimeError(
            f"supervised daemon exited {proc.returncode}:\n{out[-2000:]}"
        )
    if not restarts or not cold or not warm:
        raise RuntimeError(
            f"supervised run never crashed+warm-restarted "
            f"(restarts={restarts}, inits={inits}):\n{out[-2000:]}"
        )
    speedup = cold[0] / warm[0]
    print(f"chaos supervised: {requests} requests across {restarts} "
          f"crash(es); init cold {cold[0]:.1f}ms -> warm "
          f"{warm[0]:.1f}ms ({speedup:.0f}x)")
    return {
        "crash_requests": requests,
        "restarts": restarts,
        "cold_init_ms": cold[0],
        "warm_init_ms": warm[0],
        "restart_speedup": round(speedup, 1),
    }


def run_chaos(args: argparse.Namespace) -> int:
    """Resilience CI mode: fault ladder + supervised crash restart."""
    corpus = {"n_apps": 4, "workloads_per_app": 1, "intervals": 64}
    section: dict = {}
    section.update(chaos_in_process(corpus))
    section.update(chaos_supervised_crash(corpus))

    failures = []
    if section["restart_speedup"] < 5.0:
        failures.append(
            f"warm restart only {section['restart_speedup']}x faster "
            f"than cold init (need >= 5x)"
        )
    import multiprocessing
    leaked = multiprocessing.active_children()
    if leaked:
        failures.append(f"{len(leaked)} worker process(es) leaked")
    out = _merge_bench_doc(args.output, {"resilience": section})
    print(f"wrote {out}")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("serve chaos smoke ok")
    return 1 if failures else 0


# ---------------------------------------------------------------------
# Entry points.
# ---------------------------------------------------------------------
def run_full(args: argparse.Namespace) -> int:
    corpus = {"n_apps": args.apps,
              "workloads_per_app": args.workloads_per_app,
              "intervals": args.intervals}
    sections: dict = {}
    server = _start("forest", corpus)
    try:
        check_bit_identity(server)
        sections["resident_vs_cold"] = bench_resident_vs_cold(
            server, requests=40, corpus=corpus, cold_trials=2)
        sections["closed_loop"] = bench_closed_loop(
            server, clients=8, requests_per_client=40)
        sections["open_loop"] = bench_open_loop(
            server, rate_rps=150.0, duration_s=4.0)
    finally:
        _stop(server)
    sections["batching"] = bench_batching(
        corpus, clients=8, requests_per_client=60)

    failures = []
    if sections["resident_vs_cold"]["speedup"] < 10.0:
        failures.append(
            f"resident p50 only "
            f"{sections['resident_vs_cold']['speedup']}x faster than "
            f"cold start (need >= 10x)"
        )
    if sections["batching"]["speedup"] < 2.0:
        failures.append(
            f"batched throughput only "
            f"{sections['batching']['speedup']}x over batch=1 "
            f"(need >= 2x)"
        )
    out = _merge_bench_doc(args.output, sections)
    print(f"wrote {out}")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def run_smoke(args: argparse.Namespace) -> int:
    """CI smoke: staleness guard, mixed load under a p99 budget,
    bit-identity, clean shutdown."""
    problems = check_recorded_sections(
        args.output or (REPO_ROOT / "BENCH_serve.json"))
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    corpus = {"n_apps": 4, "workloads_per_app": 1, "intervals": 64}
    server = _start("forest", corpus)
    try:
        check_bit_identity(server)
        closed = bench_closed_loop(server, clients=4,
                                   requests_per_client=10)
        budget_ms = args.p99_budget_ms
        for key in ("adapt_p99_ms", "decide_p99_ms"):
            if closed[key] > budget_ms:
                print(f"FAIL: {key} {closed[key]}ms exceeds the "
                      f"{budget_ms}ms smoke budget")
                return 1
    finally:
        _stop(server)
    import multiprocessing
    leaked = multiprocessing.active_children()
    if leaked:
        print(f"FAIL: {len(leaked)} worker process(es) leaked")
        return 1
    print("serve smoke ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: short mixed load, generous p99 "
                             "budget, bit-identity, staleness guard")
    parser.add_argument("--chaos-smoke", action="store_true",
                        help="resilience CI mode: injected serve "
                             "faults + supervised crash restart, "
                             "digest-checked; writes the resilience "
                             "section")
    parser.add_argument("--apps", type=int, default=8)
    parser.add_argument("--workloads-per-app", type=int, default=2)
    parser.add_argument("--intervals", type=int, default=96)
    parser.add_argument("--p99-budget-ms", type=float, default=2000.0,
                        help="smoke-mode p99 latency budget")
    parser.add_argument("--output", type=Path, default=None,
                        help="bench JSON path "
                             "(default: BENCH_serve.json)")
    args = parser.parse_args()
    if args.chaos_smoke:
        return run_chaos(args)
    if args.smoke:
        return run_smoke(args)
    return run_full(args)


if __name__ == "__main__":
    sys.exit(main())
