"""Figure 6: hyperparameter screening.

Paper: high-throughput screening of MLP topologies (1-3 layers, 4-32
filters per layer), plotting mean vs standard deviation of PGOS across
folds, with sensitivity tuned per network. Deeper networks raise PGOS;
restricting to topologies that fit the 50k-instruction budget (781
ops), 3-layer networks still minimise PGOS std — the paper picks
8/8/4. The same criterion over random forests picks 8 trees of depth 8.
"""

import numpy as np

from repro import rng as rng_mod
from repro.core.pipeline import tune_threshold_for_rsv
from repro.data.builders import dataset_from_traces
from repro.eval.metrics import pgos
from repro.eval.reporting import emit, format_table, percent
from repro.firmware.opcount import forest_ops, mlp_ops
from repro.ml.crossval import app_kfold
from repro.ml.forest import RandomForestClassifier
from repro.ml.hyperscreen import ScreenRecord, select_best
from repro.ml.mlp import MLPClassifier
from repro.uarch.modes import Mode

FILTERS = (4, 8, 16, 32)
LAYER_COUNTS = (1, 2, 3)
BUDGET_50K = 781
N_FOLDS = 4


def _topologies():
    for layers in LAYER_COUNTS:
        for filters in FILTERS:
            if layers == 3:
                hidden = (filters, filters, max(filters // 2, 2))
            else:
                hidden = (filters,) * layers
            yield hidden


def _screen(ds, seed):
    records = []
    folds = app_kfold(ds.groups, k=N_FOLDS, seed=seed)
    for hidden in _topologies():
        scores = []
        for fold in folds:
            model = MLPClassifier(
                hidden_layers=hidden, epochs=30,
                seed=rng_mod.derive_seed(seed, "fig6", hidden,
                                         fold.fold_id))
            model.fit(ds.x[fold.tuning_idx], ds.y[fold.tuning_idx])
            tune_threshold_for_rsv(model, ds.subset(
                np.isin(np.arange(ds.n_samples), fold.tuning_idx)))
            preds = model.predict(ds.x[fold.validation_idx])
            scores.append(pgos(ds.y[fold.validation_idx], preds))
        ops = mlp_ops([ds.n_features, *hidden, 1])
        records.append(ScreenRecord(
            config={"hidden": hidden, "layers": len(hidden),
                    "ops": ops},
            metrics={"pgos": (float(np.mean(scores)),
                              float(np.std(scores)))},
            per_fold={"pgos": tuple(scores)},
        ))
    return records


def _run(seed, collector, train_traces, standard_models):
    ds = dataset_from_traces(
        train_traces[::2], standard_models.pf_counter_ids,
        collector=collector, granularity_factor=5)[Mode.LOW_POWER]
    records = _screen(ds, seed)
    in_budget = [r for r in records if r.config["ops"] <= BUDGET_50K]
    best = select_best(in_budget, metric="pgos", mean_margin=0.05)
    return records, in_budget, best


def bench_fig6_hyperparameter_screening(benchmark, seed, collector,
                                        train_traces, standard_models):
    records, in_budget, best = benchmark.pedantic(
        _run, args=(seed, collector, train_traces, standard_models),
        rounds=1, iterations=1)
    rows = []
    for record in sorted(records, key=lambda r: -r.mean("pgos")):
        rows.append([
            "x".join(str(h) for h in record.config["hidden"]),
            record.config["layers"], record.config["ops"],
            "yes" if record.config["ops"] <= BUDGET_50K else "no",
            percent(record.mean("pgos")), percent(record.std("pgos")),
        ])
    text = format_table(
        "Figure 6 - MLP topology screen: PGOS mean vs std across folds "
        "(paper picks 3-layer 8/8/4 within the 50k budget of 781 ops)",
        ["Topology", "Layers", "Ops", "Fits 50k", "PGOS mean",
         "PGOS std"],
        rows)
    text += ("\nSelection rule (min std at near-max mean) picks: "
             f"{best.config['hidden']} ({best.config['ops']} ops)\n")

    # Companion forest screen, as the paper applies the same criterion.
    text += format_table(
        "Random-forest screen (analytic budget check)",
        ["Trees", "Depth", "Ops", "Fits 40k budget (625)"],
        [[t, d, forest_ops(t, d), "yes" if forest_ops(t, d) <= 625
          else "no"]
         for t in (4, 8, 16) for d in (4, 8, 12)])
    emit("fig6_hyperparams", text)

    # Deeper networks dominate the top of the PGOS ranking.
    top = sorted(records, key=lambda r: -r.mean("pgos"))[:4]
    assert any(r.config["layers"] == 3 for r in top)
    # The budget restriction leaves real choices, and the paper's
    # 8/8/4 topology is in budget.
    assert any(r.config["hidden"] == (8, 8, 4) for r in in_budget)
    # The selected topology must be within the budget and non-trivial.
    assert best.config["ops"] <= BUDGET_50K
    assert best.mean("pgos") > 0.5
    # The paper's Best-RF shape fits its 40k budget; 16 trees do not.
    assert forest_ops(8, 8) <= 625 < forest_ops(16, 8)
