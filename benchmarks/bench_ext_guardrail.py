"""Extension bench: the fail-safe guardrail (Section 3.1).

The paper evaluates all models without guardrails "so that guardrails
may be set as permissively as possible", while stating the final
design carries one. This bench quantifies that design point: deploying
the blindspot-prone CHARSTAR model with and without the guardrail on
the held-out suite, the guardrail should crush the worst-case
benchmark RSV (the roms_s blindspot) at a small PPW cost — and leave
the well-behaved Best RF essentially untouched.
"""

import numpy as np

from repro.core.guardrail import GuardedAdaptiveCPU, GuardrailConfig
from repro.eval.metrics import effective_sla_window, pooled_rsv
from repro.eval.reporting import emit, format_table, percent


def _guarded_eval(predictor, traces, collector):
    cpu = GuardedAdaptiveCPU(predictor, collector=collector,
                             guardrail=GuardrailConfig(window=4,
                                                       holdoff=16))
    runs = [cpu.run(trace) for trace in traces]
    window = effective_sla_window(runs[0].granularity)
    by_app = {}
    for run in runs:
        by_app.setdefault(run.app_name, []).append(run)
    per_app = {}
    for app, app_runs in by_app.items():
        per_app[app] = {
            "rsv": pooled_rsv([(r.labels, r.predictions)
                               for r in app_runs], window),
            "ppw": float(np.mean([r.ppw_gain for r in app_runs])),
            "trips": sum(r.trips for r in app_runs),
        }
    return per_app, sum(r.trips for r in runs)


def _run(standard_models, suite_evals, test_traces, collector):
    out = {}
    for name in ("charstar", "best_rf"):
        unguarded = suite_evals(name)
        guarded, total_trips = _guarded_eval(standard_models[name],
                                             test_traces, collector)
        out[name] = (unguarded, guarded, total_trips)
    return out


def bench_ext_guardrail(benchmark, standard_models, suite_evals,
                        test_traces, collector):
    out = benchmark.pedantic(
        _run, args=(standard_models, suite_evals, test_traces,
                    collector),
        rounds=1, iterations=1)
    rows = []
    stats = {}
    for name, (unguarded, guarded, trips) in out.items():
        worst_un = max(b.rsv for b in unguarded.per_benchmark)
        worst_g = max(v["rsv"] for v in guarded.values())
        mean_g_rsv = float(np.mean([v["rsv"] for v in guarded.values()]))
        mean_g_ppw = float(np.mean([v["ppw"] for v in guarded.values()]))
        stats[name] = (worst_un, worst_g, unguarded.mean_ppw_gain,
                       mean_g_ppw, trips)
        rows.append([name, percent(unguarded.mean_rsv, 2),
                     percent(mean_g_rsv, 2), percent(worst_un, 1),
                     percent(worst_g, 1),
                     percent(unguarded.mean_ppw_gain),
                     percent(mean_g_ppw), trips])
    text = format_table(
        "Extension - Section 3.1 fail-safe guardrail "
        "(window=4 gated intervals, holdoff=16)",
        ["Model", "RSV", "RSV guarded", "Worst-app RSV",
         "Worst guarded", "PPW", "PPW guarded", "Trips"],
        rows)
    emit("ext_guardrail", text)

    worst_un, worst_g, ppw_un, ppw_g, trips = stats["charstar"]
    # The guardrail bounds CHARSTAR's blindspot...
    assert trips > 0
    assert worst_g < 0.6 * worst_un
    # ...at a modest PPW cost.
    assert ppw_g > ppw_un - 0.04
    # The well-behaved model barely trips and keeps its PPW.
    _, _, rf_ppw_un, rf_ppw_g, rf_trips = stats["best_rf"]
    assert rf_ppw_g > rf_ppw_un - 0.02
