"""Figure 9: per-benchmark PPW and RSV, CHARSTAR vs Best RF.

Paper: CHARSTAR improves PPW by 18.4% on average but suffers blindspot
RSV spikes — 77.8% on roms_s — while Best RF keeps RSV < 1% on every
benchmark and still gains more PPW. We regenerate the per-benchmark
breakdown and the blindspot analysis.
"""

import numpy as np

from repro.eval.blindspots import analyze_blindspots, worst_blindspot
from repro.eval.reporting import emit, format_table, percent

BLINDSPOT_APP = "654.roms_s"


def _run(suite_evals):
    charstar = suite_evals("charstar")
    best_rf = suite_evals("best_rf")
    rows = []
    for bench_c in charstar.per_benchmark:
        bench_r = best_rf.benchmark(bench_c.app_name)
        rows.append([bench_c.app_name,
                     percent(bench_c.ppw_gain), percent(bench_r.ppw_gain),
                     percent(bench_c.rsv, 1), percent(bench_r.rsv, 1)])
    blindspots = analyze_blindspots(charstar)
    worst = worst_blindspot(charstar)
    return rows, charstar, best_rf, blindspots, worst


def bench_fig9_per_benchmark(benchmark, suite_evals):
    rows, charstar, best_rf, blindspots, worst = benchmark.pedantic(
        _run, args=(suite_evals,), rounds=1, iterations=1)
    text = format_table(
        "Figure 9 - per-benchmark PPW/RSV: CHARSTAR vs Best RF "
        f"(paper: CHARSTAR roms_s RSV 77.8%; Best RF < 1% everywhere)",
        ["Benchmark", "CHARSTAR PPW", "Best RF PPW", "CHARSTAR RSV",
         "Best RF RSV"],
        rows)
    text += (f"\nWorst CHARSTAR blindspot: {worst.app_name} "
             f"(RSV {percent(worst.rsv)}, FP burstiness "
             f"{worst.fp_burstiness:.1f}x, max FP run "
             f"{worst.max_fp_run} intervals)\n")
    emit("fig9_per_app", text)

    # The blindspot concentrates on the store-burst benchmark.
    assert worst.app_name == BLINDSPOT_APP
    roms_c = charstar.benchmark(BLINDSPOT_APP).rsv
    roms_r = best_rf.benchmark(BLINDSPOT_APP).rsv
    assert roms_c > 0.05
    assert roms_r < 0.02
    # Best RF keeps RSV low across the board (paper: < 1% everywhere;
    # we allow the scaled-window noise floor).
    rf_worst = max(b.rsv for b in best_rf.per_benchmark)
    charstar_worst = max(b.rsv for b in charstar.per_benchmark)
    assert rf_worst < 0.5 * charstar_worst
    # CHARSTAR's errors are systematic (bursty), not spurious.
    assert worst.fp_burstiness > 2.0
