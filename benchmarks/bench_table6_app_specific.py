"""Table 6: application-specific retraining (optimization-as-a-service).

Paper: for applications with >= 5 workloads where the general Best RF
left headroom (PGOS < 95%), combine a 4-tree forest trained on HDTR
with a 4-tree forest trained on the target application's other
workloads (leave-one-workload-out), forming an 8-tree Best-RF-shaped
model. PPW improves for 8 of 11 applications, up to +8.5%
(fotonik3d_s), while blending keeps SLA violations low.

We follow the same protocol (folds capped for tractability) and also
report the pure-application-specific forest as the ablation the paper
argues against.
"""

import numpy as np

from repro import rng as rng_mod
from repro.core.predictor import DualModePredictor
from repro.data.builders import dataset_from_traces
from repro.eval.reporting import emit, format_table, percent
from repro.eval.runner import evaluate_predictor
from repro.ml.forest import RandomForestClassifier, merge_forests
from repro.uarch.modes import Mode

#: Paper's Table 6 PPW deltas for reference.
PAPER_DELTAS = {
    "649.fotonik3d_s": 0.085, "603.bwaves_s": 0.059, "605.mcf_s": 0.049,
    "602.gcc_s": 0.032, "644.nab_s": 0.029, "607.cactuBSSN_s": 0.022,
    "625.x264_s": 0.007, "620.omnetpp_s": 0.006, "638.imagick_s": 0.0,
    "654.roms_s": -0.001, "648.exchange2_s": -0.015,
}

MAX_FOLDS = 3


def _half_forest(seed, tag):
    def factory(mode):
        return RandomForestClassifier(
            n_trees=4, max_depth=8,
            seed=rng_mod.derive_seed(seed, "t6", tag, mode.value))
    return factory


def _train_half(datasets, factory):
    models = {}
    for mode in Mode:
        model = factory(mode)
        model.fit(datasets[mode].x, datasets[mode].y)
        models[mode] = model
    return models


def _run(seed, collector, train_traces, test_traces, standard_models,
         suite_evals):
    general = suite_evals("best_rf")
    hdtr_ds = dataset_from_traces(
        train_traces[::2], standard_models.pf_counter_ids,
        collector=collector, granularity_factor=4)
    hdtr_half = _train_half(hdtr_ds, _half_forest(seed, "hdtr"))

    by_app = {}
    for trace in test_traces:
        by_app.setdefault(trace.app.name, []).append(trace)

    # Eligibility: >= 5 workloads and general-RF PGOS < 95%.
    eligible = [
        bench.app_name for bench in general.per_benchmark
        if len(by_app[bench.app_name]) >= 5 and bench.pgos < 0.95
    ]

    rows = []
    deltas, rsvs = [], []
    for app in eligible:
        traces = by_app[app]
        workloads = sorted({t.workload.name for t in traces})
        fold_ppw_general, fold_ppw_specific = [], []
        fold_rsv_blend, fold_ppw_pure = [], []
        for held_out in workloads[:MAX_FOLDS]:
            fit = [t for t in traces if t.workload.name != held_out]
            test = [t for t in traces if t.workload.name == held_out]
            app_ds = dataset_from_traces(
                fit, standard_models.pf_counter_ids,
                collector=collector, granularity_factor=4)
            app_half = _train_half(app_ds, _half_forest(seed, app))
            blended = DualModePredictor(
                name=f"app_rf_{app}",
                models={m: merge_forests(hdtr_half[m], app_half[m])
                        for m in Mode},
                counter_ids=np.asarray(standard_models.pf_counter_ids),
                granularity_factor=4)
            pure = DualModePredictor(
                name=f"pure_rf_{app}",
                models=dict(app_half),
                counter_ids=np.asarray(standard_models.pf_counter_ids),
                granularity_factor=4)
            ev_blend = evaluate_predictor(blended, test,
                                          collector=collector)
            ev_pure = evaluate_predictor(pure, test, collector=collector)
            ev_general = evaluate_predictor(standard_models["best_rf"],
                                            test, collector=collector)
            fold_ppw_general.append(ev_general.mean_ppw_gain)
            fold_ppw_specific.append(ev_blend.mean_ppw_gain)
            fold_ppw_pure.append(ev_pure.mean_ppw_gain)
            fold_rsv_blend.append(ev_blend.mean_rsv)
        g = float(np.mean(fold_ppw_general))
        s = float(np.mean(fold_ppw_specific))
        p = float(np.mean(fold_ppw_pure))
        r = float(np.mean(fold_rsv_blend))
        deltas.append(s - g)
        rsvs.append(r)
        paper = PAPER_DELTAS.get(app)
        rows.append([app, percent(g), percent(s), percent(s - g),
                     f"{paper * 100:+.1f}%" if paper is not None else "-",
                     percent(p), percent(r, 2)])
    rows.sort(key=lambda row: -float(row[3].rstrip("%")))
    return rows, deltas, rsvs, eligible


def bench_table6_app_specific(benchmark, seed, collector, train_traces,
                              test_traces, standard_models, suite_evals):
    rows, deltas, rsvs, eligible = benchmark.pedantic(
        _run, args=(seed, collector, train_traces, test_traces,
                    standard_models, suite_evals),
        rounds=1, iterations=1)
    text = format_table(
        "Table 6 - application-specific retraining (blended 4+4-tree "
        f"RF, leave-one-workload-out, {len(eligible)} eligible apps; "
        "paper: 8 of 11 apps improve, up to +8.5%)",
        ["Benchmark", "General RF PPW", "App-specific PPW", "Delta",
         "Paper delta", "Pure-app PPW", "Blend RSV"],
        rows)
    emit("table6_app_specific", text)

    assert len(eligible) >= 5
    improved = sum(1 for d in deltas if d > 0.0)
    # Most eligible applications improve, some substantially.
    assert improved >= len(deltas) * 0.5
    assert max(deltas) > 0.01
    # Blending keeps violations controlled on unseen inputs.
    assert float(np.mean(rsvs)) < 0.05
