"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent values."""


class BudgetExceededError(ReproError):
    """A firmware model does not fit the microcontroller budget."""


class NotFittedError(ReproError):
    """An ML model was used for inference before being trained."""


class DatasetError(ReproError):
    """A dataset is malformed or inconsistent with its metadata."""


class SimulationError(ReproError):
    """The simulator reached an invalid state."""


class ExecFaultError(ReproError):
    """The execution engine hit a fault it could not recover from.

    Base class for every typed failure of the resilient execution
    substrate (``repro.exec``). The engine's contract is that any
    fault — injected or organic — either degrades transparently
    (identical results via retry/fallback) or surfaces as a subclass
    of this error; it never silently returns a wrong answer.
    """


class WorkerCrashError(ExecFaultError):
    """A pool worker died (or was made to die) while running a task."""


class WorkerTimeoutError(ExecFaultError):
    """A task exceeded the per-task execution timeout on every retry."""


class CacheCorruptionError(ExecFaultError):
    """An on-disk cache entry failed its integrity check."""


class ArenaIntegrityError(ExecFaultError):
    """An arena segment failed magic/version/checksum validation."""


class ResultIntegrityError(ExecFaultError):
    """A shared-memory result segment failed validation on read.

    Raised parent-side when a worker's result segment cannot be
    mapped, fails its magic/version/bounds checks, or a block CRC
    mismatches. The dispatcher quarantines the segment and retries the
    chunk over pickled returns, so corruption costs throughput, never
    correctness."""


class ServeError(ReproError):
    """Base class for adaptation-serving (``repro.serve``) failures."""


class ProtocolError(ServeError):
    """A serve-protocol frame was malformed, oversized or truncated."""


class BusyError(ServeError):
    """Admission control shed a request: the serve queue is full.

    Carries ``queue_depth`` so clients (and the typed busy response)
    can report how deep the backlog was at shed time, and
    ``retry_after_ms`` — the server's drain-rate-derived estimate of
    when retrying is likely to be admitted (``None`` when unknown).
    """

    def __init__(self, message: str, queue_depth: int = 0,
                 retry_after_ms: float | None = None) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.retry_after_ms = retry_after_ms


class ServeClosedError(ServeError):
    """A request reached a daemon that is shutting down (or shut)."""


class BatchTimeoutError(ServeError):
    """An in-flight serve batch exceeded ``REPRO_SERVE_BATCH_TIMEOUT``.

    Raised by the supervisor into every request of the hung batch —
    only the in-flight requests fail; queued requests are re-served by
    the restarted batcher. Clients may retry: the executor never
    committed a result for the timed-out requests.
    """


class CheckpointError(ServeError):
    """A serve warm-state checkpoint is missing, corrupt, or stale.

    Raised when the checkpoint file fails its magic/version/CRC
    validation or its corpus fingerprint does not match the daemon's
    requested corpus. The daemon falls back to a cold build — a bad
    checkpoint costs startup time, never correctness.
    """


class StaleGenerationError(ServeError):
    """A generation-constrained request could not be satisfied.

    Raised client-side when a request carrying ``pin_generation`` was
    answered (or would be answered) by a different model generation, or
    one carrying ``min_generation`` reached a daemon still serving an
    older generation. Carries both sides of the comparison so callers
    can decide whether waiting for a promotion will help.
    """

    def __init__(self, message: str, requested: int | None = None,
                 current: int | None = None) -> None:
        super().__init__(message)
        self.requested = requested
        self.current = current


class OnlineError(ReproError):
    """Base class for continual-adaptation (``repro.online``) failures."""


class SwapGateError(OnlineError):
    """A candidate predictor failed the registry's compatibility gate.

    Hot-swapping is only safe for candidates that preserve the
    incumbent's counter set and gating granularity — those are the two
    predictor properties baked into the resident arena's prepared
    telemetry. An incompatible candidate is rejected before any state
    changes; the incumbent keeps serving.
    """


class RetriesExhaustedError(ServeError):
    """A client gave up after its full retry budget.

    Carries ``last_error`` — the error of the final attempt — so the
    caller can distinguish persistent overload from a dead daemon.
    """

    def __init__(self, message: str,
                 last_error: BaseException | None = None) -> None:
        super().__init__(message)
        self.last_error = last_error
