"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent values."""


class BudgetExceededError(ReproError):
    """A firmware model does not fit the microcontroller budget."""


class NotFittedError(ReproError):
    """An ML model was used for inference before being trained."""


class DatasetError(ReproError):
    """A dataset is malformed or inconsistent with its metadata."""


class SimulationError(ReproError):
    """The simulator reached an invalid state."""
