"""End-to-end train/deploy recipes for the paper's models (Section 7).

Builds the four evaluated adaptation models plus utilities shared by
the benchmark harness:

* **Best RF** — 8 trees, depth 8, 12 PF counters, 40k-instruction
  gating interval (538 inference ops fit the 40k budget of 625).
* **Best MLP** — 3 layers of 8/8/4 filters, 12 PF counters, 50k
  interval (678 ops fit the 50k budget of 781).
* **CHARSTAR** — Ravi et al.'s 1-layer 10-filter MLP on 8 expert
  counters, ReLU, 20k interval (292 ops fit 312); no sensitivity
  tuning, as in the original work.
* **SRCH** — Dubach et al.'s softmax-on-histograms (logistic for two
  configurations) on the top PF counters, evaluated at both the 40k
  interval the microcontroller supports and a coarse interval standing
  in for its original 10M-instruction window.

All of the paper's own models are sensitivity-tuned after training to
keep tuning-set false-positive rates (the driver of SLA violations)
below a budget (Section 6.3).
"""

from __future__ import annotations

import dataclasses
import functools
import pickle
from collections.abc import Callable, Iterable

import numpy as np

from repro import rng as rng_mod
from repro.config import DEFAULT_SLA, SLAConfig, exec_arena_enabled
from repro.core.predictor import DualModePredictor
from repro.data.builders import dataset_from_traces
from repro.data.dataset import GatingDataset
from repro.errors import ArenaIntegrityError, ConfigurationError
from repro.eval.metrics import effective_sla_window, pooled_rsv
from repro.exec.arena import TraceArena
from repro.exec.parallel import ParallelMap, default_parallel_map
from repro.exec.stats import EXEC_STATS
from repro.obs import tracer
from repro.eval.metrics import pgos as pgos_metric
from repro.ml.base import Estimator
from repro.ml.forest import RandomForestClassifier
from repro.ml.histogram import CounterHistogramEncoder
from repro.ml.linear import LogisticRegression
from repro.ml.mlp import MLPClassifier
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import default_catalog
from repro.telemetry.selection import (
    gather_selection_stats,
    pf_counter_selection,
)
from repro.uarch.modes import Mode
from repro.workloads.generator import TraceSpec

#: Gating granularity factors (multiples of the 10k base interval) per
#: model, fixed by the microcontroller budget analysis of Table 3.
GRANULARITY_FACTORS = {
    "best_rf": 4,  # 40k: 538 ops <= 625 budget
    "best_mlp": 5,  # 50k: 678 ops <= 781 budget
    "charstar": 2,  # 20k: 292 ops <= 312 budget
    "srch": 4,  # 40k: 572 ops <= 625 budget
    "srch_coarse": 20,  # scaled stand-in for the original 10M interval
}

#: Default tuning-set RSV budget for sensitivity tuning (the paper
#: keeps SLA violations below 1.0% on the tuning set, Section 6.3).
DEFAULT_RSV_BUDGET = 0.01


def tune_threshold_for_rsv(model: Estimator, dataset: GatingDataset,
                           max_rsv: float = DEFAULT_RSV_BUDGET,
                           window: int | None = None) -> float:
    """Adjust sensitivity to bound tuning-set SLA violations.

    Section 6.3: "we adjust its sensitivity — the prediction threshold
    required to choose low-power mode — to keep SLA violations below
    1.0% on the tuning set." The search picks the *lowest* threshold
    (highest recall, hence highest PPW) whose windowed RSV over the
    tuning traces stays within budget.
    """
    if window is None:
        window = effective_sla_window(dataset.granularity)
    scores = model.predict_proba(dataset.x)
    # Split the tuning set back into per-trace segments so violation
    # windows never straddle traces.
    segments: list[tuple[np.ndarray, np.ndarray]] = []
    for trace_name in np.unique(dataset.traces):
        mask = dataset.traces == trace_name
        segments.append((dataset.y[mask], scores[mask]))
    candidates = np.unique(np.concatenate([
        np.linspace(0.3, 0.99, 24),
        np.quantile(scores, np.linspace(0.05, 0.95, 19)),
    ]))
    chosen = 0.999
    for threshold in np.sort(candidates):
        pairs = [(y_seg, (s_seg >= threshold).astype(np.int64))
                 for y_seg, s_seg in segments]
        if pooled_rsv(pairs, window) <= max_rsv:
            chosen = float(threshold)
            break
    model.decision_threshold = chosen
    return chosen


class SRCHEstimator(Estimator):
    """SRCH: logistic regression on bucketized counter features.

    Dubach et al. encode each counter as a 10-bucket histogram over the
    prediction window; at one sample per window this reduces to a
    per-counter one-hot bucketization, preserving SRCH's defining
    property — piecewise-constant features — while fitting the shared
    dataset layout.
    """

    def __init__(self, n_buckets: int = 10, l2: float = 1e-4) -> None:
        self.encoder = CounterHistogramEncoder(n_buckets=n_buckets, window=1)
        # Plain (unweighted) fit, as in the original SRCH framework.
        self.logreg = LogisticRegression(l2=l2, class_weight=None)
        self.decision_threshold = 0.5

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SRCHEstimator":
        features = self.encoder.fit_transform(x)
        self.logreg.fit(features, y)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self.logreg.predict_proba(self.encoder.transform(x))


def select_counters(traces: list[TraceSpec],
                    collector: TelemetryCollector | None = None,
                    r: int = 12, tau: float = 0.7) -> list[int]:
    """Run PF Counter Selection over a trace corpus (Section 6.2)."""
    collector = collector or TelemetryCollector()
    stats = gather_selection_stats(collector, traces)
    return pf_counter_selection(stats, r=r, tau=tau).selected_ids


def _calibration_split(dataset: GatingDataset, fraction: float,
                       seed: int) -> tuple[GatingDataset, GatingDataset]:
    """Hold out a fraction of *applications* for sensitivity tuning.

    Thresholds tuned on the same rows a model was fit to inherit the
    model's training optimism; holding out whole applications makes the
    calibration scores look like deployment scores.
    """
    apps = np.unique(dataset.groups)
    rng = rng_mod.stream(seed, "calibration", dataset.mode.value)
    n_cal = max(1, int(round(len(apps) * fraction)))
    cal_apps = set(rng.choice(apps, size=n_cal, replace=False).tolist())
    cal_mask = np.isin(dataset.groups, list(cal_apps))
    return dataset.subset(~cal_mask), dataset.subset(cal_mask)


def _fit_candidate(unit: tuple[Mode, int], *,
                   factory: Callable[[Mode], Estimator],
                   datasets: dict[Mode, GatingDataset],
                   rsv_budget: float, calibration_fraction: float,
                   seed: int) -> tuple[float, int, Estimator]:
    """Fit/tune/score one (mode, candidate) restart (parallel unit).

    The calibration split is a pure function of ``(seed, mode)`` and
    candidate seeds derive from the candidate index alone, so every
    cell of the (mode, candidate) grid is independent and the fan-out
    is bit-identical to the nested serial loops on any backend.
    """
    mode, candidate = unit
    fit_ds, cal_ds = _calibration_split(datasets[mode],
                                        calibration_fraction, seed)
    model = factory(mode)
    if candidate > 0 and hasattr(model, "seed"):
        model.seed = rng_mod.derive_seed(  # type: ignore
            seed, "candidate", mode.value, candidate)
    model.fit(fit_ds.x, fit_ds.y)
    tune_threshold_for_rsv(model, cal_ds, rsv_budget)
    preds = model.predict(cal_ds.x)
    return (pgos_metric(cal_ds.y, preds), candidate, model)


def _build_train_arena(factory: Callable[[Mode], Estimator],
                       datasets: dict[Mode, GatingDataset]) -> TraceArena:
    """Pack the per-mode training datasets (and factory) into an arena.

    Feature/label matrices and the per-row name columns ship as named
    bulk arrays (``np.frombuffer`` round-trips unicode dtypes, so the
    string columns ride the data region too); only the scalar metadata
    and the factory go through the pickled header. Workers then attach
    once per process instead of unpickling the full training set per
    chunk.
    """
    arrays: dict[str, np.ndarray] = {}
    meta: dict[str, dict] = {}
    for mode, ds in datasets.items():
        tag = mode.value
        arrays[f"x_{tag}"] = ds.x
        arrays[f"y_{tag}"] = ds.y
        arrays[f"groups_{tag}"] = ds.groups
        arrays[f"workloads_{tag}"] = ds.workloads
        arrays[f"traces_{tag}"] = ds.traces
        arrays[f"counter_ids_{tag}"] = ds.counter_ids
        meta[tag] = {"granularity": ds.granularity,
                     "sla_floor": ds.sla_floor}
    return TraceArena.build(
        arrays=arrays,
        objects={"factory": factory, "train_meta": meta})


def _datasets_from_arena(arena: TraceArena) -> dict[Mode, GatingDataset]:
    """Rebuild the per-mode datasets as views of the shared mapping.

    The views are read-only; every consumer (``subset``'s fancy
    indexing, estimator ``fit``) copies the rows it selects, so the
    reconstructed datasets behave exactly like their pickled twins.
    """
    meta = arena.object("train_meta")
    datasets: dict[Mode, GatingDataset] = {}
    for mode in Mode:
        tag = mode.value
        if tag not in meta:
            continue
        datasets[mode] = GatingDataset(
            x=arena.array(f"x_{tag}"),
            y=arena.array(f"y_{tag}"),
            groups=arena.array(f"groups_{tag}"),
            workloads=arena.array(f"workloads_{tag}"),
            traces=arena.array(f"traces_{tag}"),
            mode=mode,
            counter_ids=arena.array(f"counter_ids_{tag}"),
            granularity=int(meta[tag]["granularity"]),
            sla_floor=float(meta[tag]["sla_floor"]),
        )
    return datasets


def _arena_fit_candidate(handle: str, unit: tuple[Mode, int], *,
                         rsv_budget: float, calibration_fraction: float,
                         seed: int) -> tuple[float, int, Estimator]:
    """Worker-side candidate fit: datasets and factory ride the arena."""
    arena = TraceArena.attach(handle)
    return _fit_candidate(
        unit,
        factory=arena.object("factory"),
        datasets=_datasets_from_arena(arena),
        rsv_budget=rsv_budget,
        calibration_fraction=calibration_fraction,
        seed=seed,
    )


def _fit_candidate_grid(factory: Callable[[Mode], Estimator],
                        datasets: dict[Mode, GatingDataset],
                        grid: list[tuple[Mode, int]],
                        pmap: ParallelMap, *, rsv_budget: float,
                        calibration_fraction: float, seed: int) -> list:
    """Fan the (mode, candidate) grid out, via the arena when it pays.

    Mirrors the hyperscreen/dataset-builder arena protocol: the shared
    training matrices are packaged once when dispatch will actually
    cross a process boundary; unpicklable factories (the closure-based
    standard-model factories) fall back to plain dispatch at build
    time, and a corrupt segment falls back at attach time — results
    are bit-identical on every path.
    """
    arena = None
    if (exec_arena_enabled() and len(grid) > 1
            and pmap.uses_processes(len(grid), "train_candidates")):
        try:
            arena = _build_train_arena(factory, datasets)
        except (pickle.PicklingError, AttributeError, TypeError):
            EXEC_STATS.incr("arena.build_fallback")
    if arena is not None:
        try:
            return pmap.map(
                functools.partial(
                    _arena_fit_candidate, arena.handle,
                    rsv_budget=rsv_budget,
                    calibration_fraction=calibration_fraction,
                    seed=seed),
                grid, stage="train_candidates")
        except ArenaIntegrityError:
            # Corrupt/injected-corrupt segment: fall back to pickled
            # dispatch below — bit-identical, just slower.
            EXEC_STATS.incr("arena.attach_fallback")
        finally:
            arena.close()
    return pmap.map(
        functools.partial(_fit_candidate, factory=factory,
                          datasets=datasets, rsv_budget=rsv_budget,
                          calibration_fraction=calibration_fraction,
                          seed=seed),
        grid, stage="train_candidates")


def train_dual_predictor(name: str,
                         factory: Callable[[Mode], Estimator],
                         datasets: dict[Mode, GatingDataset],
                         granularity_factor: int,
                         rsv_budget: float | None = DEFAULT_RSV_BUDGET,
                         calibration_fraction: float = 0.15,
                         n_candidates: int = 1,
                         seed: int = 0,
                         pmap: ParallelMap | None = None,
                         ) -> DualModePredictor:
    """Train one model per telemetry mode and package them.

    ``rsv_budget`` enables post-training sensitivity tuning on a
    held-out calibration split of applications; pass ``None`` to keep
    the raw 0.5 threshold (the baselines). ``n_candidates > 1`` trains
    several random restarts and keeps the one with the highest
    calibration-set PGOS at its tuned threshold — the deployment-time
    face of the paper's "screen models for those that perform most
    consistently" principle. Candidate fits across both modes fan out
    through ``pmap`` (serial by default) as one (mode, candidate) grid.
    """
    models: dict[Mode, Estimator] = {}
    counter_ids = None
    for mode in Mode:
        ds = datasets[mode]
        if counter_ids is None:
            counter_ids = ds.counter_ids
        elif not np.array_equal(counter_ids, ds.counter_ids):
            raise ConfigurationError("per-mode counter sets must match")
    assert counter_ids is not None
    if rsv_budget is not None and calibration_fraction > 0.0:
        pmap = pmap if pmap is not None else default_parallel_map()
        n_cand = max(1, n_candidates)
        grid = [(mode, candidate) for mode in Mode
                for candidate in range(n_cand)]
        with tracer.span("train.candidates", predictor=name,
                         candidates=n_cand):
            cells = _fit_candidate_grid(
                factory, datasets, grid, pmap,
                rsv_budget=rsv_budget,
                calibration_fraction=calibration_fraction, seed=seed)
        for i, mode in enumerate(Mode):
            scored = cells[i * n_cand:(i + 1) * n_cand]
            # The median candidate by calibration PGOS: random restarts
            # at the tails are either unlucky fits or lucky-aggressive
            # ones that generalise worse.
            scored.sort(key=lambda item: item[:2])
            models[mode] = scored[len(scored) // 2][2]
    else:
        for mode in Mode:
            ds = datasets[mode]
            model = factory(mode)
            model.fit(ds.x, ds.y)
            if rsv_budget is not None:
                tune_threshold_for_rsv(model, ds, rsv_budget)
            models[mode] = model
    return DualModePredictor(
        name=name,
        models=models,
        counter_ids=np.asarray(counter_ids),
        granularity_factor=granularity_factor,
    )


@dataclasses.dataclass
class StandardModels:
    """The trained model zoo of Section 7 plus shared context."""

    predictors: dict[str, DualModePredictor]
    pf_counter_ids: list[int]
    charstar_counter_ids: list[int]
    collector: TelemetryCollector
    sla: SLAConfig

    def __getitem__(self, name: str) -> DualModePredictor:
        return self.predictors[name]

    def names(self) -> list[str]:
        return list(self.predictors)


def build_standard_models(train_traces: list[TraceSpec], seed: int,
                          sla: SLAConfig = DEFAULT_SLA,
                          collector: TelemetryCollector | None = None,
                          pf_counter_ids: list[int] | None = None,
                          include: Iterable[str] | None = None,
                          rsv_budget: float = DEFAULT_RSV_BUDGET,
                          selection_traces: int = 60,
                          ) -> StandardModels:
    """Train the Section-7 model zoo on a training corpus.

    Parameters
    ----------
    pf_counter_ids:
        Pre-selected PF counters; when omitted, PF Counter Selection
        runs on a subsample of the training traces (``selection_traces``
        of them — covariance statistics saturate quickly).
    include:
        Restrict which predictors to train (names of
        ``GRANULARITY_FACTORS``); all five by default.
    """
    collector = collector or TelemetryCollector()
    catalog = default_catalog()
    wanted = set(include) if include is not None else set(GRANULARITY_FACTORS)
    unknown = wanted - set(GRANULARITY_FACTORS)
    if unknown:
        raise ConfigurationError(f"unknown model names: {sorted(unknown)}")

    if pf_counter_ids is None:
        stride = max(1, len(train_traces) // selection_traces)
        sample = train_traces[::stride]
        # PF selection is greedy-sequential, so the top 12 of an r=15
        # run equal the r=12 run; SRCH uses the full top 15 (Section 7).
        pf_counter_ids = select_counters(sample, collector, r=15)
    srch_ids = list(pf_counter_ids[:15])
    pf_counter_ids = list(pf_counter_ids[:12])
    charstar_ids = catalog.charstar_ids

    # Datasets per (counter set, granularity factor, label floor).
    # SRCH follows Dubach et al.'s framework literally: it is trained
    # to predict the *highest performing* configuration, i.e. gate only
    # when low-power mode performs at least as well — not the SLA-
    # relaxed target the paper's own models train to. This is what
    # makes SRCH conservative (low PGOS, low PPW) in Section 7.
    srch_sla = dataclasses.replace(sla, performance_floor=1.0)
    counter_sets = {"pf": pf_counter_ids, "charstar": charstar_ids,
                    "srch": srch_ids}
    model_counters = {
        "best_rf": "pf", "best_mlp": "pf", "srch": "srch",
        "srch_coarse": "srch", "charstar": "charstar",
    }
    model_slas = {name: (srch_sla if name.startswith("srch") else sla)
                  for name in GRANULARITY_FACTORS}
    needs: set[tuple[str, int, float]] = set()
    for model_name in wanted:
        needs.add((model_counters[model_name],
                   GRANULARITY_FACTORS[model_name],
                   model_slas[model_name].performance_floor))

    datasets: dict[tuple[str, int, float], dict[Mode, GatingDataset]] = {}
    for (set_name, factor, floor) in needs:
        ds_sla = dataclasses.replace(sla, performance_floor=floor)
        datasets[(set_name, factor, floor)] = dataset_from_traces(
            train_traces, counter_sets[set_name], ds_sla, collector,
            factor)

    def mlp_factory(hidden: tuple[int, ...], tag: str,
                    ) -> Callable[[Mode], Estimator]:
        def make(mode: Mode) -> Estimator:
            return MLPClassifier(
                hidden_layers=hidden,
                epochs=60,
                seed=rng_mod.derive_seed(seed, tag, mode.value),
            )
        return make

    def rf_factory(mode: Mode) -> Estimator:
        return RandomForestClassifier(
            n_trees=8, max_depth=8,
            seed=rng_mod.derive_seed(seed, "best-rf", mode.value),
        )

    recipes: dict[str, tuple[Callable[[Mode], Estimator], str,
                             float | None]] = {
        "best_rf": (rf_factory, "pf", rsv_budget),
        "best_mlp": (mlp_factory((8, 8, 4), "best-mlp"), "pf", rsv_budget),
        "charstar": (mlp_factory((10,), "charstar"), "charstar", None),
        "srch": (lambda mode: SRCHEstimator(), "srch", None),
        "srch_coarse": (lambda mode: SRCHEstimator(), "srch", None),
    }

    predictors: dict[str, DualModePredictor] = {}
    for model_name in sorted(wanted):
        factory, set_name, budget = recipes[model_name]
        factor = GRANULARITY_FACTORS[model_name]
        key = (set_name, factor, model_slas[model_name].performance_floor)
        predictors[model_name] = train_dual_predictor(
            model_name, factory, datasets[key], factor,
            rsv_budget=budget, seed=rng_mod.derive_seed(seed, model_name),
            n_candidates=3 if model_name == "best_mlp" else 1,
        )
    return StandardModels(
        predictors=predictors,
        pf_counter_ids=list(pf_counter_ids),
        charstar_counter_ids=list(charstar_ids),
        collector=collector,
        sla=sla,
    )
