"""Predictive cluster gating — the paper's core contribution.

This package closes the loop of Figure 1: telemetry snapshots flow to
ML adaptation models hosted on the microcontroller, whose predictions
set the cluster configuration two intervals ahead.

* :mod:`repro.core.labels` — ground-truth gating labels from both-mode
  simulation against an SLA threshold (Figure 3).
* :mod:`repro.core.sla` — system-level SLA window accounting.
* :mod:`repro.core.predictor` — the dual-mode predictor (one model per
  telemetry mode, Section 4.1).
* :mod:`repro.core.gating` — the gating controller with the t+2
  prediction pipeline and mode-switch microcode costs (Section 3).
* :mod:`repro.core.adaptive_cpu` — the closed-loop adaptive CPU.
* :mod:`repro.core.pipeline` — end-to-end train/deploy recipes for the
  paper's models (Best RF, Best MLP, CHARSTAR, SRCH).
"""

from repro.core.adaptive_cpu import AdaptiveCPU, AdaptiveRunResult
from repro.core.gating import GatingController
from repro.core.guardrail import GuardedAdaptiveCPU, GuardrailConfig
from repro.core.labels import LabelSet, gating_labels, ideal_residency
from repro.core.predictor import DualModePredictor
from repro.core.sla import sla_window_violations

__all__ = [
    "AdaptiveCPU",
    "AdaptiveRunResult",
    "GatingController",
    "GuardedAdaptiveCPU",
    "GuardrailConfig",
    "LabelSet",
    "gating_labels",
    "ideal_residency",
    "DualModePredictor",
    "sla_window_violations",
]
