"""Fail-safe guardrail (Section 3.1's deployment safety net).

The paper evaluates all models *without* a guardrail so that RSV
reflects model quality, but states that "the final CPU design will
implement a fail-safe guardrail ... so that guardrails may be set as
permissively as possible". This module provides that mechanism:

The guardrail watches the deployed core's *achieved* per-interval IPC
in low-power mode against a predicted high-performance IPC reference
(the IPC observed the last time the same phase ran ungated — here, the
baseline cycles the runtime already tracks). When a trailing window of
gated intervals under-performs the SLA floor, the guardrail trips:
gating is suppressed and the core is forced to high-performance mode
for a hold-off period, after which gating resumes.

A tripped guardrail converts a *sustained* model blindspot into a
bounded transient, at the cost of a little PPW on workloads where the
model was right but unlucky — exactly the permissiveness trade the
paper describes.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import DEFAULT_SLA, SLAConfig
from repro.core.adaptive_cpu import AdaptiveCPU, AdaptiveRunResult
from repro.errors import ConfigurationError
from repro.uarch.modes import Mode
from repro.uarch.power import MODE_SWITCH_ENERGY_NJ
from repro.workloads.generator import TraceSpec


@dataclasses.dataclass(frozen=True)
class GuardrailConfig:
    """Trip/hold-off parameters of the fail-safe.

    ``window`` gated intervals are averaged; if their IPC ratio against
    the high-performance reference falls below ``trip_margin`` times
    the SLA floor, gating is suppressed for ``holdoff`` intervals.
    """

    window: int = 4
    trip_margin: float = 1.0
    holdoff: int = 16

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1: {self.window}")
        if self.holdoff < 1:
            raise ConfigurationError(
                f"holdoff must be >= 1: {self.holdoff}")
        if self.trip_margin <= 0.0:
            raise ConfigurationError(
                f"trip_margin must be positive: {self.trip_margin}")


@dataclasses.dataclass(frozen=True)
class GuardedRunResult:
    """An adaptive run plus guardrail accounting."""

    base: AdaptiveRunResult
    trips: int
    suppressed_intervals: int

    def __getattr__(self, name):
        return getattr(self.base, name)


class GuardedAdaptiveCPU(AdaptiveCPU):
    """AdaptiveCPU with the Section-3.1 fail-safe guardrail.

    Reuses the parent's telemetry/prediction machinery; the guardrail
    intervenes on the final mode schedule using the achieved low-power
    IPC vs the high-performance reference (which the simulator provides
    exactly; real silicon estimates it from pre-gating telemetry).
    """

    def __init__(self, *args,
                 guardrail: GuardrailConfig | None = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.guardrail = guardrail or GuardrailConfig()

    def run(self, trace: TraceSpec) -> GuardedRunResult:  # type: ignore[override]
        base = super().run(trace)
        cfg = self.guardrail
        floor = self.sla.performance_floor * cfg.trip_margin

        # Achieved IPC relative to the high-performance reference,
        # per interval (equal work => inverse cycle ratio).
        ratio = base.cycles_baseline / base.cycles

        modes = base.modes.copy()
        trips = 0
        suppressed = 0
        history: list[float] = []
        holdoff_left = 0
        for t in range(modes.shape[0]):
            if holdoff_left > 0:
                if modes[t] == 1:
                    modes[t] = 0
                    suppressed += 1
                holdoff_left -= 1
                history.clear()
                continue
            if modes[t] == 1:
                history.append(float(ratio[t]))
                if len(history) > cfg.window:
                    history.pop(0)
                if (len(history) == cfg.window
                        and float(np.mean(history)) < floor):
                    trips += 1
                    holdoff_left = cfg.holdoff
                    history.clear()
            else:
                history.clear()

        # Re-account the run with the guarded schedule. Both schedules
        # replay the same trace, so per-interval cycles/energy of the
        # pure modes are exact substitutes.
        gated = modes.astype(bool)
        cycles = np.where(gated, base.cycles, base.cycles_baseline)
        hp_energy, lp_energy = self._interval_energies(trace,
                                                       base.n_intervals)
        energy = np.where(gated, lp_energy, hp_energy)
        switches = np.abs(np.diff(np.concatenate(([0], modes)))).sum()
        energy_total = float(energy.sum()
                             + switches * MODE_SWITCH_ENERGY_NJ * 1e-9)
        n_preds = base.predictions.shape[0]
        guarded = dataclasses.replace(
            base,
            modes=modes,
            predictions=modes[self.horizon:self.horizon + n_preds],
            cycles=cycles,
            energy_j=energy_total,
            switch_count=int(switches),
        )
        return GuardedRunResult(base=guarded, trips=trips,
                                suppressed_intervals=suppressed)

    def _interval_energies(self, trace: TraceSpec, t_count: int,
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Per-coarse-interval energies of each pure mode."""
        factor = self.predictor.granularity_factor
        out = []
        for mode in Mode:
            result = self.collector.model.simulate(trace, mode)
            per = self.power.interval_energy_j(result)
            t_full = t_count * factor
            out.append(per[:t_full].reshape(t_count, factor).sum(axis=1))
        return out[0], out[1]
