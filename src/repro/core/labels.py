"""Ground-truth gating labels (Section 4.1 / Figure 3).

For every interval, the trace is simulated in both cluster
configurations; the label is 1 ("gate cluster 2") when low-power-mode
IPC meets the SLA performance threshold relative to high-performance
IPC, and 0 otherwise. Coarser prediction granularities aggregate
cycles over successive base intervals before taking the ratio.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import DEFAULT_SLA, SLAConfig, active_exec_config
from repro.errors import DatasetError
from repro.uarch.interval_model import IntervalModel, IntervalResult
from repro.uarch.modes import Mode
from repro.workloads.generator import TraceSpec


def coarsen_cycles(cycles: np.ndarray, factor: int) -> np.ndarray:
    """Sum cycles over successive ``factor``-interval groups."""
    if factor <= 0:
        raise DatasetError(f"factor must be positive, got {factor}")
    if factor == 1:
        return cycles
    t_full = (cycles.shape[0] // factor) * factor
    if t_full == 0:
        raise DatasetError("trace too short for requested granularity")
    return cycles[:t_full].reshape(-1, factor).sum(axis=1)


@dataclasses.dataclass(frozen=True)
class LabelSet:
    """Per-interval gating ground truth for one trace."""

    trace_name: str
    labels: np.ndarray  # (T,) 1 = gate / low-power meets the SLA
    ratio: np.ndarray  # (T,) IPC_low / IPC_high
    ipc_high: np.ndarray
    ipc_low: np.ndarray
    cycles_high: np.ndarray
    cycles_low: np.ndarray
    granularity: int
    sla_floor: float

    @property
    def n_intervals(self) -> int:
        return int(self.labels.shape[0])

    @property
    def residency(self) -> float:
        """Ideal low-power residency: fraction of gateable intervals."""
        if self.n_intervals == 0:
            raise DatasetError("empty label set")
        return float(self.labels.mean())


def gating_labels(trace: TraceSpec, sla: SLAConfig = DEFAULT_SLA,
                  model: IntervalModel | None = None,
                  granularity_factor: int = 1,
                  results: dict[Mode, IntervalResult] | None = None,
                  ) -> LabelSet:
    """Compute gating labels for a trace.

    Parameters
    ----------
    granularity_factor:
        Prediction granularity in multiples of the 10k-instruction base
        interval (e.g. 4 for the Best RF's 40k interval).
    results:
        Pre-computed both-mode simulation results to reuse.
    """
    model = model or IntervalModel()
    disk_key = None
    if results is None:
        # Labels are a pure function of (trace, SLA floor, granularity,
        # machine), so when the simulator carries a SimCache a warm
        # build loads them directly and never touches the simulator.
        config = active_exec_config()
        if model.simcache is not None and config.batch_sim:
            tier = "surrogate" if config.surrogate else "interval"
            disk_key = model.simcache.labels_key(
                trace, sla, granularity_factor, model.machine, tier=tier)
            cached = model.simcache.load_labels(disk_key)
            if cached is not None:
                return cached
        results = model.simulate_both(trace)
    cycles_high = coarsen_cycles(results[Mode.HIGH_PERF].cycles,
                                 granularity_factor)
    cycles_low = coarsen_cycles(results[Mode.LOW_POWER].cycles,
                                granularity_factor)
    inst = trace.interval_instructions * granularity_factor
    ipc_high = inst / cycles_high
    ipc_low = inst / cycles_low
    ratio = ipc_low / ipc_high
    labels = (ratio >= sla.performance_floor).astype(np.int64)
    label_set = LabelSet(
        trace_name=trace.name,
        labels=labels,
        ratio=ratio,
        ipc_high=ipc_high,
        ipc_low=ipc_low,
        cycles_high=cycles_high,
        cycles_low=cycles_low,
        granularity=inst,
        sla_floor=sla.performance_floor,
    )
    if disk_key is not None:
        model.simcache.store_labels(disk_key, label_set)
    return label_set


def ideal_residency(traces: list[TraceSpec], sla: SLAConfig = DEFAULT_SLA,
                    model: IntervalModel | None = None,
                    granularity_factor: int = 1) -> float:
    """Mean ideal low-power residency across traces (Figure 7)."""
    model = model or IntervalModel()
    residencies = [
        gating_labels(trace, sla, model, granularity_factor).residency
        for trace in traces
    ]
    if not residencies:
        raise DatasetError("no traces supplied")
    return float(np.mean(residencies))
