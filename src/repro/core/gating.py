"""The cluster gating controller.

Implements the control side of Section 3: decisions arrive through a
two-interval pipeline (counters from interval ``t`` are shipped to the
microcontroller, a prediction is computed during ``t+1``, and the
configuration takes effect at ``t+2`` — Figure 3), and every mode
switch pays the microcode cost of transferring live register state
from the gated cluster.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import rng as rng_mod
from repro.config import MachineConfig
from repro.core.predictor import DualModePredictor
from repro.errors import ConfigurationError
from repro.uarch.modes import Mode

#: Cycles to return from low-power to high-performance mode: ungate and
#: update the scheduler; the paper calls this negligible.
UNGATE_CYCLES = 4.0


@dataclasses.dataclass(frozen=True)
class SwitchCost:
    """Cycle cost of one mode switch."""

    cycles: float
    transfer_uops: int


class GatingController:
    """Turns per-interval gating probabilities into a mode schedule."""

    def __init__(self, predictor: DualModePredictor,
                 machine: MachineConfig | None = None,
                 horizon: int = 2, seed: int = 0) -> None:
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self.predictor = predictor
        self.machine = machine or MachineConfig()
        self.horizon = horizon
        self.seed = seed

    def switch_cost(self, from_mode: Mode, to_mode: Mode,
                    rng: np.random.Generator) -> SwitchCost:
        """Microcode cost of a mode switch (Section 3).

        Gating requires one micro-op per live register dependency to be
        copied from cluster 2 — up to 32 in the worst case — landing in
        the low tens of cycles. Ungating needs only a scheduler update.
        """
        if from_mode is to_mode:
            return SwitchCost(cycles=0.0, transfer_uops=0)
        if to_mode is Mode.LOW_POWER:
            transfers = int(rng.integers(
                4, self.machine.max_register_transfers + 1))
            cycles = (self.machine.mode_switch_base_cycles
                      + transfers / self.machine.width_low_power)
            return SwitchCost(cycles=cycles, transfer_uops=transfers)
        return SwitchCost(cycles=UNGATE_CYCLES, transfer_uops=0)

    def schedule(self, probs: dict[Mode, np.ndarray],
                 trace_seed: int) -> tuple[np.ndarray, np.ndarray,
                                           np.ndarray]:
        """Run the control loop over precomputed per-mode probabilities.

        ``probs[mode][t]`` is the gating probability the predictor
        would emit for telemetry observed at interval ``t`` *if* the
        CPU were in ``mode`` at ``t``. Because the decision pipeline is
        sequential (the mode at ``t`` determines which telemetry stream
        exists at ``t``), the loop walks intervals in order.

        Returns ``(modes, switch_cycles, switch_counts)``: per-interval
        gating labels (1 = low power), added switch cycles, and switch
        event counts.
        """
        n = probs[Mode.HIGH_PERF].shape[0]
        thresholds = self.predictor.thresholds
        switch_cycles = np.zeros(n)
        switch_counts = np.zeros(n)
        rng = rng_mod.stream(self.seed, "gating", trace_seed)
        # Plain-list walk of the serial decision pipeline: same
        # comparisons and RNG draw order as the original per-interval
        # loop over numpy scalars, minus the indexing overhead.
        p_high = probs[Mode.HIGH_PERF].tolist()
        p_low = probs[Mode.LOW_POWER].tolist()
        th_high = thresholds[Mode.HIGH_PERF]
        th_low = thresholds[Mode.LOW_POWER]
        base_cycles = self.machine.mode_switch_base_cycles
        width = self.machine.width_low_power
        max_transfers = self.machine.max_register_transfers
        horizon = self.horizon
        modes = [0] * n  # start in high-perf
        for t in range(horizon, n):
            if modes[t - horizon]:
                gate = 1 if p_low[t - horizon] >= th_low else 0
            else:
                gate = 1 if p_high[t - horizon] >= th_high else 0
            modes[t] = gate
            if gate != modes[t - 1]:
                if gate:  # gating: microcode register-transfer flow
                    transfers = int(rng.integers(4, max_transfers + 1))
                    switch_cycles[t] = base_cycles + transfers / width
                else:
                    switch_cycles[t] = UNGATE_CYCLES
                switch_counts[t] = 1.0
        return np.array(modes, dtype=np.int64), switch_cycles, switch_counts
