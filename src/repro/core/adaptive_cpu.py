"""The closed-loop adaptive CPU.

Ties together every subsystem of Figure 1: the two-cluster core
(simulated), the telemetry system (counter snapshots each interval),
and the microcontroller-hosted adaptation models (a
:class:`~repro.core.predictor.DualModePredictor`). Each run deploys a
trained predictor on one trace and produces everything the evaluation
needs: the mode schedule, achieved IPC and energy, the all-high-
performance baseline, and prediction/ground-truth pairs for PGOS/RSV.
"""

from __future__ import annotations

import dataclasses
import functools
import pickle

import numpy as np

from repro.config import DEFAULT_SLA, MachineConfig, SLAConfig
from repro.config import batch_sim_enabled, exec_arena_enabled
from repro.config import exec_shard_size
from repro.core.gating import GatingController
from repro.core.labels import LabelSet, gating_labels
from repro.core.predictor import DualModePredictor
from repro.core.sla import SLAAccounting, sla_window_violations
from repro.errors import ArenaIntegrityError, DatasetError
from repro.exec.arena import TraceArena
from repro.exec.parallel import ParallelMap, default_parallel_map
from repro.exec.stats import EXEC_STATS
from repro.obs import tracer
from repro.telemetry.collector import TelemetryCollector, coarsen
from repro.uarch.modes import Mode
from repro.uarch.power import MODE_SWITCH_ENERGY_NJ, PowerModel
from repro.workloads.generator import TraceSpec


@dataclasses.dataclass(frozen=True)
class AdaptiveRunResult:
    """Outcome of deploying a predictor on one trace."""

    trace_name: str
    app_name: str
    workload_name: str
    predictor_name: str
    granularity: int
    modes: np.ndarray  # (T,) chosen per interval, 1 = low power
    predictions: np.ndarray  # (T - horizon,) gating decisions applied
    labels: np.ndarray  # (T - horizon,) oracle labels for the same slots
    ipc: np.ndarray  # (T,) achieved IPC
    cycles: np.ndarray  # (T,) achieved cycles (incl. switch costs)
    cycles_baseline: np.ndarray  # (T,) all-high-performance cycles
    energy_j: float
    energy_baseline_j: float
    switch_count: int

    @property
    def n_intervals(self) -> int:
        return int(self.modes.shape[0])

    @property
    def residency(self) -> float:
        """Fraction of runtime intervals spent in low-power mode."""
        return float(self.modes.mean())

    @property
    def ppw_gain(self) -> float:
        """Performance-per-watt gain over the non-adaptive baseline.

        Equal work means PPW (instructions/joule) gain reduces to the
        baseline-to-adaptive energy ratio.
        """
        return self.energy_baseline_j / self.energy_j - 1.0

    @property
    def avg_performance(self) -> float:
        """Aggregate IPC relative to always-high-performance."""
        return float(self.cycles_baseline.sum() / self.cycles.sum())

    def sla_accounting(self, window_intervals: int,
                       performance_floor: float) -> SLAAccounting:
        """System-level windowed SLA measurement for this run."""
        return sla_window_violations(self.cycles, self.cycles_baseline,
                                     window_intervals, performance_floor)


def _arena_prepare_chunk(handle: str, indices: list[int]):
    """Worker-side prepare: attach to the arena, rebuild, prepare.

    Module-level so process pools can pickle it; the task payload is
    just ``(handle, indices)`` — the traces, the CPU (predictor,
    collector, machine) and the power model all travel once via the
    arena instead of once per chunk.
    """
    arena = TraceArena.attach(handle)
    cpu = arena.object("cpu")
    return cpu._prepare_chunk([arena.trace(i) for i in indices])


@dataclasses.dataclass(frozen=True)
class _PreparedRun:
    """Everything one closed-loop run needs except the predictions.

    The per-trace unit of the batched ``run_many`` path: preparation
    (simulation, telemetry, labels, energy) fans out across workers,
    while inference over the concatenated feature windows happens once
    per (mode, model) in the parent.
    """

    trace: TraceSpec
    features: dict[Mode, np.ndarray]  # (t_count, C) per telemetry mode
    labels: LabelSet
    t_count: int
    energy_by_mode: dict[Mode, np.ndarray]  # (t_count,) joules


class AdaptiveCPU:
    """Closed-loop deployment of a dual-mode predictor."""

    def __init__(self, predictor: DualModePredictor,
                 collector: TelemetryCollector | None = None,
                 power: PowerModel | None = None,
                 machine: MachineConfig | None = None,
                 sla: SLAConfig = DEFAULT_SLA,
                 horizon: int = 2) -> None:
        self.predictor = predictor
        self.collector = collector or TelemetryCollector()
        self.machine = machine or MachineConfig()
        self.power = power or PowerModel(self.machine)
        self.sla = sla
        self.controller = GatingController(predictor, self.machine,
                                           horizon=horizon)
        self.horizon = horizon
        self._resident_arena: TraceArena | None = None
        self._resident_index: dict[int, int] = {}

    def __getstate__(self) -> dict:
        """Drop the resident arena from pickled copies.

        The CPU itself travels inside arena segments and process-pool
        payloads; an open mmap handle is unpicklable and meaningless in
        a worker (workers attach by handle string instead).
        """
        state = self.__dict__.copy()
        state["_resident_arena"] = None
        state["_resident_index"] = {}
        return state

    # ------------------------------------------------------------------
    # Daemon-lifetime resident arena (repro.serve).
    # ------------------------------------------------------------------
    def install_resident_arena(self,
                               traces: list[TraceSpec]) -> TraceArena | None:
        """Build one long-lived :class:`TraceArena` over ``traces``.

        A batch CLI run builds and tears down an arena per
        ``run_many`` call; a serving daemon answers thousands of small
        batches over the *same* resident corpus, so it packs the
        corpus (and this CPU) once and every subsequent process-backend
        fan-out ships only arena indices. Returns ``None`` (and falls
        back to per-call packaging) when the corpus holds unpicklable
        collaborators. The caller owns the lifetime:
        :meth:`close_resident_arena` on shutdown.
        """
        self.close_resident_arena()
        try:
            arena = TraceArena.build(traces, objects={"cpu": self},
                                     machine=self.machine)
        except (pickle.PicklingError, AttributeError, TypeError):
            EXEC_STATS.incr("arena.build_fallback")
            return None
        self._resident_arena = arena
        self._resident_index = {id(t): i for i, t in enumerate(traces)}
        return arena

    def close_resident_arena(self) -> None:
        """Unmap and forget the resident arena (idempotent)."""
        if self._resident_arena is not None:
            self._resident_arena.close()
        self._resident_arena = None
        self._resident_index = {}

    def _prepare(self, trace: TraceSpec) -> _PreparedRun:
        """Simulation, telemetry, labels and energy for one trace."""
        factor = self.predictor.granularity_factor
        results = self.collector.model.simulate_both(trace)

        # Telemetry the models would observe in each mode, coarsened to
        # the predictor's gating granularity.
        snaps = {}
        for mode in Mode:
            snap = self.collector.snapshot(trace, mode,
                                           self.predictor.counter_ids,
                                           result=results[mode])
            snaps[mode] = coarsen(snap, factor) if factor > 1 else snap

        labels = gating_labels(trace, self.sla, self.collector.model,
                               factor, results=results)
        t_count = min(labels.n_intervals,
                      *(s.n_intervals for s in snaps.values()))
        if t_count <= self.horizon:
            raise DatasetError(
                f"trace {trace.name} too short at granularity {factor}"
            )

        # Energy: per-base-interval energies of each mode, coarsened
        # to the gating granularity.
        energy_by_mode = {}
        for mode in Mode:
            per_interval = self.power.interval_energy_j(results[mode])
            t_full = t_count * factor
            energy_by_mode[mode] = per_interval[:t_full].reshape(
                t_count, factor).sum(axis=1)

        return _PreparedRun(
            trace=trace,
            features={mode: snaps[mode].normalized[:t_count]
                      for mode in Mode},
            labels=labels,
            t_count=t_count,
            energy_by_mode=energy_by_mode,
        )

    def _prepare_chunk(self, traces: list[TraceSpec]) -> list[_PreparedRun]:
        """Prepare a whole chunk: stacked simulation, then per-trace."""
        self.collector.model.simulate_batch(traces)
        return [self._prepare(trace) for trace in traces]

    def _finalize(self, prep: _PreparedRun,
                  probs: dict[Mode, np.ndarray]) -> AdaptiveRunResult:
        """Schedule modes from predictions and account the outcome."""
        trace = prep.trace
        labels = prep.labels
        t_count = prep.t_count
        modes, switch_cycles, switch_counts = self.controller.schedule(
            probs, trace.seed)

        gated = modes.astype(bool)
        cycles = np.where(gated, labels.cycles_low[:t_count],
                          labels.cycles_high[:t_count]) + switch_cycles
        inst = labels.granularity
        ipc = inst / cycles

        energy = np.where(gated, prep.energy_by_mode[Mode.LOW_POWER],
                          prep.energy_by_mode[Mode.HIGH_PERF])
        energy = energy + switch_counts * MODE_SWITCH_ENERGY_NJ * 1e-9
        # Switch cycles also burn static power in the active mode.
        switch_time = switch_cycles / (self.machine.frequency_ghz * 1e9)
        static_w = np.where(
            gated, self.power.static_power_w(Mode.LOW_POWER),
            self.power.static_power_w(Mode.HIGH_PERF))
        energy = energy + switch_time * static_w

        baseline_cycles = labels.cycles_high[:t_count]
        baseline_energy = float(prep.energy_by_mode[Mode.HIGH_PERF].sum())

        return AdaptiveRunResult(
            trace_name=trace.name,
            app_name=trace.app.name,
            workload_name=trace.workload.name,
            predictor_name=self.predictor.name,
            granularity=inst,
            modes=modes,
            predictions=modes[self.horizon:t_count],
            labels=labels.labels[self.horizon:t_count],
            ipc=ipc,
            cycles=cycles,
            cycles_baseline=baseline_cycles,
            energy_j=float(energy.sum()),
            energy_baseline_j=baseline_energy,
            switch_count=int(switch_counts.sum()),
        )

    def run(self, trace: TraceSpec) -> AdaptiveRunResult:
        """Deploy the predictor on one trace and account the outcome."""
        prep = self._prepare(trace)
        probs = {
            mode: self.predictor.predict_proba(prep.features[mode], mode)
            for mode in Mode
        }
        return self._finalize(prep, probs)

    def run_many(self, traces: list[TraceSpec],
                 pmap: ParallelMap | None = None,
                 ) -> list[AdaptiveRunResult]:
        """Deploy on a whole trace corpus.

        ``pmap`` selects the execution backend (default: the
        process-wide :func:`~repro.exec.parallel.default_parallel_map`,
        i.e. serial unless configured otherwise). Traces are
        independent and internally seeded, so every backend returns
        bit-identical results in trace order.

        When the batch-simulation layer is on (``REPRO_BATCH_SIM``),
        per-trace preparation fans out in whole chunks (stacked
        interval simulation per chunk; process backends ship the
        corpus once via a :class:`~repro.exec.arena.TraceArena` when
        ``REPRO_EXEC_ARENA=1``) and inference runs as one
        ``predict_proba`` call per distinct *model* over the feature
        windows of the *entire corpus* — all modes sharing an
        estimator are scored in a single concatenated call. The
        inference batch is independent of backend and chunking, so
        every backend stays bit-identical. Subclasses that override
        :meth:`run` keep their per-trace semantics and skip the
        batched path.

        ``REPRO_EXEC_SHARD`` caps how many traces are prepared and
        scored at once: above the cap the corpus streams shard-by-
        shard, so the parent never holds more than one shard of
        feature windows plus the accumulated (small) results.
        Inference is row-wise and finalisation per-trace, so sharded
        runs stay bit-identical to unsharded ones.
        """
        pmap = pmap if pmap is not None else default_parallel_map()
        if not (batch_sim_enabled() and type(self).run is AdaptiveCPU.run):
            return pmap.map(self.run, traces, stage="adaptive_run")
        shard = exec_shard_size()
        if shard is not None and len(traces) > shard:
            n_shards = -(-len(traces) // shard)
            out: list[AdaptiveRunResult] = []
            for si in range(n_shards):
                sub = traces[si * shard:(si + 1) * shard]
                with tracer.span("deploy.shard", shard=si,
                                 shards=n_shards, traces=len(sub)):
                    out.extend(self._run_many_batch(sub, pmap))
                EXEC_STATS.incr("adaptive_run.shards")
            return out
        return self._run_many_batch(traces, pmap)

    def _run_many_batch(self, traces: list[TraceSpec],
                        pmap: ParallelMap) -> list[AdaptiveRunResult]:
        """One prepare → infer → finalize pass over (a shard of) traces."""
        with tracer.span("deploy.prepare", traces=len(traces)):
            preps = self._prepare_many(traces, pmap)
        if not preps:
            return []
        with EXEC_STATS.stage("adaptive_infer"), \
                tracer.span("deploy.infer", traces=len(preps)):
            bounds = np.cumsum([0] + [prep.t_count for prep in preps])
            probs_by_mode = self._infer_many(preps)
        with EXEC_STATS.stage("adaptive_finalize"), \
                tracer.span("deploy.finalize", traces=len(preps)):
            out = []
            for p, prep in enumerate(preps):
                lo, hi = int(bounds[p]), int(bounds[p + 1])
                probs = {mode: probs_by_mode[mode][lo:hi] for mode in Mode}
                out.append(self._finalize(prep, probs))
        return out

    def _prepare_many(self, traces: list[TraceSpec],
                      pmap: ParallelMap) -> list[_PreparedRun]:
        """Fan preparation out, via the trace arena when it pays.

        The arena is built only when dispatch will actually cross a
        process boundary (``REPRO_EXEC_ARENA=1`` and a process/auto
        backend on a multi-item corpus): workers then receive
        ``(handle, indices)`` and attach to the shared mapping instead
        of unpickling the CPU and traces per chunk. Any failure to
        package (an unpicklable collaborator) falls back to the plain
        per-chunk path, which has its own serial fallback — results
        are bit-identical either way.
        """
        arena = None
        if (self._resident_arena is not None
                and pmap.uses_processes(len(traces), "adaptive_prepare")):
            indices = [self._resident_index.get(id(t)) for t in traces]
            if all(i is not None for i in indices):
                # Serving hot path: the daemon's corpus already lives in
                # the resident arena, so fan out bare indices — no
                # per-request arena build or teardown.
                EXEC_STATS.incr("arena.resident_reuse")
                fn = functools.partial(_arena_prepare_chunk,
                                       self._resident_arena.handle)
                try:
                    return pmap.map_chunks(fn, indices,
                                           stage="adaptive_prepare")
                except ArenaIntegrityError:
                    EXEC_STATS.incr("arena.attach_fallback")
                    return pmap.map_chunks(self._prepare_chunk, traces,
                                           stage="adaptive_prepare")
        if (exec_arena_enabled() and len(traces) > 1
                and pmap.uses_processes(len(traces), "adaptive_prepare")):
            try:
                arena = TraceArena.build(
                    traces, objects={"cpu": self}, machine=self.machine)
            except (pickle.PicklingError, AttributeError, TypeError):
                EXEC_STATS.incr("arena.build_fallback")
        if arena is None:
            return pmap.map_chunks(self._prepare_chunk, traces,
                                   stage="adaptive_prepare")
        try:
            fn = functools.partial(_arena_prepare_chunk, arena.handle)
            return pmap.map_chunks(fn, range(len(traces)),
                                   stage="adaptive_prepare")
        except ArenaIntegrityError:
            # A worker found the segment corrupt (or an injected
            # corrupt_arena fault fired): re-run via pickled dispatch,
            # which is bit-identical, just slower.
            EXEC_STATS.incr("arena.attach_fallback")
            return pmap.map_chunks(self._prepare_chunk, traces,
                                   stage="adaptive_prepare")
        finally:
            arena.close()

    def _infer_many(self, preps: list[_PreparedRun],
                    ) -> dict[Mode, np.ndarray]:
        """One ``predict_proba`` per distinct *model* over all modes.

        Modes that share an estimator (single-model predictors, Table-6
        blends reusing a forest) are concatenated into one feature
        block and scored in a single call; modes with their own model
        keep one call each. Row-wise inference is order-independent,
        so slicing the stacked result back out is bit-identical to
        per-mode calls.
        """
        probs_by_mode: dict[Mode, np.ndarray] = {}
        groups: dict[int, list[Mode]] = {}
        for mode in Mode:
            key = id(self.predictor.model_for(mode))
            groups.setdefault(key, []).append(mode)
        for modes in groups.values():
            blocks = [
                np.concatenate([prep.features[mode] for prep in preps],
                               axis=0)
                for mode in modes
            ]
            EXEC_STATS.incr("adaptive_infer.model_calls")
            if len(modes) == 1:
                EXEC_STATS.observe("adaptive_infer.batch_rows",
                                   blocks[0].shape[0])
                probs_by_mode[modes[0]] = self.predictor.predict_proba(
                    blocks[0], modes[0])
                continue
            stacked = np.concatenate(blocks, axis=0)
            EXEC_STATS.observe("adaptive_infer.batch_rows",
                               stacked.shape[0])
            probs = self.predictor.predict_proba(stacked, modes[0])
            rows = blocks[0].shape[0]
            for k, mode in enumerate(modes):
                probs_by_mode[mode] = probs[k * rows:(k + 1) * rows]
        return probs_by_mode
