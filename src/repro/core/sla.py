"""System-level SLA window accounting.

Section 3.1: the SLA guarantees that the (possibly gated) core performs
within :math:`P_{SLA}` of high-performance mode, measured in IPC over
:math:`T_{SLA}` windows, for at least 99% of windows. This module
measures that guarantee directly on a deployed run by comparing the
adaptive core's windowed IPC against the all-high-performance baseline.

The *prediction-error* formulation of SLA violations (Eqs. 2-4) lives
in :mod:`repro.eval.metrics`; the paper reports that one, but the
system-level check here is what a customer would actually observe.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import DatasetError


@dataclasses.dataclass(frozen=True)
class SLAAccounting:
    """Windowed SLA measurement over one deployed run."""

    n_windows: int
    n_violations: int
    window_ratios: np.ndarray  # per-window IPC_adaptive / IPC_baseline

    @property
    def violation_rate(self) -> float:
        if self.n_windows == 0:
            raise DatasetError("no complete SLA windows")
        return self.n_violations / self.n_windows

    def meets_guarantee(self, guarantee: float = 0.99) -> bool:
        """True when the fraction of good windows reaches the guarantee."""
        return (1.0 - self.violation_rate) >= guarantee


class RollingSLA:
    """Streaming SLA accounting over a sliding window of observations.

    The batch :func:`sla_window_violations` measures a finished run;
    serving needs the same semantics *online* — each served request
    contributes one (achieved, budget) pair and the question is "what
    fraction of the recent window violated the floor". This keeps a
    fixed-capacity ring of the most recent ratios and reduces to one
    :class:`SLAAccounting` window on demand, so the serving layer and
    the offline accounting share one definition of a violation
    (``ratio < floor``, strict — an exactly-on-budget observation
    complies).
    """

    def __init__(self, window: int, performance_floor: float = 1.0,
                 guarantee: float = 0.99) -> None:
        if window <= 0:
            raise DatasetError(f"window must be positive: {window}")
        if not 0.0 < guarantee <= 1.0:
            raise DatasetError(
                f"guarantee must be in (0, 1], got {guarantee}"
            )
        self.window = window
        self.performance_floor = performance_floor
        self.guarantee = guarantee
        self._ratios = np.zeros(window, dtype=np.float64)
        self._next = 0
        self._count = 0

    def observe(self, achieved: float, budget: float) -> None:
        """Record one observation as the ratio ``budget / achieved``.

        Mirrors the batch accounting (baseline / adaptive for equal
        work): a request that took longer than its budget, or a window
        whose IPC fell under the floor, yields a ratio below the floor.
        """
        ratio = budget / achieved if achieved > 0 else float("inf")
        self._ratios[self._next] = ratio
        self._next = (self._next + 1) % self.window
        self._count = min(self._count + 1, self.window)

    @property
    def n_observations(self) -> int:
        return self._count

    def accounting(self) -> SLAAccounting:
        """The current window as one :class:`SLAAccounting`."""
        if self._count == 0:
            return SLAAccounting(n_windows=0, n_violations=0,
                                 window_ratios=np.empty(0))
        ratios = self._ratios[:self._count].copy()
        violations = int((ratios < self.performance_floor).sum())
        return SLAAccounting(n_windows=self._count,
                             n_violations=violations,
                             window_ratios=ratios)

    def pressure(self) -> float:
        """How close this window is to breaching its guarantee.

        0.0 = no violations; 1.0 = exactly at the tolerated violation
        budget (``1 - guarantee``); above 1.0 the guarantee is already
        breached. The serving batcher dequeues tenants by descending
        pressure, so the tenant nearest violation is served first.
        """
        if self._count == 0:
            return 0.0
        allowance = 1.0 - self.guarantee
        rate = self.accounting().violation_rate
        if allowance <= 0.0:
            return 0.0 if rate == 0.0 else float("inf")
        return rate / allowance


def sla_window_violations(cycles_adaptive: np.ndarray,
                          cycles_baseline: np.ndarray,
                          window_intervals: int,
                          performance_floor: float) -> SLAAccounting:
    """Measure windowed SLA violations of an adaptive run.

    Both cycle arrays cover the same instructions per interval, so the
    windowed IPC ratio reduces to a windowed cycle ratio.
    """
    if window_intervals <= 0:
        raise DatasetError(
            f"window_intervals must be positive: {window_intervals}"
        )
    if cycles_adaptive.shape != cycles_baseline.shape:
        raise DatasetError("cycle arrays must align")
    n_windows = cycles_adaptive.shape[0] // window_intervals
    if n_windows == 0:
        raise DatasetError(
            f"run too short for window of {window_intervals} intervals"
        )
    t_full = n_windows * window_intervals
    adaptive = cycles_adaptive[:t_full].reshape(n_windows, -1).sum(axis=1)
    baseline = cycles_baseline[:t_full].reshape(n_windows, -1).sum(axis=1)
    # IPC ratio = cycles_baseline / cycles_adaptive for equal work.
    ratios = baseline / adaptive
    violations = int((ratios < performance_floor).sum())
    return SLAAccounting(
        n_windows=n_windows,
        n_violations=violations,
        window_ratios=ratios,
    )
