"""System-level SLA window accounting.

Section 3.1: the SLA guarantees that the (possibly gated) core performs
within :math:`P_{SLA}` of high-performance mode, measured in IPC over
:math:`T_{SLA}` windows, for at least 99% of windows. This module
measures that guarantee directly on a deployed run by comparing the
adaptive core's windowed IPC against the all-high-performance baseline.

The *prediction-error* formulation of SLA violations (Eqs. 2-4) lives
in :mod:`repro.eval.metrics`; the paper reports that one, but the
system-level check here is what a customer would actually observe.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import DatasetError


@dataclasses.dataclass(frozen=True)
class SLAAccounting:
    """Windowed SLA measurement over one deployed run."""

    n_windows: int
    n_violations: int
    window_ratios: np.ndarray  # per-window IPC_adaptive / IPC_baseline

    @property
    def violation_rate(self) -> float:
        if self.n_windows == 0:
            raise DatasetError("no complete SLA windows")
        return self.n_violations / self.n_windows

    def meets_guarantee(self, guarantee: float = 0.99) -> bool:
        """True when the fraction of good windows reaches the guarantee."""
        return (1.0 - self.violation_rate) >= guarantee


def sla_window_violations(cycles_adaptive: np.ndarray,
                          cycles_baseline: np.ndarray,
                          window_intervals: int,
                          performance_floor: float) -> SLAAccounting:
    """Measure windowed SLA violations of an adaptive run.

    Both cycle arrays cover the same instructions per interval, so the
    windowed IPC ratio reduces to a windowed cycle ratio.
    """
    if window_intervals <= 0:
        raise DatasetError(
            f"window_intervals must be positive: {window_intervals}"
        )
    if cycles_adaptive.shape != cycles_baseline.shape:
        raise DatasetError("cycle arrays must align")
    n_windows = cycles_adaptive.shape[0] // window_intervals
    if n_windows == 0:
        raise DatasetError(
            f"run too short for window of {window_intervals} intervals"
        )
    t_full = n_windows * window_intervals
    adaptive = cycles_adaptive[:t_full].reshape(n_windows, -1).sum(axis=1)
    baseline = cycles_baseline[:t_full].reshape(n_windows, -1).sum(axis=1)
    # IPC ratio = cycles_baseline / cycles_adaptive for equal work.
    ratios = baseline / adaptive
    violations = int((ratios < performance_floor).sum())
    return SLAAccounting(
        n_windows=n_windows,
        n_violations=violations,
        window_ratios=ratios,
    )
