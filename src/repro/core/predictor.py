"""The dual-mode adaptation predictor.

Section 4.1: the paper trains two models that operate alongside each
other — one on telemetry recorded in high-performance mode, one on
telemetry recorded in low-power mode (the harder problem). At inference
time a flag indicating the CPU mode when the counters were recorded
selects which model produces the prediction.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.base import Estimator
from repro.uarch.modes import Mode


@dataclasses.dataclass
class DualModePredictor:
    """One trained adaptation model per telemetry mode."""

    name: str
    models: dict[Mode, Estimator]
    counter_ids: np.ndarray
    granularity_factor: int

    def __post_init__(self) -> None:
        missing = [m for m in Mode if m not in self.models]
        if missing:
            raise ConfigurationError(
                f"predictor {self.name!r} missing models for {missing}"
            )
        if self.granularity_factor < 1:
            raise ConfigurationError(
                f"granularity_factor must be >= 1, got "
                f"{self.granularity_factor}"
            )

    def model_for(self, mode: Mode) -> Estimator:
        """The model that consumes telemetry recorded in ``mode``."""
        return self.models[mode]

    def predict_proba(self, x: np.ndarray, mode: Mode) -> np.ndarray:
        """Gating probability from counters recorded in ``mode``."""
        return self.models[mode].predict_proba(x)

    def predict(self, x: np.ndarray, mode: Mode) -> np.ndarray:
        """Binary gating decisions from counters recorded in ``mode``."""
        return self.models[mode].predict(x)

    @property
    def thresholds(self) -> dict[Mode, float]:
        """Current per-mode decision thresholds."""
        return {mode: model.decision_threshold
                for mode, model in self.models.items()}
