"""Global machine and experiment configuration.

Every tunable of the reproduced system lives here: the parameters of the
two-cluster scaled-Skylake core, the microcontroller's computation
budget, the SLA the paper targets, and the experiment scale knobs used
to shrink the paper's proprietary-scale datasets down to laptop scale.

The values mirror the paper wherever the paper states them:

* CPU: 2.0 GHz, 8-wide in high-performance mode (two 4-wide clusters),
  16,000 MIPS peak (Table 3 header).
* Microcontroller: 500 MHz, 1-wide, 500 MIPS, 50% of cycles safely
  available for inference (Section 3 / Table 3).
* SLA: low-power mode must retain ``P_SLA = 90%`` of high-performance
  IPC over ``T_SLA = 1 ms`` windows, guaranteed to 99% (Section 3.1).
* Low-power mode consumes ~35% less power on average (Section 3).
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import os

from repro.errors import ConfigurationError

#: Environment variable that scales dataset sizes for experiments.
#: ``1.0`` is the scaled default documented in EXPERIMENTS.md; larger
#: values approach the paper's original dataset sizes.
SCALE_ENV_VAR = "REPRO_SCALE"

#: Environment variable holding the global experiment seed.
SEED_ENV_VAR = "REPRO_SEED"

#: Default global seed; all experiments are deterministic given it.
DEFAULT_SEED = 7

#: Instructions per telemetry snapshot interval (Section 4.1).
BASE_INTERVAL_INSTRUCTIONS = 10_000

#: Environment variable bounding the interval model's in-process LRU
#: memo (entries, not bytes). One entry holds one trace x mode result.
INTERVAL_LRU_ENV_VAR = "REPRO_INTERVAL_LRU"

#: Default LRU bound when the environment does not override it.
DEFAULT_INTERVAL_LRU = 1024

#: Environment variable selecting the cycle-level kernel: ``soa`` (the
#: vectorized structure-of-arrays scoreboard, default) or ``reference``
#: (the original per-uop Python loop). Both are bit-identical; the
#: reference path exists as the ground truth the SoA kernel is
#: validated against.
CYCLE_KERNEL_ENV_VAR = "REPRO_CYCLE_KERNEL"

#: Recognised cycle-kernel names.
CYCLE_KERNELS = ("soa", "reference")

#: Environment variable gating the batch-simulation layer: ``1``
#: (default) enables stacked interval passes, chunked cache prewarming
#: and batched closed-loop inference; ``0`` selects the scalar per-
#: (trace, mode) paths exactly as they existed before the batch layer.
BATCH_SIM_ENV_VAR = "REPRO_BATCH_SIM"

#: Environment variable gating the zero-copy trace arena: ``1``
#: (default) lets process-backend fan-outs pack the trace corpus into a
#: memory-mapped segment that workers attach to by path, shrinking task
#: payloads to index lists; ``0`` ships full objects per task exactly
#: as before the arena existed.
EXEC_ARENA_ENV_VAR = "REPRO_EXEC_ARENA"

#: Environment variable forcing a fixed ParallelMap chunk size. Unset
#: (the default) selects the adaptive heuristic: chunks sized from the
#: stage's observed per-item cost, falling back to ~4 chunks/worker.
EXEC_CHUNK_ENV_VAR = "REPRO_EXEC_CHUNK"

#: Environment variable selecting worker-pool lifetime: ``persistent``
#: (default) keeps one warm pool per (backend, n_workers) for the life
#: of the process; ``fresh`` recreates a pool per map call (the
#: pre-arena behaviour, useful for benchmarking pool-churn cost).
EXEC_POOL_ENV_VAR = "REPRO_EXEC_POOL"

#: Environment variable bounding how many times ``ParallelMap`` retries
#: a failed chunk (worker crash, broken pool, task timeout) before
#: degrading to the next backend rung or raising a typed error.
EXEC_RETRIES_ENV_VAR = "REPRO_EXEC_RETRIES"

#: Default retry budget when the environment does not override it.
DEFAULT_EXEC_RETRIES = 2

#: Environment variable setting the per-task timeout (seconds) for
#: pool-backed dispatch. Unset or ``0`` disables timeouts (serial
#: execution is never preemptible and always ignores this).
EXEC_TIMEOUT_ENV_VAR = "REPRO_EXEC_TIMEOUT"

#: Environment variable holding a deterministic fault-injection spec
#: (see :class:`repro.exec.faults.FaultPlan`), e.g.
#: ``"seed=7,crash=0.05,corrupt_cache=0.1"``. Unset disables injection.
FAULT_SPEC_ENV_VAR = "REPRO_FAULT_SPEC"

#: Environment variable gating SimCache per-entry checksum
#: verification on read: ``1`` (default) verifies every loaded entry
#: against its stored digest; ``0`` skips verification (perf-overhead
#: benchmarking only — corrupt entries then surface only when the
#: container format itself fails to parse).
SIMCACHE_VERIFY_ENV_VAR = "REPRO_SIMCACHE_VERIFY"

#: Environment variable selecting the default execution backend.
EXEC_BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"

#: Environment variable selecting the default worker count (unset:
#: the CPU count at use time).
EXEC_WORKERS_ENV_VAR = "REPRO_EXEC_WORKERS"

#: Recognised execution backends, in increasing isolation order;
#: ``auto`` probes and picks between ``serial`` and ``process`` per
#: call. (:data:`repro.exec.parallel.BACKENDS` aliases this.)
EXEC_BACKENDS = ("serial", "thread", "process", "auto")

#: Environment variable pointing SimCache at its on-disk directory.
#: Unset disables the cache.
SIMCACHE_DIR_ENV_VAR = "REPRO_SIMCACHE_DIR"

#: Environment variable gating the span tracer (:mod:`repro.obs`):
#: unset or ``0`` disables tracing, ``1`` enables it with the default
#: output path, any other value enables it and names the trace file.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Environment variable gating shared-memory result return: ``1``
#: (default) lets process-backend fan-outs return large result arrays
#: through per-chunk mmap segments (descriptors instead of pickled
#: ndarrays); ``0`` is the kill-switch restoring fully pickled returns.
EXEC_SHMRES_ENV_VAR = "REPRO_EXEC_SHMRES"

#: Environment variable setting the corpus shard size (traces/cells
#: per shard) for the streaming dataset-scale entry points
#: (``build_mode_dataset``, ``AdaptiveCPU.run_many``,
#: ``screen_configs``). Unset disables sharding — the whole corpus is
#: one pass, the historical behaviour.
EXEC_SHARD_ENV_VAR = "REPRO_EXEC_SHARD"

#: Environment variable setting the tracer's 1-in-N span sampling rate
#: once the span buffer passes its sampling threshold (see
#: :mod:`repro.obs.tracer`). ``1`` stores every span up to the hard
#: cap (the pre-sampling behaviour).
TRACE_SAMPLE_ENV_VAR = "REPRO_TRACE_SAMPLE"

#: Default 1-in-N sampling rate above the tracer threshold.
DEFAULT_TRACE_SAMPLE = 8

#: Environment variable gating the tier-0 learned surrogate above
#: ``IntervalModel.simulate_batch`` (see :mod:`repro.surrogate`):
#: ``0`` (default) keeps every path exactly as before the surrogate
#: existed; ``1`` lets confidently-predicted (trace, mode) pairs skip
#: the interval-physics pass, with gated pairs falling back to the
#: interval tier bit-identically.
SURROGATE_ENV_VAR = "REPRO_SURROGATE"

#: Environment variable setting the surrogate confidence gate: the
#: maximum tolerated p95 relative ensemble disagreement on a pair's
#: predicted CPI before the pair falls back to the interval tier.
SURROGATE_THRESHOLD_ENV_VAR = "REPRO_SURROGATE_THRESHOLD"

#: Default confidence-gate threshold (relative disagreement).
DEFAULT_SURROGATE_THRESHOLD = 0.02

#: Environment variable sizing the surrogate's seeded probe corpus
#: (traces simulated through the interval tier to train the surrogate
#: and, held out, to validate its agreement).
SURROGATE_PROBES_ENV_VAR = "REPRO_SURROGATE_PROBES"

#: Default probe-corpus size (traces; one quarter is held out).
DEFAULT_SURROGATE_PROBES = 32

#: Environment variable bounding the serving daemon's micro-batch size:
#: the batcher flushes as soon as this many requests are pending.
SERVE_BATCH_MAX_ENV_VAR = "REPRO_SERVE_BATCH_MAX"

#: Default micro-batch bound.
DEFAULT_SERVE_BATCH_MAX = 8

#: Environment variable setting how long (microseconds) the serving
#: batcher holds an under-full batch open waiting for co-arrivals
#: before flushing. ``0`` flushes batches as the executor frees up.
SERVE_BATCH_WAIT_ENV_VAR = "REPRO_SERVE_BATCH_WAIT_US"

#: Default batch hold time (µs).
DEFAULT_SERVE_BATCH_WAIT_US = 2000

#: Environment variable bounding the serving daemon's admission queue:
#: requests beyond this depth are shed with a typed ``busy`` response.
SERVE_QUEUE_BOUND_ENV_VAR = "REPRO_SERVE_QUEUE_BOUND"

#: Default admission-queue bound.
DEFAULT_SERVE_QUEUE_BOUND = 64

#: Environment variable bounding how long (seconds) one serve batch may
#: stay in flight before the supervisor fails its requests with a typed
#: ``BatchTimeoutError`` and restarts the batcher.
SERVE_BATCH_TIMEOUT_ENV_VAR = "REPRO_SERVE_BATCH_TIMEOUT"

#: Default in-flight batch timeout (seconds).
DEFAULT_SERVE_BATCH_TIMEOUT_S = 30.0

#: Environment variable setting how many consecutive batch failures of
#: one serve op trip the circuit breaker one degradation rung (batched
#: -> serial per-request -> shed-with-retry-after).
SERVE_BREAKER_THRESHOLD_ENV_VAR = "REPRO_SERVE_BREAKER_THRESHOLD"

#: Default breaker failure threshold.
DEFAULT_SERVE_BREAKER_THRESHOLD = 3

#: Environment variable setting the breaker cooldown (seconds): how
#: long a tripped breaker stays open before a half-open probe request
#: is allowed through the less-degraded path.
SERVE_BREAKER_COOLDOWN_ENV_VAR = "REPRO_SERVE_BREAKER_COOLDOWN"

#: Default breaker cooldown (seconds).
DEFAULT_SERVE_BREAKER_COOLDOWN_S = 1.0

#: Environment variable pointing the serving daemon at its warm-state
#: checkpoint file (trained predictor + corpus fingerprint, CRC
#: validated). Unset disables checkpointing.
SERVE_CHECKPOINT_ENV_VAR = "REPRO_SERVE_CHECKPOINT"

#: Environment variable bounding how many times ``repro serve
#: --supervise`` re-execs a crashed daemon before giving up.
SERVE_RESTARTS_ENV_VAR = "REPRO_SERVE_RESTARTS"

#: Default supervised-restart budget.
DEFAULT_SERVE_RESTARTS = 3

#: Environment variable gating the continual-adaptation subsystem
#: (:mod:`repro.online`): ``0`` (default) serves the startup predictor
#: forever, exactly as before the subsystem existed; ``1`` samples
#: served telemetry into a ring buffer, watches it for drift, retrains
#: candidates in the background and hot-swaps them behind the shadow
#: gate.
ONLINE_ENV_VAR = "REPRO_ONLINE"

#: Environment variable sizing the online telemetry ring buffer
#: (sampled entries retained; fixed-dtype, preallocated).
ONLINE_RING_ENV_VAR = "REPRO_ONLINE_RING"

#: Default ring capacity.
DEFAULT_ONLINE_RING = 2048

#: Environment variable setting the online ring's deterministic 1-in-N
#: request sampling rate. ``1`` samples every served request.
ONLINE_SAMPLE_ENV_VAR = "REPRO_ONLINE_SAMPLE"

#: Default online sampling rate (every request).
DEFAULT_ONLINE_SAMPLE = 1

#: Environment variable sizing the drift detector's comparison window
#: (sampled adapt entries per window).
ONLINE_DRIFT_WINDOW_ENV_VAR = "REPRO_ONLINE_DRIFT_WINDOW"

#: Default drift window (entries).
DEFAULT_ONLINE_DRIFT_WINDOW = 64

#: Environment variable setting the population-stability-index score
#: above which the drift detector trips a ``DriftSignal``.
ONLINE_DRIFT_THRESHOLD_ENV_VAR = "REPRO_ONLINE_DRIFT_THRESHOLD"

#: Default PSI drift threshold.
DEFAULT_ONLINE_DRIFT_THRESHOLD = 0.25

#: Environment variable setting how often (seconds) the background
#: learner polls the ring for drift.
ONLINE_INTERVAL_ENV_VAR = "REPRO_ONLINE_INTERVAL_S"

#: Default learner poll interval (seconds).
DEFAULT_ONLINE_INTERVAL_S = 2.0


# ---------------------------------------------------------------------
# Raw environment parsers. Each reads exactly one knob and raises the
# historical per-variable error message; :meth:`ExecConfig.from_env`
# is their only caller.
# ---------------------------------------------------------------------
def _env_interval_lru() -> int:
    raw = os.environ.get(INTERVAL_LRU_ENV_VAR, str(DEFAULT_INTERVAL_LRU))
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{INTERVAL_LRU_ENV_VAR} must be an int, got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(
            f"{INTERVAL_LRU_ENV_VAR} must be >= 1, got {value}"
        )
    return value


def _env_cycle_kernel() -> str:
    value = os.environ.get(CYCLE_KERNEL_ENV_VAR, "soa")
    if value not in CYCLE_KERNELS:
        raise ValueError(
            f"{CYCLE_KERNEL_ENV_VAR} must be one of {CYCLE_KERNELS}, "
            f"got {value!r}"
        )
    return value


def _env_flag(var: str, default: str) -> bool:
    value = os.environ.get(var, default)
    if value not in ("0", "1"):
        raise ValueError(f"{var} must be '0' or '1', got {value!r}")
    return value == "1"


def _env_backend() -> str:
    value = os.environ.get(EXEC_BACKEND_ENV_VAR, "serial")
    if value not in EXEC_BACKENDS:
        raise ConfigurationError(
            f"unknown exec backend {value!r}; expected one of "
            f"{EXEC_BACKENDS}"
        )
    return value


def _env_workers() -> int | None:
    raw = os.environ.get(EXEC_WORKERS_ENV_VAR)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{EXEC_WORKERS_ENV_VAR} must be an int, got {raw!r}"
        ) from exc
    if value < 1:
        raise ConfigurationError(
            f"n_workers must be >= 1, got {value}"
        )
    return value


def _env_chunk() -> int | None:
    raw = os.environ.get(EXEC_CHUNK_ENV_VAR)
    if raw is None or raw == "":
        return None
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{EXEC_CHUNK_ENV_VAR} must be an int, got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(f"{EXEC_CHUNK_ENV_VAR} must be >= 1, got {value}")
    return value


def _env_retries() -> int:
    raw = os.environ.get(EXEC_RETRIES_ENV_VAR, str(DEFAULT_EXEC_RETRIES))
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{EXEC_RETRIES_ENV_VAR} must be an int, got {raw!r}"
        ) from exc
    if value < 0:
        raise ValueError(
            f"{EXEC_RETRIES_ENV_VAR} must be >= 0, got {value}"
        )
    return value


def _env_timeout() -> float | None:
    raw = os.environ.get(EXEC_TIMEOUT_ENV_VAR)
    if raw is None or raw == "":
        return None
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"{EXEC_TIMEOUT_ENV_VAR} must be a float, got {raw!r}"
        ) from exc
    if value < 0:
        raise ValueError(
            f"{EXEC_TIMEOUT_ENV_VAR} must be >= 0, got {value}"
        )
    return value if value > 0 else None


def _env_pool() -> str:
    value = os.environ.get(EXEC_POOL_ENV_VAR, "persistent")
    if value not in ("persistent", "fresh"):
        raise ValueError(
            f"{EXEC_POOL_ENV_VAR} must be 'persistent' or 'fresh', "
            f"got {value!r}"
        )
    return value


def _env_optional(var: str) -> str | None:
    raw = os.environ.get(var)
    return raw if raw else None


def _env_trace() -> str | None:
    raw = os.environ.get(TRACE_ENV_VAR)
    if raw is None or raw in ("", "0"):
        return None
    return raw


def _env_shard() -> int | None:
    raw = os.environ.get(EXEC_SHARD_ENV_VAR)
    if raw is None or raw == "":
        return None
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{EXEC_SHARD_ENV_VAR} must be an int, got {raw!r}"
        ) from exc
    if value < 0:
        raise ValueError(f"{EXEC_SHARD_ENV_VAR} must be >= 0, got {value}")
    return value if value > 0 else None


def _env_trace_sample() -> int:
    raw = os.environ.get(TRACE_SAMPLE_ENV_VAR,
                         str(DEFAULT_TRACE_SAMPLE))
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{TRACE_SAMPLE_ENV_VAR} must be an int, got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(
            f"{TRACE_SAMPLE_ENV_VAR} must be >= 1, got {value}"
        )
    return value


def _env_surrogate_threshold() -> float:
    raw = os.environ.get(SURROGATE_THRESHOLD_ENV_VAR,
                         str(DEFAULT_SURROGATE_THRESHOLD))
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"{SURROGATE_THRESHOLD_ENV_VAR} must be a float, got {raw!r}"
        ) from exc
    if value <= 0:
        raise ValueError(
            f"{SURROGATE_THRESHOLD_ENV_VAR} must be > 0, got {value}"
        )
    return value


def _env_surrogate_probes() -> int:
    raw = os.environ.get(SURROGATE_PROBES_ENV_VAR,
                         str(DEFAULT_SURROGATE_PROBES))
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{SURROGATE_PROBES_ENV_VAR} must be an int, got {raw!r}"
        ) from exc
    if value < 8:
        raise ValueError(
            f"{SURROGATE_PROBES_ENV_VAR} must be >= 8 (the probe "
            f"corpus is split into train and held-out parts), got {value}"
        )
    return value


def _env_bounded_int(var: str, default: int, minimum: int) -> int:
    raw = os.environ.get(var, str(default))
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"{var} must be an int, got {raw!r}") from exc
    if value < minimum:
        raise ValueError(f"{var} must be >= {minimum}, got {value}")
    return value


def _env_positive_float(var: str, default: float) -> float:
    raw = os.environ.get(var, repr(default))
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"{var} must be a float, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"{var} must be > 0, got {value}")
    return value


#: Every environment variable :meth:`ExecConfig.from_env` consumes, in
#: the order its memo key is built.
EXEC_ENV_VARS = (
    EXEC_BACKEND_ENV_VAR,
    EXEC_WORKERS_ENV_VAR,
    EXEC_POOL_ENV_VAR,
    EXEC_ARENA_ENV_VAR,
    EXEC_SHMRES_ENV_VAR,
    EXEC_SHARD_ENV_VAR,
    EXEC_CHUNK_ENV_VAR,
    EXEC_RETRIES_ENV_VAR,
    EXEC_TIMEOUT_ENV_VAR,
    SIMCACHE_DIR_ENV_VAR,
    SIMCACHE_VERIFY_ENV_VAR,
    FAULT_SPEC_ENV_VAR,
    CYCLE_KERNEL_ENV_VAR,
    BATCH_SIM_ENV_VAR,
    INTERVAL_LRU_ENV_VAR,
    TRACE_ENV_VAR,
    TRACE_SAMPLE_ENV_VAR,
    SURROGATE_ENV_VAR,
    SURROGATE_THRESHOLD_ENV_VAR,
    SURROGATE_PROBES_ENV_VAR,
    SERVE_BATCH_MAX_ENV_VAR,
    SERVE_BATCH_WAIT_ENV_VAR,
    SERVE_QUEUE_BOUND_ENV_VAR,
    SERVE_BATCH_TIMEOUT_ENV_VAR,
    SERVE_BREAKER_THRESHOLD_ENV_VAR,
    SERVE_BREAKER_COOLDOWN_ENV_VAR,
    SERVE_CHECKPOINT_ENV_VAR,
    SERVE_RESTARTS_ENV_VAR,
    ONLINE_ENV_VAR,
    ONLINE_RING_ENV_VAR,
    ONLINE_SAMPLE_ENV_VAR,
    ONLINE_DRIFT_WINDOW_ENV_VAR,
    ONLINE_DRIFT_THRESHOLD_ENV_VAR,
    ONLINE_INTERVAL_ENV_VAR,
)

# ``ExecConfig.from_env`` is memoized on the raw environment strings;
# building that key through ``os.environ.get`` re-encodes every
# variable name per lookup, which dominates hot paths that read the
# active config per (trace, mode) pair. Reading the underlying data
# mapping with pre-encoded names is ~20x cheaper and sees exactly the
# same state (``os.environ`` mutations update ``_data`` in place).
_ENV_DATA = getattr(os.environ, "_data", None)
_ENV_KEYS = (tuple(os.environ.encodekey(var) for var in EXEC_ENV_VARS)
             if _ENV_DATA is not None and hasattr(os.environ, "encodekey")
             else None)


def _env_memo_key() -> tuple:
    if _ENV_KEYS is not None:
        return tuple(map(_ENV_DATA.get, _ENV_KEYS))
    return tuple(os.environ.get(var) for var in EXEC_ENV_VARS)


@dataclasses.dataclass(frozen=True)
class ServeView:
    """Typed sub-view of the serving-daemon knobs.

    Call sites read ``active_exec_config().serve.batch_max`` instead of
    string-indexing the flat ``serve_*`` attribute zoo; the flat names
    remain as deprecated shims.
    """

    batch_max: int
    batch_wait_us: int
    queue_bound: int
    batch_timeout_s: float
    breaker_threshold: int
    breaker_cooldown_s: float
    checkpoint: str | None
    restarts: int


@dataclasses.dataclass(frozen=True)
class FaultsView:
    """Typed sub-view of the resilience / fault-injection knobs."""

    spec: str | None
    retries: int
    timeout: float | None
    simcache_verify: bool


@dataclasses.dataclass(frozen=True)
class OnlineView:
    """Typed sub-view of the continual-adaptation knobs."""

    enabled: bool
    ring: int
    sample: int
    drift_window: int
    drift_threshold: float
    interval_s: float


@dataclasses.dataclass(frozen=True)
class ExecConfig:
    """The typed face of every runtime knob the engine reads.

    One frozen value object replaces ~15 scattered ``os.environ``
    reads: build it with :meth:`from_env` (the environment variables
    keep working), :meth:`from_cli` (CLI flags layered over the
    environment) or directly, and install it for a scope with
    :meth:`override`. Internal call sites read the active config via
    the module-level accessor functions (``cycle_kernel()``,
    ``exec_retries()``, ...), which are now thin shims over
    :func:`active_exec_config`.

    ``None`` means "engine default decided at use time": ``workers``
    falls back to the CPU count, ``chunk`` to adaptive sizing,
    ``timeout``/``fault_spec``/``simcache_dir``/``trace`` to off.
    """

    backend: str = "serial"
    workers: int | None = None
    pool: str = "persistent"
    arena: bool = True
    shmres: bool = True
    shard: int | None = None
    chunk: int | None = None
    retries: int = DEFAULT_EXEC_RETRIES
    timeout: float | None = None
    simcache_dir: str | None = None
    simcache_verify: bool = True
    fault_spec: str | None = None
    cycle_kernel: str = "soa"
    batch_sim: bool = True
    interval_lru: int = DEFAULT_INTERVAL_LRU
    trace: str | None = None
    trace_sample: int = DEFAULT_TRACE_SAMPLE
    surrogate: bool = False
    surrogate_threshold: float = DEFAULT_SURROGATE_THRESHOLD
    surrogate_probes: int = DEFAULT_SURROGATE_PROBES
    serve_batch_max: int = DEFAULT_SERVE_BATCH_MAX
    serve_batch_wait_us: int = DEFAULT_SERVE_BATCH_WAIT_US
    serve_queue_bound: int = DEFAULT_SERVE_QUEUE_BOUND
    serve_batch_timeout_s: float = DEFAULT_SERVE_BATCH_TIMEOUT_S
    serve_breaker_threshold: int = DEFAULT_SERVE_BREAKER_THRESHOLD
    serve_breaker_cooldown_s: float = DEFAULT_SERVE_BREAKER_COOLDOWN_S
    serve_checkpoint: str | None = None
    serve_restarts: int = DEFAULT_SERVE_RESTARTS
    online_enabled: bool = False
    online_ring: int = DEFAULT_ONLINE_RING
    online_sample: int = DEFAULT_ONLINE_SAMPLE
    online_drift_window: int = DEFAULT_ONLINE_DRIFT_WINDOW
    online_drift_threshold: float = DEFAULT_ONLINE_DRIFT_THRESHOLD
    online_interval_s: float = DEFAULT_ONLINE_INTERVAL_S

    def __post_init__(self) -> None:
        if self.backend not in EXEC_BACKENDS:
            raise ConfigurationError(
                f"unknown exec backend {self.backend!r}; expected one "
                f"of {EXEC_BACKENDS}"
            )
        if self.pool not in ("persistent", "fresh"):
            raise ValueError(
                f"pool must be 'persistent' or 'fresh', got {self.pool!r}"
            )
        if self.cycle_kernel not in CYCLE_KERNELS:
            raise ValueError(
                f"cycle_kernel must be one of {CYCLE_KERNELS}, "
                f"got {self.cycle_kernel!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.workers}"
            )
        if self.chunk is not None and self.chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {self.chunk}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.interval_lru < 1:
            raise ValueError(
                f"interval_lru must be >= 1, got {self.interval_lru}"
            )
        if self.shard is not None and self.shard < 1:
            raise ValueError(f"shard must be >= 1, got {self.shard}")
        if self.trace_sample < 1:
            raise ValueError(
                f"trace_sample must be >= 1, got {self.trace_sample}"
            )
        if self.surrogate_threshold <= 0:
            raise ValueError(
                f"surrogate_threshold must be > 0, "
                f"got {self.surrogate_threshold}"
            )
        if self.surrogate_probes < 8:
            raise ValueError(
                f"surrogate_probes must be >= 8, got {self.surrogate_probes}"
            )
        if self.serve_batch_max < 1:
            raise ValueError(
                f"serve_batch_max must be >= 1, got {self.serve_batch_max}"
            )
        if self.serve_batch_wait_us < 0:
            raise ValueError(
                f"serve_batch_wait_us must be >= 0, "
                f"got {self.serve_batch_wait_us}"
            )
        if self.serve_queue_bound < 1:
            raise ValueError(
                f"serve_queue_bound must be >= 1, "
                f"got {self.serve_queue_bound}"
            )
        if self.serve_batch_timeout_s <= 0:
            raise ValueError(
                f"serve_batch_timeout_s must be > 0, "
                f"got {self.serve_batch_timeout_s}"
            )
        if self.serve_breaker_threshold < 1:
            raise ValueError(
                f"serve_breaker_threshold must be >= 1, "
                f"got {self.serve_breaker_threshold}"
            )
        if self.serve_breaker_cooldown_s <= 0:
            raise ValueError(
                f"serve_breaker_cooldown_s must be > 0, "
                f"got {self.serve_breaker_cooldown_s}"
            )
        if self.serve_restarts < 0:
            raise ValueError(
                f"serve_restarts must be >= 0, got {self.serve_restarts}"
            )
        if self.online_ring < 8:
            raise ValueError(
                f"online_ring must be >= 8, got {self.online_ring}"
            )
        if self.online_sample < 1:
            raise ValueError(
                f"online_sample must be >= 1, got {self.online_sample}"
            )
        if self.online_drift_window < 8:
            raise ValueError(
                f"online_drift_window must be >= 8, "
                f"got {self.online_drift_window}"
            )
        if self.online_drift_threshold <= 0:
            raise ValueError(
                f"online_drift_threshold must be > 0, "
                f"got {self.online_drift_threshold}"
            )
        if self.online_interval_s <= 0:
            raise ValueError(
                f"online_interval_s must be > 0, "
                f"got {self.online_interval_s}"
            )

    # ------------------------------------------------------------------
    # Typed sub-views. ``functools.cached_property`` writes straight to
    # the instance ``__dict__``, which bypasses the frozen-dataclass
    # ``__setattr__`` — so the views are computed once per config and
    # the config itself stays immutable.
    # ------------------------------------------------------------------
    @functools.cached_property
    def serve(self) -> ServeView:
        """The serving-daemon knobs, as one typed view."""
        return ServeView(
            batch_max=self.serve_batch_max,
            batch_wait_us=self.serve_batch_wait_us,
            queue_bound=self.serve_queue_bound,
            batch_timeout_s=self.serve_batch_timeout_s,
            breaker_threshold=self.serve_breaker_threshold,
            breaker_cooldown_s=self.serve_breaker_cooldown_s,
            checkpoint=self.serve_checkpoint,
            restarts=self.serve_restarts,
        )

    @functools.cached_property
    def faults(self) -> FaultsView:
        """The resilience / fault-injection knobs, as one typed view."""
        return FaultsView(
            spec=self.fault_spec,
            retries=self.retries,
            timeout=self.timeout,
            simcache_verify=self.simcache_verify,
        )

    @functools.cached_property
    def online(self) -> OnlineView:
        """The continual-adaptation knobs, as one typed view."""
        return OnlineView(
            enabled=self.online_enabled,
            ring=self.online_ring,
            sample=self.online_sample,
            drift_window=self.online_drift_window,
            drift_threshold=self.online_drift_threshold,
            interval_s=self.online_interval_s,
        )

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls) -> "ExecConfig":
        """Parse every ``REPRO_*`` engine knob into one config.

        Memoized on the raw environment strings, so repeated calls on
        an unchanged environment are a tuple compare — and a
        monkeypatched environment (tests) is picked up immediately.
        Invalid values raise the same per-variable errors the old
        accessor functions raised.
        """
        global _FROM_ENV_CACHE
        key = _env_memo_key()
        cached = _FROM_ENV_CACHE
        if cached is not None and cached[0] == key:
            return cached[1]
        config = cls(
            backend=_env_backend(),
            workers=_env_workers(),
            pool=_env_pool(),
            arena=_env_flag(EXEC_ARENA_ENV_VAR, "1"),
            shmres=_env_flag(EXEC_SHMRES_ENV_VAR, "1"),
            shard=_env_shard(),
            chunk=_env_chunk(),
            retries=_env_retries(),
            timeout=_env_timeout(),
            simcache_dir=_env_optional(SIMCACHE_DIR_ENV_VAR),
            simcache_verify=_env_flag(SIMCACHE_VERIFY_ENV_VAR, "1"),
            fault_spec=_env_optional(FAULT_SPEC_ENV_VAR),
            cycle_kernel=_env_cycle_kernel(),
            batch_sim=_env_flag(BATCH_SIM_ENV_VAR, "1"),
            interval_lru=_env_interval_lru(),
            trace=_env_trace(),
            trace_sample=_env_trace_sample(),
            surrogate=_env_flag(SURROGATE_ENV_VAR, "0"),
            surrogate_threshold=_env_surrogate_threshold(),
            surrogate_probes=_env_surrogate_probes(),
            serve_batch_max=_env_bounded_int(
                SERVE_BATCH_MAX_ENV_VAR, DEFAULT_SERVE_BATCH_MAX, 1),
            serve_batch_wait_us=_env_bounded_int(
                SERVE_BATCH_WAIT_ENV_VAR, DEFAULT_SERVE_BATCH_WAIT_US, 0),
            serve_queue_bound=_env_bounded_int(
                SERVE_QUEUE_BOUND_ENV_VAR, DEFAULT_SERVE_QUEUE_BOUND, 1),
            serve_batch_timeout_s=_env_positive_float(
                SERVE_BATCH_TIMEOUT_ENV_VAR,
                DEFAULT_SERVE_BATCH_TIMEOUT_S),
            serve_breaker_threshold=_env_bounded_int(
                SERVE_BREAKER_THRESHOLD_ENV_VAR,
                DEFAULT_SERVE_BREAKER_THRESHOLD, 1),
            serve_breaker_cooldown_s=_env_positive_float(
                SERVE_BREAKER_COOLDOWN_ENV_VAR,
                DEFAULT_SERVE_BREAKER_COOLDOWN_S),
            serve_checkpoint=_env_optional(SERVE_CHECKPOINT_ENV_VAR),
            serve_restarts=_env_bounded_int(
                SERVE_RESTARTS_ENV_VAR, DEFAULT_SERVE_RESTARTS, 0),
            online_enabled=_env_flag(ONLINE_ENV_VAR, "0"),
            online_ring=_env_bounded_int(
                ONLINE_RING_ENV_VAR, DEFAULT_ONLINE_RING, 8),
            online_sample=_env_bounded_int(
                ONLINE_SAMPLE_ENV_VAR, DEFAULT_ONLINE_SAMPLE, 1),
            online_drift_window=_env_bounded_int(
                ONLINE_DRIFT_WINDOW_ENV_VAR,
                DEFAULT_ONLINE_DRIFT_WINDOW, 8),
            online_drift_threshold=_env_positive_float(
                ONLINE_DRIFT_THRESHOLD_ENV_VAR,
                DEFAULT_ONLINE_DRIFT_THRESHOLD),
            online_interval_s=_env_positive_float(
                ONLINE_INTERVAL_ENV_VAR, DEFAULT_ONLINE_INTERVAL_S),
        )
        _FROM_ENV_CACHE = (key, config)
        return config

    @classmethod
    def from_cli(cls, args) -> "ExecConfig":
        """Environment config with CLI flags layered on top.

        ``args`` is an ``argparse.Namespace`` (missing attributes are
        simply ignored, so any subcommand's namespace works). A flag
        left at its ``None`` default keeps the environment's value.
        """
        config = cls.from_env()
        updates: dict[str, object] = {}
        for attr, field in (("exec_backend", "backend"),
                            ("exec_workers", "workers"),
                            ("exec_chunk", "chunk"),
                            ("exec_retries", "retries"),
                            ("exec_shard", "shard"),
                            ("fault_spec", "fault_spec"),
                            ("trace", "trace"),
                            ("surrogate_threshold", "surrogate_threshold"),
                            ("surrogate_probes", "surrogate_probes"),
                            ("serve_batch_max", "serve_batch_max"),
                            ("serve_batch_wait_us", "serve_batch_wait_us"),
                            ("serve_queue_bound", "serve_queue_bound"),
                            ("serve_batch_timeout", "serve_batch_timeout_s"),
                            ("serve_checkpoint", "serve_checkpoint"),
                            ("serve_restarts", "serve_restarts"),
                            ("online_ring", "online_ring"),
                            ("online_sample", "online_sample"),
                            ("online_drift_window", "online_drift_window"),
                            ("online_drift_threshold",
                             "online_drift_threshold"),
                            ("online_interval_s", "online_interval_s")):
            value = getattr(args, attr, None)
            if value is not None:
                updates[field] = value
        surrogate = getattr(args, "surrogate", None)
        if surrogate is not None:
            updates["surrogate"] = bool(surrogate)
        online = getattr(args, "online", None)
        if online is not None:
            updates["online_enabled"] = bool(online)
        arena = getattr(args, "exec_arena", None)
        if arena is not None:
            updates["arena"] = bool(arena)
        shmres = getattr(args, "exec_shmres", None)
        if shmres is not None:
            updates["shmres"] = bool(shmres)
        timeout = getattr(args, "exec_timeout", None)
        if timeout is not None:
            updates["timeout"] = timeout if timeout > 0 else None
        return dataclasses.replace(config, **updates) if updates else config

    def replace(self, **changes) -> "ExecConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Round-tripping.
    # ------------------------------------------------------------------
    def to_env(self) -> dict[str, str | None]:
        """Environment-variable image of this config.

        ``None`` values mean "unset the variable". The mapping
        round-trips: applying it and calling :meth:`from_env` yields
        a config equal to this one.
        """
        return {
            EXEC_BACKEND_ENV_VAR: self.backend,
            EXEC_WORKERS_ENV_VAR:
                None if self.workers is None else str(self.workers),
            EXEC_POOL_ENV_VAR: self.pool,
            EXEC_ARENA_ENV_VAR: "1" if self.arena else "0",
            EXEC_SHMRES_ENV_VAR: "1" if self.shmres else "0",
            EXEC_SHARD_ENV_VAR:
                None if self.shard is None else str(self.shard),
            EXEC_CHUNK_ENV_VAR:
                None if self.chunk is None else str(self.chunk),
            EXEC_RETRIES_ENV_VAR: str(self.retries),
            EXEC_TIMEOUT_ENV_VAR:
                None if self.timeout is None else repr(self.timeout),
            SIMCACHE_DIR_ENV_VAR: self.simcache_dir,
            SIMCACHE_VERIFY_ENV_VAR: "1" if self.simcache_verify else "0",
            FAULT_SPEC_ENV_VAR: self.fault_spec,
            CYCLE_KERNEL_ENV_VAR: self.cycle_kernel,
            BATCH_SIM_ENV_VAR: "1" if self.batch_sim else "0",
            INTERVAL_LRU_ENV_VAR: str(self.interval_lru),
            TRACE_ENV_VAR: self.trace,
            TRACE_SAMPLE_ENV_VAR: str(self.trace_sample),
            SURROGATE_ENV_VAR: "1" if self.surrogate else "0",
            SURROGATE_THRESHOLD_ENV_VAR: repr(self.surrogate_threshold),
            SURROGATE_PROBES_ENV_VAR: str(self.surrogate_probes),
            SERVE_BATCH_MAX_ENV_VAR: str(self.serve_batch_max),
            SERVE_BATCH_WAIT_ENV_VAR: str(self.serve_batch_wait_us),
            SERVE_QUEUE_BOUND_ENV_VAR: str(self.serve_queue_bound),
            SERVE_BATCH_TIMEOUT_ENV_VAR: repr(self.serve_batch_timeout_s),
            SERVE_BREAKER_THRESHOLD_ENV_VAR:
                str(self.serve_breaker_threshold),
            SERVE_BREAKER_COOLDOWN_ENV_VAR:
                repr(self.serve_breaker_cooldown_s),
            SERVE_CHECKPOINT_ENV_VAR: self.serve_checkpoint,
            SERVE_RESTARTS_ENV_VAR: str(self.serve_restarts),
            ONLINE_ENV_VAR: "1" if self.online_enabled else "0",
            ONLINE_RING_ENV_VAR: str(self.online_ring),
            ONLINE_SAMPLE_ENV_VAR: str(self.online_sample),
            ONLINE_DRIFT_WINDOW_ENV_VAR: str(self.online_drift_window),
            ONLINE_DRIFT_THRESHOLD_ENV_VAR:
                repr(self.online_drift_threshold),
            ONLINE_INTERVAL_ENV_VAR: repr(self.online_interval_s),
        }

    def apply_env(self) -> None:
        """Write this config into ``os.environ``.

        The one sanctioned way to make a config visible to *process
        pool workers*, which inherit the environment but not this
        process's :func:`install_exec_config` state.
        """
        for var, value in self.to_env().items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value

    # ------------------------------------------------------------------
    # Scoped installation.
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def override(self):
        """Install this config as the process-local active config for
        a ``with`` block (the environment is untouched — use
        :meth:`apply_env` when process-pool workers must see it too).
        """
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous


_FROM_ENV_CACHE: tuple[tuple, ExecConfig] | None = None
_ACTIVE: ExecConfig | None = None


def active_exec_config() -> ExecConfig:
    """The installed :class:`ExecConfig`, else :meth:`ExecConfig.from_env`."""
    if _ACTIVE is not None:
        return _ACTIVE
    return ExecConfig.from_env()


def install_exec_config(config: ExecConfig | None) -> None:
    """Install (or with ``None`` clear) the process-wide active config."""
    global _ACTIVE
    _ACTIVE = config


def experiment_scale() -> float:
    """Return the dataset scale factor from ``REPRO_SCALE`` (default 1.0)."""
    raw = os.environ.get(SCALE_ENV_VAR, "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"{SCALE_ENV_VAR} must be a float, got {raw!r}"
        ) from exc
    if value <= 0:
        raise ValueError(f"{SCALE_ENV_VAR} must be positive, got {value}")
    return value


# ---------------------------------------------------------------------
# Knob accessors. Each is a deprecated thin shim over the active
# :class:`ExecConfig`: the environment variables keep working (through
# ``ExecConfig.from_env``), but new code should read
# ``active_exec_config().<field>`` directly.
# ---------------------------------------------------------------------
def interval_lru_size() -> int:
    """LRU memo bound from ``REPRO_INTERVAL_LRU`` (default 1024).

    .. deprecated:: read ``active_exec_config().interval_lru``.
    """
    return active_exec_config().interval_lru


def cycle_kernel() -> str:
    """Selected cycle-level kernel from ``REPRO_CYCLE_KERNEL``.

    .. deprecated:: read ``active_exec_config().cycle_kernel``.
    """
    return active_exec_config().cycle_kernel


def batch_sim_enabled() -> bool:
    """Whether the batch-simulation layer is on (``REPRO_BATCH_SIM``).

    .. deprecated:: read ``active_exec_config().batch_sim``.
    """
    return active_exec_config().batch_sim


def exec_arena_enabled() -> bool:
    """Whether the zero-copy trace arena is on (``REPRO_EXEC_ARENA``).

    .. deprecated:: read ``active_exec_config().arena``.
    """
    return active_exec_config().arena


def exec_shmres_enabled() -> bool:
    """Whether shared-memory result return is on (``REPRO_EXEC_SHMRES``).

    .. deprecated:: read ``active_exec_config().shmres``.
    """
    return active_exec_config().shmres


def exec_shard_size() -> int | None:
    """Corpus shard size from ``REPRO_EXEC_SHARD``, or None for one pass.

    .. deprecated:: read ``active_exec_config().shard``.
    """
    return active_exec_config().shard


def trace_sample_rate() -> int:
    """Tracer 1-in-N sampling rate from ``REPRO_TRACE_SAMPLE``.

    .. deprecated:: read ``active_exec_config().trace_sample``.
    """
    return active_exec_config().trace_sample


def surrogate_enabled() -> bool:
    """Whether the tier-0 learned surrogate is on (``REPRO_SURROGATE``)."""
    return active_exec_config().surrogate


def surrogate_threshold() -> float:
    """Confidence-gate disagreement threshold
    (``REPRO_SURROGATE_THRESHOLD``)."""
    return active_exec_config().surrogate_threshold


def surrogate_probes() -> int:
    """Probe-corpus size for surrogate training
    (``REPRO_SURROGATE_PROBES``)."""
    return active_exec_config().surrogate_probes


def serve_batch_max() -> int:
    """Serving micro-batch bound (``REPRO_SERVE_BATCH_MAX``)."""
    return active_exec_config().serve_batch_max


def serve_batch_wait_us() -> int:
    """Serving batch hold time in µs (``REPRO_SERVE_BATCH_WAIT_US``)."""
    return active_exec_config().serve_batch_wait_us


def serve_queue_bound() -> int:
    """Serving admission-queue bound (``REPRO_SERVE_QUEUE_BOUND``)."""
    return active_exec_config().serve_queue_bound


def serve_batch_timeout_s() -> float:
    """In-flight serve batch timeout in s (``REPRO_SERVE_BATCH_TIMEOUT``)."""
    return active_exec_config().serve_batch_timeout_s


def serve_breaker_threshold() -> int:
    """Breaker failure threshold (``REPRO_SERVE_BREAKER_THRESHOLD``)."""
    return active_exec_config().serve_breaker_threshold


def serve_breaker_cooldown_s() -> float:
    """Breaker cooldown in s (``REPRO_SERVE_BREAKER_COOLDOWN``)."""
    return active_exec_config().serve_breaker_cooldown_s


def serve_checkpoint_path() -> str | None:
    """Warm-state checkpoint path (``REPRO_SERVE_CHECKPOINT``), or None."""
    return active_exec_config().serve_checkpoint


def serve_restarts() -> int:
    """Supervised-restart budget (``REPRO_SERVE_RESTARTS``)."""
    return active_exec_config().serve_restarts


def online_enabled() -> bool:
    """Whether continual adaptation is on (``REPRO_ONLINE``).

    .. deprecated:: read ``active_exec_config().online.enabled``.
    """
    return active_exec_config().online_enabled


def exec_chunk_size() -> int | None:
    """Fixed chunk size from ``REPRO_EXEC_CHUNK``, or None for adaptive.

    .. deprecated:: read ``active_exec_config().chunk``.
    """
    return active_exec_config().chunk


def exec_retries() -> int:
    """Chunk retry budget from ``REPRO_EXEC_RETRIES`` (default 2).

    .. deprecated:: read ``active_exec_config().retries``.
    """
    return active_exec_config().retries


def exec_timeout() -> float | None:
    """Per-task timeout (s) from ``REPRO_EXEC_TIMEOUT`` (default off).

    .. deprecated:: read ``active_exec_config().timeout``.
    """
    return active_exec_config().timeout


def simcache_verify_enabled() -> bool:
    """Whether SimCache verifies checksums (``REPRO_SIMCACHE_VERIFY``).

    .. deprecated:: read ``active_exec_config().simcache_verify``.
    """
    return active_exec_config().simcache_verify


def exec_pool_persistent() -> bool:
    """Whether worker pools persist across map calls (``REPRO_EXEC_POOL``).

    .. deprecated:: read ``active_exec_config().pool``.
    """
    return active_exec_config().pool == "persistent"


def exec_backend() -> str:
    """Default execution backend from ``REPRO_EXEC_BACKEND``.

    .. deprecated:: read ``active_exec_config().backend``.
    """
    return active_exec_config().backend


def exec_workers() -> int | None:
    """Default worker count from ``REPRO_EXEC_WORKERS`` (None: CPU count).

    .. deprecated:: read ``active_exec_config().workers``.
    """
    return active_exec_config().workers


def simcache_dir() -> str | None:
    """SimCache directory from ``REPRO_SIMCACHE_DIR`` (None: disabled).

    .. deprecated:: read ``active_exec_config().simcache_dir``.
    """
    return active_exec_config().simcache_dir


def fault_spec() -> str | None:
    """Fault-injection spec from ``REPRO_FAULT_SPEC`` (None: disabled).

    .. deprecated:: read ``active_exec_config().fault_spec``.
    """
    return active_exec_config().fault_spec


def trace_spec() -> str | None:
    """Trace destination from ``REPRO_TRACE`` (None: tracing off).

    .. deprecated:: read ``active_exec_config().trace``.
    """
    return active_exec_config().trace


def experiment_seed() -> int:
    """Return the global experiment seed from ``REPRO_SEED`` (default 7)."""
    raw = os.environ.get(SEED_ENV_VAR, str(DEFAULT_SEED))
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"{SEED_ENV_VAR} must be an int, got {raw!r}") from exc


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Resources of one out-of-order execution cluster.

    The paper's core is a scaled Skylake with two such clusters
    (Figure 2); each cluster owns its scheduler, execution units and a
    Memory Execution Unit (MEU).
    """

    issue_width: int = 4
    scheduler_entries: int = 48
    load_queue_entries: int = 36
    store_queue_entries: int = 28
    mshr_entries: int = 4
    alu_units: int = 4
    fpu_units: int = 2
    load_ports: int = 2
    store_ports: int = 1


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """The full two-cluster CPU plus memory hierarchy and timing.

    ``width_high_perf``/``width_low_power`` are the effective issue
    widths in the two operating modes; all latencies are in core cycles.
    """

    frequency_ghz: float = 2.0
    cluster: ClusterConfig = dataclasses.field(default_factory=ClusterConfig)
    num_clusters: int = 2
    rob_entries: int = 224
    retire_width: int = 8
    # Memory hierarchy.
    l1i_kib: int = 32
    l1d_kib: int = 32
    l2_kib: int = 1024
    l3_kib: int = 8192
    line_bytes: int = 64
    l1_latency: int = 4
    l2_latency: int = 12
    l3_latency: int = 40
    memory_latency: int = 200
    # Front end.
    branch_mispredict_penalty: int = 16
    icache_miss_penalty: int = 20
    uop_cache_entries: int = 1536
    # TLBs.
    tlb_miss_penalty: int = 30
    # Cluster interplay.
    intercluster_latency: int = 2
    intercluster_uop_fraction: float = 0.15
    # Mode switching (Section 3): a microcode flow transfers up to 32
    # register dependencies, one micro-op each, taking low tens of
    # cycles while execution continues on cluster 1.
    max_register_transfers: int = 32
    mode_switch_base_cycles: int = 8

    @property
    def width_high_perf(self) -> int:
        """Issue width with both clusters enabled."""
        return self.cluster.issue_width * self.num_clusters

    @property
    def width_low_power(self) -> int:
        """Issue width with cluster 2 clock-gated."""
        return self.cluster.issue_width

    @property
    def peak_mips(self) -> float:
        """Peak instruction throughput in MIPS (Table 3: 16,000)."""
        return self.frequency_ghz * 1_000.0 * self.width_high_perf


@dataclasses.dataclass(frozen=True)
class MicrocontrollerConfig:
    """The existing on-die microcontroller that hosts adaptation models.

    Section 3: 500 MHz, single issue, integer and floating point but no
    vector instructions; 50% of its cycles are safely available for
    generating adaptation predictions.
    """

    frequency_mhz: float = 500.0
    issue_width: int = 1
    available_fraction: float = 0.5
    sram_bytes: int = 1 << 20  # 1 MiB firmware data budget.

    @property
    def mips(self) -> float:
        """Peak throughput in MIPS."""
        return self.frequency_mhz * self.issue_width

    def ops_budget(self, granularity_instructions: int,
                   machine: MachineConfig | None = None) -> int:
        """Ops available per prediction at a given gating granularity.

        Reproduces the left half of Table 3: the CPU retires
        ``peak_mips`` instructions per second, so a prediction every
        ``granularity_instructions`` leaves
        ``granularity / (cpu_mips / uc_mips)`` microcontroller ops, of
        which ``available_fraction`` may be used.
        """
        machine = machine or MachineConfig()
        ratio = machine.peak_mips / self.mips  # e.g. 16000/500 = 32
        max_ops = granularity_instructions / ratio
        return int(max_ops * self.available_fraction)


@dataclasses.dataclass(frozen=True)
class SLAConfig:
    """A service level agreement per Section 3.1.

    ``performance_floor`` is :math:`P_{SLA}`: low-power-mode IPC must be
    at least this fraction of high-performance-mode IPC. ``window_ms``
    is :math:`T_{SLA}`, the measurement window. ``guarantee`` is the
    fraction of windows that must meet the floor (99%).
    """

    performance_floor: float = 0.90
    window_ms: float = 1.0
    guarantee: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 < self.performance_floor <= 1.0:
            raise ValueError(
                f"performance_floor must be in (0, 1], got "
                f"{self.performance_floor}"
            )
        if self.window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {self.window_ms}")
        if not 0.0 < self.guarantee <= 1.0:
            raise ValueError(f"guarantee must be in (0, 1], got {self.guarantee}")

    def window_predictions(self, machine: MachineConfig,
                           granularity_instructions: int) -> int:
        """Sample size ``W`` for the SLA-violation expectation (Eq. 2).

        ``W = R * T_SLA * L`` with R the peak instruction throughput and
        L the prediction rate; e.g. 16 G inst/s * 1 ms / 10k inst =
        1600 predictions.
        """
        per_second = machine.peak_mips * 1e6
        window_instructions = per_second * (self.window_ms / 1e3)
        return max(1, int(window_instructions / granularity_instructions))


#: The SLA used throughout the paper except Section 7.3.
DEFAULT_SLA = SLAConfig()

#: The two relaxed SLAs evaluated in Table 5.
RELAXED_SLAS = (SLAConfig(performance_floor=0.80),
                SLAConfig(performance_floor=0.70))

#: Gating granularities the architecture supports (Section 3).
SUPPORTED_GRANULARITIES = tuple(range(10_000, 110_000, 10_000))
