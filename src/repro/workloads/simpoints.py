"""SimPoint-style representative region selection.

The paper traces 200M-instruction SimPoints of each SPEC2017 workload.
SimPoint picks representative execution regions by clustering basic-
block vectors (BBVs): each region of execution is summarised by the
frequency of basic blocks executed within it, regions are clustered
with k-means, and the region closest to each centroid represents its
cluster, weighted by cluster size.

Our synthetic traces do not execute real basic blocks, so we derive a
BBV proxy from the phase sequence: each interval's "basic block
signature" is a noisy one-hot-ish embedding of its phase archetype.
Clustering these recovers phase structure, which is exactly what real
SimPoint recovers. The implementation (plain k-means with k-means++
seeding, in numpy) is generic and reusable on any BBV matrix.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.workloads.generator import TraceSpec


@dataclasses.dataclass(frozen=True)
class SimPoint:
    """One representative region: interval index range and weight."""

    start_interval: int
    end_interval: int
    weight: float
    cluster: int


def bbv_matrix(trace: TraceSpec, window: int = 10,
               embedding_dim: int = 32) -> np.ndarray:
    """Basic-block-vector proxy for a synthetic trace.

    Consecutive ``window``-interval regions are embedded by the mix of
    phase archetypes they contain, projected through a fixed random
    dictionary (mimicking how distinct phases execute distinct basic
    blocks), plus sampling noise.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    n_phases = trace.app.n_phases
    rng = rng_mod.stream(trace.seed, "bbv-dict")
    dictionary = rng.gamma(2.0, 1.0, size=(n_phases, embedding_dim))
    n_regions = trace.n_intervals // window
    if n_regions == 0:
        raise ConfigurationError(
            f"trace too short ({trace.n_intervals} intervals) for "
            f"window {window}"
        )
    regions = np.zeros((n_regions, embedding_dim))
    noise_rng = rng_mod.stream(trace.seed, "bbv-noise")
    for r in range(n_regions):
        segment = trace.phase_seq[r * window:(r + 1) * window]
        counts = np.bincount(segment, minlength=n_phases).astype(np.float64)
        vec = counts @ dictionary
        vec *= noise_rng.lognormal(0.0, 0.05, size=embedding_dim)
        regions[r] = vec
    # Normalise rows to frequencies, as SimPoint does.
    sums = regions.sum(axis=1, keepdims=True)
    sums[sums == 0.0] = 1.0
    return regions / sums


def kmeans(data: np.ndarray, k: int, rng: np.random.Generator,
           max_iter: int = 50) -> tuple[np.ndarray, np.ndarray]:
    """Plain k-means with k-means++ seeding.

    Returns ``(centroids, assignments)``.
    """
    n = data.shape[0]
    if k <= 0 or k > n:
        raise ConfigurationError(f"k must be in [1, {n}], got {k}")
    # k-means++ seeding.
    centroids = np.empty((k, data.shape[1]))
    centroids[0] = data[rng.integers(n)]
    closest = np.full(n, np.inf)
    for i in range(1, k):
        dist = ((data - centroids[i - 1]) ** 2).sum(axis=1)
        closest = np.minimum(closest, dist)
        total = closest.sum()
        if total <= 0:
            centroids[i:] = data[rng.integers(n, size=k - i)]
            break
        probs = closest / total
        centroids[i] = data[rng.choice(n, p=probs)]
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(max_iter):
        dists = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assignments = dists.argmin(axis=1)
        if np.array_equal(new_assignments, assignments):
            assignments = new_assignments
            break
        assignments = new_assignments
        for j in range(k):
            members = data[assignments == j]
            if members.shape[0]:
                centroids[j] = members.mean(axis=0)
    return centroids, assignments


def select_simpoints(trace: TraceSpec, k: int = 4, window: int = 10,
                     ) -> list[SimPoint]:
    """Pick ``k`` representative regions of a trace, SimPoint style."""
    bbvs = bbv_matrix(trace, window=window)
    k = min(k, bbvs.shape[0])
    rng = rng_mod.stream(trace.seed, "simpoint-kmeans")
    centroids, assignments = kmeans(bbvs, k, rng)
    points: list[SimPoint] = []
    n_regions = bbvs.shape[0]
    for j in range(k):
        members = np.flatnonzero(assignments == j)
        if members.size == 0:
            continue
        dists = ((bbvs[members] - centroids[j]) ** 2).sum(axis=1)
        rep = int(members[dists.argmin()])
        points.append(SimPoint(
            start_interval=rep * window,
            end_interval=(rep + 1) * window,
            weight=members.size / n_regions,
            cluster=j,
        ))
    points.sort(key=lambda p: p.start_interval)
    return points
