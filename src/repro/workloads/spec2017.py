"""The SPEC2017-like held-out test suite (Table 2).

The paper evaluates deployed models on 571 SimPoint traces from 118
workloads spanning the 20 SPEC2017 speed benchmarks, none of which
appear in training. We reproduce the suite's *structure* exactly —
benchmark names, integer/float split, per-benchmark workload (input)
counts — and its *statistics* approximately, by assigning each
benchmark phase families that match its published microarchitectural
character (e.g. ``mcf_s`` is pointer chasing, ``lbm_s`` streams,
``roms_s`` mixes FP solves with store bursts).

Two deliberate properties:

* **Distribution shift**: every SPEC-like app samples phases with an
  out-of-distribution jitter (``ood_shift``) so test telemetry is not
  a re-draw of training telemetry — the generalization gap the paper's
  blindspot-mitigation techniques target.
* **A concentrated blindspot**: ``roms_s`` (and to a lesser degree
  ``cactuBSSN_s``) carries the ``store_burst`` family, which only the
  Store Queue Occupancy counter reveals. Models trained on the expert
  counter set (CHARSTAR) systematically mispredict these phases,
  reproducing Figure 9's 77.8% RSV spike.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro import rng as rng_mod
from repro.config import experiment_scale
from repro.workloads.generator import (
    ApplicationSpec,
    TraceSpec,
    generate_application,
)


@dataclasses.dataclass(frozen=True)
class SpecBenchmark:
    """One SPEC2017 benchmark: name, suite and Table-2 workload count."""

    name: str
    suite: str  # "int" or "fp"
    workloads: int  # number of distinct inputs (Table 2)
    family_weights: Mapping[str, float]
    ood_shift: float = 0.12


#: Table 2, with phase-family assignments per benchmark character.
SPEC2017_APPS: tuple[SpecBenchmark, ...] = (
    SpecBenchmark("600.perlbench_s", "int", 4,
                  {"branchy": 0.45, "frontend": 0.35, "balanced": 0.20}),
    SpecBenchmark("602.gcc_s", "int", 7,
                  {"branchy": 0.35, "frontend": 0.30, "balanced": 0.20,
                   "pointer_chase": 0.15}),
    SpecBenchmark("605.mcf_s", "int", 7,
                  {"pointer_chase": 0.70, "balanced": 0.20, "branchy": 0.10}),
    SpecBenchmark("620.omnetpp_s", "int", 9,
                  {"pointer_chase": 0.50, "branchy": 0.30, "frontend": 0.20}),
    SpecBenchmark("623.xalancbmk_s", "int", 2,
                  {"frontend": 0.45, "branchy": 0.35, "pointer_chase": 0.20}),
    SpecBenchmark("625.x264_s", "int", 12,
                  {"media": 0.45, "compute_int": 0.35, "compute_fp": 0.20}),
    SpecBenchmark("631.deepsjeng_s", "int", 12,
                  {"branchy": 0.45, "compute_int": 0.35, "balanced": 0.20}),
    SpecBenchmark("641.leela_s", "int", 10,
                  {"branchy": 0.40, "balanced": 0.35, "pointer_chase": 0.25}),
    SpecBenchmark("648.exchange2_s", "int", 5,
                  {"compute_int": 0.65, "branchy": 0.25, "dep_chain": 0.10}),
    SpecBenchmark("657.xz_s", "int", 5,
                  {"balanced": 0.35, "pointer_chase": 0.35, "compute_int": 0.30}),
    SpecBenchmark("603.bwaves_s", "fp", 5,
                  {"sparse_fp": 0.45, "dep_chain": 0.30, "pointer_chase": 0.25}),
    SpecBenchmark("607.cactuBSSN_s", "fp", 6,
                  {"sparse_fp": 0.50, "compute_fp": 0.25, "store_burst": 0.10,
                   "bandwidth": 0.15}),
    SpecBenchmark("619.lbm_s", "fp", 3,
                  {"bandwidth": 0.70, "compute_fp": 0.30}),
    SpecBenchmark("621.wrf_s", "fp", 1,
                  {"compute_fp": 0.40, "sparse_fp": 0.40, "balanced": 0.20}),
    SpecBenchmark("627.cam4_s", "fp", 1,
                  {"compute_fp": 0.45, "sparse_fp": 0.35, "branchy": 0.20}),
    SpecBenchmark("628.pop2_s", "fp", 1,
                  {"sparse_fp": 0.45, "compute_fp": 0.35, "bandwidth": 0.20}),
    SpecBenchmark("638.imagick_s", "fp", 12,
                  {"compute_fp": 0.65, "media": 0.25, "dep_chain": 0.10}),
    SpecBenchmark("644.nab_s", "fp", 5,
                  {"sparse_fp": 0.45, "dep_chain": 0.35, "pointer_chase": 0.20}),
    SpecBenchmark("649.fotonik3d_s", "fp", 5,
                  {"sparse_fp": 0.45, "bandwidth": 0.35, "compute_fp": 0.20}),
    SpecBenchmark("654.roms_s", "fp", 5,
                  {"store_burst": 0.45, "sparse_fp": 0.35, "bandwidth": 0.20}),
)

#: Paper's totals for the test set.
PAPER_TEST_TRACES = 571
PAPER_TEST_WORKLOADS = 118

_BY_NAME = {bench.name: bench for bench in SPEC2017_APPS}


def get_benchmark(name: str) -> SpecBenchmark:
    """Look up a benchmark by its full Table-2 name."""
    return _BY_NAME[name]


def benchmark_names(suite: str | None = None) -> list[str]:
    """Benchmark names, optionally restricted to ``"int"`` or ``"fp"``."""
    return [b.name for b in SPEC2017_APPS if suite is None or b.suite == suite]


def spec_application(bench: SpecBenchmark, seed: int) -> ApplicationSpec:
    """Instantiate the synthetic application for one benchmark."""
    return generate_application(
        name=bench.name,
        category=f"spec2017_{bench.suite}",
        families_weights=bench.family_weights,
        seed=rng_mod.derive_seed(seed, "spec2017", bench.name),
        n_phases_range=(4, 8),
        ood_shift=bench.ood_shift,
    )


def spec2017_suite(seed: int) -> dict[str, ApplicationSpec]:
    """All 20 SPEC-like applications, keyed by benchmark name."""
    return {bench.name: spec_application(bench, seed)
            for bench in SPEC2017_APPS}


def spec2017_traces(seed: int,
                    intervals_per_trace: int | None = None,
                    traces_per_workload: int | None = None,
                    ) -> list[TraceSpec]:
    """Generate the full held-out trace set.

    The paper uses ~4.8 SimPoint traces of 200M instructions per
    workload; we default to a scaled-down equivalent — a handful of
    traces per workload, a few hundred 10k-instruction intervals each —
    governed by ``REPRO_SCALE``.
    """
    scale = experiment_scale()
    if intervals_per_trace is None:
        intervals_per_trace = max(60, int(round(240 * scale)))
    if traces_per_workload is None:
        traces_per_workload = max(1, int(round(2 * scale)))
    suite = spec2017_suite(seed)
    traces: list[TraceSpec] = []
    for bench in SPEC2017_APPS:
        app = suite[bench.name]
        for input_id in range(bench.workloads):
            workload = app.workload(input_id)
            for trace_id in range(traces_per_workload):
                traces.append(workload.trace(intervals_per_trace, trace_id))
    return traces


def suite_summary() -> dict[str, int]:
    """Table-2 style totals for the structural suite definition."""
    return {
        "benchmarks": len(SPEC2017_APPS),
        "int_benchmarks": len(benchmark_names("int")),
        "fp_benchmarks": len(benchmark_names("fp")),
        "workloads": sum(b.workloads for b in SPEC2017_APPS),
    }
