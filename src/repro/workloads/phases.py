"""Phase archetypes: the microarchitectural "physics" of workloads.

A *phase* is a period of statistically stationary execution behaviour
(Section 4.2 of the paper defines blindspots in terms of phases). We
model a phase with a small vector of physics parameters that the
simulator tiers (:mod:`repro.uarch`) translate into per-mode IPC,
telemetry counters and power:

========================  =====================================================
parameter                 meaning
========================  =====================================================
``ilp``                   mean exploitable instruction-level parallelism
``frac_load`` etc.        dynamic instruction mix (fractions sum to <= 1;
                          remainder is integer ALU)
``l1d_mpki``              L1 data-cache misses per kilo-instruction
``l2_mpki``               L2 misses per kilo-instruction (subset of L1 misses)
``l3_mpki``               L3 misses per kilo-instruction (subset of L2 misses)
``branch_mpki``           branch mispredictions per kilo-instruction
``icache_mpki``           instruction-cache misses per kilo-instruction
``uopcache_hit_rate``     fraction of micro-ops delivered by the uop cache
``itlb_mpki``/``dtlb_mpki``  TLB misses per kilo-instruction
``sq_pressure``           store-queue occupancy factor in [0, 1]; high values
                          mean store bursts that fill the (halved) low-power
                          store queue
``mlp``                   memory-level parallelism: outstanding misses that
                          overlap; halving MSHRs in low-power mode caps it
``dirty_frac``            fraction of L2 evictions that are dirty (the
                          complement produces the "L2 silent evictions"
                          counter of Table 4)
``noise_scale``           relative telemetry noise for the phase
========================  =====================================================

The library below defines ~44 archetypes across ten families. Families
map onto recognisable workload behaviours (compute-bound, pointer
chasing, bandwidth-bound, front-end bound, store bursts, ...) and span
the gating spectrum: some phases lose almost nothing at 4-wide issue
(ideal gating targets), others crater. The ``store_burst`` family is
the engineered blindspot: its low-power penalty is only visible through
the Store Queue Occupancy counter, which the expert-chosen CHARSTAR
counter set lacks (Section 7.1 / Figure 9).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError

#: Physics fields that are rates/fractions bounded to [0, 1].
_UNIT_FIELDS = (
    "frac_load",
    "frac_store",
    "frac_branch",
    "frac_fp",
    "uopcache_hit_rate",
    "sq_pressure",
    "dirty_frac",
)


@dataclasses.dataclass(frozen=True)
class PhaseInstance:
    """A concrete phase: archetype physics after per-application jitter.

    Instances are what traces carry; all simulator tiers consume them.
    """

    name: str
    family: str
    ilp: float
    frac_load: float
    frac_store: float
    frac_branch: float
    frac_fp: float
    l1d_mpki: float
    l2_mpki: float
    l3_mpki: float
    branch_mpki: float
    icache_mpki: float
    uopcache_hit_rate: float
    itlb_mpki: float
    dtlb_mpki: float
    sq_pressure: float
    mlp: float
    dirty_frac: float
    noise_scale: float

    def __post_init__(self) -> None:
        if self.ilp < 1.0:
            raise ConfigurationError(f"{self.name}: ilp must be >= 1, got {self.ilp}")
        mix = self.frac_load + self.frac_store + self.frac_branch + self.frac_fp
        if mix > 1.0 + 1e-9:
            raise ConfigurationError(
                f"{self.name}: instruction mix sums to {mix:.3f} > 1"
            )
        for field in _UNIT_FIELDS:
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{self.name}: {field} must be in [0, 1], got {value}"
                )
        if not self.l1d_mpki >= self.l2_mpki >= self.l3_mpki >= 0.0:
            raise ConfigurationError(
                f"{self.name}: miss rates must nest: l1d >= l2 >= l3 >= 0"
            )
        if self.mlp < 1.0:
            raise ConfigurationError(f"{self.name}: mlp must be >= 1, got {self.mlp}")

    @property
    def frac_int(self) -> float:
        """Fraction of plain integer ALU instructions (the remainder)."""
        return 1.0 - (
            self.frac_load + self.frac_store + self.frac_branch + self.frac_fp
        )


@dataclasses.dataclass(frozen=True)
class PhaseArchetype:
    """A named distribution over :class:`PhaseInstance` physics.

    ``center`` holds mean physics values; ``spread`` holds relative
    jitter applied per application, so two applications sharing an
    archetype still differ statistically (the paper's training-
    diversity experiments rely on this).
    """

    name: str
    family: str
    center: dict[str, float]
    spread: float = 0.15

    def sample(self, rng: np.random.Generator) -> PhaseInstance:
        """Draw one jittered :class:`PhaseInstance` for an application."""
        values: dict[str, float] = {}
        for key, mean in self.center.items():
            jitter = float(rng.normal(1.0, self.spread))
            jitter = min(max(jitter, 0.5), 1.6)
            values[key] = mean * jitter
        # Re-impose structural constraints after jitter.
        values["ilp"] = max(1.0, values["ilp"])
        values["mlp"] = max(1.0, values["mlp"])
        for field in _UNIT_FIELDS:
            values[field] = min(max(values[field], 0.0), 1.0)
        mix = (values["frac_load"] + values["frac_store"]
               + values["frac_branch"] + values["frac_fp"])
        if mix > 0.95:
            scale = 0.95 / mix
            for field in ("frac_load", "frac_store", "frac_branch", "frac_fp"):
                values[field] *= scale
        values["l2_mpki"] = min(values["l2_mpki"], values["l1d_mpki"])
        values["l3_mpki"] = min(values["l3_mpki"], values["l2_mpki"])
        return PhaseInstance(name=self.name, family=self.family, **values)


def _physics(ilp: float, load: float, store: float, branch: float, fp: float,
             l1d: float, l2: float, l3: float, brm: float, ic: float,
             uopc: float, itlb: float, dtlb: float, sq: float, mlp: float,
             dirty: float = 0.4, noise: float = 0.05) -> dict[str, float]:
    """Shorthand constructor for archetype centers."""
    return {
        "ilp": ilp,
        "frac_load": load,
        "frac_store": store,
        "frac_branch": branch,
        "frac_fp": fp,
        "l1d_mpki": l1d,
        "l2_mpki": l2,
        "l3_mpki": l3,
        "branch_mpki": brm,
        "icache_mpki": ic,
        "uopcache_hit_rate": uopc,
        "itlb_mpki": itlb,
        "dtlb_mpki": dtlb,
        "sq_pressure": sq,
        "mlp": mlp,
        "dirty_frac": dirty,
        "noise_scale": noise,
    }


def _build_library() -> tuple[PhaseArchetype, ...]:
    """Construct the full archetype library."""
    lib: list[PhaseArchetype] = []

    def add(name: str, family: str, center: dict[str, float],
            spread: float = 0.15) -> None:
        lib.append(PhaseArchetype(name=name, family=family, center=center,
                                  spread=spread))

    # -- Compute-bound, high ILP: wide issue pays off; never gate. -----
    add("int_superscalar", "compute_int",
        _physics(6.5, 0.22, 0.08, 0.12, 0.02, 2.0, 0.5, 0.1, 1.5, 0.1,
                 0.97, 0.01, 0.05, 0.05, 2.0))
    add("int_unrolled_loops", "compute_int",
        _physics(7.2, 0.25, 0.10, 0.06, 0.00, 3.0, 0.8, 0.1, 0.8, 0.05,
                 0.99, 0.01, 0.08, 0.08, 2.5))
    add("int_crypto_rounds", "compute_int",
        _physics(5.8, 0.12, 0.05, 0.04, 0.00, 0.5, 0.1, 0.0, 0.3, 0.02,
                 0.99, 0.00, 0.02, 0.04, 1.5))
    add("int_hash_mix", "compute_int",
        _physics(5.2, 0.20, 0.10, 0.08, 0.00, 4.0, 1.0, 0.2, 2.0, 0.1,
                 0.96, 0.01, 0.10, 0.08, 2.2))

    # -- FP / vectorisable kernels: high ILP, wide issue critical. -----
    add("fp_dense_blas", "compute_fp",
        _physics(7.5, 0.30, 0.12, 0.03, 0.40, 6.0, 1.5, 0.3, 0.3, 0.02,
                 0.99, 0.00, 0.15, 0.10, 4.0))
    add("fp_stencil_hot", "compute_fp",
        _physics(6.8, 0.32, 0.14, 0.04, 0.35, 8.0, 2.0, 0.5, 0.5, 0.05,
                 0.98, 0.01, 0.20, 0.12, 4.5))
    add("fp_particle_update", "compute_fp",
        _physics(6.0, 0.28, 0.12, 0.06, 0.30, 5.0, 1.2, 0.2, 1.0, 0.05,
                 0.97, 0.01, 0.12, 0.10, 3.0))
    add("fp_transcendental", "compute_fp",
        _physics(4.8, 0.18, 0.08, 0.05, 0.45, 2.0, 0.4, 0.1, 0.6, 0.03,
                 0.98, 0.00, 0.05, 0.06, 1.8))

    # -- Memory latency bound: serial misses; gating is nearly free. ---
    add("ptr_chase_heap", "pointer_chase",
        _physics(1.4, 0.35, 0.05, 0.10, 0.00, 45.0, 25.0, 12.0, 4.0, 0.3,
                 0.92, 0.02, 1.5, 0.05, 1.3))
    add("ptr_chase_tree", "pointer_chase",
        _physics(1.6, 0.32, 0.06, 0.14, 0.00, 38.0, 20.0, 9.0, 7.0, 0.4,
                 0.90, 0.03, 1.2, 0.05, 1.4))
    add("linked_list_walk", "pointer_chase",
        _physics(1.2, 0.40, 0.04, 0.08, 0.00, 50.0, 30.0, 15.0, 2.0, 0.2,
                 0.94, 0.01, 2.0, 0.04, 1.1))
    add("graph_traversal", "pointer_chase",
        _physics(1.8, 0.34, 0.06, 0.15, 0.00, 42.0, 24.0, 10.0, 9.0, 0.5,
                 0.88, 0.03, 1.8, 0.06, 1.6))
    add("hash_probe_cold", "pointer_chase",
        _physics(2.0, 0.30, 0.08, 0.12, 0.00, 35.0, 18.0, 8.0, 5.0, 0.3,
                 0.93, 0.02, 1.4, 0.08, 1.7))

    # -- Memory bandwidth bound: high MLP; halved MSHRs hurt. ----------
    add("stream_copy", "bandwidth",
        _physics(3.5, 0.35, 0.18, 0.02, 0.10, 30.0, 22.0, 16.0, 0.2, 0.02,
                 0.99, 0.00, 0.8, 0.20, 8.0))
    add("stream_triad", "bandwidth",
        _physics(3.8, 0.33, 0.16, 0.02, 0.20, 28.0, 20.0, 14.0, 0.2, 0.02,
                 0.99, 0.00, 0.7, 0.22, 7.5))
    add("block_transpose", "bandwidth",
        _physics(3.2, 0.36, 0.20, 0.03, 0.05, 26.0, 16.0, 11.0, 0.5, 0.05,
                 0.98, 0.01, 1.0, 0.25, 6.0))
    add("scan_filter", "bandwidth",
        _physics(4.0, 0.38, 0.08, 0.08, 0.02, 24.0, 17.0, 12.0, 1.5, 0.05,
                 0.98, 0.01, 0.9, 0.10, 6.5))

    # -- Branch-dominated irregular control flow: front end bound. -----
    add("branchy_parser", "branchy",
        _physics(2.4, 0.24, 0.08, 0.24, 0.00, 8.0, 2.0, 0.4, 16.0, 1.0,
                 0.85, 0.05, 0.3, 0.06, 1.8))
    add("branchy_interp", "branchy",
        _physics(2.2, 0.26, 0.10, 0.22, 0.00, 10.0, 3.0, 0.6, 14.0, 1.5,
                 0.80, 0.08, 0.4, 0.07, 1.9))
    add("decision_logic", "branchy",
        _physics(2.8, 0.20, 0.06, 0.26, 0.00, 6.0, 1.5, 0.3, 19.0, 0.8,
                 0.87, 0.04, 0.2, 0.05, 2.0))
    add("state_machine", "branchy",
        _physics(2.6, 0.22, 0.08, 0.20, 0.00, 7.0, 2.5, 0.5, 12.0, 1.2,
                 0.83, 0.06, 0.3, 0.06, 1.7))

    # -- Front-end bound: huge code footprints. -------------------------
    add("megamorphic_calls", "frontend",
        _physics(2.5, 0.22, 0.10, 0.16, 0.00, 9.0, 3.0, 0.8, 8.0, 12.0,
                 0.45, 0.9, 0.4, 0.08, 1.8))
    add("jit_warmup", "frontend",
        _physics(2.2, 0.24, 0.12, 0.14, 0.00, 11.0, 4.0, 1.0, 9.0, 15.0,
                 0.35, 1.2, 0.5, 0.10, 1.9))
    add("server_dispatch", "frontend",
        _physics(2.8, 0.26, 0.10, 0.15, 0.00, 12.0, 4.5, 1.2, 7.0, 10.0,
                 0.50, 0.8, 0.6, 0.09, 2.0))
    add("template_bloat", "frontend",
        _physics(3.0, 0.20, 0.08, 0.12, 0.02, 8.0, 2.5, 0.6, 6.0, 9.0,
                 0.55, 0.7, 0.3, 0.07, 2.1))

    # -- Store bursts: the blindspot family (Section 7.1, Fig. 9). -----
    # On the expert counter set (branch/cache/TLB misses, IPC, stalls)
    # these phases are indistinguishable from latency-bound gateable
    # phases: low IPC, elevated data-cache misses, high stall counts.
    # Only the Store Queue Occupancy counter reveals that low-power
    # mode (half the SQ entries) will crater them.
    add("store_burst_log", "store_burst",
        _physics(1.8, 0.26, 0.28, 0.09, 0.00, 38.0, 19.0, 8.0, 4.0, 0.3,
                 0.92, 0.02, 1.4, 0.85, 1.6))
    add("store_burst_serialize", "store_burst",
        _physics(1.6, 0.24, 0.32, 0.08, 0.00, 34.0, 17.0, 7.0, 3.0, 0.2,
                 0.93, 0.01, 1.2, 0.90, 1.4))
    add("store_burst_checkpoint", "store_burst",
        _physics(2.0, 0.28, 0.26, 0.10, 0.00, 42.0, 21.0, 9.0, 5.0, 0.3,
                 0.91, 0.02, 1.6, 0.80, 1.8))

    # -- Balanced moderate phases: gating borderline at P_SLA = 0.9. ---
    add("balanced_mixed", "balanced",
        _physics(4.2, 0.25, 0.10, 0.12, 0.05, 12.0, 4.0, 1.2, 5.0, 0.8,
                 0.92, 0.05, 0.5, 0.12, 2.6))
    add("balanced_gui_event", "balanced",
        _physics(3.8, 0.24, 0.12, 0.14, 0.02, 14.0, 5.0, 1.5, 6.0, 1.5,
                 0.88, 0.10, 0.6, 0.10, 2.4))
    add("balanced_codec_ctrl", "balanced",
        _physics(4.5, 0.26, 0.10, 0.10, 0.08, 10.0, 3.0, 0.8, 4.0, 0.6,
                 0.93, 0.04, 0.4, 0.14, 2.8))
    add("balanced_db_row", "balanced",
        _physics(3.5, 0.28, 0.12, 0.12, 0.00, 16.0, 6.0, 2.0, 5.5, 1.0,
                 0.90, 0.08, 0.8, 0.15, 2.3))

    # -- Dependency-chain stalls: low ILP but cache friendly. ----------
    add("dep_chain_reduce", "dep_chain",
        _physics(1.3, 0.15, 0.05, 0.06, 0.15, 1.5, 0.3, 0.0, 0.5, 0.05,
                 0.99, 0.00, 0.05, 0.04, 1.2))
    add("dep_chain_crc", "dep_chain",
        _physics(1.5, 0.18, 0.06, 0.05, 0.00, 2.0, 0.4, 0.1, 0.4, 0.05,
                 0.99, 0.00, 0.06, 0.05, 1.3))
    add("dep_chain_fsm_math", "dep_chain",
        _physics(1.8, 0.16, 0.05, 0.08, 0.20, 1.8, 0.3, 0.0, 1.0, 0.05,
                 0.98, 0.00, 0.05, 0.04, 1.4))

    # -- Low activity / idle-ish phases. --------------------------------
    add("spin_poll", "low_activity",
        _physics(2.0, 0.30, 0.02, 0.20, 0.00, 1.0, 0.1, 0.0, 0.2, 0.02,
                 0.99, 0.00, 0.02, 0.02, 1.1))
    add("timer_wait_loop", "low_activity",
        _physics(1.6, 0.25, 0.03, 0.25, 0.00, 0.8, 0.1, 0.0, 0.3, 0.02,
                 0.99, 0.00, 0.02, 0.02, 1.1))

    # -- Mixed-FP scientific with phase-local locality. -----------------
    add("fp_sparse_solver", "sparse_fp",
        _physics(2.6, 0.34, 0.08, 0.06, 0.25, 28.0, 14.0, 6.0, 1.5, 0.1,
                 0.97, 0.01, 1.0, 0.08, 3.0))
    add("fp_fft_butterfly", "sparse_fp",
        _physics(5.5, 0.30, 0.14, 0.03, 0.35, 12.0, 5.0, 2.0, 0.4, 0.05,
                 0.98, 0.00, 0.4, 0.12, 4.0))
    add("fp_mc_sampling", "sparse_fp",
        _physics(3.0, 0.26, 0.08, 0.10, 0.30, 20.0, 9.0, 3.5, 3.0, 0.2,
                 0.95, 0.01, 0.8, 0.08, 2.2))

    # -- AI / analytics inner loops. ------------------------------------
    add("gemm_tile", "ai_kernel",
        _physics(7.8, 0.28, 0.10, 0.02, 0.45, 4.0, 1.0, 0.2, 0.2, 0.02,
                 0.99, 0.00, 0.1, 0.10, 5.0))
    add("embedding_gather", "ai_kernel",
        _physics(2.4, 0.40, 0.06, 0.06, 0.10, 36.0, 22.0, 11.0, 1.0, 0.1,
                 0.98, 0.01, 1.6, 0.06, 3.5))
    add("softmax_norm", "ai_kernel",
        _physics(4.6, 0.24, 0.10, 0.04, 0.40, 6.0, 1.5, 0.3, 0.3, 0.03,
                 0.99, 0.00, 0.2, 0.08, 2.6))

    # -- Media / rendering. ---------------------------------------------
    add("pixel_shade", "media",
        _physics(6.2, 0.26, 0.12, 0.04, 0.35, 9.0, 2.5, 0.6, 1.0, 0.1,
                 0.98, 0.01, 0.3, 0.12, 3.8))
    add("motion_estimation", "media",
        _physics(5.4, 0.32, 0.08, 0.08, 0.15, 14.0, 4.0, 1.0, 3.0, 0.2,
                 0.96, 0.01, 0.5, 0.08, 3.2))
    add("audio_dsp", "media",
        _physics(4.4, 0.24, 0.10, 0.06, 0.30, 5.0, 1.0, 0.2, 0.8, 0.05,
                 0.99, 0.00, 0.2, 0.08, 2.4))
    add("entropy_decode", "media",
        _physics(2.3, 0.24, 0.08, 0.20, 0.02, 9.0, 2.5, 0.5, 11.0, 0.8,
                 0.86, 0.04, 0.3, 0.06, 1.8))

    return tuple(lib)


#: The full archetype library, keyed access via :func:`get_archetype`.
PHASE_LIBRARY: tuple[PhaseArchetype, ...] = _build_library()

_BY_NAME = {arch.name: arch for arch in PHASE_LIBRARY}


def archetype_names() -> list[str]:
    """Names of every archetype in the library, in a stable order."""
    return [arch.name for arch in PHASE_LIBRARY]


def families() -> list[str]:
    """Distinct archetype families, in first-seen order."""
    seen: list[str] = []
    for arch in PHASE_LIBRARY:
        if arch.family not in seen:
            seen.append(arch.family)
    return seen


def get_archetype(name: str) -> PhaseArchetype:
    """Look up an archetype by name.

    Raises
    ------
    KeyError
        If no archetype has that name.
    """
    return _BY_NAME[name]


def archetypes_in_families(wanted: Iterable[str]) -> list[PhaseArchetype]:
    """All archetypes whose family is in ``wanted``."""
    wanted_set = set(wanted)
    return [arch for arch in PHASE_LIBRARY if arch.family in wanted_set]


def sample_phase_instance(name: str, rng: np.random.Generator) -> PhaseInstance:
    """Sample a jittered instance of the named archetype."""
    return get_archetype(name).sample(rng)
