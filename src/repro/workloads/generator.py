"""Applications, workloads and traces.

The paper's vocabulary (Section 4.1):

* an **application** is a program; we model it as a small set of
  :class:`~repro.workloads.phases.PhaseInstance` objects plus a Markov
  transition matrix over them;
* a **workload** is an execution of an application on a unique input;
  different inputs re-weight the phase mixture and dwell times;
* a **trace** is a recorded portion of a workload's instruction stream;
  we represent it as a per-interval sequence of phase indices (one
  entry per 10k-instruction telemetry interval) that the simulator
  tiers consume.

All sampling is deterministic given the spec seeds (see
:mod:`repro.rng`).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro import rng as rng_mod
from repro.config import BASE_INTERVAL_INSTRUCTIONS
from repro.errors import ConfigurationError
from repro.workloads.phases import (
    PHASE_LIBRARY,
    PhaseArchetype,
    PhaseInstance,
    archetypes_in_families,
)

#: Ordered physics fields used to build numeric matrices from phases.
PHYSICS_FIELDS: tuple[str, ...] = (
    "ilp",
    "frac_load",
    "frac_store",
    "frac_branch",
    "frac_fp",
    "l1d_mpki",
    "l2_mpki",
    "l3_mpki",
    "branch_mpki",
    "icache_mpki",
    "uopcache_hit_rate",
    "itlb_mpki",
    "dtlb_mpki",
    "sq_pressure",
    "mlp",
    "dirty_frac",
    "noise_scale",
)


def physics_matrix(instances: Sequence[PhaseInstance]) -> np.ndarray:
    """Stack phase physics into a ``(n_phases, n_fields)`` float matrix."""
    return np.array(
        [[getattr(inst, field) for field in PHYSICS_FIELDS]
         for inst in instances],
        dtype=np.float64,
    )


@dataclasses.dataclass(frozen=True)
class ApplicationSpec:
    """A synthetic application: phases plus Markov phase dynamics."""

    name: str
    category: str
    phases: tuple[PhaseInstance, ...]
    transitions: np.ndarray  # (n_phases, n_phases) row-stochastic
    initial: np.ndarray  # (n_phases,) distribution
    seed: int

    def __post_init__(self) -> None:
        n = len(self.phases)
        if self.transitions.shape != (n, n):
            raise ConfigurationError(
                f"{self.name}: transitions shape {self.transitions.shape} "
                f"does not match {n} phases"
            )
        if not np.allclose(self.transitions.sum(axis=1), 1.0, atol=1e-6):
            raise ConfigurationError(f"{self.name}: transitions not stochastic")
        if not np.isclose(self.initial.sum(), 1.0, atol=1e-6):
            raise ConfigurationError(f"{self.name}: initial dist not normalised")

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    def workload(self, input_id: int) -> "WorkloadSpec":
        """The workload of this application on input ``input_id``."""
        return WorkloadSpec(app=self, input_id=input_id)


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """An application executed on one specific input.

    Inputs re-weight phase transitions (a video encoder on an action
    scene spends longer in motion estimation than on a static scene)
    without changing the application's phase vocabulary.
    """

    app: ApplicationSpec
    input_id: int

    @property
    def name(self) -> str:
        return f"{self.app.name}/input{self.input_id}"

    def _input_transitions(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-input transition matrix and initial distribution."""
        rng = rng_mod.stream(self.app.seed, "input", self.input_id)
        n = self.app.n_phases
        # Re-weight off-diagonal mass with a Dirichlet draw so the
        # stationary phase mixture shifts between inputs.
        weights = rng.dirichlet(np.full(n, 1.5))
        trans = self.app.transitions.copy()
        for i in range(n):
            off = trans[i].copy()
            off[i] = 0.0
            if off.sum() > 0:
                off = off * (weights + 1e-3)
                off = off / off.sum() * (1.0 - trans[i, i])
                trans[i] = off
                trans[i, i] = self.app.transitions[i, i]
        initial = weights / weights.sum()
        return trans, initial

    def trace(self, n_intervals: int, trace_id: int = 0,
              interval_instructions: int = BASE_INTERVAL_INSTRUCTIONS,
              ) -> "TraceSpec":
        """Sample a trace of ``n_intervals`` telemetry intervals."""
        if n_intervals <= 0:
            raise ConfigurationError(
                f"n_intervals must be positive, got {n_intervals}"
            )
        trans, initial = self._input_transitions()
        rng = rng_mod.stream(self.app.seed, "trace", self.input_id, trace_id)
        seq = np.empty(n_intervals, dtype=np.int64)
        state = int(rng.choice(self.app.n_phases, p=initial))
        cdf = np.cumsum(trans, axis=1)
        draws = rng.random(n_intervals)
        for t in range(n_intervals):
            seq[t] = state
            state = int(np.searchsorted(cdf[state], draws[t]))
            state = min(state, self.app.n_phases - 1)
        return TraceSpec(
            workload=self,
            trace_id=trace_id,
            phase_seq=seq,
            interval_instructions=interval_instructions,
            seed=rng_mod.derive_seed(
                self.app.seed, "trace-noise", self.input_id, trace_id
            ),
        )


@dataclasses.dataclass(frozen=True)
class TraceSpec:
    """A recorded execution region: one phase index per interval."""

    workload: WorkloadSpec
    trace_id: int
    phase_seq: np.ndarray  # (n_intervals,) int indices into app phases
    interval_instructions: int
    seed: int

    @property
    def name(self) -> str:
        return f"{self.workload.name}/trace{self.trace_id}"

    @property
    def app(self) -> ApplicationSpec:
        return self.workload.app

    @property
    def n_intervals(self) -> int:
        return int(self.phase_seq.shape[0])

    @property
    def instructions(self) -> int:
        """Total instructions covered by this trace."""
        return self.n_intervals * self.interval_instructions

    def physics(self) -> np.ndarray:
        """Per-interval physics matrix ``(n_intervals, n_fields)``."""
        table = physics_matrix(self.app.phases)
        return table[self.phase_seq]

    def phase_names(self) -> list[str]:
        """Per-interval phase archetype names."""
        names = [inst.name for inst in self.app.phases]
        return [names[i] for i in self.phase_seq]


@dataclasses.dataclass(frozen=True)
class PhaseSequence:
    """A lightweight (phase index, dwell length) run-length encoding."""

    indices: np.ndarray
    lengths: np.ndarray

    @classmethod
    def from_trace(cls, trace: TraceSpec) -> "PhaseSequence":
        """Run-length encode a trace's phase sequence."""
        seq = trace.phase_seq
        if seq.size == 0:
            return cls(indices=np.empty(0, np.int64),
                       lengths=np.empty(0, np.int64))
        change = np.flatnonzero(np.diff(seq)) + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [seq.size]))
        return cls(indices=seq[starts], lengths=ends - starts)

    @property
    def mean_dwell(self) -> float:
        """Mean phase dwell time in intervals."""
        if self.lengths.size == 0:
            return 0.0
        return float(self.lengths.mean())


def _sample_archetypes(families_weights: Mapping[str, float],
                       n_phases: int,
                       rng: np.random.Generator) -> list[PhaseArchetype]:
    """Pick ``n_phases`` archetypes, weighted by family."""
    candidates: list[PhaseArchetype] = []
    weights: list[float] = []
    for family, weight in families_weights.items():
        members = archetypes_in_families([family])
        if not members:
            raise ConfigurationError(f"unknown phase family {family!r}")
        for arch in members:
            candidates.append(arch)
            weights.append(weight / len(members))
    probs = np.asarray(weights, dtype=np.float64)
    probs = probs / probs.sum()
    n_phases = min(n_phases, len(candidates))
    chosen = rng.choice(len(candidates), size=n_phases, replace=False, p=probs)
    return [candidates[int(i)] for i in chosen]


def generate_application(name: str,
                         category: str,
                         families_weights: Mapping[str, float],
                         seed: int,
                         n_phases_range: tuple[int, int] = (3, 7),
                         ood_shift: float = 0.0,
                         dwell_range: tuple[float, float] = (0.96, 0.992),
                         ) -> ApplicationSpec:
    """Generate an application from category-biased phase families.

    Parameters
    ----------
    families_weights:
        Relative probability of drawing each phase family.
    ood_shift:
        Extra physics jitter (as a relative multiplier spread) applied
        to phase instances; used by the held-out SPEC-like suite to
        create distribution shift relative to the training corpus.
    dwell_range:
        Range of per-phase self-transition probabilities; 0.96-0.992
        gives mean dwell of ~25-125 intervals (250k-1.25M
        instructions), matching the phase persistence the paper's t+2
        prediction horizon relies on even at the coarsest 100k gating
        granularity.
    """
    rng = rng_mod.stream(seed, "app", name)
    low, high = n_phases_range
    n_phases = int(rng.integers(low, high + 1))
    archetypes = _sample_archetypes(families_weights, n_phases, rng)
    instances = []
    for arch in archetypes:
        inst = arch.sample(rng)
        if ood_shift > 0.0:
            inst = _shift_instance(inst, ood_shift, rng)
        instances.append(inst)
    n = len(instances)
    # Row-stochastic transitions with strong self-loops.
    trans = np.zeros((n, n))
    for i in range(n):
        self_p = float(rng.uniform(*dwell_range))
        if n == 1:
            trans[i, i] = 1.0
            continue
        off = rng.dirichlet(np.full(n - 1, 1.0)) * (1.0 - self_p)
        trans[i, :] = np.insert(off, i, self_p)
    initial = rng.dirichlet(np.full(n, 2.0))
    return ApplicationSpec(
        name=name,
        category=category,
        phases=tuple(instances),
        transitions=trans,
        initial=initial,
        seed=rng_mod.derive_seed(seed, "app-seed", name),
    )


def _shift_instance(inst: PhaseInstance, shift: float,
                    rng: np.random.Generator) -> PhaseInstance:
    """Apply out-of-distribution physics shift to a phase instance."""
    values = dataclasses.asdict(inst)
    name = values.pop("name")
    family = values.pop("family")
    for key, value in values.items():
        factor = float(np.exp(rng.normal(0.0, shift)))
        values[key] = value * factor
    # Restore structural invariants.
    values["ilp"] = max(1.0, values["ilp"])
    values["mlp"] = max(1.0, values["mlp"])
    for key in ("frac_load", "frac_store", "frac_branch", "frac_fp",
                "uopcache_hit_rate", "sq_pressure", "dirty_frac"):
        values[key] = min(max(values[key], 0.0), 1.0)
    mix = (values["frac_load"] + values["frac_store"]
           + values["frac_branch"] + values["frac_fp"])
    if mix > 0.95:
        scale = 0.95 / mix
        for key in ("frac_load", "frac_store", "frac_branch", "frac_fp"):
            values[key] *= scale
    values["l2_mpki"] = min(values["l2_mpki"], values["l1d_mpki"])
    values["l3_mpki"] = min(values["l3_mpki"], values["l2_mpki"])
    return PhaseInstance(name=name, family=family, **values)


def generate_trace(app: ApplicationSpec, input_id: int = 0,
                   trace_id: int = 0, n_intervals: int = 500) -> TraceSpec:
    """Convenience: one trace of an application on one input."""
    return app.workload(input_id).trace(n_intervals, trace_id)
