"""The six HDTR application categories of Table 1.

The paper's high-diversity training set (HDTR) spans 593 applications
in six categories. Each category here carries (a) the paper's
application count and (b) a phase-family mixture that biases which
archetypes its applications draw. Counts are scaled by ``REPRO_SCALE``
when building the corpus.

The ``store_burst`` blindspot family appears only lightly in HDTR
(cloud/security logging behaviour) so that models trained on expert
counter sets — which cannot see store-queue pressure — develop the
systematic mispredictions the paper reports on ``roms_s`` (Figure 9).
The PF-selected counters include Store Queue Occupancy, so models
trained per Section 6 handle these phases.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro import rng as rng_mod
from repro.config import experiment_scale
from repro.workloads.generator import ApplicationSpec, generate_application

#: Table 1 application counts per category.
PAPER_CATEGORY_COUNTS: dict[str, int] = {
    "hpc_perf": 176,
    "cloud_security": 75,
    "ai_analytics": 34,
    "web_productivity": 171,
    "multimedia": 80,
    "games_rendering_ar": 57,
}

#: Table 1 trace count and application count.
PAPER_HDTR_TRACES = 2648
PAPER_HDTR_APPS = 593


@dataclasses.dataclass(frozen=True)
class Category:
    """One Table-1 application category."""

    name: str
    display_name: str
    server: bool
    paper_app_count: int
    family_weights: Mapping[str, float]


CATEGORIES: tuple[Category, ...] = (
    Category(
        name="hpc_perf",
        display_name="HPC & Perf.",
        server=True,
        paper_app_count=PAPER_CATEGORY_COUNTS["hpc_perf"],
        family_weights={
            "compute_fp": 0.30,
            "sparse_fp": 0.25,
            "bandwidth": 0.20,
            "dep_chain": 0.10,
            "compute_int": 0.10,
            "balanced": 0.05,
        },
    ),
    Category(
        name="cloud_security",
        display_name="Cloud & Security",
        server=True,
        paper_app_count=PAPER_CATEGORY_COUNTS["cloud_security"],
        family_weights={
            "frontend": 0.25,
            "branchy": 0.20,
            "compute_int": 0.20,
            "pointer_chase": 0.15,
            "balanced": 0.17,
            # Store bursts are rare in the training corpus — exactly
            # the long-tail behaviour the paper's blindspot analysis is
            # about. Expert counters cannot separate the few training
            # examples from abundant gateable memory phases; the PF set
            # (Store Queue Occupancy) can.
            "store_burst": 0.03,
        },
    ),
    Category(
        name="ai_analytics",
        display_name="AI & Analytics",
        server=True,
        paper_app_count=PAPER_CATEGORY_COUNTS["ai_analytics"],
        family_weights={
            "ai_kernel": 0.40,
            "bandwidth": 0.20,
            "pointer_chase": 0.20,
            "balanced": 0.10,
            "compute_fp": 0.10,
        },
    ),
    Category(
        name="web_productivity",
        display_name="Web & Productivity",
        server=False,
        paper_app_count=PAPER_CATEGORY_COUNTS["web_productivity"],
        family_weights={
            "branchy": 0.25,
            "frontend": 0.22,
            "balanced": 0.25,
            "low_activity": 0.13,
            "pointer_chase": 0.15,
        },
    ),
    Category(
        name="multimedia",
        display_name="Multimedia",
        server=False,
        paper_app_count=PAPER_CATEGORY_COUNTS["multimedia"],
        family_weights={
            "media": 0.50,
            "balanced": 0.20,
            "compute_fp": 0.15,
            "bandwidth": 0.15,
        },
    ),
    Category(
        name="games_rendering_ar",
        display_name="Games, Rendering & Aug. Reality",
        server=False,
        paper_app_count=PAPER_CATEGORY_COUNTS["games_rendering_ar"],
        family_weights={
            "media": 0.30,
            "compute_fp": 0.25,
            "branchy": 0.20,
            "balanced": 0.15,
            "ai_kernel": 0.10,
        },
    ),
)

_BY_NAME = {cat.name: cat for cat in CATEGORIES}


def get_category(name: str) -> Category:
    """Look up a category by name."""
    return _BY_NAME[name]


def scaled_category_counts(scale: float | None = None,
                           min_per_category: int = 4) -> dict[str, int]:
    """Per-category app counts scaled by ``REPRO_SCALE``.

    The paper's 593 applications shrink proportionally; every category
    keeps at least ``min_per_category`` applications so the corpus
    remains diverse at small scales.
    """
    scale = experiment_scale() if scale is None else scale
    # The default scale targets ~130 applications, enough for the
    # diversity experiment's trend while staying laptop-fast.
    base_fraction = 0.22 * scale
    return {
        cat.name: max(min_per_category,
                      int(round(cat.paper_app_count * base_fraction)))
        for cat in CATEGORIES
    }


def hdtr_corpus(seed: int,
                counts: Mapping[str, int] | None = None,
                ) -> list[ApplicationSpec]:
    """Generate the scaled HDTR application corpus.

    Returns one :class:`ApplicationSpec` per application, named
    ``{category}_{index:03d}``, in a stable order.
    """
    counts = dict(counts) if counts is not None else scaled_category_counts()
    apps: list[ApplicationSpec] = []
    for cat in CATEGORIES:
        n_apps = counts.get(cat.name, 0)
        for i in range(n_apps):
            app = generate_application(
                name=f"{cat.name}_{i:03d}",
                category=cat.name,
                families_weights=cat.family_weights,
                seed=rng_mod.derive_seed(seed, "hdtr", cat.name, i),
            )
            apps.append(app)
    return apps
