"""Synthetic workload substrate.

The paper trains on 2,648 proprietary traces of 593 client/server
applications (HDTR, Table 1) and tests on SPEC2017 SimPoint traces
(Table 2); neither is available offline. This package substitutes a
phase-structured synthetic workload model:

* :mod:`repro.workloads.phases` — a library of phase *archetypes*, each
  a bundle of microarchitecture-level "physics" (ILP, instruction mix,
  miss rates, store-queue pressure, ...) that determines per-mode IPC
  and telemetry.
* :mod:`repro.workloads.generator` — applications as Markov chains over
  phase instances, workloads as (application, input) pairs, traces as
  per-interval phase/physics sequences.
* :mod:`repro.workloads.categories` — the six Table-1 application
  categories with category-biased phase mixtures.
* :mod:`repro.workloads.spec2017` — a SPEC2017-like held-out suite with
  the paper's 20 benchmark names and per-app workload counts, including
  out-of-distribution phase families that create the blindspots of
  Figure 9.
* :mod:`repro.workloads.simpoints` — SimPoint-style representative
  region selection via k-means over basic-block vectors.
"""

from repro.workloads.categories import CATEGORIES, Category, hdtr_corpus
from repro.workloads.generator import (
    ApplicationSpec,
    PhaseSequence,
    TraceSpec,
    WorkloadSpec,
    generate_application,
    generate_trace,
)
from repro.workloads.phases import (
    PHASE_LIBRARY,
    PhaseArchetype,
    PhaseInstance,
    archetype_names,
    families,
    sample_phase_instance,
)
from repro.workloads.spec2017 import (
    SPEC2017_APPS,
    SpecBenchmark,
    spec2017_suite,
)

__all__ = [
    "CATEGORIES",
    "Category",
    "hdtr_corpus",
    "ApplicationSpec",
    "PhaseSequence",
    "TraceSpec",
    "WorkloadSpec",
    "generate_application",
    "generate_trace",
    "PHASE_LIBRARY",
    "PhaseArchetype",
    "PhaseInstance",
    "archetype_names",
    "families",
    "sample_phase_instance",
    "SPEC2017_APPS",
    "SpecBenchmark",
    "spec2017_suite",
]
