"""Shared execution engine for dataset-scale paths.

Three pieces, used together by every loop that fans out over traces,
configurations or folds:

* :class:`~repro.exec.parallel.ParallelMap` — serial/thread/process
  backends behind one ordered, chunked, deterministic ``map``;
* :class:`~repro.exec.simcache.SimCache` — a content-addressed on-disk
  cache of simulation outputs and built feature matrices;
* :data:`~repro.exec.stats.EXEC_STATS` — process-wide stage timings,
  cache hit/miss counts and worker utilisation, printed by the CLI's
  ``--exec-report`` flag.

The invariant the engine guarantees (and the tier-1 suite enforces):
for any seed, parallel and cached runs produce bit-identical results
to the serial uncached path.
"""

from repro.exec.parallel import (
    BACKENDS,
    ParallelMap,
    configure,
    default_parallel_map,
    reset_default,
)
from repro.exec.simcache import SimCache, default_simcache
from repro.exec.stats import EXEC_STATS, ExecStats

__all__ = [
    "BACKENDS",
    "EXEC_STATS",
    "ExecStats",
    "ParallelMap",
    "SimCache",
    "configure",
    "default_parallel_map",
    "default_simcache",
    "reset_default",
]
