"""Shared execution engine for dataset-scale paths.

Four pieces, used together by every loop that fans out over traces,
configurations or folds:

* :class:`~repro.exec.parallel.ParallelMap` — serial/thread/process/
  ``auto`` backends behind one ordered, chunked, deterministic
  ``map``, with persistent warm worker pools and adaptive chunk
  sizing;
* :class:`~repro.exec.arena.TraceArena` — a memory-mapped, zero-copy
  package of a trace corpus (plus shared objects and bulk arrays)
  that process-pool workers attach to by handle, shrinking task
  payloads to index lists;
* :mod:`~repro.exec.shmres` — the output half of the zero-copy story:
  process-pool workers hoist large result arrays into validated
  shared-memory segments and ship descriptors home instead of pickled
  ndarrays (``REPRO_EXEC_SHMRES`` kill-switch);
* :class:`~repro.exec.simcache.SimCache` — a content-addressed on-disk
  cache of simulation outputs and built feature matrices;
* :data:`~repro.exec.stats.EXEC_STATS` — process-wide stage timings,
  cache hit/miss counts, payload bytes, worker utilisation and
  resilience counters, printed by the CLI's ``--exec-report`` flag;
* :mod:`~repro.exec.faults` — deterministic, seedable fault injection
  (:class:`~repro.exec.faults.FaultPlan`, ``REPRO_FAULT_SPEC``) that
  exercises every recovery path above.

The invariant the engine guarantees (and the tier-1 suite enforces):
for any seed, parallel, cached and arena-backed runs produce
bit-identical results to the serial uncached path — and under any
fault plan, a run either still produces those bit-identical results
or raises a typed :class:`~repro.errors.ExecFaultError`; it never
silently returns a wrong answer.
"""

from repro.exec.arena import TraceArena, detach_all
from repro.exec.faults import (
    FaultPlan,
    active_plan,
    inject,
    install_fault_plan,
)
from repro.exec.parallel import (
    BACKENDS,
    ParallelMap,
    close_pools,
    configure,
    default_parallel_map,
    reset_default,
)
from repro.exec.shmres import ShmChunk
from repro.exec.simcache import SimCache, default_simcache
from repro.exec.stats import EXEC_STATS, ExecStats

__all__ = [
    "BACKENDS",
    "EXEC_STATS",
    "ExecStats",
    "FaultPlan",
    "ParallelMap",
    "ShmChunk",
    "SimCache",
    "TraceArena",
    "active_plan",
    "close_pools",
    "configure",
    "default_parallel_map",
    "default_simcache",
    "detach_all",
    "inject",
    "install_fault_plan",
    "reset_default",
]
