"""Shared-memory result return for process-backend fan-outs.

The :class:`~repro.exec.arena.TraceArena` (PR 3) closed the *input*
half of the zero-copy story: corpora ship to workers as one mmap
segment and task payloads shrink to ``(handle, indices)``. Results,
however, still came home fully pickled — on dataset-scale builds the
feature blocks, simulation tensors and prediction arrays inside each
chunk result dominated the bytes crossing the IPC boundary.

This module closes the output half. Workers write every large ndarray
in a chunk's results into a per-chunk memory-mapped *result segment*
and ship only the pickled skeleton, in which each hoisted array is
replaced by a ``(offset, dtype, shape, nbytes, crc32)`` descriptor
(:func:`encode`). The parent maps the segment read-only, validates it
— magic, version, declared length against the file size, per-block
bounds and CRC32, mirroring arena format v2 — reconstructs zero-copy
``np.frombuffer`` views, and unlinks the file immediately
(:func:`decode`): POSIX keeps the pages alive exactly as long as the
views are, so the happy path needs no reclamation registry at all.

Segment format::

    [magic "RPRSHMRS" | <I version | <Q used bytes | 64-byte-aligned
     blocks ...]

Lifecycle and fault safety:

* Each pool dispatch opens one *call spool* directory
  (:func:`open_call_spool`); workers ``mkstemp`` their segments inside
  it. Decoded segments are unlinked eagerly; whatever remains when the
  dispatch ends — segments orphaned by crashed, hung or degraded
  workers — is swept (and counted under ``shmres.reclaimed``) by
  :func:`close_call_spool`, and the whole spool root goes ``atexit``.
* A segment that fails validation (or an injected ``corrupt_result``
  fault) raises a typed
  :class:`~repro.errors.ResultIntegrityError`; the dispatcher
  quarantines shared-memory return for the rest of that call and
  retries the pending chunks over plain pickled results — bit-identical,
  just slower.
* ``REPRO_EXEC_SHMRES=0`` is the kill-switch restoring fully pickled
  returns everywhere.

Determinism: hoisting only changes *where result arrays live*, never
their values — the views compare equal element-for-element with the
arrays the worker produced, so shm-return runs are bit-identical to
pickled ones (enforced in ``tests/test_exec_parallel.py``). Thread
and serial execution never encode (there is no IPC boundary to cross);
only process-pool workers do.
"""

from __future__ import annotations

import atexit
import dataclasses
import io
import mmap
import os
import pickle
import shutil
import struct
import tempfile
import threading
import zlib

import numpy as np

from repro import config as config_mod
from repro.errors import ResultIntegrityError
from repro.exec import faults
from repro.exec.stats import EXEC_STATS

#: File magic identifying a result segment.
MAGIC = b"RPRSHMRS"

#: Result-segment format version; bumped on any layout change.
VERSION = 1

#: Fixed header: magic, ``<I`` version, ``<Q`` used-bytes.
_HEADER_LEN = len(MAGIC) + 4 + 8

#: Offset of the ``<Q`` used-bytes field (patched at finish time).
_USED_OFF = len(MAGIC) + 4

#: Block offsets are rounded up to this alignment (a cache line), so
#: views of any dtype the repo uses are naturally aligned.
_ALIGN = 64

#: Arrays smaller than this ride the pickle stream unchanged — below
#: it a descriptor costs about as many bytes as the array itself.
MIN_BLOCK_BYTES = 128

#: Initial segment preallocation; grown by doubling as blocks land.
_INITIAL_CAPACITY = 1 << 20

#: Tag marking this module's persistent-id descriptors.
_PID_TAG = "repro.shmres"

_SPOOL_LOCK = threading.Lock()
_SPOOL_ROOT: str | None = None


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def enabled(backend: str) -> bool:
    """Whether dispatch on ``backend`` should use result segments.

    Only the process backend crosses an IPC boundary; thread and
    serial execution return results by reference and never encode.
    """
    return backend == "process" and config_mod.exec_shmres_enabled()


@dataclasses.dataclass(frozen=True)
class ShmChunk:
    """What one chunk's results become on the wire.

    ``blob`` is the pickled result skeleton (descriptors inline via
    persistent ids); ``handle`` is the segment file path. This object
    — not the arrays — is what the pool pickles back to the parent.
    """

    handle: str
    blob: bytes
    n_blocks: int
    seg_bytes: int

    @property
    def ipc_bytes(self) -> int:
        """Approximate bytes this result costs on the IPC channel."""
        return len(self.blob) + len(self.handle.encode())


# ---------------------------------------------------------------------
# Worker side: encode.
# ---------------------------------------------------------------------
class _SegmentWriter:
    """One preallocated mmap-backed segment, append-only."""

    def __init__(self, spool: str) -> None:
        fd, path = tempfile.mkstemp(prefix="seg-", suffix=".shm",
                                    dir=spool)
        self.path = path
        self.n_blocks = 0
        self._fd = fd
        self._cap = _INITIAL_CAPACITY
        os.ftruncate(fd, self._cap)
        self._mm = mmap.mmap(fd, self._cap)
        self._mm[:len(MAGIC)] = MAGIC
        struct.pack_into("<I", self._mm, len(MAGIC), VERSION)
        self._used = _aligned(_HEADER_LEN)

    def put(self, arr: np.ndarray) -> tuple:
        """Append one contiguous array; return its descriptor tuple."""
        raw = arr.tobytes()
        at = _aligned(self._used)
        end = at + len(raw)
        if end > self._cap:
            new_cap = max(end, self._cap * 2)
            os.ftruncate(self._fd, new_cap)
            self._mm.resize(new_cap)
            self._cap = new_cap
        self._mm[at:end] = raw
        self._used = end
        self.n_blocks += 1
        return (at, arr.dtype.str, arr.shape, len(raw), zlib.crc32(raw))

    def finish(self) -> int:
        """Seal the segment: stamp used-bytes, trim the slack."""
        used = self._used
        struct.pack_into("<Q", self._mm, _USED_OFF, used)
        self._mm.flush()
        self._mm.close()
        os.ftruncate(self._fd, used)
        os.close(self._fd)
        return used

    def abort(self) -> None:
        """Discard a half-written segment (encode failed midway)."""
        try:
            self._mm.close()
        except (BufferError, ValueError):
            pass
        try:
            os.close(self._fd)
        except OSError:
            pass
        try:
            os.unlink(self.path)
        except OSError:
            pass


class _HoistingPickler(pickle.Pickler):
    """Pickler that diverts large ndarrays into a result segment.

    The segment is created lazily on the first qualifying array, so a
    chunk of small results never touches the filesystem.
    """

    def __init__(self, file, spool: str) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._spool = spool
        self.writer: _SegmentWriter | None = None

    def persistent_id(self, obj):
        if (type(obj) is np.ndarray and obj.nbytes >= MIN_BLOCK_BYTES
                and not obj.dtype.hasobject and obj.dtype.kind != "V"):
            if self.writer is None:
                self.writer = _SegmentWriter(self._spool)
            ref = self.writer.put(np.ascontiguousarray(obj))
            return (_PID_TAG, VERSION) + ref
        return None


def encode(results, spool: str):
    """Worker-side: hoist large result arrays into a segment.

    Returns a :class:`ShmChunk` when at least one array was hoisted,
    else ``results`` unchanged (nothing crossed the threshold — let
    the pool pickle them as before). Pickling errors propagate like
    any task error; a half-written segment is discarded first.
    """
    buf = io.BytesIO()
    pickler = _HoistingPickler(buf, spool)
    try:
        pickler.dump(results)
    except Exception:
        if pickler.writer is not None:
            pickler.writer.abort()
        raise
    if pickler.writer is None:
        return results
    seg_bytes = pickler.writer.finish()
    EXEC_STATS.incr("shmres.segments")
    EXEC_STATS.incr("shmres.segment_bytes", seg_bytes)
    return ShmChunk(handle=pickler.writer.path, blob=buf.getvalue(),
                    n_blocks=pickler.writer.n_blocks,
                    seg_bytes=seg_bytes)


# ---------------------------------------------------------------------
# Parent side: decode.
# ---------------------------------------------------------------------
class _SegmentReader:
    """Map and validate one result segment; serve zero-copy views."""

    def __init__(self, handle: str) -> None:
        self._handle = handle
        try:
            with open(handle, "rb") as fh:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise ResultIntegrityError(
                f"result segment {handle} cannot be mapped: {exc}"
            ) from exc
        self._mm = mm
        try:
            if len(mm) < _HEADER_LEN:
                raise ResultIntegrityError(
                    f"result segment {handle} is truncated "
                    f"({len(mm)} bytes, need at least {_HEADER_LEN})"
                )
            if mm[:len(MAGIC)] != MAGIC:
                raise ResultIntegrityError(
                    f"{handle} is not a result segment (bad magic)"
                )
            (version,) = struct.unpack_from("<I", mm, len(MAGIC))
            if version != VERSION:
                raise ResultIntegrityError(
                    f"result segment {handle} has version {version}, "
                    f"expected {VERSION}"
                )
            (used,) = struct.unpack_from("<Q", mm, _USED_OFF)
            if used > len(mm):
                raise ResultIntegrityError(
                    f"result segment {handle} declares {used} used "
                    f"bytes but holds only {len(mm)}"
                )
            self._used = used
        except ResultIntegrityError:
            mm.close()
            raise

    def load(self, ref: tuple) -> np.ndarray:
        offset, dtype, shape, nbytes, crc = ref
        if offset < _HEADER_LEN or offset + nbytes > self._used:
            raise ResultIntegrityError(
                f"result block [{offset}, {offset + nbytes}) is out of "
                f"bounds in segment {self._handle} ({self._used} bytes)"
            )
        raw = memoryview(self._mm)[offset:offset + nbytes]
        if zlib.crc32(raw) != crc:
            raise ResultIntegrityError(
                f"result block at offset {offset} in segment "
                f"{self._handle} failed its checksum"
            )
        dt = np.dtype(dtype)
        view = np.frombuffer(self._mm, dtype=dt,
                             count=nbytes // dt.itemsize, offset=offset)
        return view.reshape(shape)


class _HoistedUnpickler(pickle.Unpickler):
    def __init__(self, file, reader: _SegmentReader) -> None:
        super().__init__(file)
        self._reader = reader

    def persistent_load(self, pid):
        if (not isinstance(pid, tuple) or len(pid) != 7
                or pid[0] != _PID_TAG):
            raise ResultIntegrityError(
                f"unrecognised persistent reference {pid!r}"
            )
        if pid[1] != VERSION:
            raise ResultIntegrityError(
                f"result descriptor has version {pid[1]}, "
                f"expected {VERSION}"
            )
        return self._reader.load(pid[2:])


def _unlink(handle: str) -> None:
    try:
        os.unlink(handle)
    except OSError:
        pass


def decode(payload, stage: str | None = None):
    """Parent-side: resolve a :class:`ShmChunk` back into results.

    Non-:class:`ShmChunk` payloads pass through unchanged (pickled
    returns, thread/serial results). The segment file is unlinked
    before returning — success or failure — so a decoded dispatch
    leaves nothing behind; the mapped pages stay alive as long as the
    returned views do. Any validation failure (or an injected
    ``corrupt_result`` fault) raises
    :class:`~repro.errors.ResultIntegrityError`.
    """
    if not isinstance(payload, ShmChunk):
        return payload
    if faults.should_inject("corrupt_result", payload.handle):
        _unlink(payload.handle)
        raise ResultIntegrityError(
            f"injected result-segment corruption reading "
            f"{payload.handle} (stage {stage!r})"
        )
    try:
        reader = _SegmentReader(payload.handle)
        try:
            results = _HoistedUnpickler(io.BytesIO(payload.blob),
                                        reader).load()
        except ResultIntegrityError:
            raise
        except Exception as exc:
            raise ResultIntegrityError(
                f"result blob for segment {payload.handle} does not "
                f"unpickle: {exc}"
            ) from exc
    finally:
        _unlink(payload.handle)
    EXEC_STATS.incr("shmres.decodes")
    return results


def record_result_sample(stage: str, payload) -> None:
    """Record the IPC size of one representative chunk result.

    ``<stage>.result_bytes / <stage>.result_tasks`` then reads as
    bytes returned per task — the output-side twin of the arena's
    ``payload_bytes`` sampling. For pickled payloads the size is
    measured by re-pickling once per call (same cost model as
    :meth:`ParallelMap._sample_payload`).
    """
    if isinstance(payload, ShmChunk):
        nbytes = payload.ipc_bytes
    else:
        try:
            nbytes = len(pickle.dumps(payload,
                                      protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            return
    EXEC_STATS.incr(f"{stage}.result_bytes", nbytes)
    EXEC_STATS.incr(f"{stage}.result_tasks", 1)


# ---------------------------------------------------------------------
# Spool lifecycle.
# ---------------------------------------------------------------------
def _spool_root() -> str:
    global _SPOOL_ROOT
    with _SPOOL_LOCK:
        if _SPOOL_ROOT is None or not os.path.isdir(_SPOOL_ROOT):
            _SPOOL_ROOT = tempfile.mkdtemp(prefix="repro-shmres-")
        return _SPOOL_ROOT


def open_call_spool() -> str:
    """A fresh per-dispatch directory for workers' result segments."""
    return tempfile.mkdtemp(prefix="call-", dir=_spool_root())


def close_call_spool(spool: str | None) -> int:
    """Sweep one dispatch's spool directory; returns orphans reclaimed.

    Decoded segments were unlinked eagerly, so anything still present
    was written by a worker that crashed, hung past its timeout, or
    was abandoned when the dispatch degraded — counted under
    ``shmres.reclaimed``.
    """
    if spool is None:
        return 0
    try:
        orphans = len(os.listdir(spool))
    except OSError:
        return 0
    if orphans:
        EXEC_STATS.incr("shmres.reclaimed", orphans)
    shutil.rmtree(spool, ignore_errors=True)
    return orphans


@atexit.register
def _cleanup_spool() -> None:
    global _SPOOL_ROOT
    with _SPOOL_LOCK:
        root, _SPOOL_ROOT = _SPOOL_ROOT, None
    if root is not None:
        shutil.rmtree(root, ignore_errors=True)
