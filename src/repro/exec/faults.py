"""Deterministic, seedable fault injection for the execution engine.

The paper's guardrail philosophy — bound the damage when the predictor
misfires — applies to the execution substrate itself: the engine must
*detect* worker crashes, hung tasks, corrupted cache entries and stale
arena segments, and either recover to bit-identical results or raise a
typed :class:`~repro.errors.ExecFaultError`. This module provides the
chaos half of that contract: a :class:`FaultPlan` describes, per fault
kind, the probability that a given fault *site* fires, and the engine
consults :func:`should_inject` at each site. Decisions are pure
functions of ``(plan seed, kind, site key, occurrence)`` — no global
RNG is consumed — so a plan replays identically and tests can target
exact sites.

Fault kinds (rates in ``[0, 1]``):

``crash``
    A pool worker dies mid-task. Process workers genuinely call
    ``os._exit`` (surfacing as ``BrokenProcessPool`` in the parent);
    thread workers raise :class:`~repro.errors.WorkerCrashError`.
    Never fires on the serial path — there is no worker to kill.
``hang``
    A pooled task sleeps ``hang_s`` seconds before running, tripping
    the per-task timeout when one is configured.
``payload``
    Task submission is made to fail as if the payload could not be
    pickled, exercising the serial fallback.
``corrupt_cache``
    A byte of the on-disk SimCache entry is flipped *before* it is
    read, exercising real checksum detection and quarantine.
``corrupt_arena``
    An arena attach fails integrity validation, exercising the
    pickled-dispatch fallback at every arena call site.
``corrupt_result``
    A shared-memory *result* segment fails validation when the parent
    decodes it, exercising the quarantine → pickled-return retry in
    :meth:`~repro.exec.parallel.ParallelMap._pool_dispatch`.

Serve-site fault kinds (injected at named sites in
:mod:`repro.serve.protocol`, :mod:`repro.serve.batcher` and
:mod:`repro.serve.server`; see the serve failure ladder in DESIGN.md):

``conn_drop``
    The daemon abruptly closes a connection instead of writing the
    response frame, exercising client reconnect-on-drop plus
    server-side idempotent-key deduplication.
``slow_peer``
    The daemon stalls mid-frame: a partial response frame is written,
    then ``hang_s`` seconds pass before the rest, exercising partial-
    frame reassembly and client hedging.
``corrupt_frame``
    The first body byte of a response frame is overwritten with an
    invalid UTF-8 byte before sending, so the client's decode *always*
    fails with a typed :class:`~repro.errors.ProtocolError` (never a
    silently-valid mutated JSON), exercising retry + dedup.
``batch_hang``
    A serve batch executor sleeps ``hang_s`` seconds before running,
    tripping the supervisor's ``REPRO_SERVE_BATCH_TIMEOUT`` watchdog
    when the sleep exceeds it.
``daemon_crash``
    The daemon process dies (``os._exit``) while a request is being
    dispatched, exercising supervised re-exec and checkpoint
    fast-restart.

Activate a plan programmatically (:func:`install_fault_plan`, or the
:func:`inject` context manager in tests) or via the environment::

    REPRO_FAULT_SPEC="seed=7,crash=0.05,corrupt_cache=0.1"

Process-pool workers inherit the spec through the environment (and,
under ``fork``, the installed plan), so injection reaches every layer
of a parallel run.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import os
import threading
import time

from repro import config as config_mod
from repro.config import FAULT_SPEC_ENV_VAR
from repro.errors import ConfigurationError
from repro.exec.stats import EXEC_STATS

#: Recognised fault kinds (each is a rate field of :class:`FaultPlan`).
FAULT_KINDS = ("crash", "hang", "payload", "corrupt_cache",
               "corrupt_arena", "corrupt_result",
               "conn_drop", "slow_peer", "corrupt_frame", "batch_hang",
               "daemon_crash")

#: The serve-site subset of :data:`FAULT_KINDS` (injected in
#: ``repro.serve``, not the execution engine).
SERVE_FAULT_KINDS = ("conn_drop", "slow_peer", "corrupt_frame",
                     "batch_hang", "daemon_crash")

#: Spec keys that are not rates.
_SCALAR_KEYS = ("seed", "hang_s")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    Every rate is the probability that one *occurrence* of a fault
    site fires; the decision hashes ``(seed, kind, key, occurrence)``
    so it is reproducible and independent of execution order elsewhere.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    payload: float = 0.0
    corrupt_cache: float = 0.0
    corrupt_arena: float = 0.0
    corrupt_result: float = 0.0
    conn_drop: float = 0.0
    slow_peer: float = 0.0
    corrupt_frame: float = 0.0
    batch_hang: float = 0.0
    daemon_crash: float = 0.0
    hang_s: float = 0.25

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault rate {kind} must be in [0, 1], got {rate}"
                )
        if self.hang_s < 0:
            raise ConfigurationError(
                f"hang_s must be >= 0, got {self.hang_s}"
            )

    # ------------------------------------------------------------------
    # Spec round-trip (environment / CLI).
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"seed=7,crash=0.05,..."`` into a plan."""
        fields: dict[str, float] = {}
        for part in spec.replace(":", ",").split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigurationError(
                    f"fault spec entry {part!r} is not key=value "
                    f"(full spec: {spec!r})"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in FAULT_KINDS and key not in _SCALAR_KEYS:
                raise ConfigurationError(
                    f"unknown fault spec key {key!r}; expected one of "
                    f"{FAULT_KINDS + _SCALAR_KEYS}"
                )
            try:
                fields[key] = float(raw)
            except ValueError as exc:
                raise ConfigurationError(
                    f"fault spec value for {key!r} must be numeric, "
                    f"got {raw!r}"
                ) from exc
        if "seed" in fields:
            fields["seed"] = int(fields["seed"])
        return cls(**fields)

    def spec(self) -> str:
        """Canonical spec string (``parse(plan.spec()) == plan``)."""
        parts = [f"seed={self.seed}"]
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if rate > 0.0:
                parts.append(f"{kind}={rate}")
        if self.hang_s != 0.25:
            parts.append(f"hang_s={self.hang_s}")
        return ",".join(parts)

    @property
    def any_enabled(self) -> bool:
        return any(getattr(self, kind) > 0.0 for kind in FAULT_KINDS)

    # ------------------------------------------------------------------
    # Decisions.
    # ------------------------------------------------------------------
    def fires(self, kind: str, key: str, occurrence: int = 0) -> bool:
        """Whether this occurrence of a fault site fires (pure)."""
        rate = getattr(self, kind)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}/{kind}/{key}/{occurrence}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "little") / float(2 ** 64)
        return draw < rate


# ---------------------------------------------------------------------
# Process-wide active plan.
# ---------------------------------------------------------------------
_LOCK = threading.Lock()
_INSTALLED: FaultPlan | None = None
#: Memoised parse of the env spec: (raw spec string, parsed plan).
_ENV_CACHE: tuple[str, FaultPlan] | None = None
#: Per-(kind, key) occurrence counters, so repeated visits to one site
#: draw fresh decisions (a quarantined cache entry is not re-corrupted
#: forever) while single-shot sites stay deterministic.
_OCCURRENCES: dict[tuple[str, str], int] = {}


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Install (or, with ``None``, clear) the process-wide plan.

    An installed plan takes precedence over ``REPRO_FAULT_SPEC``.
    Occurrence counters reset so each installation replays identically.
    """
    global _INSTALLED
    with _LOCK:
        _INSTALLED = plan
        _OCCURRENCES.clear()


def active_plan() -> FaultPlan | None:
    """The installed plan, else the config-driven plan, else ``None``.

    The spec string comes from :func:`repro.config.fault_spec` (the
    ``REPRO_FAULT_SPEC`` knob on :class:`~repro.config.ExecConfig`),
    so scoped ``ExecConfig.override(...)`` blocks can inject faults
    without mutating the environment. The parse is memoised per spec.
    """
    global _ENV_CACHE
    with _LOCK:
        if _INSTALLED is not None:
            return _INSTALLED
        raw = config_mod.fault_spec()
        if not raw:
            return None
        if _ENV_CACHE is None or _ENV_CACHE[0] != raw:
            _ENV_CACHE = (raw, FaultPlan.parse(raw))
        return _ENV_CACHE[1]


@contextlib.contextmanager
def inject(plan: FaultPlan):
    """Run a ``with`` block under a fault plan (tests, chaos harness)."""
    previous = _INSTALLED
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        install_fault_plan(previous)


def should_inject(kind: str, key: str,
                  track_occurrence: bool = True) -> bool:
    """Consult the active plan at one fault site.

    ``track_occurrence=False`` keys the decision on the site alone —
    used for sites whose key already encodes the retry attempt, so the
    decision does not depend on which worker observed the site first.
    Fired faults are counted under ``faults.injected.<kind>``.
    """
    plan = active_plan()
    if plan is None or getattr(plan, kind) <= 0.0:
        return False
    occurrence = 0
    if track_occurrence:
        with _LOCK:
            occurrence = _OCCURRENCES.get((kind, key), 0)
            _OCCURRENCES[(kind, key)] = occurrence + 1
    fired = plan.fires(kind, key, occurrence)
    if fired:
        EXEC_STATS.incr(f"faults.injected.{kind}")
    return fired


def maybe_hang(key: str) -> bool:
    """Sleep ``hang_s`` if the hang fault fires at this site."""
    plan = active_plan()
    if plan is None or plan.hang <= 0.0:
        return False
    if not should_inject("hang", key, track_occurrence=False):
        return False
    time.sleep(plan.hang_s)
    return True
