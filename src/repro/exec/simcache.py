"""Content-addressed on-disk simulation cache.

Benchmarks, dataset builders and hyperparameter sweeps revisit the
same traces over and over — across processes, across runs, across
PRs. The in-process LRU memo in :class:`~repro.uarch.interval_model.
IntervalModel` only helps within one process; this cache persists two
kinds of artefacts to disk so repeated work is skipped entirely:

* **simulation results** — the full per-interval output of
  ``IntervalModel.simulate`` (IPC, cycles, the base-signal matrix);
* **built datasets** — the feature matrices produced by
  :func:`repro.data.builders.build_mode_dataset`.

Entries are *content addressed*: the key is a SHA-256 over everything
the output is a pure function of — the trace specification (seed,
phase sequence, per-phase physics), the mode, the full machine
configuration, and a schema version bumped whenever the simulator's
numerics change. Anything that would alter the output therefore
changes the key, which is how invalidation works; stale entries are
simply never looked up again.

The cache is off by default. Point ``REPRO_SIMCACHE_DIR`` at a
directory (or pass a :class:`SimCache` explicitly) to enable it.
Writes are atomic (temp file + rename) so concurrent workers of a
process pool can share one cache directory safely.

Integrity: every entry stores a ``__digest__`` — a SHA-256 over its
metadata and the exact bytes of every array — which is re-verified on
load (``REPRO_SIMCACHE_VERIFY=0`` skips the check for overhead
benchmarking). An entry that fails to parse *or* fails its digest is
moved into ``<root>/quarantine/`` (counted under
``simcache.quarantine``) and reported as a miss, so bit-rot or a
torn write on a filesystem without atomic replace can never feed a
silently-wrong artefact back into an experiment — the entry is simply
recomputed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro import config as config_mod
from repro.errors import CacheCorruptionError
from repro.exec import faults
from repro.exec.stats import EXEC_STATS

#: Bump when simulator numerics or storage layout change: old entries
#: stop being addressable and are naturally evicted by disuse.
#: (2: per-entry ``__digest__`` checksum became mandatory.)
SCHEMA_VERSION = 2

#: Environment variable enabling the cache at a directory (alias of
#: :data:`repro.config.SIMCACHE_DIR_ENV_VAR`; kept for import compat).
SIMCACHE_ENV_VAR = config_mod.SIMCACHE_DIR_ENV_VAR


def _flip_byte(path: Path) -> None:
    """XOR one mid-file byte in place (``corrupt_cache`` injection).

    The flip lands in real entry bytes, so detection exercises the same
    digest verification that catches organic bit-rot — the injector
    does not get to fake the corruption *or* the detection.
    """
    try:
        size = path.stat().st_size
        if size == 0:
            return
        with open(path, "r+b") as fh:
            fh.seek(size // 2)
            byte = fh.read(1)
            fh.seek(size // 2)
            fh.write(bytes([byte[0] ^ 0xFF]) if byte else b"\xff")
    except OSError:
        pass  # a vanished/unwritable entry is itself a fault; move on


def _machine_token(machine) -> str:
    """Canonical string for a MachineConfig (nested dataclasses)."""
    return json.dumps(dataclasses.asdict(machine), sort_keys=True,
                      default=str)


def trace_fingerprint(trace) -> bytes:
    """Stable digest of everything a simulation reads from a trace."""
    h = hashlib.sha256()
    h.update(trace.name.encode())
    h.update(str(trace.seed).encode())
    h.update(str(trace.interval_instructions).encode())
    h.update(np.ascontiguousarray(trace.phase_seq, dtype=np.int64).tobytes())
    # The phase physics table fully determines what the phase indices
    # mean; two apps with identical names but different phase draws
    # must not collide.
    h.update(np.ascontiguousarray(trace.physics(), dtype=np.float64)
             .tobytes())
    return h.digest()


class SimCache:
    """Content-addressed store for simulation and dataset artefacts."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Keys.
    # ------------------------------------------------------------------
    @staticmethod
    def _digest(*tokens: bytes | str) -> str:
        h = hashlib.sha256()
        h.update(f"schema={SCHEMA_VERSION}".encode())
        for token in tokens:
            h.update(b"\x00")
            h.update(token if isinstance(token, bytes) else token.encode())
        return h.hexdigest()

    def sim_key(self, trace, mode, machine) -> str:
        """Key for one ``IntervalModel.simulate(trace, mode)`` output."""
        return self._digest(b"sim", trace_fingerprint(trace), mode.value,
                            _machine_token(machine))

    @staticmethod
    def _tier_tokens(tier: str) -> tuple[str, ...]:
        """Extra digest tokens for a non-default simulator tier.

        The default ``"interval"`` tier contributes nothing, so every
        key minted before tiers existed — and every key minted with the
        surrogate disabled — stays byte-identical. Artefacts derived
        under the surrogate tier live in their own key namespace and
        can never shadow interval-tier truth.
        """
        return () if tier == "interval" else (f"tier={tier}",)

    def snapshot_key(self, trace, mode, machine, counter_ids,
                     catalog_token: str, tier: str = "interval") -> str:
        """Key for one materialised telemetry snapshot.

        The snapshot is a pure function of the simulation inputs plus
        the counter catalog and the requested counter subset, so all of
        them participate in the digest.
        """
        ids = np.asarray(counter_ids, dtype=np.int64)
        return self._digest(b"snapshot", trace_fingerprint(trace),
                            mode.value, _machine_token(machine),
                            ids.tobytes(), catalog_token,
                            *self._tier_tokens(tier))

    def labels_key(self, trace, sla, granularity_factor: int,
                   machine, tier: str = "interval") -> str:
        """Key for one trace's gating ``LabelSet`` at one granularity."""
        return self._digest(
            b"labels", trace_fingerprint(trace),
            f"{sla.performance_floor}/g={granularity_factor}",
            _machine_token(machine),
            *self._tier_tokens(tier),
        )

    def dataset_key(self, traces, mode, counter_ids, sla,
                    granularity_factor: int, horizon: int, machine,
                    catalog_token: str = "",
                    tier: str = "interval") -> str:
        """Key for one built per-mode gating dataset."""
        ids = np.asarray(counter_ids, dtype=np.int64)
        return self._digest(
            b"dataset",
            b"".join(trace_fingerprint(t) for t in traces),
            mode.value,
            ids.tobytes(),
            f"{sla.performance_floor}/{sla.window_ms}/{sla.guarantee}",
            f"g={granularity_factor}/h={horizon}",
            _machine_token(machine),
            catalog_token,
            *self._tier_tokens(tier),
        )

    def surrogate_key(self, machine, probes, version: str) -> str:
        """Key for one trained surrogate tier.

        Content-addressed on the machine configuration and the full
        probe-corpus fingerprint, so a surrogate is only ever loaded by
        a process that would have trained the identical one.
        """
        return self._digest(
            b"surrogate", version,
            b"".join(trace_fingerprint(t) for t in probes),
            _machine_token(machine),
        )

    # ------------------------------------------------------------------
    # Storage.
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    @staticmethod
    def _entry_digest(payload: dict[str, np.ndarray], meta: dict) -> str:
        """SHA-256 over an entry's metadata and exact array bytes."""
        h = hashlib.sha256()
        h.update(json.dumps(meta, sort_keys=True).encode())
        for name in sorted(payload):
            arr = np.ascontiguousarray(payload[name])
            h.update(name.encode())
            h.update(arr.dtype.str.encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    def _write(self, key: str, payload: dict[str, np.ndarray],
               meta: dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        digest = self._entry_digest(payload, meta)
        try:
            with open(tmp, "wb") as fh:
                # Uncompressed: entries are small (T x ~50 floats) and
                # load latency is the whole point of the cache.
                np.savez(fh, __meta__=np.array(json.dumps(meta)),
                         __digest__=np.array(digest), **payload)
            os.replace(tmp, path)
            EXEC_STATS.incr("simcache.bytes_written",
                            path.stat().st_size)
        finally:
            tmp.unlink(missing_ok=True)
        EXEC_STATS.incr("simcache.store")

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is recomputed, not trusted.

        Quarantined files are kept (under ``<root>/quarantine/``) rather
        than deleted: they are the forensic evidence for what corrupted
        them, and keeping them costs one rename.
        """
        qdir = self.root / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            # A concurrent reader may have quarantined it first; as
            # long as the entry is gone from the live tree we are done.
            path.unlink(missing_ok=True)
        EXEC_STATS.incr("simcache.quarantine")

    def _read(self, key: str) -> tuple[dict, dict] | None:
        path = self._path(key)
        if faults.should_inject("corrupt_cache", key) and path.exists():
            _flip_byte(path)
        if not path.exists():
            EXEC_STATS.incr("simcache.miss")
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["__meta__"]))
                payload = {name: data[name] for name in data.files
                           if name not in ("__meta__", "__digest__")}
                if config_mod.simcache_verify_enabled():
                    stored = (str(data["__digest__"])
                              if "__digest__" in data.files else None)
                    expected = self._entry_digest(payload, meta)
                    if stored != expected:
                        raise CacheCorruptionError(
                            f"cache entry {key} failed its integrity "
                            f"check (stored digest {stored!r})"
                        )
        except (CacheCorruptionError, OSError, EOFError, KeyError,
                ValueError, zipfile.BadZipFile) as exc:
            # OSError/EOFError/BadZipFile: truncated or unreadable
            # container (e.g. a torn write on a filesystem without
            # atomic replace). KeyError/ValueError: parseable container
            # with missing or malformed members (json decode errors are
            # ValueErrors). CacheCorruptionError: digest mismatch.
            # All route through quarantine and read as a miss; anything
            # else (a genuine bug) propagates.
            del exc
            self._quarantine(path)
            EXEC_STATS.incr("simcache.miss")
            return None
        EXEC_STATS.incr("simcache.hit")
        return payload, meta

    def evict(self, key: str) -> None:
        """Drop one entry (benchmarks isolating specific cache tiers)."""
        self._path(key).unlink(missing_ok=True)

    def has(self, key: str) -> bool:
        """Whether an entry exists, without reading it (prewarm probes)."""
        return self._path(key).exists()

    # ------------------------------------------------------------------
    # Simulation results.
    # ------------------------------------------------------------------
    def store_result(self, key: str, result) -> None:
        """Persist one ``IntervalResult``."""
        self._write(key, {
            "ipc": result.ipc,
            "cycles": result.cycles,
            "signals": result.signals,
        }, {
            "trace_name": result.trace_name,
            "mode": result.mode.value,
            "interval_instructions": result.interval_instructions,
        })

    def load_result(self, key: str):
        """Load one ``IntervalResult`` or ``None`` on miss."""
        entry = self._read(key)
        if entry is None:
            return None
        payload, meta = entry
        from repro.uarch.interval_model import IntervalResult
        from repro.uarch.modes import Mode
        return IntervalResult(
            trace_name=meta["trace_name"],
            mode=Mode(meta["mode"]),
            ipc=payload["ipc"],
            cycles=payload["cycles"],
            signals=payload["signals"],
            interval_instructions=int(meta["interval_instructions"]),
        )

    # ------------------------------------------------------------------
    # Telemetry snapshots.
    # ------------------------------------------------------------------
    def store_snapshot(self, key: str, snapshot) -> None:
        """Persist one ``TelemetrySnapshot``.

        ``normalized`` is not stored: it is ``counts / cycles[:, None]``
        and the load path recomputes it with the exact same division.
        """
        self._write(key, {
            "counter_ids": snapshot.counter_ids,
            "counts": snapshot.counts,
            "cycles": snapshot.cycles,
            "ipc": snapshot.ipc,
        }, {
            "trace_name": snapshot.trace_name,
            "mode": snapshot.mode.value,
            "interval_instructions": snapshot.interval_instructions,
        })

    def load_snapshot(self, key: str):
        """Load one ``TelemetrySnapshot`` or ``None`` on miss."""
        entry = self._read(key)
        if entry is None:
            return None
        payload, meta = entry
        from repro.telemetry.collector import TelemetrySnapshot
        from repro.uarch.modes import Mode
        return TelemetrySnapshot(
            trace_name=meta["trace_name"],
            mode=Mode(meta["mode"]),
            counter_ids=payload["counter_ids"],
            counts=payload["counts"],
            normalized=payload["counts"] / payload["cycles"][:, None],
            cycles=payload["cycles"],
            ipc=payload["ipc"],
            interval_instructions=int(meta["interval_instructions"]),
        )

    # ------------------------------------------------------------------
    # Gating label sets.
    # ------------------------------------------------------------------
    def store_labels(self, key: str, labels) -> None:
        """Persist one ``LabelSet``.

        Only the coarsened per-mode cycle arrays are stored; IPCs, the
        ratio and the binary labels are recomputed on load with the
        exact operations of ``gating_labels``, so the loaded set is
        bit-identical to a computed one.
        """
        self._write(key, {
            "cycles_high": labels.cycles_high,
            "cycles_low": labels.cycles_low,
        }, {
            "trace_name": labels.trace_name,
            "granularity": labels.granularity,
            "sla_floor": labels.sla_floor,
        })

    def load_labels(self, key: str):
        """Load one ``LabelSet`` or ``None`` on miss."""
        entry = self._read(key)
        if entry is None:
            return None
        payload, meta = entry
        from repro.core.labels import LabelSet
        inst = int(meta["granularity"])
        floor = float(meta["sla_floor"])
        cycles_high = payload["cycles_high"]
        cycles_low = payload["cycles_low"]
        ipc_high = inst / cycles_high
        ipc_low = inst / cycles_low
        ratio = ipc_low / ipc_high
        return LabelSet(
            trace_name=meta["trace_name"],
            labels=(ratio >= floor).astype(np.int64),
            ratio=ratio,
            ipc_high=ipc_high,
            ipc_low=ipc_low,
            cycles_high=cycles_high,
            cycles_low=cycles_low,
            granularity=inst,
            sla_floor=floor,
        )

    # ------------------------------------------------------------------
    # Built datasets.
    # ------------------------------------------------------------------
    def store_dataset(self, key: str, dataset) -> None:
        """Persist one built ``GatingDataset``."""
        self._write(key, {
            "x": dataset.x,
            "y": dataset.y,
            "groups": dataset.groups,
            "workloads": dataset.workloads,
            "traces": dataset.traces,
            "counter_ids": dataset.counter_ids,
        }, {
            "mode": dataset.mode.value,
            "granularity": dataset.granularity,
            "sla_floor": dataset.sla_floor,
        })

    def load_dataset(self, key: str):
        """Load one built ``GatingDataset`` or ``None`` on miss."""
        entry = self._read(key)
        if entry is None:
            return None
        payload, meta = entry
        from repro.data.dataset import GatingDataset
        from repro.uarch.modes import Mode
        return GatingDataset(
            x=payload["x"],
            y=payload["y"],
            groups=payload["groups"],
            workloads=payload["workloads"],
            traces=payload["traces"],
            mode=Mode(meta["mode"]),
            counter_ids=payload["counter_ids"],
            granularity=int(meta["granularity"]),
            sla_floor=float(meta["sla_floor"]),
        )


    # ------------------------------------------------------------------
    # Trained surrogates.
    # ------------------------------------------------------------------
    def store_surrogate(self, key: str,
                        payload: dict[str, np.ndarray],
                        meta: dict) -> None:
        """Persist one trained surrogate tier (weights + gate state)."""
        self._write(key, payload, meta)

    def load_surrogate(self, key: str) -> tuple[dict, dict] | None:
        """Load one trained surrogate, or ``None`` on miss.

        Corrupt entries quarantine and read as misses like every other
        tier, so a damaged surrogate is retrained, never trusted.
        """
        return self._read(key)


def default_simcache() -> SimCache | None:
    """Config-driven cache: ``REPRO_SIMCACHE_DIR`` names the directory.

    Reads through :func:`repro.config.simcache_dir`, so an installed
    :class:`~repro.config.ExecConfig` override wins over the raw
    environment variable.
    """
    root = config_mod.simcache_dir()
    if not root:
        return None
    return SimCache(root)
