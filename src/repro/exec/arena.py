"""Zero-copy trace arena for process-backend fan-outs.

The process backend's historical problem (BENCH_perf.json, PR 1-2) was
data movement: every task pickled full :class:`TraceSpec` objects —
each dragging its application spec, phase physics and transition
matrices — plus the closure state of the worker function (the
``AdaptiveCPU`` with its predictor, machine config and interval model)
across the IPC boundary, per chunk, per call. On corpora of hundreds
of traces the pickle bytes dwarfed the simulation work and the process
backend lost to serial.

:class:`TraceArena` fixes the movement half of that. It packs the
corpus once into a single memory-mapped file:

``[magic | header length | header CRC32 | pickled header |
aligned raw data region]``

The *header* carries everything small-but-shared exactly once: the
deduplicated application specs, per-trace metadata rows, named-array
descriptors, the machine config, and any caller-supplied shared
objects (the ``AdaptiveCPU`` itself, a telemetry collector, a model
factory). The *data region* holds the bulk numpy payload — each
trace's phase sequence and any named arrays (feature matrices, label
vectors, bootstrap indices) — at 16-byte-aligned offsets.

Workers attach by *handle* (the file path): the OS maps the same pages
into every worker, ``np.frombuffer`` reconstructs read-only views
without copying, and task payloads shrink to ``(handle, [indices])``
tuples. Attachments are memoised per process in a small LRU, so a
persistent pool attaches once per arena and every later chunk is a
dictionary hit.

Determinism: the arena only changes *where arrays live*, never their
values. Reconstructed traces compare equal element-for-element with
the originals (``tests/test_exec_arena.py``), so arena-backed runs are
bit-identical to pickled dispatch — enforced alongside the
serial == thread == process identity in ``tests/test_exec_parallel.py``.

Integrity: :meth:`TraceArena._open` validates the whole segment before
any view is handed out — magic, declared header length against the
file size, a CRC32 of the pickled header, the format version, and the
declared data-region length. Every violation (including an injected
``corrupt_arena`` fault) raises a typed
:class:`~repro.errors.ArenaIntegrityError`, which arena call sites
catch to fall back to pickled dispatch: a stale, truncated or
bit-rotted segment costs throughput, never correctness.
"""

from __future__ import annotations

import atexit
import mmap
import os
import pickle
import struct
import tempfile
import threading
import time
import zlib
from collections import OrderedDict
from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import ArenaIntegrityError
from repro.exec import faults
from repro.exec.stats import EXEC_STATS
from repro.obs import tracer

#: File magic identifying an arena segment.
MAGIC = b"RPRARENA"

#: Arena format version; bumped on any layout change.
#: (2: header CRC32 + declared data length in the header.)
VERSION = 2

#: Bytes between the magic and the header blob: ``<Q`` header length
#: plus ``<I`` CRC32 of the header blob.
_PREFIX_LEN = 8 + 4

#: Data-region offsets are rounded up to this alignment so numpy views
#: of any dtype the repo uses (float64/int64) are naturally aligned.
_ALIGN = 16

#: How many arenas one process keeps attached at once. Workers in a
#: persistent pool typically see one arena per pipeline stage; a small
#: bound keeps long sweeps from accumulating mappings.
_ATTACH_CACHE_SIZE = 4

_ATTACHED: OrderedDict[str, "TraceArena"] = OrderedDict()
_ATTACH_LOCK = threading.Lock()

#: Paths built (and therefore owned) by this process, unlinked atexit.
_OWNED_PATHS: set[str] = set()


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class TraceArena:
    """A read-only, memory-mapped package of a trace corpus.

    Build once in the parent with :meth:`build`; ship ``arena.handle``
    (a path string) to workers; workers call :meth:`attach` and read
    back zero-copy views via :meth:`trace`, :meth:`array` and
    :meth:`object`.
    """

    def __init__(self, path: str, mm: mmap.mmap, header: dict,
                 owner: bool) -> None:
        self._path = path
        self._mm = mm
        self._header = header
        self._owner = owner
        self._closed = False
        self._workload_cache: dict[tuple[int, int], object] = {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, traces: Sequence = (),
              objects: Mapping[str, object] | None = None,
              arrays: Mapping[str, np.ndarray] | None = None,
              machine: object | None = None) -> "TraceArena":
        """Pack a corpus into a new memory-mapped arena file.

        ``traces`` are :class:`~repro.workloads.generator.TraceSpec`
        instances (their applications are deduplicated); ``arrays`` are
        named bulk matrices shipped to the data region; ``objects`` are
        arbitrary picklable shared state stored once in the header.
        Raises the underlying pickling error when an object cannot be
        serialised — callers treat that as "no arena" and fall back to
        plain dispatch.
        """
        with tracer.span("arena.build", traces=len(traces)) as sp:
            arena = cls._build(traces, objects, arrays, machine)
            sp.set(bytes=len(arena._mm))
            return arena

    @classmethod
    def _build(cls, traces: Sequence,
               objects: Mapping[str, object] | None,
               arrays: Mapping[str, np.ndarray] | None,
               machine: object | None) -> "TraceArena":
        start = time.perf_counter()
        apps: list = []
        app_index: dict[int, int] = {}
        trace_rows: list[tuple] = []
        data_parts: list[tuple[int, bytes]] = []  # (offset, raw bytes)
        offset = 0

        def _append(buf: np.ndarray) -> int:
            nonlocal offset
            offset = _aligned(offset)
            at = offset
            raw = np.ascontiguousarray(buf).tobytes()
            data_parts.append((at, raw))
            offset += len(raw)
            return at

        for trace in traces:
            app = trace.workload.app
            idx = app_index.get(id(app))
            if idx is None:
                idx = len(apps)
                app_index[id(app)] = idx
                apps.append(app)
            seq = np.ascontiguousarray(trace.phase_seq, dtype=np.int64)
            trace_rows.append((
                idx,
                trace.workload.input_id,
                trace.trace_id,
                trace.interval_instructions,
                trace.seed,
                _append(seq),
                int(seq.shape[0]),
            ))

        array_rows: dict[str, tuple[str, tuple, int]] = {}
        for name, arr in (arrays or {}).items():
            arr = np.ascontiguousarray(arr)
            array_rows[name] = (arr.dtype.str, arr.shape, _append(arr))

        header = {
            "version": VERSION,
            "apps": apps,
            "traces": trace_rows,
            "arrays": array_rows,
            "objects": dict(objects or {}),
            "machine": machine,
            "data_len": offset,
        }
        header_blob = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
        prefix_len = len(MAGIC) + _PREFIX_LEN
        data_start = _aligned(prefix_len + len(header_blob))

        fd, path = tempfile.mkstemp(prefix="repro-arena-", suffix=".bin")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(MAGIC)
                fh.write(struct.pack("<Q", len(header_blob)))
                fh.write(struct.pack("<I", zlib.crc32(header_blob)))
                fh.write(header_blob)
                fh.write(b"\x00" * (data_start - prefix_len
                                    - len(header_blob)))
                for at, raw in data_parts:
                    fh.seek(data_start + at)
                    fh.write(raw)
                if not data_parts:
                    # mmap refuses zero-length maps; keep one pad byte.
                    fh.write(b"\x00")
        except BaseException:
            os.unlink(path)
            raise
        _OWNED_PATHS.add(path)

        arena = cls._open(path, owner=True)
        with _ATTACH_LOCK:
            _cache_put(path, arena)
        total = data_start + offset
        EXEC_STATS.incr("arena.builds")
        EXEC_STATS.incr("arena.bytes", total)
        EXEC_STATS.add_time("arena_build", time.perf_counter() - start)
        return arena

    @classmethod
    def _open(cls, path: str, owner: bool) -> "TraceArena":
        """Map and fully validate a segment, or raise
        :class:`~repro.errors.ArenaIntegrityError`."""
        try:
            with open(path, "rb") as fh:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise ArenaIntegrityError(
                f"arena {path} cannot be mapped: {exc}"
            ) from exc
        prefix_len = len(MAGIC) + _PREFIX_LEN
        try:
            if len(mm) < prefix_len:
                raise ArenaIntegrityError(
                    f"arena {path} is truncated ({len(mm)} bytes, "
                    f"need at least {prefix_len})"
                )
            if mm[:len(MAGIC)] != MAGIC:
                raise ArenaIntegrityError(
                    f"{path} is not an arena segment (bad magic)"
                )
            (header_len,) = struct.unpack_from("<Q", mm, len(MAGIC))
            (header_crc,) = struct.unpack_from("<I", mm, len(MAGIC) + 8)
            if prefix_len + header_len > len(mm):
                raise ArenaIntegrityError(
                    f"arena {path} declares a {header_len}-byte header "
                    f"but holds only {len(mm)} bytes"
                )
            header_blob = mm[prefix_len:prefix_len + header_len]
            if zlib.crc32(header_blob) != header_crc:
                raise ArenaIntegrityError(
                    f"arena {path} failed its header checksum"
                )
            try:
                header = pickle.loads(header_blob)
            except Exception as exc:
                raise ArenaIntegrityError(
                    f"arena {path} header does not unpickle: {exc}"
                ) from exc
            if header.get("version") != VERSION:
                raise ArenaIntegrityError(
                    f"arena {path} has version {header.get('version')}, "
                    f"expected {VERSION}"
                )
            data_start = _aligned(prefix_len + header_len)
            if data_start + header.get("data_len", 0) > len(mm):
                raise ArenaIntegrityError(
                    f"arena {path} data region is truncated"
                )
            header["_data_start"] = data_start
        except ArenaIntegrityError:
            mm.close()
            raise
        return cls(path, mm, header, owner)

    @classmethod
    def attach(cls, handle: str) -> "TraceArena":
        """Attach to an arena by handle, memoised per process.

        Raises :class:`~repro.errors.ArenaIntegrityError` when the
        segment fails validation (or an injected ``corrupt_arena``
        fault fires); callers fall back to pickled dispatch.
        """
        if faults.should_inject("corrupt_arena", handle):
            raise ArenaIntegrityError(
                f"injected arena corruption attaching {handle}"
            )
        with _ATTACH_LOCK:
            arena = _ATTACHED.get(handle)
            if arena is not None and not arena._closed:
                _ATTACHED.move_to_end(handle)
                EXEC_STATS.incr("arena.attach_hit")
                return arena
        start = time.perf_counter()
        arena = cls._open(handle, owner=False)
        with _ATTACH_LOCK:
            _cache_put(handle, arena)
        EXEC_STATS.incr("arena.attach_miss")
        EXEC_STATS.add_time("arena_attach", time.perf_counter() - start)
        return arena

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------
    @property
    def handle(self) -> str:
        """The shippable identity of this arena (its file path)."""
        return self._path

    @property
    def n_traces(self) -> int:
        return len(self._header["traces"])

    @property
    def machine(self):
        return self._header["machine"]

    def _view(self, dtype: str, shape: tuple, offset: int) -> np.ndarray:
        dt = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        view = np.frombuffer(self._mm, dtype=dt, count=count,
                             offset=self._header["_data_start"] + offset)
        return view.reshape(shape)

    def trace(self, index: int):
        """Reconstruct trace ``index`` with a zero-copy phase-seq view."""
        from repro.workloads.generator import TraceSpec, WorkloadSpec

        (app_idx, input_id, trace_id, interval_instructions, seed,
         offset, n_intervals) = self._header["traces"][index]
        key = (app_idx, input_id)
        workload = self._workload_cache.get(key)
        if workload is None:
            workload = WorkloadSpec(app=self._header["apps"][app_idx],
                                    input_id=input_id)
            self._workload_cache[key] = workload
        return TraceSpec(
            workload=workload,
            trace_id=trace_id,
            phase_seq=self._view("<i8", (n_intervals,), offset),
            interval_instructions=interval_instructions,
            seed=seed,
        )

    def traces(self, indices: Sequence[int] | None = None) -> list:
        """Reconstruct several traces (all of them by default)."""
        if indices is None:
            indices = range(self.n_traces)
        return [self.trace(i) for i in indices]

    def array(self, name: str) -> np.ndarray:
        """Zero-copy read-only view of a named bulk array."""
        dtype, shape, offset = self._header["arrays"][name]
        return self._view(dtype, shape, offset)

    def object(self, name: str):
        """A shared object stored once in the header."""
        return self._header["objects"][name]

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach; the building process also unlinks the backing file.

        Any still-exported numpy views keep their pages alive until
        they are garbage collected (the mapping itself cannot be torn
        down under them), so closing with live views is safe — the
        file name disappears, the memory follows the views.
        """
        if self._closed:
            return
        self._closed = True
        with _ATTACH_LOCK:
            if _ATTACHED.get(self._path) is self:
                del _ATTACHED[self._path]
        try:
            self._mm.close()
        except BufferError:
            pass  # live views export the buffer; GC will finish the job
        if self._owner:
            _OWNED_PATHS.discard(self._path)
            try:
                os.unlink(self._path)
            except OSError:
                pass

    def __enter__(self) -> "TraceArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _cache_put(handle: str, arena: TraceArena) -> None:
    """Insert into the attach LRU; caller holds ``_ATTACH_LOCK``."""
    _ATTACHED[handle] = arena
    _ATTACHED.move_to_end(handle)
    while len(_ATTACHED) > _ATTACH_CACHE_SIZE:
        _, evicted = _ATTACHED.popitem(last=False)
        if not evicted._owner:  # owners stay open until close()
            evicted._closed = True
            try:
                evicted._mm.close()
            except BufferError:
                pass


def detach_all() -> None:
    """Drop every memoised attachment (tests, worker teardown)."""
    with _ATTACH_LOCK:
        arenas = list(_ATTACHED.values())
        _ATTACHED.clear()
    for arena in arenas:
        if not arena._owner:
            arena._closed = True
            try:
                arena._mm.close()
            except BufferError:
                pass


@atexit.register
def _cleanup_owned() -> None:
    for path in list(_OWNED_PATHS):
        try:
            os.unlink(path)
        except OSError:
            pass
    _OWNED_PATHS.clear()
