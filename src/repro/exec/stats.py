"""Execution instrumentation.

A process-wide registry of lightweight performance counters: per-stage
wall time, cache hit/miss counts, and worker utilisation for parallel
fan-outs. Every dataset-scale path (simulation, dataset building,
deployment evaluation, hyperparameter screening) reports here, and the
CLI's ``--exec-report`` flag prints the aggregate at exit.

The registry is intentionally global: the interesting question at
dataset scale is "where did this *process* spend its time", and a
single report answering it beats threading a stats object through
every call signature. Workers in a process pool accumulate into their
own copy; :class:`ParallelMap` folds their busy time back into the
parent's stage entry so utilisation stays meaningful.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time


@dataclasses.dataclass
class StageStat:
    """Accumulated timing for one named execution stage."""

    calls: int = 0
    wall_s: float = 0.0
    busy_s: float = 0.0  # summed worker-side task time
    workers: int = 1  # widest pool observed for this stage
    capacity_s: float = 0.0  # sum of per-call wall x effective workers

    @property
    def utilization(self) -> float:
        """Fraction of available worker-seconds spent doing work.

        Capacity is accumulated per call as ``wall x effective_workers``,
        so a stage whose calls mix parallel fan-outs with serial
        fallbacks is judged against the workers each call actually had —
        not against the widest pool ever observed, which made serial
        fallbacks look like 25% utilisation on a 4-worker pool.
        """
        capacity = self.capacity_s
        if capacity <= 0.0:
            capacity = self.wall_s * self.workers
        if capacity <= 0.0:
            return 0.0
        return self.busy_s / capacity


class ExecStats:
    """Thread-safe registry of stage timings and event counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, StageStat] = {}
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def add_time(self, stage: str, wall_s: float, busy_s: float | None = None,
                 workers: int = 1) -> None:
        """Account one completed stage execution."""
        with self._lock:
            stat = self._stages.setdefault(stage, StageStat())
            stat.calls += 1
            stat.wall_s += wall_s
            stat.busy_s += wall_s if busy_s is None else busy_s
            stat.workers = max(stat.workers, workers)
            stat.capacity_s += wall_s * max(1, workers)

    @contextlib.contextmanager
    def stage(self, name: str):
        """Time a ``with`` block as one execution of ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def incr(self, counter: str, n: int = 1) -> None:
        """Bump a named event counter."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + n

    def count(self, counter: str) -> int:
        """Current value of a named event counter (0 if never bumped)."""
        with self._lock:
            return self._counters.get(counter, 0)

    def per_item_cost(self, stage: str) -> float | None:
        """Observed busy seconds per item for a stage, if known.

        Uses the ``<stage>.items`` counter that :class:`ParallelMap`
        maintains alongside each stage timing; returns ``None`` until
        the stage has run at least once. The adaptive dispatcher uses
        this to size chunks and to decide whether a fan-out is worth a
        pool at all.
        """
        with self._lock:
            stat = self._stages.get(stage)
            items = self._counters.get(f"{stage}.items", 0)
        if stat is None or items <= 0 or stat.busy_s <= 0.0:
            return None
        return stat.busy_s / items

    def reset(self) -> None:
        """Clear all stages and counters (tests, bench reruns)."""
        with self._lock:
            self._stages.clear()
            self._counters.clear()

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Machine-readable copy of every stage and counter."""
        with self._lock:
            return {
                "stages": {
                    name: {
                        "calls": s.calls,
                        "wall_s": s.wall_s,
                        "busy_s": s.busy_s,
                        "workers": s.workers,
                        "capacity_s": s.capacity_s,
                        "utilization": s.utilization,
                    }
                    for name, s in sorted(self._stages.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }

    #: Counters summarised under ``resilience:`` in :meth:`report` —
    #: every rung of the degradation ladder plus integrity detections
    #: and injected faults, so a chaos run's recovery story is legible
    #: at a glance.
    RESILIENCE_COUNTERS = (
        "parallel.retries",
        "parallel.timeouts",
        "parallel.pool_rebuild",
        "parallel.degrade_thread",
        "parallel.fallback_serial",
        "simcache.quarantine",
        "arena.attach_fallback",
    )

    def resilience(self) -> dict[str, int]:
        """Non-zero resilience counters (degradations, recoveries,
        integrity detections, injected faults)."""
        with self._lock:
            out = {name: self._counters[name]
                   for name in self.RESILIENCE_COUNTERS
                   if self._counters.get(name)}
            out.update({name: value
                        for name, value in sorted(self._counters.items())
                        if name.startswith("faults.injected.") and value})
        return out

    def hit_rate(self, prefix: str) -> float | None:
        """Hit rate for a ``<prefix>.hit``/``<prefix>.miss`` counter pair."""
        hits = self.count(f"{prefix}.hit")
        misses = self.count(f"{prefix}.miss")
        total = hits + misses
        if total == 0:
            return None
        return hits / total

    def report(self) -> str:
        """Human-readable execution report (the ``--exec-report`` text)."""
        snap = self.snapshot()
        lines = ["=== execution report ==="]
        if snap["stages"]:
            lines.append(f"{'stage':<24s} {'calls':>6s} {'wall s':>9s} "
                         f"{'busy s':>9s} {'util':>6s}")
            for name, s in snap["stages"].items():
                lines.append(
                    f"{name:<24s} {s['calls']:>6d} {s['wall_s']:>9.3f} "
                    f"{s['busy_s']:>9.3f} {s['utilization'] * 100:>5.0f}%"
                )
        if snap["counters"]:
            lines.append("counters:")
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<30s} {value}")
        resilience = self.resilience()
        if resilience:
            lines.append("resilience:")
            for name, value in resilience.items():
                lines.append(f"  {name:<30s} {value}")
        for prefix in ("interval_lru", "simcache"):
            rate = self.hit_rate(prefix)
            if rate is not None:
                lines.append(f"{prefix} hit rate: {rate * 100:.1f}%")
        if len(lines) == 1:
            lines.append("(no stages recorded)")
        return "\n".join(lines)


#: The process-wide registry every execution path reports into.
EXEC_STATS = ExecStats()
