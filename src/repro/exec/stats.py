"""Execution instrumentation — compatibility shim over :mod:`repro.obs`.

The stage-timing/counter registry that lived here through PR 1-4 grew
gauges, histograms and cross-process aggregation in PR 5 and moved to
:mod:`repro.obs.metrics`, where every layer (not just the execution
engine) can import it without cycles. This module keeps the historical
names working:

* ``EXEC_STATS`` **is** :data:`repro.obs.metrics.METRICS` — the same
  process-wide registry object, so existing call sites and tests keep
  observing the same counters.
* ``ExecStats`` **is** :class:`repro.obs.metrics.Metrics`.
* ``StageStat`` is re-exported unchanged.

New code should import from :mod:`repro.obs` directly.
"""

from __future__ import annotations

from repro.obs.metrics import METRICS, Metrics, StageStat

#: Legacy alias; the one process-wide metrics registry.
EXEC_STATS = METRICS

#: Legacy alias for the registry class.
ExecStats = Metrics

__all__ = ["EXEC_STATS", "ExecStats", "StageStat", "METRICS", "Metrics"]
