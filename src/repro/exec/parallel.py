"""Deterministic parallel fan-out.

:class:`ParallelMap` is the one abstraction every dataset-scale path
uses to iterate over traces, configurations or folds. It offers four
backends — ``serial``, ``thread``, ``process`` and ``auto`` — behind a
single ``map`` call that always returns results in input order, so a
parallel run is bit-identical to a serial one for any workload whose
items are independent and internally seeded (everything in this repo
is; see :mod:`repro.rng`).

Design points:

* **Chunked dispatch** — items are grouped into contiguous chunks to
  amortise task submission and pickling overhead; chunk results are
  reassembled by index, never by completion order. Chunk size is
  adaptive: when :data:`~repro.exec.stats.EXEC_STATS` has seen the
  stage before, chunks are sized from the observed per-item cost to
  hit a target task duration; otherwise ~4 chunks per worker.
* **Persistent pools** — worker pools are created lazily, keyed by
  ``(backend, n_workers)``, and reused across ``map``/``map_chunks``
  calls and across stages, so fork/spawn cost is paid once per
  process instead of once per call. :func:`close_pools` (registered
  ``atexit``) shuts them down; ``REPRO_EXEC_POOL=fresh`` restores the
  pool-per-call behaviour for comparison.
* **Adaptive dispatch** — the ``auto`` backend measures a one-item
  probe (or reuses the stage's cost history) and only pays for a
  process pool when the remaining work would amortise it; tiny
  corpora and 1-CPU containers stay serial.
* **Shared-memory result return** — on the process backend, workers
  hoist large result ndarrays into per-chunk mmap segments
  (:mod:`repro.exec.shmres`) and ship only descriptors; the parent
  validates (CRC/bounds, arena-style) and reconstructs zero-copy
  views, quarantining a corrupt segment back to pickled returns.
  ``REPRO_EXEC_SHMRES=0`` disables it.
* **Worker-side RNG seeding** — when a ``seed`` is given, the global
  NumPy RNG is re-seeded *per item* from ``derive_seed(seed, index)``
  before the item runs, so any stray use of the global generator is
  reproducible regardless of which worker executes which item.
* **Fault tolerance** — failed chunks (worker crashes, broken pools,
  per-task timeouts) are retried with exponential backoff up to
  ``REPRO_EXEC_RETRIES`` times. A broken process pool is rebuilt once;
  if it breaks again the map degrades to the thread backend, and when
  the retry budget is exhausted the final rung is a serial re-run —
  the same ladder (process → thread → serial) as pool-startup and
  pickling failures, every step recorded in
  :data:`~repro.exec.stats.EXEC_STATS` (``parallel.retries``,
  ``parallel.timeouts``, ``parallel.pool_rebuild``,
  ``parallel.degrade_thread``, ``parallel.fallback_serial``). Only
  hung tasks that time out on *every* retry surface an error — the
  typed :class:`~repro.errors.WorkerTimeoutError` — because a hang
  would also hang the serial rung. Genuine task errors (a
  ``DatasetError`` raised by the worker function) propagate unchanged
  and are never retried. Maps that run *inside* a process-pool worker
  always resolve to serial, so nested fan-outs (model training inside
  a hyperscreen cell) cannot recursively spawn pools. The
  :mod:`repro.exec.faults` layer can inject every one of these
  failures deterministically (``REPRO_FAULT_SPEC``).

Defaults come from the environment so existing entry points pick up
parallelism without signature changes: ``REPRO_EXEC_BACKEND`` selects
the backend (default ``serial``), ``REPRO_EXEC_WORKERS`` the worker
count (default: CPU count), ``REPRO_EXEC_CHUNK`` pins the chunk size,
``REPRO_EXEC_POOL`` picks persistent vs fresh pools,
``REPRO_EXEC_RETRIES`` bounds chunk retries, ``REPRO_EXEC_TIMEOUT``
sets the per-task timeout (pool backends only) and
``REPRO_EXEC_SHMRES`` toggles shared-memory result return.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import pickle
import threading
import time
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro import config as config_mod
from repro import rng as rng_mod
from repro.errors import (
    ConfigurationError,
    ResultIntegrityError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.exec import faults
from repro.exec import shmres
from repro.obs import tracer
from repro.obs.metrics import METRICS
from repro.exec.stats import EXEC_STATS

#: Environment variable selecting the default backend (read through
#: :meth:`repro.config.ExecConfig.from_env`).
BACKEND_ENV_VAR = config_mod.EXEC_BACKEND_ENV_VAR

#: Environment variable selecting the default worker count (read
#: through :meth:`repro.config.ExecConfig.from_env`).
WORKERS_ENV_VAR = config_mod.EXEC_WORKERS_ENV_VAR

#: Recognised backends, in increasing isolation order; ``auto`` probes
#: and picks between ``serial`` and ``process`` per call.
BACKENDS = config_mod.EXEC_BACKENDS

#: ``auto`` only fans out when the estimated total work for a map call
#: is at least this many seconds — below it, pool submission overhead
#: eats the win and serial execution is faster.
AUTO_MIN_PARALLEL_S = 0.2

#: Adaptive chunk sizing targets tasks of roughly this duration: long
#: enough to amortise submission, short enough to balance load.
TARGET_CHUNK_S = 0.05

#: Exceptions that mean "the pool/payload is unusable", not "the task
#: failed": these trigger the serial fallback. Genuine task errors
#: (e.g. DatasetError from a worker) propagate unchanged.
_FALLBACK_ERRORS = (
    concurrent.futures.BrokenExecutor,
    pickle.PicklingError,
    AttributeError,  # "Can't pickle local object ..."
    TypeError,  # "cannot pickle '_thread.lock' object"
    ImportError,
    OSError,
    WorkerCrashError,  # crash retries exhausted: last rung is serial
    ResultIntegrityError,  # shm-return quarantine retries exhausted
)

#: Chunk failures worth retrying on a (possibly rebuilt) pool — the
#: pool died under the task, not the task under its own inputs.
_RETRYABLE_ERRORS = (
    concurrent.futures.BrokenExecutor,
    WorkerCrashError,
)

#: Exponential-backoff schedule between chunk retries:
#: ``BACKOFF_BASE_S * 2**(attempt - 1)``, capped at ``BACKOFF_MAX_S``.
BACKOFF_BASE_S = 0.02
BACKOFF_MAX_S = 1.0

#: Set in process-pool workers (via the pool initializer) so maps that
#: run inside a worker stay serial instead of forking grandchildren.
_IN_WORKER = False


def _pool_worker_init() -> None:
    global _IN_WORKER
    _IN_WORKER = True


# ---------------------------------------------------------------------
# Persistent pools.
# ---------------------------------------------------------------------
_POOLS: dict[tuple[str, int], concurrent.futures.Executor] = {}
_POOL_LOCK = threading.Lock()

#: Pools discarded mid-map because their workers died. They are shut
#: down without waiting at discard time (the caller is busy retrying);
#: :func:`close_pools` drains them so a crashed persistent pool cannot
#: leak broken worker processes past an explicit engine shutdown.
_DISCARDED_POOLS: list[concurrent.futures.Executor] = []


def _get_pool(backend: str,
              n_workers: int) -> concurrent.futures.Executor:
    """The process-wide warm pool for (backend, n_workers)."""
    key = (backend, n_workers)
    with _POOL_LOCK:
        pool = _POOLS.get(key)
        if pool is not None:
            EXEC_STATS.incr("parallel.pool_reuse")
            return pool
        start = time.perf_counter()
        if backend == "thread":
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=n_workers)
        else:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=n_workers, initializer=_pool_worker_init)
        _POOLS[key] = pool
        EXEC_STATS.incr("parallel.pool_create")
        METRICS.gauge_add("parallel.pools_open", 1)
        EXEC_STATS.add_time("pool_create", time.perf_counter() - start)
        return pool


def _discard_pool(backend: str, n_workers: int,
                  pool: concurrent.futures.Executor) -> None:
    """Forget a broken pool so the next call builds a fresh one."""
    with _POOL_LOCK:
        if _POOLS.get((backend, n_workers)) is pool:
            del _POOLS[(backend, n_workers)]
        _DISCARDED_POOLS.append(pool)
    pool.shutdown(wait=False, cancel_futures=True)


def close_pools() -> None:
    """Shut down every persistent pool (atexit, tests, benchmarks).

    Also drains pools discarded mid-map after their workers died:
    those executors were shut down without waiting at discard time, so
    without this second pass a crashed persistent pool could leak its
    remaining worker processes until interpreter exit. The
    ``parallel.pools_open`` gauge counts every pool whose workers may
    still be alive (created minus fully drained), so after this call
    it reads 0 — the regression test for the degradation ladder
    asserts exactly that, plus idempotence: a second call finds both
    registries empty and decrements nothing.
    """
    with _POOL_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
        pools.extend(_DISCARDED_POOLS)
        _DISCARDED_POOLS.clear()
    for pool in pools:
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            # A pool whose manager thread already died can raise on a
            # second shutdown; nothing is left to reclaim from it.
            EXEC_STATS.incr("parallel.pool_close_error")
        EXEC_STATS.incr("parallel.pool_close")
        METRICS.gauge_add("parallel.pools_open", -1)


atexit.register(close_pools)


def _chunk_fault_point(stage: str | None, first_index: int,
                       attempt: int) -> None:
    """Worker-side fault site, consulted once per pooled chunk.

    Crash and hang faults only exist where there is a worker to kill
    or a timeout to trip, so serial execution (including the serial
    fallback rung) never passes through here — which is what keeps a
    fault-injected serial run bit-identical to a fault-free one. The
    retry attempt is part of the site key, so a chunk that crashed on
    attempt 0 draws a fresh decision on attempt 1.
    """
    site = f"{stage}/{first_index}/{attempt}"
    if faults.should_inject("crash", site, track_occurrence=False):
        if _IN_WORKER:
            os._exit(13)  # a genuine worker death: BrokenProcessPool
        raise WorkerCrashError(
            f"injected worker crash in stage {stage!r} "
            f"(chunk at index {first_index}, attempt {attempt})"
        )
    faults.maybe_hang(site)


def _sidecar_mark() -> tuple | None:
    """Checkpoint worker-local metrics/spans before a chunk runs.

    Only process-pool workers return a mark: thread workers share the
    parent's registry (their observations are already in place) and
    the serial path *is* the parent.
    """
    if not _IN_WORKER:
        return None
    return (METRICS.mark(), tracer.mark())


def _sidecar(marks: tuple | None) -> dict | None:
    """Everything this worker observed since the mark, picklable.

    Rides home on the chunk-result tuple; the parent merges it so
    counters bumped inside workers (fault injections, arena attach
    hits, cache hits) stop dying with the worker process. Spans are
    drained *and cleared* so a persistent worker never re-ships them.
    """
    if marks is None:
        return None
    metrics_mark, span_mark = marks
    return {
        "pid": os.getpid(),
        "metrics": METRICS.delta(metrics_mark),
        "spans": tracer.drain_reset(span_mark),
    }


def _merge_sidecar(sidecar: dict | None) -> None:
    """Parent-side: fold a worker's sidecar into this process."""
    if sidecar is None:
        return
    if METRICS.merge(sidecar["metrics"]):
        METRICS.incr("obs.worker_merges")
        tracer.absorb(sidecar["spans"])


def _run_chunk(fn: Callable, indexed: Sequence[tuple[int, object]],
               seed: int | None, stage: str | None = None,
               attempt: int = 0, pooled: bool = False,
               spool: str | None = None,
               ) -> tuple[list, float, dict | None]:
    """Run one chunk of (index, item) pairs.

    Returns ``(results, busy_s, sidecar)``; the sidecar is ``None``
    except in process-pool workers, where it carries the metrics delta
    and spans recorded while the chunk ran (see :func:`_sidecar`).
    When a ``spool`` directory is given and this runs in a process-pool
    worker, large result arrays are hoisted into a shared-memory
    segment there (:func:`repro.exec.shmres.encode`); thread workers
    and the serial path share the parent's address space and skip
    encoding (``_IN_WORKER`` is False).
    """
    if pooled and indexed:
        _chunk_fault_point(stage, indexed[0][0], attempt)
    marks = _sidecar_mark() if pooled else None
    start = time.perf_counter()
    out = []
    with tracer.span("exec.chunk", stage=stage, items=len(indexed)):
        for index, item in indexed:
            if seed is not None:
                np.random.seed(rng_mod.derive_seed(seed, "exec-item", index)
                               % (2 ** 32))
            out.append(fn(item))
    if spool is not None and _IN_WORKER:
        out = shmres.encode(out, spool)
    return out, time.perf_counter() - start, _sidecar(marks)


def _run_batch(fn: Callable, first_index: int, items: list,
               seed: int | None, stage: str | None = None,
               attempt: int = 0, pooled: bool = False,
               spool: str | None = None,
               ) -> tuple[list, float, dict | None]:
    """Run one whole-chunk call of a batch function; see ``map_chunks``."""
    if pooled and items:
        _chunk_fault_point(stage, first_index, attempt)
    marks = _sidecar_mark() if pooled else None
    start = time.perf_counter()
    with tracer.span("exec.chunk", stage=stage, items=len(items)):
        if seed is not None:
            np.random.seed(rng_mod.derive_seed(seed, "exec-chunk",
                                               first_index) % (2 ** 32))
        out = fn(items)
    if spool is not None and _IN_WORKER:
        out = shmres.encode(out, spool)
    return out, time.perf_counter() - start, _sidecar(marks)


class ParallelMap:
    """Ordered, chunked, deterministic map over independent items."""

    def __init__(self, backend: str | None = None,
                 n_workers: int | None = None,
                 chunk_size: int | None = None,
                 seed: int | None = None,
                 persistent: bool | None = None,
                 retries: int | None = None,
                 timeout: float | None = None) -> None:
        if backend is None:
            backend = config_mod.exec_backend()
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown exec backend {backend!r}; expected one of "
                f"{BACKENDS}"
            )
        if n_workers is None:
            n_workers = config_mod.exec_workers() or (os.cpu_count() or 1)
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if retries is not None and retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {retries}"
            )
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(
                f"timeout must be > 0, got {timeout}"
            )
        self.backend = backend
        self.n_workers = n_workers
        self.chunk_size = chunk_size
        self.seed = seed
        self.persistent = persistent
        self.retries = retries
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Adaptive dispatch.
    # ------------------------------------------------------------------
    def _resolve_backend(self, n_items: int, stage: str) -> str:
        """Concrete backend for one call: a name, or ``probe``.

        ``probe`` means "auto, with no cost history": the caller runs
        the first item serially, times it, and finishes with
        :meth:`_decide_from_probe`.
        """
        if _IN_WORKER:
            return "serial"
        if self.backend != "auto":
            return self.backend
        if (n_items <= 1 or self.n_workers <= 1
                or (os.cpu_count() or 1) <= 1):
            return "serial"
        cost = EXEC_STATS.per_item_cost(stage)
        if cost is None:
            return "probe"
        return "process" if cost * n_items >= AUTO_MIN_PARALLEL_S \
            else "serial"

    @staticmethod
    def _decide_from_probe(probe_s: float, n_rest: int) -> str:
        return "process" if probe_s * n_rest >= AUTO_MIN_PARALLEL_S \
            else "serial"

    def uses_processes(self, n_items: int, stage: str) -> bool:
        """Would a map of ``n_items`` under ``stage`` cross the IPC
        boundary? Callers use this to decide whether building a
        :class:`~repro.exec.arena.TraceArena` is worth it. ``probe``
        counts: the probe may escalate to a process pool."""
        return self._resolve_backend(n_items, stage) in ("process", "probe")

    def _persistent(self) -> bool:
        if self.persistent is not None:
            return self.persistent
        return config_mod.exec_pool_persistent()

    def _acquire_pool(self, backend: str) -> concurrent.futures.Executor:
        if self._persistent():
            return _get_pool(backend, self.n_workers)
        METRICS.gauge_add("parallel.pools_open", 1)
        if backend == "thread":
            return concurrent.futures.ThreadPoolExecutor(
                max_workers=self.n_workers)
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.n_workers, initializer=_pool_worker_init)

    def _release_pool(self, backend: str,
                      pool: concurrent.futures.Executor,
                      broken: bool) -> None:
        if not self._persistent():
            pool.shutdown(wait=True, cancel_futures=broken)
            EXEC_STATS.incr("parallel.pool_close")
            METRICS.gauge_add("parallel.pools_open", -1)
        elif broken:
            _discard_pool(backend, self.n_workers, pool)

    @staticmethod
    def _sample_payload(stage: str, task: tuple, n_tasks: int) -> None:
        """Record the pickled size of one representative task.

        ``<stage>.payload_bytes / <stage>.payload_tasks`` then reads as
        bytes shipped per task — the quantity the arena exists to
        shrink. Sampling one task per call keeps the cost negligible;
        chunks within a call are near-identical in shape. Raises the
        pickling error for unpicklable payloads, which the caller
        treats like any submission failure (serial fallback).
        """
        if faults.should_inject("payload", stage):
            raise pickle.PicklingError(
                f"injected unpicklable payload in stage {stage!r}"
            )
        blob = pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
        EXEC_STATS.incr(f"{stage}.payload_bytes", len(blob))
        EXEC_STATS.incr(f"{stage}.payload_tasks", 1)
        EXEC_STATS.incr(f"{stage}.payload_tasks_total", n_tasks)

    def _retries(self) -> int:
        if self.retries is not None:
            return self.retries
        return config_mod.exec_retries()

    def _timeout(self) -> float | None:
        if self.timeout is not None:
            return self.timeout
        return config_mod.exec_timeout()

    # ------------------------------------------------------------------
    def _chunks(self, indexed: list[tuple[int, object]], stage: str,
                ) -> list[list[tuple[int, object]]]:
        """Contiguous chunks sized to keep every worker busy."""
        size = self.chunk_size
        if size is None:
            size = config_mod.exec_chunk_size()
        if size is None:
            cost = EXEC_STATS.per_item_cost(stage)
            if cost is not None and cost > 0.0:
                # Target ~TARGET_CHUNK_S of work per task, but never
                # fewer chunks than workers.
                per_worker = -(-len(indexed) // self.n_workers)
                size = max(1, min(int(TARGET_CHUNK_S / cost), per_worker))
            else:
                # ~4 chunks per worker balances load without drowning
                # the queue in per-item submissions.
                size = max(1, -(-len(indexed) // (self.n_workers * 4)))
        return [indexed[i:i + size] for i in range(0, len(indexed), size)]

    def _map_serial(self, fn: Callable,
                    indexed: list[tuple[int, object]]) -> list:
        results, _, _ = _run_chunk(fn, indexed, self.seed)
        return results

    def _pool_dispatch(self, backend: str, stage: str, chunks: list,
                       submit_args: Callable[[object, int, str | None],
                                             tuple],
                       ) -> tuple[list, float, int]:
        """Submit chunks to a pool with retry, backoff and timeouts.

        ``submit_args(chunk, attempt, spool)`` builds the positional
        argument tuple for ``pool.submit``. Returns per-chunk results
        in chunk order, total busy seconds and the effective worker
        count.

        The degradation ladder on retryable failures (a crashed worker
        or a broken pool): retry on the same pool with exponential
        backoff; if the *process* pool itself broke, rebuild it once,
        then degrade to a thread pool. Exhausting the retry budget
        re-raises the last failure — for crashes that reaches ``map``'s
        serial fallback, while per-task timeouts surface as a typed
        :class:`~repro.errors.WorkerTimeoutError` because a hung task
        would also hang the serial rung. Chunks completed on earlier
        attempts are never resubmitted, so a genuine task error from a
        later chunk still propagates unchanged.

        Shared-memory result return (``REPRO_EXEC_SHMRES``): on the
        process backend each dispatch opens a spool directory for the
        workers' result segments, decodes each :class:`ShmChunk` back
        into zero-copy views as its future completes, and sweeps any
        segments orphaned by crashed/hung/degraded workers when the
        dispatch ends. A segment that fails validation quarantines
        shm-return for the rest of this call — the pending chunks are
        retried over plain pickled results — and if retries are already
        exhausted the typed :class:`~repro.errors.ResultIntegrityError`
        reaches the caller's serial-fallback rung.
        """
        retries = self._retries()
        timeout = self._timeout()
        results: dict[int, list] = {}
        busy = 0.0
        attempt = 0
        rebuilt = False
        current = backend
        pending = list(range(len(chunks)))
        spool_dir = (shmres.open_call_spool()
                     if shmres.enabled(backend) else None)
        spool = spool_dir
        sampled = False
        try:
            while True:
                pool = self._acquire_pool(current)
                broken = False
                failure: BaseException | None = None
                futures: list = []
                try:
                    try:
                        futures = [
                            (ci, pool.submit(*submit_args(
                                chunks[ci], attempt, spool)))
                            for ci in pending
                        ]
                        for ci, future in futures:
                            try:
                                (payload, chunk_busy,
                                 sidecar) = future.result(timeout=timeout)
                                if current == "process":
                                    if not sampled:
                                        shmres.record_result_sample(
                                            stage, payload)
                                        sampled = True
                                    payload = shmres.decode(payload, stage)
                            except concurrent.futures.TimeoutError as exc:
                                EXEC_STATS.incr("parallel.timeouts")
                                broken = True  # hung worker poisons the pool
                                failure = WorkerTimeoutError(
                                    f"task in stage {stage!r} exceeded "
                                    f"{timeout}s (attempt {attempt})"
                                )
                                failure.__cause__ = exc
                                break
                            except ResultIntegrityError as exc:
                                # Quarantine shm return for this call;
                                # pending chunks retry pickled.
                                EXEC_STATS.incr("shmres.quarantine")
                                spool = None
                                failure = exc
                                break
                            except _RETRYABLE_ERRORS as exc:
                                broken = broken or isinstance(
                                    exc, concurrent.futures.BrokenExecutor)
                                failure = exc
                                break
                            else:
                                results[ci] = payload
                                busy += chunk_busy
                                _merge_sidecar(sidecar)
                    except concurrent.futures.BrokenExecutor as exc:
                        # submit() itself can raise on a broken pool.
                        broken = True
                        failure = exc
                finally:
                    if failure is not None:
                        for _, future in futures:
                            future.cancel()
                    self._release_pool(current, pool, broken)
                pending = [ci for ci in pending if ci not in results]
                if failure is None:
                    ordered = [results[ci] for ci in range(len(chunks))]
                    return ordered, busy, min(self.n_workers, len(chunks))
                if attempt >= retries:
                    raise failure
                attempt += 1
                EXEC_STATS.incr("parallel.retries")
                time.sleep(min(BACKOFF_MAX_S,
                               BACKOFF_BASE_S * 2 ** (attempt - 1)))
                if broken and current == "process":
                    if not rebuilt:
                        rebuilt = True
                        EXEC_STATS.incr("parallel.pool_rebuild")
                    else:
                        current = "thread"
                        EXEC_STATS.incr("parallel.degrade_thread")
        finally:
            shmres.close_call_spool(spool_dir)

    def _map_pool(self, fn: Callable, indexed: list[tuple[int, object]],
                  backend: str, stage: str) -> tuple[list, float, int]:
        """Fan a chunked map over a pool; (results, busy_s, workers)."""
        chunks = self._chunks(indexed, stage)
        if backend == "process":
            self._sample_payload(stage, (fn, chunks[0], self.seed),
                                 len(chunks))

        def submit_args(chunk, attempt, spool=None):
            return (_run_chunk, fn, chunk, self.seed, stage, attempt,
                    True, spool)

        per_chunk, busy, workers = self._pool_dispatch(
            backend, stage, chunks, submit_args)
        results: list = []
        for chunk_results in per_chunk:
            results.extend(chunk_results)
        return results, busy, workers

    def map(self, fn: Callable, items: Iterable,
            stage: str = "parallel_map") -> list:
        """Apply ``fn`` to every item; results are in input order.

        ``stage`` names the entry under which wall/busy time is
        recorded in :data:`~repro.exec.stats.EXEC_STATS`.
        """
        indexed = list(enumerate(items))
        start = time.perf_counter()
        effective_workers = 1
        backend = self._resolve_backend(len(indexed), stage)
        results: list = []
        busy = 0.0
        with tracer.span("exec.map", stage=stage,
                         items=len(indexed)) as sp:
            if backend == "probe":
                probe_results, probe_busy, _ = _run_chunk(
                    fn, indexed[:1], self.seed)
                results.extend(probe_results)
                busy += probe_busy
                indexed = indexed[1:]
                backend = self._decide_from_probe(probe_busy, len(indexed))
                EXEC_STATS.incr("parallel.auto_probe")
            if (backend == "serial" or self.n_workers <= 1
                    or len(indexed) <= 1):
                rest, rest_busy, _ = _run_chunk(fn, indexed, self.seed)
                results.extend(rest)
                busy += rest_busy
            else:
                try:
                    rest, rest_busy, effective_workers = self._map_pool(
                        fn, indexed, backend, stage)
                    results.extend(rest)
                    busy += rest_busy
                except _FALLBACK_ERRORS:
                    EXEC_STATS.incr("parallel.fallback_serial")
                    serial_start = time.perf_counter()
                    rest, _, _ = _run_chunk(fn, indexed, self.seed)
                    results.extend(rest)
                    busy += time.perf_counter() - serial_start
            sp.set(backend=backend, workers=effective_workers)
        EXEC_STATS.add_time(stage, time.perf_counter() - start, busy,
                            workers=effective_workers)
        EXEC_STATS.incr(f"{stage}.items", len(results))
        return results

    def map_chunks(self, fn: Callable[[list], list], items: Iterable,
                   stage: str = "parallel_map_chunks") -> list:
        """Apply a *batch* function to contiguous sublists of items.

        ``fn`` receives a list of items and must return one result per
        item, in order. Workers receive whole chunks, so ``fn`` can
        batch its work (stacked simulation, concatenated inference)
        instead of processing items one at a time. Chunk boundaries
        are an execution detail: as long as ``fn``'s per-item outputs
        do not depend on the grouping (everything in this repo is
        internally seeded per item), results are bit-identical across
        backends, worker counts and chunk sizes. On the serial path
        the whole item list is one chunk — maximum batching.
        """
        items = list(items)
        n_items = len(items)
        start = time.perf_counter()
        effective_workers = 1
        backend = self._resolve_backend(n_items, stage)
        results: list = []
        busy = 0.0
        first_index = 0
        with tracer.span("exec.map_chunks", stage=stage,
                         items=n_items) as sp:
            if backend == "probe":
                probe_results, probe_busy, _ = _run_batch(
                    fn, 0, items[:1], self.seed)
                results.extend(probe_results)
                busy += probe_busy
                items = items[1:]
                first_index = 1
                backend = self._decide_from_probe(probe_busy, len(items))
                EXEC_STATS.incr("parallel.auto_probe")
            if not items:
                pass
            elif (backend == "serial" or self.n_workers <= 1
                    or len(items) <= 1):
                rest, rest_busy, _ = _run_batch(
                    fn, first_index, items, self.seed)
                results.extend(rest)
                busy += rest_busy
            else:
                indexed = [(first_index + i, item)
                           for i, item in enumerate(items)]
                try:
                    rest, rest_busy, effective_workers = (
                        self._map_chunk_pool(
                            fn, self._chunks(indexed, stage), stage))
                    results.extend(rest)
                    busy += rest_busy
                except _FALLBACK_ERRORS:
                    EXEC_STATS.incr("parallel.fallback_serial")
                    serial_start = time.perf_counter()
                    rest, _, _ = _run_batch(
                        fn, first_index, items, self.seed)
                    results.extend(rest)
                    busy += time.perf_counter() - serial_start
            sp.set(backend=backend, workers=effective_workers)
        if len(results) != n_items:
            raise ConfigurationError(
                f"map_chunks fn returned {len(results)} results for "
                f"{n_items} items"
            )
        EXEC_STATS.add_time(stage, time.perf_counter() - start, busy,
                            workers=effective_workers)
        EXEC_STATS.incr(f"{stage}.items", n_items)
        return results

    def _map_chunk_pool(self, fn: Callable[[list], list],
                        chunks: list[list[tuple[int, object]]],
                        stage: str) -> tuple[list, float, int]:
        """Fan whole chunks out to a pool; (results, busy_s, workers)."""
        backend = "thread" if self.backend == "thread" else "process"
        if backend == "process":
            self._sample_payload(
                stage,
                (fn, chunks[0][0][0],
                 [item for _, item in chunks[0]], self.seed),
                len(chunks))

        def submit_args(chunk, attempt, spool=None):
            return (_run_batch, fn, chunk[0][0],
                    [item for _, item in chunk], self.seed,
                    stage, attempt, True, spool)

        per_chunk, busy, workers = self._pool_dispatch(
            backend, stage, chunks, submit_args)
        results: list = []
        for chunk_results in per_chunk:
            results.extend(chunk_results)
        return results, busy, workers


#: Session-wide override installed by :func:`configure` (e.g. the CLI).
_DEFAULT: ParallelMap | None = None


def configure(backend: str | None = None, n_workers: int | None = None,
              chunk_size: int | None = None,
              seed: int | None = None,
              persistent: bool | None = None,
              retries: int | None = None,
              timeout: float | None = None) -> ParallelMap:
    """Install the process-wide default :class:`ParallelMap`.

    Entry points that take a ``pmap`` argument fall back to this
    default when none is passed, so one ``configure`` call (or the
    ``REPRO_EXEC_*`` environment variables) parallelises every
    dataset-scale path at once.
    """
    global _DEFAULT
    _DEFAULT = ParallelMap(backend=backend, n_workers=n_workers,
                           chunk_size=chunk_size, seed=seed,
                           persistent=persistent, retries=retries,
                           timeout=timeout)
    return _DEFAULT


def default_parallel_map() -> ParallelMap:
    """The configured default, or a fresh env-driven instance."""
    if _DEFAULT is not None:
        return _DEFAULT
    return ParallelMap()


def reset_default() -> None:
    """Drop any :func:`configure` override (tests)."""
    global _DEFAULT
    _DEFAULT = None
