"""Deterministic parallel fan-out.

:class:`ParallelMap` is the one abstraction every dataset-scale path
uses to iterate over traces, configurations or folds. It offers four
backends — ``serial``, ``thread``, ``process`` and ``auto`` — behind a
single ``map`` call that always returns results in input order, so a
parallel run is bit-identical to a serial one for any workload whose
items are independent and internally seeded (everything in this repo
is; see :mod:`repro.rng`).

Design points:

* **Chunked dispatch** — items are grouped into contiguous chunks to
  amortise task submission and pickling overhead; chunk results are
  reassembled by index, never by completion order. Chunk size is
  adaptive: when :data:`~repro.exec.stats.EXEC_STATS` has seen the
  stage before, chunks are sized from the observed per-item cost to
  hit a target task duration; otherwise ~4 chunks per worker.
* **Persistent pools** — worker pools are created lazily, keyed by
  ``(backend, n_workers)``, and reused across ``map``/``map_chunks``
  calls and across stages, so fork/spawn cost is paid once per
  process instead of once per call. :func:`close_pools` (registered
  ``atexit``) shuts them down; ``REPRO_EXEC_POOL=fresh`` restores the
  pool-per-call behaviour for comparison.
* **Adaptive dispatch** — the ``auto`` backend measures a one-item
  probe (or reuses the stage's cost history) and only pays for a
  process pool when the remaining work would amortise it; tiny
  corpora and 1-CPU containers stay serial.
* **Worker-side RNG seeding** — when a ``seed`` is given, the global
  NumPy RNG is re-seeded *per item* from ``derive_seed(seed, index)``
  before the item runs, so any stray use of the global generator is
  reproducible regardless of which worker executes which item.
* **Graceful degradation** — if a pool cannot start (no ``fork`` /
  resource limits) or the payload cannot be pickled, the map silently
  re-runs serially and records ``parallel.fallback_serial`` in
  :data:`~repro.exec.stats.EXEC_STATS` instead of crashing the run.
  Maps that run *inside* a process-pool worker always resolve to
  serial, so nested fan-outs (model training inside a hyperscreen
  cell) cannot recursively spawn pools.

Defaults come from the environment so existing entry points pick up
parallelism without signature changes: ``REPRO_EXEC_BACKEND`` selects
the backend (default ``serial``), ``REPRO_EXEC_WORKERS`` the worker
count (default: CPU count), ``REPRO_EXEC_CHUNK`` pins the chunk size,
and ``REPRO_EXEC_POOL`` picks persistent vs fresh pools.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import pickle
import threading
import time
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro import config as config_mod
from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.exec.stats import EXEC_STATS

#: Environment variable selecting the default backend.
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"

#: Environment variable selecting the default worker count.
WORKERS_ENV_VAR = "REPRO_EXEC_WORKERS"

#: Recognised backends, in increasing isolation order; ``auto`` probes
#: and picks between ``serial`` and ``process`` per call.
BACKENDS = ("serial", "thread", "process", "auto")

#: ``auto`` only fans out when the estimated total work for a map call
#: is at least this many seconds — below it, pool submission overhead
#: eats the win and serial execution is faster.
AUTO_MIN_PARALLEL_S = 0.2

#: Adaptive chunk sizing targets tasks of roughly this duration: long
#: enough to amortise submission, short enough to balance load.
TARGET_CHUNK_S = 0.05

#: Exceptions that mean "the pool/payload is unusable", not "the task
#: failed": these trigger the serial fallback. Genuine task errors
#: (e.g. DatasetError from a worker) propagate unchanged.
_FALLBACK_ERRORS = (
    concurrent.futures.BrokenExecutor,
    pickle.PicklingError,
    AttributeError,  # "Can't pickle local object ..."
    TypeError,  # "cannot pickle '_thread.lock' object"
    ImportError,
    OSError,
)

#: Set in process-pool workers (via the pool initializer) so maps that
#: run inside a worker stay serial instead of forking grandchildren.
_IN_WORKER = False


def _pool_worker_init() -> None:
    global _IN_WORKER
    _IN_WORKER = True


# ---------------------------------------------------------------------
# Persistent pools.
# ---------------------------------------------------------------------
_POOLS: dict[tuple[str, int], concurrent.futures.Executor] = {}
_POOL_LOCK = threading.Lock()


def _get_pool(backend: str,
              n_workers: int) -> concurrent.futures.Executor:
    """The process-wide warm pool for (backend, n_workers)."""
    key = (backend, n_workers)
    with _POOL_LOCK:
        pool = _POOLS.get(key)
        if pool is not None:
            EXEC_STATS.incr("parallel.pool_reuse")
            return pool
        start = time.perf_counter()
        if backend == "thread":
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=n_workers)
        else:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=n_workers, initializer=_pool_worker_init)
        _POOLS[key] = pool
        EXEC_STATS.incr("parallel.pool_create")
        EXEC_STATS.add_time("pool_create", time.perf_counter() - start)
        return pool


def _discard_pool(backend: str, n_workers: int,
                  pool: concurrent.futures.Executor) -> None:
    """Forget a broken pool so the next call builds a fresh one."""
    with _POOL_LOCK:
        if _POOLS.get((backend, n_workers)) is pool:
            del _POOLS[(backend, n_workers)]
    pool.shutdown(wait=False, cancel_futures=True)


def close_pools() -> None:
    """Shut down every persistent pool (atexit, tests, benchmarks)."""
    with _POOL_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(close_pools)


def _run_chunk(fn: Callable, indexed: Sequence[tuple[int, object]],
               seed: int | None) -> tuple[list, float]:
    """Run one chunk of (index, item) pairs; returns (results, busy_s)."""
    start = time.perf_counter()
    out = []
    for index, item in indexed:
        if seed is not None:
            np.random.seed(rng_mod.derive_seed(seed, "exec-item", index)
                           % (2 ** 32))
        out.append(fn(item))
    return out, time.perf_counter() - start


def _run_batch(fn: Callable, first_index: int, items: list,
               seed: int | None) -> tuple[list, float]:
    """Run one whole-chunk call of a batch function; see ``map_chunks``."""
    start = time.perf_counter()
    if seed is not None:
        np.random.seed(rng_mod.derive_seed(seed, "exec-chunk", first_index)
                       % (2 ** 32))
    out = fn(items)
    return out, time.perf_counter() - start


class ParallelMap:
    """Ordered, chunked, deterministic map over independent items."""

    def __init__(self, backend: str | None = None,
                 n_workers: int | None = None,
                 chunk_size: int | None = None,
                 seed: int | None = None,
                 persistent: bool | None = None) -> None:
        if backend is None:
            backend = os.environ.get(BACKEND_ENV_VAR, "serial")
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown exec backend {backend!r}; expected one of "
                f"{BACKENDS}"
            )
        if n_workers is None:
            raw = os.environ.get(WORKERS_ENV_VAR)
            n_workers = int(raw) if raw else (os.cpu_count() or 1)
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.backend = backend
        self.n_workers = n_workers
        self.chunk_size = chunk_size
        self.seed = seed
        self.persistent = persistent

    # ------------------------------------------------------------------
    # Adaptive dispatch.
    # ------------------------------------------------------------------
    def _resolve_backend(self, n_items: int, stage: str) -> str:
        """Concrete backend for one call: a name, or ``probe``.

        ``probe`` means "auto, with no cost history": the caller runs
        the first item serially, times it, and finishes with
        :meth:`_decide_from_probe`.
        """
        if _IN_WORKER:
            return "serial"
        if self.backend != "auto":
            return self.backend
        if (n_items <= 1 or self.n_workers <= 1
                or (os.cpu_count() or 1) <= 1):
            return "serial"
        cost = EXEC_STATS.per_item_cost(stage)
        if cost is None:
            return "probe"
        return "process" if cost * n_items >= AUTO_MIN_PARALLEL_S \
            else "serial"

    @staticmethod
    def _decide_from_probe(probe_s: float, n_rest: int) -> str:
        return "process" if probe_s * n_rest >= AUTO_MIN_PARALLEL_S \
            else "serial"

    def uses_processes(self, n_items: int, stage: str) -> bool:
        """Would a map of ``n_items`` under ``stage`` cross the IPC
        boundary? Callers use this to decide whether building a
        :class:`~repro.exec.arena.TraceArena` is worth it. ``probe``
        counts: the probe may escalate to a process pool."""
        return self._resolve_backend(n_items, stage) in ("process", "probe")

    def _persistent(self) -> bool:
        if self.persistent is not None:
            return self.persistent
        return config_mod.exec_pool_persistent()

    def _acquire_pool(self, backend: str) -> concurrent.futures.Executor:
        if self._persistent():
            return _get_pool(backend, self.n_workers)
        if backend == "thread":
            return concurrent.futures.ThreadPoolExecutor(
                max_workers=self.n_workers)
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.n_workers, initializer=_pool_worker_init)

    def _release_pool(self, backend: str,
                      pool: concurrent.futures.Executor,
                      broken: bool) -> None:
        if not self._persistent():
            pool.shutdown(wait=True, cancel_futures=broken)
        elif broken:
            _discard_pool(backend, self.n_workers, pool)

    @staticmethod
    def _sample_payload(stage: str, task: tuple, n_tasks: int) -> None:
        """Record the pickled size of one representative task.

        ``<stage>.payload_bytes / <stage>.payload_tasks`` then reads as
        bytes shipped per task — the quantity the arena exists to
        shrink. Sampling one task per call keeps the cost negligible;
        chunks within a call are near-identical in shape. Raises the
        pickling error for unpicklable payloads, which the caller
        treats like any submission failure (serial fallback).
        """
        blob = pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
        EXEC_STATS.incr(f"{stage}.payload_bytes", len(blob))
        EXEC_STATS.incr(f"{stage}.payload_tasks", 1)
        EXEC_STATS.incr(f"{stage}.payload_tasks_total", n_tasks)

    # ------------------------------------------------------------------
    def _chunks(self, indexed: list[tuple[int, object]], stage: str,
                ) -> list[list[tuple[int, object]]]:
        """Contiguous chunks sized to keep every worker busy."""
        size = self.chunk_size
        if size is None:
            size = config_mod.exec_chunk_size()
        if size is None:
            cost = EXEC_STATS.per_item_cost(stage)
            if cost is not None and cost > 0.0:
                # Target ~TARGET_CHUNK_S of work per task, but never
                # fewer chunks than workers.
                per_worker = -(-len(indexed) // self.n_workers)
                size = max(1, min(int(TARGET_CHUNK_S / cost), per_worker))
            else:
                # ~4 chunks per worker balances load without drowning
                # the queue in per-item submissions.
                size = max(1, -(-len(indexed) // (self.n_workers * 4)))
        return [indexed[i:i + size] for i in range(0, len(indexed), size)]

    def _map_serial(self, fn: Callable,
                    indexed: list[tuple[int, object]]) -> list:
        results, _ = _run_chunk(fn, indexed, self.seed)
        return results

    def _map_pool(self, fn: Callable, indexed: list[tuple[int, object]],
                  backend: str, stage: str) -> tuple[list, float, int]:
        """Fan a chunked map over a pool; (results, busy_s, workers)."""
        chunks = self._chunks(indexed, stage)
        if backend == "process":
            self._sample_payload(stage, (fn, chunks[0], self.seed),
                                 len(chunks))
        pool = self._acquire_pool(backend)
        broken = False
        try:
            futures = [pool.submit(_run_chunk, fn, chunk, self.seed)
                       for chunk in chunks]
            results: list = [None] * len(indexed)
            busy = 0.0
            cursor = 0
            for chunk, future in zip(chunks, futures):
                chunk_results, chunk_busy = future.result()
                busy += chunk_busy
                results[cursor:cursor + len(chunk)] = chunk_results
                cursor += len(chunk)
        except concurrent.futures.BrokenExecutor:
            broken = True
            raise
        finally:
            self._release_pool(backend, pool, broken)
        return results, busy, min(self.n_workers, len(chunks))

    def map(self, fn: Callable, items: Iterable,
            stage: str = "parallel_map") -> list:
        """Apply ``fn`` to every item; results are in input order.

        ``stage`` names the entry under which wall/busy time is
        recorded in :data:`~repro.exec.stats.EXEC_STATS`.
        """
        indexed = list(enumerate(items))
        start = time.perf_counter()
        effective_workers = 1
        backend = self._resolve_backend(len(indexed), stage)
        results: list = []
        busy = 0.0
        if backend == "probe":
            probe_results, probe_busy = _run_chunk(
                fn, indexed[:1], self.seed)
            results.extend(probe_results)
            busy += probe_busy
            indexed = indexed[1:]
            backend = self._decide_from_probe(probe_busy, len(indexed))
            EXEC_STATS.incr("parallel.auto_probe")
        if (backend == "serial" or self.n_workers <= 1
                or len(indexed) <= 1):
            rest, rest_busy = _run_chunk(fn, indexed, self.seed)
            results.extend(rest)
            busy += rest_busy
        else:
            try:
                rest, rest_busy, effective_workers = self._map_pool(
                    fn, indexed, backend, stage)
                results.extend(rest)
                busy += rest_busy
            except _FALLBACK_ERRORS:
                EXEC_STATS.incr("parallel.fallback_serial")
                serial_start = time.perf_counter()
                rest, _ = _run_chunk(fn, indexed, self.seed)
                results.extend(rest)
                busy += time.perf_counter() - serial_start
        EXEC_STATS.add_time(stage, time.perf_counter() - start, busy,
                            workers=effective_workers)
        EXEC_STATS.incr(f"{stage}.items", len(results))
        return results

    def map_chunks(self, fn: Callable[[list], list], items: Iterable,
                   stage: str = "parallel_map_chunks") -> list:
        """Apply a *batch* function to contiguous sublists of items.

        ``fn`` receives a list of items and must return one result per
        item, in order. Workers receive whole chunks, so ``fn`` can
        batch its work (stacked simulation, concatenated inference)
        instead of processing items one at a time. Chunk boundaries
        are an execution detail: as long as ``fn``'s per-item outputs
        do not depend on the grouping (everything in this repo is
        internally seeded per item), results are bit-identical across
        backends, worker counts and chunk sizes. On the serial path
        the whole item list is one chunk — maximum batching.
        """
        items = list(items)
        n_items = len(items)
        start = time.perf_counter()
        effective_workers = 1
        backend = self._resolve_backend(n_items, stage)
        results: list = []
        busy = 0.0
        first_index = 0
        if backend == "probe":
            probe_results, probe_busy = _run_batch(
                fn, 0, items[:1], self.seed)
            results.extend(probe_results)
            busy += probe_busy
            items = items[1:]
            first_index = 1
            backend = self._decide_from_probe(probe_busy, len(items))
            EXEC_STATS.incr("parallel.auto_probe")
        if not items:
            pass
        elif (backend == "serial" or self.n_workers <= 1
                or len(items) <= 1):
            rest, rest_busy = _run_batch(fn, first_index, items, self.seed)
            results.extend(rest)
            busy += rest_busy
        else:
            indexed = [(first_index + i, item)
                       for i, item in enumerate(items)]
            try:
                rest, rest_busy, effective_workers = self._map_chunk_pool(
                    fn, self._chunks(indexed, stage), stage)
                results.extend(rest)
                busy += rest_busy
            except _FALLBACK_ERRORS:
                EXEC_STATS.incr("parallel.fallback_serial")
                serial_start = time.perf_counter()
                rest, _ = _run_batch(fn, first_index, items, self.seed)
                results.extend(rest)
                busy += time.perf_counter() - serial_start
        if len(results) != n_items:
            raise ConfigurationError(
                f"map_chunks fn returned {len(results)} results for "
                f"{n_items} items"
            )
        EXEC_STATS.add_time(stage, time.perf_counter() - start, busy,
                            workers=effective_workers)
        EXEC_STATS.incr(f"{stage}.items", n_items)
        return results

    def _map_chunk_pool(self, fn: Callable[[list], list],
                        chunks: list[list[tuple[int, object]]],
                        stage: str) -> tuple[list, float, int]:
        """Fan whole chunks out to a pool; (results, busy_s, workers)."""
        backend = "thread" if self.backend == "thread" else "process"
        if backend == "process":
            self._sample_payload(
                stage,
                (fn, chunks[0][0][0],
                 [item for _, item in chunks[0]], self.seed),
                len(chunks))
        pool = self._acquire_pool(backend)
        broken = False
        try:
            futures = [
                pool.submit(_run_batch, fn, chunk[0][0],
                            [item for _, item in chunk], self.seed)
                for chunk in chunks
            ]
            results: list = []
            busy = 0.0
            for future in futures:
                chunk_results, chunk_busy = future.result()
                busy += chunk_busy
                results.extend(chunk_results)
        except concurrent.futures.BrokenExecutor:
            broken = True
            raise
        finally:
            self._release_pool(backend, pool, broken)
        return results, busy, min(self.n_workers, len(chunks))


#: Session-wide override installed by :func:`configure` (e.g. the CLI).
_DEFAULT: ParallelMap | None = None


def configure(backend: str | None = None, n_workers: int | None = None,
              chunk_size: int | None = None,
              seed: int | None = None,
              persistent: bool | None = None) -> ParallelMap:
    """Install the process-wide default :class:`ParallelMap`.

    Entry points that take a ``pmap`` argument fall back to this
    default when none is passed, so one ``configure`` call (or the
    ``REPRO_EXEC_*`` environment variables) parallelises every
    dataset-scale path at once.
    """
    global _DEFAULT
    _DEFAULT = ParallelMap(backend=backend, n_workers=n_workers,
                           chunk_size=chunk_size, seed=seed,
                           persistent=persistent)
    return _DEFAULT


def default_parallel_map() -> ParallelMap:
    """The configured default, or a fresh env-driven instance."""
    if _DEFAULT is not None:
        return _DEFAULT
    return ParallelMap()


def reset_default() -> None:
    """Drop any :func:`configure` override (tests)."""
    global _DEFAULT
    _DEFAULT = None
