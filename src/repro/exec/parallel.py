"""Deterministic parallel fan-out.

:class:`ParallelMap` is the one abstraction every dataset-scale path
uses to iterate over traces, configurations or folds. It offers three
backends — ``serial``, ``thread`` and ``process`` — behind a single
``map`` call that always returns results in input order, so a parallel
run is bit-identical to a serial one for any workload whose items are
independent and internally seeded (everything in this repo is; see
:mod:`repro.rng`).

Design points:

* **Chunked dispatch** — items are grouped into contiguous chunks to
  amortise task submission and pickling overhead; chunk results are
  reassembled by index, never by completion order.
* **Worker-side RNG seeding** — when a ``seed`` is given, the global
  NumPy RNG is re-seeded *per item* from ``derive_seed(seed, index)``
  before the item runs, so any stray use of the global generator is
  reproducible regardless of which worker executes which item.
* **Graceful degradation** — if a pool cannot start (no ``fork`` /
  resource limits) or the payload cannot be pickled, the map silently
  re-runs serially and records ``parallel.fallback_serial`` in
  :data:`~repro.exec.stats.EXEC_STATS` instead of crashing the run.

Defaults come from the environment so existing entry points pick up
parallelism without signature changes: ``REPRO_EXEC_BACKEND`` selects
the backend (default ``serial``) and ``REPRO_EXEC_WORKERS`` the worker
count (default: CPU count).
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import time
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.exec.stats import EXEC_STATS

#: Environment variable selecting the default backend.
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"

#: Environment variable selecting the default worker count.
WORKERS_ENV_VAR = "REPRO_EXEC_WORKERS"

#: Recognised backends, in increasing isolation order.
BACKENDS = ("serial", "thread", "process")

#: Exceptions that mean "the pool/payload is unusable", not "the task
#: failed": these trigger the serial fallback. Genuine task errors
#: (e.g. DatasetError from a worker) propagate unchanged.
_FALLBACK_ERRORS = (
    concurrent.futures.BrokenExecutor,
    pickle.PicklingError,
    AttributeError,  # "Can't pickle local object ..."
    TypeError,  # "cannot pickle '_thread.lock' object"
    ImportError,
    OSError,
)


def _run_chunk(fn: Callable, indexed: Sequence[tuple[int, object]],
               seed: int | None) -> tuple[list, float]:
    """Run one chunk of (index, item) pairs; returns (results, busy_s)."""
    start = time.perf_counter()
    out = []
    for index, item in indexed:
        if seed is not None:
            np.random.seed(rng_mod.derive_seed(seed, "exec-item", index)
                           % (2 ** 32))
        out.append(fn(item))
    return out, time.perf_counter() - start


def _run_batch(fn: Callable, first_index: int, items: list,
               seed: int | None) -> tuple[list, float]:
    """Run one whole-chunk call of a batch function; see ``map_chunks``."""
    start = time.perf_counter()
    if seed is not None:
        np.random.seed(rng_mod.derive_seed(seed, "exec-chunk", first_index)
                       % (2 ** 32))
    out = fn(items)
    return out, time.perf_counter() - start


class ParallelMap:
    """Ordered, chunked, deterministic map over independent items."""

    def __init__(self, backend: str | None = None,
                 n_workers: int | None = None,
                 chunk_size: int | None = None,
                 seed: int | None = None) -> None:
        if backend is None:
            backend = os.environ.get(BACKEND_ENV_VAR, "serial")
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown exec backend {backend!r}; expected one of "
                f"{BACKENDS}"
            )
        if n_workers is None:
            raw = os.environ.get(WORKERS_ENV_VAR)
            n_workers = int(raw) if raw else (os.cpu_count() or 1)
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.backend = backend
        self.n_workers = n_workers
        self.chunk_size = chunk_size
        self.seed = seed

    # ------------------------------------------------------------------
    def _chunks(self, indexed: list[tuple[int, object]],
                ) -> list[list[tuple[int, object]]]:
        """Contiguous chunks sized to keep every worker busy."""
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker balances load without drowning the
            # queue in per-item submissions.
            size = max(1, -(-len(indexed) // (self.n_workers * 4)))
        return [indexed[i:i + size] for i in range(0, len(indexed), size)]

    def _map_serial(self, fn: Callable,
                    indexed: list[tuple[int, object]]) -> list:
        results, _ = _run_chunk(fn, indexed, self.seed)
        return results

    def _map_pool(self, fn: Callable, indexed: list[tuple[int, object]],
                  ) -> tuple[list, float]:
        """Fan a chunked map out over a pool; returns (results, busy_s)."""
        if self.backend == "thread":
            executor_cls = concurrent.futures.ThreadPoolExecutor
        else:
            executor_cls = concurrent.futures.ProcessPoolExecutor
        chunks = self._chunks(indexed)
        with executor_cls(max_workers=self.n_workers) as pool:
            futures = [pool.submit(_run_chunk, fn, chunk, self.seed)
                       for chunk in chunks]
            results: list = [None] * len(indexed)
            busy = 0.0
            cursor = 0
            for chunk, future in zip(chunks, futures):
                chunk_results, chunk_busy = future.result()
                busy += chunk_busy
                results[cursor:cursor + len(chunk)] = chunk_results
                cursor += len(chunk)
        return results, busy

    def map(self, fn: Callable, items: Iterable,
            stage: str = "parallel_map") -> list:
        """Apply ``fn`` to every item; results are in input order.

        ``stage`` names the entry under which wall/busy time is
        recorded in :data:`~repro.exec.stats.EXEC_STATS`.
        """
        indexed = list(enumerate(items))
        start = time.perf_counter()
        effective_workers = 1
        if (self.backend == "serial" or self.n_workers <= 1
                or len(indexed) <= 1):
            results = self._map_serial(fn, indexed)
            busy = time.perf_counter() - start
        else:
            try:
                results, busy = self._map_pool(fn, indexed)
                effective_workers = min(self.n_workers, len(indexed))
            except _FALLBACK_ERRORS:
                EXEC_STATS.incr("parallel.fallback_serial")
                serial_start = time.perf_counter()
                results = self._map_serial(fn, indexed)
                busy = time.perf_counter() - serial_start
        EXEC_STATS.add_time(stage, time.perf_counter() - start, busy,
                            workers=effective_workers)
        EXEC_STATS.incr(f"{stage}.items", len(indexed))
        return results

    def map_chunks(self, fn: Callable[[list], list], items: Iterable,
                   stage: str = "parallel_map_chunks") -> list:
        """Apply a *batch* function to contiguous sublists of items.

        ``fn`` receives a list of items and must return one result per
        item, in order. Workers receive whole chunks, so ``fn`` can
        batch its work (stacked simulation, concatenated inference)
        instead of processing items one at a time. Chunk boundaries
        are an execution detail: as long as ``fn``'s per-item outputs
        do not depend on the grouping (everything in this repo is
        internally seeded per item), results are bit-identical across
        backends, worker counts and chunk sizes. On the serial path
        the whole item list is one chunk — maximum batching.
        """
        items = list(items)
        start = time.perf_counter()
        effective_workers = 1
        if not items:
            results: list = []
            busy = 0.0
        elif (self.backend == "serial" or self.n_workers <= 1
                or len(items) <= 1):
            results, busy = _run_batch(fn, 0, items, self.seed)
        else:
            indexed = list(enumerate(items))
            chunks = self._chunks(indexed)
            try:
                results, busy = self._map_chunk_pool(fn, chunks)
                effective_workers = min(self.n_workers, len(chunks))
            except _FALLBACK_ERRORS:
                EXEC_STATS.incr("parallel.fallback_serial")
                serial_start = time.perf_counter()
                results, busy = _run_batch(fn, 0, items, self.seed)
                busy = time.perf_counter() - serial_start
        if len(results) != len(items):
            raise ConfigurationError(
                f"map_chunks fn returned {len(results)} results for "
                f"{len(items)} items"
            )
        EXEC_STATS.add_time(stage, time.perf_counter() - start, busy,
                            workers=effective_workers)
        EXEC_STATS.incr(f"{stage}.items", len(items))
        return results

    def _map_chunk_pool(self, fn: Callable[[list], list],
                        chunks: list[list[tuple[int, object]]],
                        ) -> tuple[list, float]:
        """Fan whole chunks out to a pool; returns (results, busy_s)."""
        if self.backend == "thread":
            executor_cls = concurrent.futures.ThreadPoolExecutor
        else:
            executor_cls = concurrent.futures.ProcessPoolExecutor
        with executor_cls(max_workers=self.n_workers) as pool:
            futures = [
                pool.submit(_run_batch, fn, chunk[0][0],
                            [item for _, item in chunk], self.seed)
                for chunk in chunks
            ]
            results: list = []
            busy = 0.0
            for future in futures:
                chunk_results, chunk_busy = future.result()
                busy += chunk_busy
                results.extend(chunk_results)
        return results, busy


#: Session-wide override installed by :func:`configure` (e.g. the CLI).
_DEFAULT: ParallelMap | None = None


def configure(backend: str | None = None, n_workers: int | None = None,
              chunk_size: int | None = None,
              seed: int | None = None) -> ParallelMap:
    """Install the process-wide default :class:`ParallelMap`.

    Entry points that take a ``pmap`` argument fall back to this
    default when none is passed, so one ``configure`` call (or the
    ``REPRO_EXEC_*`` environment variables) parallelises every
    dataset-scale path at once.
    """
    global _DEFAULT
    _DEFAULT = ParallelMap(backend=backend, n_workers=n_workers,
                           chunk_size=chunk_size, seed=seed)
    return _DEFAULT


def default_parallel_map() -> ParallelMap:
    """The configured default, or a fresh env-driven instance."""
    if _DEFAULT is not None:
        return _DEFAULT
    return ParallelMap()


def reset_default() -> None:
    """Drop any :func:`configure` override (tests)."""
    global _DEFAULT
    _DEFAULT = None
