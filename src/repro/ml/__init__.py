"""From-scratch ML library.

The paper trains its adaptation models with scikit-learn [36]; that is
unavailable offline, so this package implements the needed estimators
on numpy/scipy:

* :mod:`repro.ml.mlp` — multi-layer perceptrons trained with Adam
  backpropagation (the paper's MLP models, Section 5);
* :mod:`repro.ml.tree` / :mod:`repro.ml.forest` — CART decision trees
  (entropy criterion) and random forests, including the tree-merging
  used for application-specific retraining (Section 7.3);
* :mod:`repro.ml.linear` — logistic and softmax regression via L-BFGS
  (the SRCH baseline reduces to logistic regression on histograms);
* :mod:`repro.ml.svm` — linear and kernel (chi-square) SVMs (Table 3);
* :mod:`repro.ml.crossval` — per-application k-fold cross validation
  (Section 4.3) and leave-one-out folds;
* :mod:`repro.ml.hyperscreen` — high-throughput hyperparameter
  screening (Section 6.3).

All estimators share the tiny protocol of :mod:`repro.ml.base`:
``fit(X, y)``, ``predict_proba(X)``, ``predict(X)``, plus an adjustable
``decision_threshold`` for the paper's sensitivity tuning.
"""

from repro.ml.base import Estimator, StandardScaler
from repro.ml.forest import RandomForestClassifier, merge_forests
from repro.ml.linear import LogisticRegression, SoftmaxRegression
from repro.ml.mlp import MLPClassifier
from repro.ml.svm import KernelSVM, LinearSVM
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "Estimator",
    "StandardScaler",
    "RandomForestClassifier",
    "merge_forests",
    "LogisticRegression",
    "SoftmaxRegression",
    "MLPClassifier",
    "KernelSVM",
    "LinearSVM",
    "DecisionTreeClassifier",
]
