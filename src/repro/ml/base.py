"""Estimator protocol and shared preprocessing."""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import DatasetError, NotFittedError


def check_xy(x: np.ndarray, y: np.ndarray | None = None,
             ) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate and canonicalise a feature matrix (and labels)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"X must be 2-D, got shape {x.shape}")
    if not np.all(np.isfinite(x)):
        raise DatasetError("X contains NaN or infinite values")
    if y is None:
        return x, None
    y = np.asarray(y)
    if y.shape[0] != x.shape[0]:
        raise DatasetError(
            f"X has {x.shape[0]} rows but y has {y.shape[0]}"
        )
    return x, y


class Estimator(abc.ABC):
    """Binary classifier protocol used by all adaptation models.

    ``predict_proba`` returns the probability (or score in [0, 1]) of
    the positive class — "gate cluster 2" / low-power mode.
    ``decision_threshold`` implements the paper's sensitivity
    adjustment (Section 6.3): raising it makes the model more
    conservative about choosing low-power mode.
    """

    decision_threshold: float = 0.5

    @abc.abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "Estimator":
        """Train on features ``x`` and binary labels ``y``."""

    @abc.abstractmethod
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Positive-class probability for each row of ``x``."""

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Binary predictions at the current decision threshold."""
        return (self.predict_proba(x) >= self.decision_threshold
                ).astype(np.int64)

    def _require_fitted(self, attr: str) -> None:
        if getattr(self, attr, None) is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before inference"
            )


class StandardScaler:
    """Feature standardisation fit on training data only."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x, _ = check_xy(x)
        self.mean_ = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler must be fitted first")
        x, _ = check_xy(x)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


def tune_threshold_for_fp_rate(model: Estimator, x: np.ndarray,
                               y: np.ndarray,
                               max_fp_rate: float = 0.01) -> float:
    """Adjust a model's sensitivity to bound false positives.

    Section 6.3: after training, the prediction threshold required to
    choose low-power mode is raised until the false-positive rate
    (gating decisions on non-gateable intervals, the driver of SLA
    violations) on the tuning set falls below ``max_fp_rate``.

    Returns the chosen threshold and sets it on the model.
    """
    x, y = check_xy(x, y)
    scores = model.predict_proba(x)
    negatives = scores[y == 0]
    if negatives.size == 0:
        model.decision_threshold = 0.5
        return 0.5
    # The smallest threshold that keeps the FP rate at or below target.
    threshold = float(np.quantile(negatives, 1.0 - max_fp_rate))
    threshold = min(max(threshold, 0.5), 0.999)
    model.decision_threshold = threshold
    return threshold
