"""Random forest classifier.

Bootstrap-aggregated CART trees with per-split feature subsampling.
The paper's Best RF is 8 trees of max depth 8 over the 12 PF counters
(Section 6.3 / Table 3). Section 7.3's application-specific models are
built by *merging* two half-forests — one trained on the high-diversity
corpus, one on the target application — which :func:`merge_forests`
implements.
"""

from __future__ import annotations

import functools
import pickle

import numpy as np

from repro import rng as rng_mod
from repro.config import exec_arena_enabled
from repro.errors import (
    ArenaIntegrityError,
    ConfigurationError,
    NotFittedError,
)
from repro.exec.arena import TraceArena
from repro.exec.parallel import default_parallel_map
from repro.exec.stats import EXEC_STATS
from repro.ml.base import Estimator, check_xy
from repro.ml.tree import DecisionTreeClassifier


def _fit_tree_task(task: tuple[np.ndarray, int], *, x: np.ndarray,
                   y: np.ndarray, max_depth: int, min_samples_leaf: int,
                   max_features) -> DecisionTreeClassifier:
    """Grow one tree from pre-drawn bootstrap indices (parallel unit)."""
    idx, tree_seed = task
    tree = DecisionTreeClassifier(
        max_depth=max_depth,
        min_samples_leaf=min_samples_leaf,
        max_features=max_features,
        seed=tree_seed,
    )
    return tree.fit(x[idx], y[idx])


def _arena_fit_tree(handle: str, t: int) -> DecisionTreeClassifier:
    """Worker-side tree fit: x/y/indices ride the arena, tasks are
    tree numbers."""
    arena = TraceArena.attach(handle)
    params = arena.object("params")
    tree = DecisionTreeClassifier(
        seed=int(arena.array("seeds")[t]), **params)
    idx = arena.array("idx")[t]
    return tree.fit(arena.array("x")[idx], arena.array("y")[idx])


class RandomForestClassifier(Estimator):
    """Ensemble of CART trees; probability is the mean tree vote."""

    def __init__(self, n_trees: int = 8, max_depth: int = 8,
                 min_samples_leaf: int = 8,
                 max_features: int | str | None = "sqrt",
                 bootstrap: bool = True, seed: int = 0) -> None:
        if n_trees < 1:
            raise ConfigurationError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.decision_threshold = 0.5
        self.trees_: list[DecisionTreeClassifier] | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Grow the ensemble; tree fits fan out through the exec engine.

        Bootstrap indices are pre-drawn *sequentially* from the same
        ``forest-bootstrap`` stream as the original loop and each tree
        keeps its ``derive_seed(seed, "tree", t)`` seed, so the fitted
        forest is bit-identical regardless of backend, worker count or
        chunking. Under a process/auto backend the training matrix,
        index block and per-tree seeds ship once via a
        :class:`~repro.exec.arena.TraceArena`; task payloads are tree
        numbers.
        """
        x, y = check_xy(x, y)
        rng = rng_mod.stream(self.seed, "forest-bootstrap")
        n = x.shape[0]
        if self.bootstrap:
            idx_all = [rng.integers(0, n, size=n)
                       for _ in range(self.n_trees)]
        else:
            idx_all = [np.arange(n) for _ in range(self.n_trees)]
        seeds = [rng_mod.derive_seed(self.seed, "tree", t)
                 for t in range(self.n_trees)]
        pmap = default_parallel_map()
        arena = None
        if (exec_arena_enabled() and self.n_trees > 1
                and pmap.uses_processes(self.n_trees, "forest_fit")):
            try:
                arena = TraceArena.build(
                    arrays={"x": x, "y": y,
                            "idx": np.stack(idx_all),
                            "seeds": np.asarray(seeds, dtype=np.int64)},
                    objects={"params": {
                        "max_depth": self.max_depth,
                        "min_samples_leaf": self.min_samples_leaf,
                        "max_features": self.max_features,
                    }})
            except (pickle.PicklingError, AttributeError, TypeError):
                EXEC_STATS.incr("arena.build_fallback")
        self.trees_ = None
        if arena is not None:
            try:
                self.trees_ = pmap.map(
                    functools.partial(_arena_fit_tree, arena.handle),
                    range(self.n_trees), stage="forest_fit")
            except ArenaIntegrityError:
                # Corrupt/injected-corrupt segment: fall back to
                # pickled dispatch below — bit-identical, just slower.
                EXEC_STATS.incr("arena.attach_fallback")
            finally:
                arena.close()
        if self.trees_ is None:
            self.trees_ = pmap.map(
                functools.partial(_fit_tree_task, x=x, y=y,
                                  max_depth=self.max_depth,
                                  min_samples_leaf=self.min_samples_leaf,
                                  max_features=self.max_features),
                list(zip(idx_all, seeds)), stage="forest_fit")
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted("trees_")
        assert self.trees_ is not None
        x, _ = check_xy(x)
        votes = np.zeros(x.shape[0])
        for tree in self.trees_:
            votes += tree.predict_proba(x)
        return votes / len(self.trees_)

    # ------------------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        """Total node count across all trees."""
        self._require_fitted("trees_")
        assert self.trees_ is not None
        return sum(tree.n_nodes for tree in self.trees_)


def merge_forests(first: RandomForestClassifier,
                  second: RandomForestClassifier,
                  ) -> RandomForestClassifier:
    """Combine two fitted forests into one (Section 7.3).

    The paper builds application-specific models by joining a 4-tree
    forest trained on HDTR with a 4-tree forest trained on the target
    application, forming a single 8-tree forest whose vote blends
    high-diversity and application-specific knowledge.
    """
    if first.trees_ is None or second.trees_ is None:
        raise NotFittedError("both forests must be fitted before merging")
    merged = RandomForestClassifier(
        n_trees=first.n_trees + second.n_trees,
        max_depth=max(first.max_depth, second.max_depth),
        min_samples_leaf=min(first.min_samples_leaf,
                             second.min_samples_leaf),
        max_features=first.max_features,
        bootstrap=first.bootstrap,
        seed=first.seed,
    )
    merged.trees_ = [*first.trees_, *second.trees_]
    merged.decision_threshold = 0.5 * (first.decision_threshold
                                       + second.decision_threshold)
    return merged
