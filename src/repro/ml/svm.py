"""Support vector machines.

Section 5 of the paper analyses SVMs as adaptation-model candidates:
linear-kernel SVMs (cheap, one inner product per prediction, evaluated
as a small ensemble) and chi-square-kernel SVMs (accurate but an order
of magnitude more inference ops than the largest MLP — Table 3 lists
121k ops for 1,000 support vectors). The paper ultimately finds SVMs
insufficiently accurate per op to deploy, but both variants are needed
to regenerate Table 3.

:class:`LinearSVM` trains a squared-hinge-loss linear separator with
L-BFGS. :class:`KernelSVM` trains the kernel dual with a simplified
SMO-style coordinate ascent over a (subsampled) kernel matrix, with a
support-vector budget matching the paper's "max support vectors"
configuration knob.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.ml.base import Estimator, StandardScaler, check_xy
from repro.ml.kernels import get_kernel
from repro.ml.mlp import sigmoid


class LinearSVM(Estimator):
    """Linear SVM (squared hinge loss), optionally a small ensemble.

    The paper's Table 3 entry is a 5-member linear-SVM ensemble; with
    ``n_members > 1`` each member trains on a bootstrap sample and the
    score is the mean margin.
    """

    def __init__(self, c: float = 1.0, n_members: int = 1,
                 max_iter: int = 200, seed: int = 0) -> None:
        if n_members < 1:
            raise ConfigurationError(f"n_members must be >= 1: {n_members}")
        self.c = c
        self.n_members = n_members
        self.max_iter = max_iter
        self.seed = seed
        self.decision_threshold = 0.5
        self.coefs_: np.ndarray | None = None  # (m, d)
        self.intercepts_: np.ndarray | None = None  # (m,)
        self.scaler_: StandardScaler | None = None

    def _fit_member(self, xs: np.ndarray, sy: np.ndarray,
                    ) -> tuple[np.ndarray, float]:
        n, d = xs.shape

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            w, b = params[:d], params[d]
            margins = sy * (xs @ w + b)
            slack = np.maximum(1.0 - margins, 0.0)
            loss = 0.5 * (w @ w) + self.c * np.sum(slack ** 2) / n
            grad_scale = -2.0 * self.c * slack * sy / n
            grad_w = w + xs.T @ grad_scale
            grad_b = grad_scale.sum()
            return float(loss), np.concatenate([grad_w, [grad_b]])

        result = scipy.optimize.minimize(
            objective, np.zeros(d + 1), jac=True, method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        return result.x[:d], float(result.x[d])

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        x, y = check_xy(x, y)
        sy = np.where(y > 0, 1.0, -1.0)
        self.scaler_ = StandardScaler()
        xs = self.scaler_.fit_transform(x)
        rng = rng_mod.stream(self.seed, "linsvm")
        coefs, intercepts = [], []
        n = xs.shape[0]
        for member in range(self.n_members):
            if self.n_members > 1:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            w, b = self._fit_member(xs[idx], sy[idx])
            coefs.append(w)
            intercepts.append(b)
        self.coefs_ = np.array(coefs)
        self.intercepts_ = np.array(intercepts)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted("coefs_")
        assert self.scaler_ is not None
        assert self.coefs_ is not None and self.intercepts_ is not None
        x, _ = check_xy(x)
        xs = self.scaler_.transform(x)
        margins = xs @ self.coefs_.T + self.intercepts_
        return sigmoid(margins.mean(axis=1))


class KernelSVM(Estimator):
    """Kernel SVM trained with simplified SMO coordinate ascent.

    ``max_support_vectors`` bounds the training subsample, matching the
    paper's configuration knob (Table 3 uses 1,000 for the chi-square
    kernel). Features are min-max scaled to [0, 1] so the chi-square
    kernel's non-negativity requirement holds.
    """

    def __init__(self, kernel: str = "chi2", c: float = 1.0,
                 gamma: float = 1.0, max_support_vectors: int = 1000,
                 max_passes: int = 5, tol: float = 1e-3,
                 seed: int = 0) -> None:
        self.kernel_name = kernel
        self.c = c
        self.gamma = gamma
        self.max_support_vectors = max_support_vectors
        self.max_passes = max_passes
        self.tol = tol
        self.seed = seed
        self.decision_threshold = 0.5
        self.support_x_: np.ndarray | None = None
        self.support_alpha_y_: np.ndarray | None = None
        self.intercept_: float | None = None
        self._min: np.ndarray | None = None
        self._range: np.ndarray | None = None

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        func = get_kernel(self.kernel_name)
        if self.kernel_name == "linear":
            return func(a, b)
        return func(a, b, gamma=self.gamma)

    def _scale(self, x: np.ndarray) -> np.ndarray:
        assert self._min is not None and self._range is not None
        return np.clip((x - self._min) / self._range, 0.0, 1.0)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KernelSVM":
        x, y = check_xy(x, y)
        sy = np.where(y > 0, 1.0, -1.0)
        self._min = x.min(axis=0)
        rng_range = x.max(axis=0) - self._min
        rng_range[rng_range == 0.0] = 1.0
        self._range = rng_range
        xs = self._scale(x)

        rng = rng_mod.stream(self.seed, "ksvm")
        n = xs.shape[0]
        if n > self.max_support_vectors:
            idx = rng.choice(n, size=self.max_support_vectors, replace=False)
            xs, sy = xs[idx], sy[idx]
            n = xs.shape[0]

        gram = self._kernel(xs, xs)
        alpha = np.zeros(n)
        b = 0.0
        passes = 0
        while passes < self.max_passes:
            changed = 0
            scores = (alpha * sy) @ gram + b
            errors = scores - sy
            for i in range(n):
                e_i = float((alpha * sy) @ gram[i] + b - sy[i])
                kkt = ((sy[i] * e_i < -self.tol and alpha[i] < self.c)
                       or (sy[i] * e_i > self.tol and alpha[i] > 0.0))
                if not kkt:
                    continue
                j = int(rng.integers(n - 1))
                if j >= i:
                    j += 1
                e_j = float((alpha * sy) @ gram[j] + b - sy[j])
                a_i_old, a_j_old = alpha[i], alpha[j]
                if sy[i] != sy[j]:
                    low = max(0.0, a_j_old - a_i_old)
                    high = min(self.c, self.c + a_j_old - a_i_old)
                else:
                    low = max(0.0, a_i_old + a_j_old - self.c)
                    high = min(self.c, a_i_old + a_j_old)
                if low >= high:
                    continue
                eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                if eta >= 0.0:
                    continue
                a_j = a_j_old - sy[j] * (e_i - e_j) / eta
                a_j = min(max(a_j, low), high)
                if abs(a_j - a_j_old) < 1e-6:
                    continue
                a_i = a_i_old + sy[i] * sy[j] * (a_j_old - a_j)
                alpha[i], alpha[j] = a_i, a_j
                b_i = (b - e_i - sy[i] * (a_i - a_i_old) * gram[i, i]
                       - sy[j] * (a_j - a_j_old) * gram[i, j])
                b_j = (b - e_j - sy[i] * (a_i - a_i_old) * gram[i, j]
                       - sy[j] * (a_j - a_j_old) * gram[j, j])
                if 0.0 < a_i < self.c:
                    b = b_i
                elif 0.0 < a_j < self.c:
                    b = b_j
                else:
                    b = 0.5 * (b_i + b_j)
                changed += 1
            passes = passes + 1 if changed == 0 else 0
            if changed == 0:
                break
        support = alpha > 1e-8
        self.support_x_ = xs[support]
        self.support_alpha_y_ = (alpha * sy)[support]
        self.intercept_ = float(b)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed margin of each sample."""
        self._require_fitted("support_x_")
        assert (self.support_x_ is not None
                and self.support_alpha_y_ is not None
                and self.intercept_ is not None)
        x, _ = check_xy(x)
        xs = self._scale(x)
        gram = self._kernel(xs, self.support_x_)
        return gram @ self.support_alpha_y_ + self.intercept_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return sigmoid(self.decision_function(x))

    @property
    def n_support(self) -> int:
        """Number of support vectors retained."""
        self._require_fitted("support_x_")
        assert self.support_x_ is not None
        return int(self.support_x_.shape[0])
