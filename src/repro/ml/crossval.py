"""Per-application cross validation (Section 4.3).

The paper partitions the HDTR corpus *by application*: all telemetry
from one application lands in either the tuning or the validation set,
never both, so validation measures generalisation to unseen programs
rather than to unseen intervals of seen programs. Folds are randomized
80/20 partitions, repeated k = 32 times; metric means and standard
deviations across folds drive design-time model selection.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro import rng as rng_mod
from repro.errors import DatasetError


@dataclasses.dataclass(frozen=True)
class Fold:
    """One cross-validation fold at application granularity."""

    fold_id: int
    tuning_apps: tuple[str, ...]
    validation_apps: tuple[str, ...]
    tuning_idx: np.ndarray
    validation_idx: np.ndarray


def _group_indices(groups: Sequence[str]) -> dict[str, np.ndarray]:
    arr = np.asarray(groups)
    return {name: np.flatnonzero(arr == name) for name in np.unique(arr)}


def app_kfold(groups: Sequence[str], k: int = 32,
              validation_fraction: float = 0.2, seed: int = 0,
              max_tuning_apps: int | None = None) -> list[Fold]:
    """Randomized per-application 80/20 folds (paper default k=32).

    Parameters
    ----------
    groups:
        Application name for each data row.
    max_tuning_apps:
        Cap on tuning-set applications, used by the training-diversity
        experiment (Figure 4) to vary tuning-set size while keeping the
        validation fraction fixed.
    """
    if not 0.0 < validation_fraction < 1.0:
        raise DatasetError(
            f"validation_fraction must be in (0,1): {validation_fraction}"
        )
    by_app = _group_indices(groups)
    apps = sorted(by_app)
    if len(apps) < 2:
        raise DatasetError("need at least two applications for app folds")
    n_val = max(1, int(round(len(apps) * validation_fraction)))
    folds: list[Fold] = []
    for fold_id in range(k):
        rng = rng_mod.stream(seed, "app-kfold", fold_id)
        order = rng.permutation(len(apps))
        val_apps = tuple(apps[i] for i in order[:n_val])
        tune_apps = [apps[i] for i in order[n_val:]]
        if max_tuning_apps is not None:
            tune_apps = tune_apps[:max_tuning_apps]
        tune_apps_t = tuple(tune_apps)
        tuning_idx = np.concatenate([by_app[a] for a in tune_apps_t])
        validation_idx = np.concatenate([by_app[a] for a in val_apps])
        folds.append(Fold(
            fold_id=fold_id,
            tuning_apps=tune_apps_t,
            validation_apps=val_apps,
            tuning_idx=np.sort(tuning_idx),
            validation_idx=np.sort(validation_idx),
        ))
    return folds


def leave_one_app_out(groups: Sequence[str]) -> list[Fold]:
    """Leave-one-application-out folds (Section 7 footnote 2)."""
    by_app = _group_indices(groups)
    apps = sorted(by_app)
    if len(apps) < 2:
        raise DatasetError("need at least two applications")
    folds: list[Fold] = []
    for fold_id, held_out in enumerate(apps):
        tune_apps = tuple(a for a in apps if a != held_out)
        folds.append(Fold(
            fold_id=fold_id,
            tuning_apps=tune_apps,
            validation_apps=(held_out,),
            tuning_idx=np.sort(np.concatenate(
                [by_app[a] for a in tune_apps])),
            validation_idx=by_app[held_out],
        ))
    return folds


def leave_one_group_out(groups: Sequence[str]) -> list[Fold]:
    """Alias of :func:`leave_one_app_out` for workload-level groups.

    Section 7.3 applies leave-one-out over *workloads* of a single
    application; pass workload names as the groups.
    """
    return leave_one_app_out(groups)
