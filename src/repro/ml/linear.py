"""Linear probabilistic classifiers.

* :class:`LogisticRegression` — trained with L-BFGS via
  ``scipy.optimize`` (the paper trains SRCH "by fitting a logistic
  regression using an open source implementation of the L-BFGS
  algorithm").
* :class:`SoftmaxRegression` — the multi-configuration generalisation
  used by the SRCH framework of Dubach et al.; with two classes it
  reduces exactly to logistic regression, as the paper notes.
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from repro.errors import ConfigurationError
from repro.ml.base import Estimator, StandardScaler, check_xy
from repro.ml.mlp import sigmoid


class LogisticRegression(Estimator):
    """Binary logistic regression with L2 regularisation (L-BFGS)."""

    def __init__(self, l2: float = 1e-4, max_iter: int = 200,
                 class_weight: str | None = "balanced") -> None:
        self.l2 = l2
        self.max_iter = max_iter
        self.class_weight = class_weight
        self.decision_threshold = 0.5
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self.scaler_: StandardScaler | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x, y = check_xy(x, y)
        y = y.astype(np.float64)
        self.scaler_ = StandardScaler()
        xs = self.scaler_.fit_transform(x)
        n, d = xs.shape
        if self.class_weight == "balanced":
            pos = max(y.mean(), 1e-6)
            weights = np.where(y == 1.0, 0.5 / pos, 0.5 / max(1 - pos, 1e-6))
        else:
            weights = np.ones(n)
        weights = weights / weights.sum()

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            w, b = params[:d], params[d]
            z = xs @ w + b
            p = sigmoid(z)
            eps = 1e-12
            loss = -np.sum(weights * (y * np.log(p + eps)
                                      + (1 - y) * np.log(1 - p + eps)))
            loss += 0.5 * self.l2 * (w @ w)
            delta = weights * (p - y)
            grad_w = xs.T @ delta + self.l2 * w
            grad_b = delta.sum()
            return float(loss), np.concatenate([grad_w, [grad_b]])

        result = scipy.optimize.minimize(
            objective, np.zeros(d + 1), jac=True, method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d])
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted("coef_")
        assert self.scaler_ is not None and self.coef_ is not None
        x, _ = check_xy(x)
        xs = self.scaler_.transform(x)
        return sigmoid(xs @ self.coef_ + self.intercept_)


class SoftmaxRegression:
    """Multinomial logistic (softmax) regression via L-BFGS.

    Predicts the best of ``k`` hardware configurations from counter
    features, as in the SRCH framework. For ``k = 2`` its probabilities
    match :class:`LogisticRegression` up to optimisation tolerance.
    """

    def __init__(self, l2: float = 1e-4, max_iter: int = 200) -> None:
        self.l2 = l2
        self.max_iter = max_iter
        self.coef_: np.ndarray | None = None  # (d, k)
        self.intercept_: np.ndarray | None = None  # (k,)
        self.scaler_: StandardScaler | None = None
        self.n_classes_: int | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SoftmaxRegression":
        x, y = check_xy(x, y)
        y = y.astype(np.int64)
        if y.min() < 0:
            raise ConfigurationError("labels must be non-negative ints")
        k = int(y.max()) + 1
        self.n_classes_ = k
        self.scaler_ = StandardScaler()
        xs = self.scaler_.fit_transform(x)
        n, d = xs.shape
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y] = 1.0

        def softmax(z: np.ndarray) -> np.ndarray:
            z = z - z.max(axis=1, keepdims=True)
            e = np.exp(z)
            return e / e.sum(axis=1, keepdims=True)

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            w = params[:d * k].reshape(d, k)
            b = params[d * k:]
            p = softmax(xs @ w + b)
            eps = 1e-12
            loss = -np.sum(onehot * np.log(p + eps)) / n
            loss += 0.5 * self.l2 * np.sum(w * w)
            delta = (p - onehot) / n
            grad_w = xs.T @ delta + self.l2 * w
            grad_b = delta.sum(axis=0)
            return float(loss), np.concatenate([grad_w.ravel(), grad_b])

        result = scipy.optimize.minimize(
            objective, np.zeros(d * k + k), jac=True, method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:d * k].reshape(d, k)
        self.intercept_ = result.x[d * k:]
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            from repro.errors import NotFittedError
            raise NotFittedError("SoftmaxRegression must be fitted first")
        assert self.scaler_ is not None and self.intercept_ is not None
        x, _ = check_xy(x)
        xs = self.scaler_.transform(x)
        z = xs @ self.coef_ + self.intercept_
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most likely configuration index for each row."""
        return self.predict_proba(x).argmax(axis=1)
