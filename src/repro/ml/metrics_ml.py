"""Generic classifier metrics.

System-level metrics (PGOS, RSV) live in :mod:`repro.eval.metrics`;
these are the plain statistical ones used in unit tests and screening.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError


def _check(y_true: np.ndarray, y_pred: np.ndarray,
           ) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).astype(np.int64)
    y_pred = np.asarray(y_pred).astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise DatasetError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true, y_pred = _check(y_true, y_pred)
    if y_true.size == 0:
        raise DatasetError("empty prediction arrays")
    return float((y_true == y_pred).mean())


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray,
                     ) -> dict[str, int]:
    """TP/FP/TN/FN counts with positive = gate / low-power (Section 4.2)."""
    y_true, y_pred = _check(y_true, y_pred)
    return {
        "tp": int(((y_pred == 1) & (y_true == 1)).sum()),
        "fp": int(((y_pred == 1) & (y_true == 0)).sum()),
        "tn": int(((y_pred == 0) & (y_true == 0)).sum()),
        "fn": int(((y_pred == 0) & (y_true == 1)).sum()),
    }


def recall(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """True-positive rate; in the paper's terms, PGOS (Eq. 1)."""
    counts = confusion_counts(y_true, y_pred)
    denom = counts["tp"] + counts["fn"]
    if denom == 0:
        return 0.0
    return counts["tp"] / denom


def precision(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of gating decisions that were correct."""
    counts = confusion_counts(y_true, y_pred)
    denom = counts["tp"] + counts["fp"]
    if denom == 0:
        return 0.0
    return counts["tp"] / denom


def false_positive_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of non-gateable intervals wrongly gated (SLA risk)."""
    counts = confusion_counts(y_true, y_pred)
    denom = counts["fp"] + counts["tn"]
    if denom == 0:
        return 0.0
    return counts["fp"] / denom


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)
