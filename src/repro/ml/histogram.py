"""Counter-histogram features for the SRCH baseline.

Dubach et al.'s framework (Section 7: "Softmax Regression on Counter
Histograms") encodes telemetry over a window of time as per-counter
histograms: each counter is bucketed into 10 bins, tallies are updated
by sampling counters every 10k instructions, and the concatenated
histogram is the model's feature vector.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError, NotFittedError


class CounterHistogramEncoder:
    """Per-counter 10-bucket histogram features over a sliding window.

    ``strategy="width"`` (default) uses equal-width buckets over each
    counter's training range, as the original SRCH framework does; on
    heavy-tailed counter data most mass lands in a few buckets, which
    is part of why SRCH underperforms the paper's models.
    ``strategy="quantile"`` uses per-counter quantile edges instead.
    """

    def __init__(self, n_buckets: int = 10, window: int = 1,
                 strategy: str = "width") -> None:
        if n_buckets < 2:
            raise DatasetError(f"need >= 2 buckets, got {n_buckets}")
        if window < 1:
            raise DatasetError(f"window must be >= 1, got {window}")
        if strategy not in ("width", "quantile"):
            raise DatasetError(f"unknown bucket strategy {strategy!r}")
        self.n_buckets = n_buckets
        self.window = window
        self.strategy = strategy
        self.edges_: np.ndarray | None = None  # (C, n_buckets - 1)

    def fit(self, x: np.ndarray) -> "CounterHistogramEncoder":
        """Learn per-counter bucket edges from training rows."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DatasetError(f"X must be 2-D, got {x.shape}")
        if self.strategy == "quantile":
            qs = np.linspace(0.0, 1.0, self.n_buckets + 1)[1:-1]
            self.edges_ = np.quantile(x, qs, axis=0).T  # (C, B-1)
        else:
            lo = x.min(axis=0)
            hi = x.max(axis=0)
            span = np.where(hi > lo, hi - lo, 1.0)
            steps = np.linspace(0.0, 1.0, self.n_buckets + 1)[1:-1]
            self.edges_ = lo[:, None] + span[:, None] * steps[None, :]
        return self

    def _bucketize(self, x: np.ndarray) -> np.ndarray:
        """Bucket index of every (row, counter) entry."""
        assert self.edges_ is not None
        buckets = np.zeros(x.shape, dtype=np.int64)
        for c in range(x.shape[1]):
            buckets[:, c] = np.searchsorted(self.edges_[c], x[:, c],
                                            side="right")
        return buckets

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Histogram features for each row's trailing window.

        Row ``t`` of the output holds, for each counter, the histogram
        of that counter's values over rows ``max(0, t-window+1) .. t``,
        normalised to frequencies and concatenated across counters.
        """
        if self.edges_ is None:
            raise NotFittedError("encoder must be fitted first")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DatasetError(f"X must be 2-D, got {x.shape}")
        t_count, n_counters = x.shape
        buckets = self._bucketize(x)
        # One-hot per (t, counter), then a sliding-window cumulative sum.
        onehot = np.zeros((t_count, n_counters, self.n_buckets))
        rows = np.repeat(np.arange(t_count), n_counters)
        cols = np.tile(np.arange(n_counters), t_count)
        onehot[rows, cols, buckets.ravel()] = 1.0
        cum = np.cumsum(onehot, axis=0)
        out = cum.copy()
        if self.window < t_count:
            out[self.window:] = cum[self.window:] - cum[:-self.window]
        counts = out.sum(axis=2, keepdims=True)
        counts[counts == 0.0] = 1.0
        freq = out / counts
        return freq.reshape(t_count, n_counters * self.n_buckets)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    @property
    def n_features(self) -> int:
        """Output feature dimensionality."""
        if self.edges_ is None:
            raise NotFittedError("encoder must be fitted first")
        return self.edges_.shape[0] * self.n_buckets
