"""First-order optimisers for neural network training.

The paper trains its MLPs via backpropagation with the Adam optimiser
[26] "using an open source implementation"; this is ours.
"""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam optimiser over a list of parameter arrays (in-place)."""

    def __init__(self, params: list[np.ndarray], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        """Apply one update given gradients aligned with ``params``."""
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class SGD:
    """Plain SGD with optional momentum (used in tests as a reference)."""

    def __init__(self, params: list[np.ndarray], lr: float = 1e-2,
                 momentum: float = 0.0) -> None:
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self, grads: list[np.ndarray]) -> None:
        """Apply one update given gradients aligned with ``params``."""
        for p, g, vel in zip(self.params, grads, self._velocity):
            vel *= self.momentum
            vel -= self.lr * g
            p += vel
