"""High-throughput hyperparameter screening (Section 6.3).

The paper screens many model configurations by training each across
the cross-validation folds and characterising the *distribution* of a
metric — not just its mean. The selection rule is explicitly variance-
averse: "choose hyperparameters that minimize standard deviation in
PGOS but maintain a high average", because low variance across folds
predicts low variance on unseen workloads.
"""

from __future__ import annotations

import dataclasses
import functools
import pickle
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.config import (exec_arena_enabled, exec_shard_size,
                          surrogate_enabled)
from repro.errors import ArenaIntegrityError, DatasetError
from repro.exec.arena import TraceArena
from repro.exec.parallel import ParallelMap, default_parallel_map
from repro.exec.stats import EXEC_STATS
from repro.obs import tracer
from repro.ml.base import Estimator
from repro.ml.crossval import Fold

#: Metric signature: (y_true, y_pred, scores) -> float.
MetricFn = Callable[[np.ndarray, np.ndarray, np.ndarray], float]


@dataclasses.dataclass(frozen=True)
class ScreenRecord:
    """Cross-fold metric distribution for one model configuration."""

    config: Mapping[str, object]
    metrics: Mapping[str, tuple[float, float]]  # name -> (mean, std)
    per_fold: Mapping[str, tuple[float, ...]]

    def mean(self, metric: str) -> float:
        return self.metrics[metric][0]

    def std(self, metric: str) -> float:
        return self.metrics[metric][1]


def _screen_cell(pair: tuple[Mapping[str, object], Fold], *,
                 model_factory: Callable[[Mapping[str, object]], Estimator],
                 x: np.ndarray, y: np.ndarray,
                 metric_fns: Mapping[str, MetricFn],
                 threshold_tuner) -> dict[str, float]:
    """Train/score one (configuration, fold) cell (parallel unit).

    Every cell is independent — the estimator is freshly built from the
    config and all randomness is internal to its seed — so fanning the
    full (config, fold) grid keeps every backend bit-identical to the
    nested serial loops while exposing ``len(configs) * len(folds)``-way
    parallelism instead of ``len(configs)``-way.
    """
    config, fold = pair
    model = model_factory(config)
    model.fit(x[fold.tuning_idx], y[fold.tuning_idx])
    if threshold_tuner is not None:
        threshold_tuner(model, x[fold.tuning_idx], y[fold.tuning_idx])
    scores = model.predict_proba(x[fold.validation_idx])
    preds = (scores >= model.decision_threshold).astype(np.int64)
    y_val = y[fold.validation_idx]
    return {name: fn(y_val, preds, scores)
            for name, fn in metric_fns.items()}


def _arena_screen_cell(handle: str,
                       pair: tuple[Mapping[str, object], Fold],
                       ) -> dict[str, float]:
    """Worker-side cell: features/labels and factory ride the arena.

    Only the (config, fold) pair ships per task; ``x``/``y`` are
    zero-copy views of the shared mapping (fancy indexing by fold
    copies the selected rows, so the read-only views are never
    written).
    """
    arena = TraceArena.attach(handle)
    return _screen_cell(
        pair,
        model_factory=arena.object("model_factory"),
        x=arena.array("x"), y=arena.array("y"),
        metric_fns=arena.object("metric_fns"),
        threshold_tuner=arena.object("threshold_tuner"),
    )


def _assemble_record(config: Mapping[str, object],
                     cells: Sequence[Mapping[str, float]],
                     metric_fns: Mapping[str, MetricFn]) -> ScreenRecord:
    """Fold one configuration's cells back into a ScreenRecord."""
    per_fold = {name: [cell[name] for cell in cells]
                for name in metric_fns}
    metrics = {
        name: (float(np.mean(vals)), float(np.std(vals)))
        for name, vals in per_fold.items()
    }
    return ScreenRecord(
        config=dict(config),
        metrics=metrics,
        per_fold={name: tuple(vals) for name, vals in per_fold.items()},
    )


def screen_configs(model_factory: Callable[[Mapping[str, object]], Estimator],
                   configs: Sequence[Mapping[str, object]],
                   x: np.ndarray, y: np.ndarray, folds: Sequence[Fold],
                   metric_fns: Mapping[str, MetricFn],
                   threshold_tuner: Callable[[Estimator, np.ndarray,
                                              np.ndarray], float]
                   | None = None,
                   pmap: ParallelMap | None = None) -> list[ScreenRecord]:
    """Train every configuration across every fold; collect metrics.

    Parameters
    ----------
    model_factory:
        Builds an unfitted estimator from a config mapping.
    threshold_tuner:
        Optional post-fit sensitivity adjustment run on the tuning set
        (the paper keeps tuning-set SLA violations below 1%).
    pmap:
        Execution backend for the (configuration, fold) fan-out
        (serial unless configured). Cells are independent, so record
        order and contents match the nested serial loops exactly;
        unpicklable factories degrade gracefully to serial under the
        process backend.
    """
    if not configs:
        raise DatasetError("no configurations to screen")
    pmap = pmap if pmap is not None else default_parallel_map()
    grid = [(config, fold) for config in configs for fold in folds]
    with tracer.span("screen_configs", configs=len(configs),
                     folds=len(folds), surrogate=surrogate_enabled()):
        return _screen_grid(model_factory, configs, x, y, folds,
                            metric_fns, threshold_tuner, pmap, grid)


def _screen_grid(model_factory, configs, x, y, folds, metric_fns,
                 threshold_tuner, pmap, grid) -> list[ScreenRecord]:
    """Map every (config, fold) cell, optionally shard-by-shard.

    The arena (when it pays) is built once and shared across shards;
    ``REPRO_EXEC_SHARD`` caps how many cells are in flight at a time,
    so the parent never holds more than one shard of cell results
    before folding them into records. Cells are independent, so
    sharded screening is bit-identical to the single-pass map.
    """
    arena = None
    if (exec_arena_enabled() and len(grid) > 1
            and pmap.uses_processes(len(grid), "hyperscreen")):
        try:
            arena = TraceArena.build(
                arrays={"x": np.asarray(x), "y": np.asarray(y)},
                objects={"model_factory": model_factory,
                         "metric_fns": dict(metric_fns),
                         "threshold_tuner": threshold_tuner})
        except (pickle.PicklingError, AttributeError, TypeError):
            EXEC_STATS.incr("arena.build_fallback")
    use_arena = arena is not None

    def _map_cells(sub):
        nonlocal use_arena
        if use_arena:
            try:
                return pmap.map(
                    functools.partial(_arena_screen_cell, arena.handle),
                    sub, stage="hyperscreen")
            except ArenaIntegrityError:
                # Corrupt/injected-corrupt segment: fall back to
                # pickled dispatch — bit-identical, just slower.
                EXEC_STATS.incr("arena.attach_fallback")
                use_arena = False
        return pmap.map(
            functools.partial(_screen_cell, model_factory=model_factory,
                              x=x, y=y, metric_fns=metric_fns,
                              threshold_tuner=threshold_tuner),
            sub, stage="hyperscreen")

    try:
        shard = exec_shard_size()
        if shard is None or len(grid) <= shard:
            cells = _map_cells(grid)
        else:
            n_shards = -(-len(grid) // shard)
            cells = []
            for si in range(n_shards):
                sub = grid[si * shard:(si + 1) * shard]
                with tracer.span("screen_configs.shard", shard=si,
                                 shards=n_shards, cells=len(sub)):
                    cells.extend(_map_cells(sub))
                EXEC_STATS.incr("hyperscreen.shards")
    finally:
        if arena is not None:
            arena.close()
    n_folds = len(folds)
    return [
        _assemble_record(config, cells[i * n_folds:(i + 1) * n_folds],
                         metric_fns)
        for i, config in enumerate(configs)
    ]


def select_best(records: Sequence[ScreenRecord], metric: str = "pgos",
                mean_margin: float = 0.05) -> ScreenRecord:
    """The paper's selection rule: min std at near-maximal mean.

    Among configurations whose mean is within ``mean_margin`` of the
    best mean, choose the one with the smallest standard deviation.
    """
    if not records:
        raise DatasetError("no screening records")
    best_mean = max(record.mean(metric) for record in records)
    candidates = [record for record in records
                  if record.mean(metric) >= best_mean - mean_margin]
    return min(candidates, key=lambda record: record.std(metric))
