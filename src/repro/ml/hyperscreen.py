"""High-throughput hyperparameter screening (Section 6.3).

The paper screens many model configurations by training each across
the cross-validation folds and characterising the *distribution* of a
metric — not just its mean. The selection rule is explicitly variance-
averse: "choose hyperparameters that minimize standard deviation in
PGOS but maintain a high average", because low variance across folds
predicts low variance on unseen workloads.
"""

from __future__ import annotations

import dataclasses
import functools
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.exec.parallel import ParallelMap, default_parallel_map
from repro.ml.base import Estimator
from repro.ml.crossval import Fold

#: Metric signature: (y_true, y_pred, scores) -> float.
MetricFn = Callable[[np.ndarray, np.ndarray, np.ndarray], float]


@dataclasses.dataclass(frozen=True)
class ScreenRecord:
    """Cross-fold metric distribution for one model configuration."""

    config: Mapping[str, object]
    metrics: Mapping[str, tuple[float, float]]  # name -> (mean, std)
    per_fold: Mapping[str, tuple[float, ...]]

    def mean(self, metric: str) -> float:
        return self.metrics[metric][0]

    def std(self, metric: str) -> float:
        return self.metrics[metric][1]


def _screen_one(config: Mapping[str, object], *,
                model_factory: Callable[[Mapping[str, object]], Estimator],
                x: np.ndarray, y: np.ndarray, folds: Sequence[Fold],
                metric_fns: Mapping[str, MetricFn],
                threshold_tuner) -> ScreenRecord:
    """Screen one configuration across every fold (parallel unit)."""
    per_fold: dict[str, list[float]] = {name: [] for name in metric_fns}
    for fold in folds:
        model = model_factory(config)
        model.fit(x[fold.tuning_idx], y[fold.tuning_idx])
        if threshold_tuner is not None:
            threshold_tuner(model, x[fold.tuning_idx],
                            y[fold.tuning_idx])
        scores = model.predict_proba(x[fold.validation_idx])
        preds = (scores >= model.decision_threshold).astype(np.int64)
        y_val = y[fold.validation_idx]
        for name, fn in metric_fns.items():
            per_fold[name].append(fn(y_val, preds, scores))
    metrics = {
        name: (float(np.mean(vals)), float(np.std(vals)))
        for name, vals in per_fold.items()
    }
    return ScreenRecord(
        config=dict(config),
        metrics=metrics,
        per_fold={name: tuple(vals) for name, vals in per_fold.items()},
    )


def screen_configs(model_factory: Callable[[Mapping[str, object]], Estimator],
                   configs: Sequence[Mapping[str, object]],
                   x: np.ndarray, y: np.ndarray, folds: Sequence[Fold],
                   metric_fns: Mapping[str, MetricFn],
                   threshold_tuner: Callable[[Estimator, np.ndarray,
                                              np.ndarray], float]
                   | None = None,
                   pmap: ParallelMap | None = None) -> list[ScreenRecord]:
    """Train every configuration across every fold; collect metrics.

    Parameters
    ----------
    model_factory:
        Builds an unfitted estimator from a config mapping.
    threshold_tuner:
        Optional post-fit sensitivity adjustment run on the tuning set
        (the paper keeps tuning-set SLA violations below 1%).
    pmap:
        Execution backend for the per-configuration fan-out (serial
        unless configured). Configurations are independent, so record
        order and contents match the serial path exactly; unpicklable
        factories degrade gracefully to serial under the process
        backend.
    """
    if not configs:
        raise DatasetError("no configurations to screen")
    pmap = pmap if pmap is not None else default_parallel_map()
    return pmap.map(
        functools.partial(_screen_one, model_factory=model_factory,
                          x=x, y=y, folds=folds, metric_fns=metric_fns,
                          threshold_tuner=threshold_tuner),
        configs, stage="hyperscreen")


def select_best(records: Sequence[ScreenRecord], metric: str = "pgos",
                mean_margin: float = 0.05) -> ScreenRecord:
    """The paper's selection rule: min std at near-maximal mean.

    Among configurations whose mean is within ``mean_margin`` of the
    best mean, choose the one with the smallest standard deviation.
    """
    if not records:
        raise DatasetError("no screening records")
    best_mean = max(record.mean(metric) for record in records)
    candidates = [record for record in records
                  if record.mean(metric) >= best_mean - mean_margin]
    return min(candidates, key=lambda record: record.std(metric))
