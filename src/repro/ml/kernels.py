"""Kernel functions for support vector machines."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain inner-product kernel."""
    return a @ b.T


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """Gaussian radial-basis-function kernel."""
    aa = (a * a).sum(axis=1)[:, None]
    bb = (b * b).sum(axis=1)[None, :]
    sq = np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * sq)


def chi2_kernel(a: np.ndarray, b: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """Exponential chi-square kernel (the paper's expensive SVM kernel).

    ``k(x, y) = exp(-gamma * sum_i (x_i - y_i)^2 / (x_i + y_i))``

    Defined for non-negative features; counter data normalised by
    cycles is non-negative, and callers must shift any standardised
    features back to the positive orthant before using it.
    """
    if np.any(a < 0.0) or np.any(b < 0.0):
        raise ConfigurationError("chi2 kernel requires non-negative features")
    diff = a[:, None, :] - b[None, :, :]
    denom = a[:, None, :] + b[None, :, :]
    denom = np.where(denom <= 0.0, 1.0, denom)
    dist = (diff * diff / denom).sum(axis=2)
    return np.exp(-gamma * dist)


KERNELS = {
    "linear": linear_kernel,
    "rbf": rbf_kernel,
    "chi2": chi2_kernel,
}


def get_kernel(name: str):
    """Look up a kernel function by name."""
    try:
        return KERNELS[name]
    except KeyError as exc:
        raise ConfigurationError(f"unknown kernel {name!r}") from exc
