"""Multi-layer perceptron classifier.

The paper's neural adaptation models (Section 5): stacked linear
pattern-matching layers with ReLU activations and a sigmoid output,
trained by backpropagation with Adam on binary cross-entropy. Hidden
layer sizes are the paper's "filters per layer". The fitted model
carries an adjustable ``decision_threshold`` for sensitivity tuning
(Section 6.3) and exposes its weights for firmware compilation
(:mod:`repro.firmware.codegen`).
"""

from __future__ import annotations

import numpy as np

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.ml.base import Estimator, StandardScaler, check_xy
from repro.ml.optim import Adam


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class MLPClassifier(Estimator):
    """Binary MLP with ReLU hidden layers and sigmoid output.

    Parameters
    ----------
    hidden_layers:
        Filters per hidden layer, e.g. ``(8, 8, 4)`` for the paper's
        Best MLP or ``(10,)`` for the CHARSTAR baseline.
    epochs, batch_size, lr:
        Adam training schedule.
    l2:
        L2 weight decay coefficient.
    class_weight:
        ``"balanced"`` reweights the loss by inverse class frequency;
        ``None`` leaves classes unweighted.
    """

    def __init__(self, hidden_layers: tuple[int, ...] = (8, 8, 4),
                 epochs: int = 30, batch_size: int = 256,
                 lr: float = 3e-3, l2: float = 1e-5,
                 class_weight: str | None = "balanced",
                 seed: int = 0) -> None:
        if any(h <= 0 for h in hidden_layers):
            raise ConfigurationError(
                f"hidden layer sizes must be positive: {hidden_layers}"
            )
        self.hidden_layers = tuple(hidden_layers)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.l2 = l2
        self.class_weight = class_weight
        self.seed = seed
        self.decision_threshold = 0.5
        self.weights_: list[np.ndarray] | None = None
        self.biases_: list[np.ndarray] | None = None
        self.scaler_: StandardScaler | None = None
        self.loss_curve_: list[float] = []

    # ------------------------------------------------------------------
    def _init_params(self, n_features: int,
                     rng: np.random.Generator) -> None:
        sizes = [n_features, *self.hidden_layers, 1]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # He initialisation for ReLU layers.
            scale = np.sqrt(2.0 / fan_in)
            self.weights_.append(rng.normal(0.0, scale, (fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Forward pass; returns (probabilities, per-layer activations)."""
        assert self.weights_ is not None and self.biases_ is not None
        activations = [x]
        h = x
        last = len(self.weights_) - 1
        for i, (w, b) in enumerate(zip(self.weights_, self.biases_)):
            z = h @ w + b
            h = sigmoid(z) if i == last else relu(z)
            activations.append(h)
        return h[:, 0], activations

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        x, y = check_xy(x, y)
        y = y.astype(np.float64)
        self.scaler_ = StandardScaler()
        xs = self.scaler_.fit_transform(x)
        rng = rng_mod.stream(self.seed, "mlp-init", self.hidden_layers)
        self._init_params(xs.shape[1], rng)
        assert self.weights_ is not None and self.biases_ is not None
        params = [*self.weights_, *self.biases_]
        optimizer = Adam(params, lr=self.lr)
        n = xs.shape[0]

        if self.class_weight == "balanced":
            pos = max(y.mean(), 1e-6)
            w_pos, w_neg = 0.5 / pos, 0.5 / max(1.0 - pos, 1e-6)
        else:
            w_pos = w_neg = 1.0

        self.loss_curve_ = []
        n_layers = len(self.weights_)
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                xb, yb = xs[idx], y[idx]
                probs, acts = self._forward(xb)
                sample_w = np.where(yb == 1.0, w_pos, w_neg)
                sample_w = sample_w / sample_w.sum()
                eps = 1e-12
                loss = -np.sum(sample_w * (
                    yb * np.log(probs + eps)
                    + (1.0 - yb) * np.log(1.0 - probs + eps)))
                epoch_loss += loss * len(idx) / n
                # Backprop: sigmoid + weighted BCE gives a clean delta.
                delta = ((probs - yb) * sample_w)[:, None]
                w_grads: list[np.ndarray] = [None] * n_layers  # type: ignore
                b_grads: list[np.ndarray] = [None] * n_layers  # type: ignore
                for layer in range(n_layers - 1, -1, -1):
                    a_prev = acts[layer]
                    w_grads[layer] = (a_prev.T @ delta
                                      + self.l2 * self.weights_[layer])
                    b_grads[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = delta @ self.weights_[layer].T
                        delta = delta * (acts[layer] > 0.0)
                optimizer.step([*w_grads, *b_grads])
            self.loss_curve_.append(float(epoch_loss))
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted("weights_")
        assert self.scaler_ is not None
        x, _ = check_xy(x)
        xs = self.scaler_.transform(x)
        probs, _ = self._forward(xs)
        return probs

    # ------------------------------------------------------------------
    @property
    def n_parameters(self) -> int:
        """Total trained parameter count (weights plus biases)."""
        self._require_fitted("weights_")
        assert self.weights_ is not None and self.biases_ is not None
        return int(sum(w.size for w in self.weights_)
                   + sum(b.size for b in self.biases_))
