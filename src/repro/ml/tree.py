"""CART decision-tree classifier.

The paper trains random-forest adaptation models with "an open source
implementation of the CART algorithm that greedily grows trees by
partitioning tuning samples into groups to minimize label entropy"
(Section 7). This is that algorithm: exhaustive threshold search per
feature using sorted prefix sums (vectorised in numpy), entropy
criterion, recursive growth to a depth cap.

The fitted tree is stored as flat arrays (feature, threshold, children,
leaf probability), which both makes batched prediction fast and maps
directly onto the firmware compiler's node layout
(:mod:`repro.firmware.codegen`).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.ml.base import Estimator, check_xy


def entropy(pos: np.ndarray, total: np.ndarray) -> np.ndarray:
    """Binary entropy of ``pos`` positives out of ``total`` samples."""
    total = np.maximum(total, 1e-12)
    p = np.clip(pos / total, 1e-12, 1.0 - 1e-12)
    return -(p * np.log2(p) + (1.0 - p) * np.log2(1.0 - p))


@dataclasses.dataclass
class _Split:
    feature: int
    threshold: float
    gain: float


class DecisionTreeClassifier(Estimator):
    """Binary CART tree with entropy criterion.

    Parameters
    ----------
    max_depth:
        Depth cap (paper's RF uses depth-8 trees; Table 3 also lists a
        single depth-16 tree).
    min_samples_leaf / min_samples_split:
        Pre-pruning controls.
    max_features:
        Features considered per split: ``None`` (all), ``"sqrt"``, or
        an int — the random-forest decorrelation knob.
    """

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 8,
                 min_samples_split: int = 16,
                 max_features: int | str | None = None,
                 seed: int = 0) -> None:
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.decision_threshold = 0.5
        # Flat node arrays (filled by fit).
        self.feature_: np.ndarray | None = None
        self.threshold_: np.ndarray | None = None
        self.left_: np.ndarray | None = None
        self.right_: np.ndarray | None = None
        self.value_: np.ndarray | None = None
        self.n_features_: int | None = None

    # ------------------------------------------------------------------
    def _n_split_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        return min(int(self.max_features), n_features)

    def _best_split(self, x: np.ndarray, y: np.ndarray,
                    features: np.ndarray) -> _Split | None:
        n = y.shape[0]
        total_pos = y.sum()
        parent = float(entropy(np.array(total_pos), np.array(n)))
        best: _Split | None = None
        min_leaf = self.min_samples_leaf
        for f in features:
            order = np.argsort(x[:, f], kind="stable")
            xf = x[order, f]
            yf = y[order]
            pos_prefix = np.cumsum(yf)
            counts = np.arange(1, n + 1)
            # Candidate split after position i (left = first i+1 rows),
            # valid only where the feature value changes.
            valid = xf[:-1] < xf[1:]
            left_n = counts[:-1]
            right_n = n - left_n
            valid &= (left_n >= min_leaf) & (right_n >= min_leaf)
            if not valid.any():
                continue
            left_pos = pos_prefix[:-1]
            right_pos = total_pos - left_pos
            child = (left_n * entropy(left_pos, left_n)
                     + right_n * entropy(right_pos, right_n)) / n
            gain = parent - child
            gain[~valid] = -np.inf
            i = int(gain.argmax())
            if gain[i] <= 1e-12:
                continue
            threshold = 0.5 * (xf[i] + xf[i + 1])
            if best is None or gain[i] > best.gain:
                best = _Split(feature=int(f), threshold=float(threshold),
                              gain=float(gain[i]))
        return best

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x, y = check_xy(x, y)
        y = y.astype(np.float64)
        self.n_features_ = x.shape[1]
        rng = rng_mod.stream(self.seed, "tree-features")
        features_all = np.arange(x.shape[1])
        n_split = self._n_split_features(x.shape[1])

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []

        def grow(idx: np.ndarray, depth: int) -> int:
            node = len(feature)
            feature.append(-1)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
            ys = y[idx]
            prob = float(ys.mean()) if ys.size else 0.0
            value.append(prob)
            if (depth >= self.max_depth
                    or idx.size < self.min_samples_split
                    or prob <= 0.0 or prob >= 1.0):
                return node
            if n_split < x.shape[1]:
                candidates = rng.choice(features_all, size=n_split,
                                        replace=False)
            else:
                candidates = features_all
            split = self._best_split(x[idx], ys, candidates)
            if split is None:
                return node
            mask = x[idx, split.feature] <= split.threshold
            feature[node] = split.feature
            threshold[node] = split.threshold
            left[node] = grow(idx[mask], depth + 1)
            right[node] = grow(idx[~mask], depth + 1)
            return node

        grow(np.arange(x.shape[0]), 0)
        self.feature_ = np.array(feature, dtype=np.int64)
        self.threshold_ = np.array(threshold)
        self.left_ = np.array(left, dtype=np.int64)
        self.right_ = np.array(right, dtype=np.int64)
        self.value_ = np.array(value)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted("feature_")
        assert (self.feature_ is not None and self.threshold_ is not None
                and self.left_ is not None and self.right_ is not None
                and self.value_ is not None)
        x, _ = check_xy(x)
        nodes = np.zeros(x.shape[0], dtype=np.int64)
        active = self.feature_[nodes] >= 0
        while active.any():
            cur = nodes[active]
            feat = self.feature_[cur]
            go_left = x[active, feat] <= self.threshold_[cur]
            nodes[active] = np.where(go_left, self.left_[cur],
                                     self.right_[cur])
            active = self.feature_[nodes] >= 0
        return self.value_[nodes]

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes in the fitted tree."""
        self._require_fitted("feature_")
        assert self.feature_ is not None
        return int(self.feature_.shape[0])

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        self._require_fitted("feature_")
        assert self.left_ is not None and self.right_ is not None
        depths = np.zeros(self.n_nodes, dtype=np.int64)
        for node in range(self.n_nodes):
            for child in (self.left_[node], self.right_[node]):
                if child >= 0:
                    depths[child] = depths[node] + 1
        return int(depths.max()) if self.n_nodes else 0
