"""Firmware disassembler.

Renders compiled :class:`~repro.firmware.codegen.FirmwareProgram`
images as the pseudo-assembly a firmware engineer would review —
the counterpart of the paper's Listings 1 (an MLP filter's inner
product + ReLU) and 2 (a branch-free decision-tree traversal). Used
for inspection and documentation; the float32 semantics live in
:mod:`repro.firmware.vm`.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import ConfigurationError
from repro.firmware.codegen import FirmwareProgram


def disassemble(program: FirmwareProgram, max_lines: int = 120) -> str:
    """Pseudo-assembly listing of a compiled program."""
    handler = _HANDLERS.get(program.kind)
    if handler is None:
        raise ConfigurationError(
            f"no disassembler for program kind {program.kind!r}"
        )
    lines = [f"; kind={program.kind} inputs={program.n_inputs} "
             f"ops/prediction={program.ops_per_prediction} "
             f"image={program.memory_bytes}B"]
    lines += handler(program)
    if len(lines) > max_lines:
        hidden = len(lines) - max_lines
        lines = lines[:max_lines]
        lines.append(f"; ... {hidden} more lines elided ...")
    return "\n".join(lines) + "\n"


def _disasm_mlp(program: FirmwareProgram) -> list[str]:
    buf = program.image
    (n_sizes,) = struct.unpack_from("<I", buf, 0)
    sizes = struct.unpack_from(f"<{n_sizes}I", buf, 4)
    lines = [f"; topology {'x'.join(map(str, sizes))}"]
    last = n_sizes - 2
    for layer, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
        lines.append(f"layer{layer}:")
        lines.append(f"    ; {fan_out} filters over {fan_in} inputs")
        for unit in range(min(fan_out, 2)):
            lines.append(f"  filter{layer}_{unit}:")
            for i in range(min(fan_in, 3)):
                lines.append(f"    fld    dword ptr [x+{4 * i}]")
                lines.append(f"    fmul   dword ptr [w{layer}_{unit}"
                             f"+{4 * i}]")
                lines.append("    faddp  st(1)")
            if fan_in > 3:
                lines.append(f"    ; ... {fan_in - 3} more "
                             "multiply-accumulates ...")
            lines.append(f"    fadd   dword ptr [b{layer}_{unit}]")
            if layer == last:
                lines.append("    call   sigmoid        ; logistic")
            else:
                lines.append("    fldz")
                lines.append("    fucomi st(1)          ; ReLU")
                lines.append("    fcmovnbe st(0), st(1)")
        if fan_out > 2:
            lines.append(f"  ; ... {fan_out - 2} more filters ...")
    return lines


def _disasm_tree_like(program: FirmwareProgram) -> list[str]:
    buf = program.image
    if program.kind == "forest":
        n_trees, depth, _n_features = struct.unpack_from("<III", buf, 0)
        offset = 12
    else:
        depth, _n_features = struct.unpack_from("<II", buf, 0)
        n_trees = 1
        offset = 8
    lines = [f"; {n_trees} tree(s), depth {depth}, branch-free "
             "traversal (trivial comparisons pad early leaves)"]
    n_internal = (1 << depth) - 1
    features = np.frombuffer(buf, np.uint8, min(n_internal, 3), offset)
    thresholds = np.frombuffer(buf, "<f4", min(n_internal, 3),
                               offset + n_internal)
    lines.append("tree0:")
    lines.append("    xor    edx, edx            ; node = 0")
    for level in range(min(depth, 3)):
        feat = int(features[min(level, features.shape[0] - 1)])
        thr = float(thresholds[min(level, thresholds.shape[0] - 1)])
        lines.append(f"  level{level}:")
        lines.append("    movzx  eax, byte ptr [feat+edx]")
        lines.append(f"    fld    dword ptr [x+4*eax] ; e.g. x[{feat}]")
        lines.append(f"    fucompi st(1)              ; vs {thr:.4g}")
        lines.append("    lea    edx, [2*edx+1]")
        lines.append("    adc    edx, 0              ; branch-free")
    if depth > 3:
        lines.append(f"    ; ... {depth - 3} more levels ...")
    lines.append("    movzx  eax, byte ptr [leaf+edx]")
    lines.append("    add    ebx, eax            ; vote")
    if n_trees > 1:
        lines.append(f"  ; ... {n_trees - 1} more trees, then majority "
                     "vote ...")
    return lines


def _disasm_linear(program: FirmwareProgram) -> list[str]:
    d = program.n_inputs
    lines = ["; standardised inner product + logistic"]
    for i in range(min(d, 3)):
        lines.append(f"    fld    dword ptr [x+{4 * i}]")
        lines.append(f"    fmul   dword ptr [coef+{4 * i}]")
        lines.append("    faddp  st(1)")
    if d > 3:
        lines.append(f"    ; ... {d - 3} more multiply-accumulates ...")
    lines.append("    fadd   dword ptr [intercept]")
    lines.append("    call   sigmoid             ; exp(): ~60 ops, "
                 "12 branches")
    return lines


def _disasm_linear_svm(program: FirmwareProgram) -> list[str]:
    buf = program.image
    members, d = struct.unpack_from("<II", buf, 0)
    lines = [f"; {members}-member linear-SVM ensemble over {d} inputs"]
    lines.append("member0:")
    lines += _disasm_linear(program)[1:]
    if members > 1:
        lines.append(f"; ... {members - 1} more members, mean margin ...")
    return lines


def _disasm_kernel_svm(program: FirmwareProgram) -> list[str]:
    buf = program.image
    n_sv, d = struct.unpack_from("<II", buf, 0)
    lines = [f"; chi-square kernel over {n_sv} support vectors x {d} "
             "dims"]
    lines.append("sv_loop:")
    lines.append("    fld    dword ptr [x+4*ecx]")
    lines.append("    fsub   dword ptr [sv+eax]   ; diff")
    lines.append("    fmul   st(0), st(0)         ; diff^2")
    lines.append("    fld    dword ptr [x+4*ecx]")
    lines.append("    fadd   dword ptr [sv+eax]   ; denom")
    lines.append("    fdivp  st(1)                ; guarded divide")
    lines.append("    faddp  st(1)                ; accumulate")
    lines.append(f"    ; ... per dim, {n_sv} support vectors ...")
    lines.append("    call   expf                 ; kernel value")
    lines.append("    fmul   dword ptr [alpha+4*esi]")
    return lines


def _disasm_srch(program: FirmwareProgram) -> list[str]:
    buf = program.image
    n_counters, n_buckets, n_features = struct.unpack_from("<III", buf, 0)
    lines = [f"; SRCH: {n_counters} counters x {n_buckets} buckets -> "
             f"{n_features} indicator features"]
    lines.append("bucketize:")
    lines.append("    ; per counter: binary search over bucket edges")
    lines.append("    ; (performed by the telemetry histogram logic)")
    lines += _disasm_linear(program)[1:]
    return lines


_HANDLERS = {
    "mlp": _disasm_mlp,
    "forest": _disasm_tree_like,
    "tree": _disasm_tree_like,
    "logistic": _disasm_linear,
    "linear_svm": _disasm_linear_svm,
    "kernel_svm": _disasm_kernel_svm,
    "srch": _disasm_srch,
}
