"""The microcontroller hosting adaptation models.

Section 3 / Table 3: 500 MHz, single-issue, integer and floating point
but no vector unit; 50% of cycles are safely available for inference
without interfering with existing real-time deadlines. The CPU-to-
microcontroller throughput ratio of 32 gives the per-granularity ops
budgets of Table 3's left half.
"""

from __future__ import annotations

import dataclasses

from repro.config import (
    MachineConfig,
    MicrocontrollerConfig,
    SUPPORTED_GRANULARITIES,
)
from repro.errors import BudgetExceededError


@dataclasses.dataclass(frozen=True)
class BudgetRow:
    """One row of Table 3's budget table."""

    granularity: int
    max_ops: int
    ops_budget: int


class Microcontroller:
    """Budget arithmetic and placement of models onto the firmware."""

    def __init__(self, config: MicrocontrollerConfig | None = None,
                 machine: MachineConfig | None = None) -> None:
        self.config = config or MicrocontrollerConfig()
        self.machine = machine or MachineConfig()

    @property
    def compute_ratio(self) -> float:
        """CPU-to-microcontroller instruction throughput ratio (32:1)."""
        return self.machine.peak_mips / self.config.mips

    def budget_table(self, granularities: tuple[int, ...]
                     = SUPPORTED_GRANULARITIES) -> list[BudgetRow]:
        """Reproduce the left half of Table 3."""
        rows = []
        for granularity in granularities:
            max_ops = int(granularity / self.compute_ratio)
            rows.append(BudgetRow(
                granularity=granularity,
                max_ops=max_ops,
                ops_budget=self.config.ops_budget(granularity,
                                                  self.machine),
            ))
        return rows

    def ops_budget(self, granularity: int) -> int:
        """Ops available per prediction at a gating granularity."""
        return self.config.ops_budget(granularity, self.machine)

    def finest_granularity(self, ops_per_prediction: int,
                           granularities: tuple[int, ...]
                           = SUPPORTED_GRANULARITIES) -> int:
        """Finest supported gating interval for a model's cost.

        The paper runs each model "at the finest temporal granularity
        our microcontroller supports", which maximises PPW.

        Raises
        ------
        BudgetExceededError
            If the model does not fit even the coarsest granularity.
        """
        for granularity in sorted(granularities):
            if self.ops_budget(granularity) >= ops_per_prediction:
                return granularity
        raise BudgetExceededError(
            f"{ops_per_prediction} ops exceed the budget at every "
            f"granularity up to {max(granularities)}"
        )

    def fits(self, ops_per_prediction: int, granularity: int,
             memory_bytes: int = 0) -> bool:
        """Whether a model fits the budget at a granularity."""
        if memory_bytes > self.config.sram_bytes:
            return False
        return ops_per_prediction <= self.ops_budget(granularity)
