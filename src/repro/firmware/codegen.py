"""Compile trained estimators into firmware programs.

A firmware program is (a) a packed little-endian parameter image, the
bytes a firmware update would ship, and (b) an inference op schedule
whose per-primitive costs are calibrated to the paper's hand-optimised
microcontroller assembly:

* an inner-product step (load, multiply, accumulate — Listing 1) costs
  :data:`MAC_OPS`;
* a ReLU costs :data:`RELU_OPS` (the fldz/fucomi/fcmovnbe sequence);
* one branch-free decision-tree level (indexed load, compare, cmov —
  Listing 2) costs :data:`TREE_LEVEL_OPS`;
* evaluating the logistic function costs :data:`SIGMOID_OPS` (the
  paper notes ``exp()`` needs up to 60 operations with 12 branches).

Random-forest trees are padded to full depth with trivial comparisons,
exactly as the paper does to equalise prediction cost, which also
yields its 5-bytes-per-node footprint (1-byte feature index + 4-byte
threshold).
"""

from __future__ import annotations

import dataclasses
import struct

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.ml.base import Estimator
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.mlp import MLPClassifier
from repro.ml.svm import KernelSVM, LinearSVM
from repro.ml.tree import DecisionTreeClassifier

#: Ops per multiply-accumulate (fld + fmul + fadd, Listing 1).
MAC_OPS = 3

#: Ops per ReLU activation (branch-free compare/select, Listing 1).
RELU_OPS = 4

#: Ops per branch-free tree level (indexed loads + fucompi + cmova,
#: Listing 2).
TREE_LEVEL_OPS = 8

#: Per-tree epilogue (leaf load + vote accumulate).
TREE_EPILOGUE_OPS = 3

#: Forest prologue/vote ops.
FOREST_OVERHEAD_OPS = 10

#: Evaluating the logistic function (exp() ~60 ops with 12 branches,
#: plus the add/divide).
SIGMOID_OPS = 120

#: Logistic-regression non-MAC overhead (bias add + compare).
LOGISTIC_OVERHEAD_OPS = 2

#: Per-member linear-SVM overhead (margin compare + calibration).
LINEAR_SVM_MEMBER_OVERHEAD = 46

#: Kernel-SVM per-support-vector per-dimension cost: subtract, square,
#: add, guarded divide, accumulate (branch-free chi-square distance).
KERNEL_DIM_OPS = 10


@dataclasses.dataclass(frozen=True)
class FirmwareProgram:
    """A compiled adaptation model."""

    kind: str
    image: bytes
    ops_per_prediction: int
    n_inputs: int
    metadata: dict

    @property
    def memory_bytes(self) -> int:
        """Honest firmware data footprint (the packed image size)."""
        return len(self.image)


def _pack_floats(values: np.ndarray) -> bytes:
    return np.asarray(values, dtype="<f4").tobytes()


# ----------------------------------------------------------------------
# MLP
# ----------------------------------------------------------------------
def compile_mlp(model: MLPClassifier) -> FirmwareProgram:
    """Pack an MLP: topology header, then per-layer weights and biases."""
    if model.weights_ is None or model.biases_ is None:
        raise NotFittedError("MLP must be fitted before compilation")
    assert model.scaler_ is not None
    sizes = [model.weights_[0].shape[0]]
    sizes += [w.shape[1] for w in model.weights_]
    header = struct.pack("<I", len(sizes))
    header += struct.pack(f"<{len(sizes)}I", *sizes)
    body = _pack_floats(model.scaler_.mean_)
    body += _pack_floats(model.scaler_.scale_)
    for w, b in zip(model.weights_, model.biases_):
        body += _pack_floats(w.ravel())
        body += _pack_floats(b)
    hidden_units = sum(sizes[1:-1])
    macs = sum(a * b for a, b in zip(sizes[:-1], sizes[1:]))
    ops = MAC_OPS * macs + RELU_OPS * hidden_units
    return FirmwareProgram(
        kind="mlp",
        image=header + body,
        ops_per_prediction=ops,
        n_inputs=sizes[0],
        metadata={"sizes": sizes,
                  "threshold": model.decision_threshold,
                  # Paper's Table-3 footprint convention: 8 bytes per
                  # filter (see EXPERIMENTS.md for the discrepancy with
                  # true parameter bytes).
                  "paper_footprint_bytes": 8 * hidden_units
                  + 8 * sizes[-1]},
    )


# ----------------------------------------------------------------------
# Decision trees / random forests
# ----------------------------------------------------------------------
def _full_tree_arrays(tree: DecisionTreeClassifier, depth: int,
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad a CART tree to a full binary tree of ``depth`` levels.

    Returns (features uint8, thresholds float32, leaf values uint8) in
    heap order: internal node ``i`` has children ``2i+1``/``2i+2``.
    Early leaves become trivial always-left comparisons whose entire
    subtree carries the leaf's value — the paper's cost-equalising
    trick.
    """
    assert (tree.feature_ is not None and tree.threshold_ is not None
            and tree.left_ is not None and tree.right_ is not None
            and tree.value_ is not None)
    n_internal = (1 << depth) - 1
    n_leaves = 1 << depth
    features = np.zeros(n_internal, dtype=np.uint8)
    thresholds = np.full(n_internal, np.float32(np.finfo(np.float32).max),
                         dtype=np.float32)
    leaves = np.zeros(n_leaves, dtype=np.uint8)

    def fill(node: int, heap: int, level: int) -> None:
        is_leaf = node < 0 or tree.feature_[node] < 0
        if level == depth:
            value = tree.value_[node] if node >= 0 else 0.0
            leaves[heap - n_internal] = np.uint8(round(value * 255))
            return
        if is_leaf:
            # Trivial comparison: feature 0 against +inf, always left;
            # both subtrees inherit the leaf value.
            fill(node, 2 * heap + 1, level + 1)
            fill(node, 2 * heap + 2, level + 1)
            return
        features[heap] = np.uint8(tree.feature_[node])
        thresholds[heap] = np.float32(tree.threshold_[node])
        fill(int(tree.left_[node]), 2 * heap + 1, level + 1)
        fill(int(tree.right_[node]), 2 * heap + 2, level + 1)

    fill(0, 0, 0)
    return features, thresholds, leaves


def compile_tree(tree: DecisionTreeClassifier,
                 depth: int | None = None) -> FirmwareProgram:
    """Compile one decision tree (Table 3's depth-16 entry)."""
    if tree.feature_ is None:
        raise NotFittedError("tree must be fitted before compilation")
    depth = depth or tree.max_depth
    features, thresholds, leaves = _full_tree_arrays(tree, depth)
    header = struct.pack("<II", depth, tree.n_features_ or 0)
    image = (header + features.tobytes() + thresholds.tobytes()
             + leaves.tobytes())
    ops = depth * TREE_LEVEL_OPS + TREE_EPILOGUE_OPS + FOREST_OVERHEAD_OPS
    n_nodes = (1 << (depth + 1)) - 1
    return FirmwareProgram(
        kind="tree",
        image=image,
        ops_per_prediction=ops,
        n_inputs=tree.n_features_ or 0,
        metadata={"depth": depth,
                  "threshold": tree.decision_threshold,
                  "paper_footprint_bytes": 5 * n_nodes},
    )


def compile_forest(forest: RandomForestClassifier) -> FirmwareProgram:
    """Compile a random forest: concatenated full trees plus a vote."""
    if forest.trees_ is None:
        raise NotFittedError("forest must be fitted before compilation")
    depth = forest.max_depth
    n_features = forest.trees_[0].n_features_ or 0
    header = struct.pack("<III", len(forest.trees_), depth, n_features)
    body = b""
    for tree in forest.trees_:
        features, thresholds, leaves = _full_tree_arrays(tree, depth)
        body += features.tobytes() + thresholds.tobytes() + leaves.tobytes()
    ops = (len(forest.trees_) * (depth * TREE_LEVEL_OPS
                                 + TREE_EPILOGUE_OPS)
           + FOREST_OVERHEAD_OPS)
    n_nodes = len(forest.trees_) * ((1 << (depth + 1)) - 1)
    return FirmwareProgram(
        kind="forest",
        image=header + body,
        ops_per_prediction=ops,
        n_inputs=n_features,
        metadata={"n_trees": len(forest.trees_), "depth": depth,
                  "threshold": forest.decision_threshold,
                  "paper_footprint_bytes": 5 * n_nodes},
    )


# ----------------------------------------------------------------------
# Linear models and SVMs
# ----------------------------------------------------------------------
def compile_logistic(model: LogisticRegression) -> FirmwareProgram:
    """Compile logistic regression: scaler, coefficients, intercept."""
    if model.coef_ is None:
        raise NotFittedError("logistic model must be fitted first")
    assert model.scaler_ is not None and model.intercept_ is not None
    d = model.coef_.shape[0]
    header = struct.pack("<I", d)
    image = (header + _pack_floats(model.scaler_.mean_)
             + _pack_floats(model.scaler_.scale_)
             + _pack_floats(model.coef_)
             + _pack_floats(np.array([model.intercept_])))
    ops = MAC_OPS * d + LOGISTIC_OVERHEAD_OPS + SIGMOID_OPS
    return FirmwareProgram(
        kind="logistic",
        image=image,
        ops_per_prediction=ops,
        n_inputs=d,
        metadata={"threshold": model.decision_threshold,
                  "paper_footprint_bytes": 8},
    )


def compile_linear_svm(model: LinearSVM) -> FirmwareProgram:
    """Compile a linear-SVM ensemble: per-member hyperplanes."""
    if model.coefs_ is None:
        raise NotFittedError("linear SVM must be fitted first")
    assert model.scaler_ is not None and model.intercepts_ is not None
    members, d = model.coefs_.shape
    header = struct.pack("<II", members, d)
    image = (header + _pack_floats(model.scaler_.mean_)
             + _pack_floats(model.scaler_.scale_)
             + _pack_floats(model.coefs_.ravel())
             + _pack_floats(model.intercepts_))
    ops = members * (MAC_OPS * d + LINEAR_SVM_MEMBER_OVERHEAD) + 2
    return FirmwareProgram(
        kind="linear_svm",
        image=image,
        ops_per_prediction=ops,
        n_inputs=d,
        metadata={"members": members,
                  "threshold": model.decision_threshold},
    )


def compile_kernel_svm(model: KernelSVM) -> FirmwareProgram:
    """Compile a kernel SVM: support vectors, duals, range scaling."""
    if model.support_x_ is None:
        raise NotFittedError("kernel SVM must be fitted first")
    assert (model.support_alpha_y_ is not None
            and model.intercept_ is not None
            and model._min is not None and model._range is not None)
    n_sv, d = model.support_x_.shape
    header = struct.pack("<II", n_sv, d)
    image = (header + _pack_floats(model._min)
             + _pack_floats(model._range)
             + _pack_floats(model.support_x_.ravel())
             + _pack_floats(model.support_alpha_y_)
             + _pack_floats(np.array([model.intercept_,
                                      model.gamma])))
    ops = n_sv * (KERNEL_DIM_OPS * d + 1) + SIGMOID_OPS
    return FirmwareProgram(
        kind="kernel_svm",
        image=image,
        ops_per_prediction=ops,
        n_inputs=d,
        metadata={"n_support": n_sv, "kernel": model.kernel_name,
                  "threshold": model.decision_threshold},
    )


def compile_srch(model: "object") -> FirmwareProgram:
    """Compile an SRCH estimator: bucket edges plus logistic weights.

    The bucketization itself is performed by the telemetry routing
    logic (which already bins values for histogram counters), so its
    cost is excluded, matching the paper's 572-op figure for 15
    counters x 10 buckets.
    """
    encoder = getattr(model, "encoder", None)
    logreg = getattr(model, "logreg", None)
    if encoder is None or logreg is None or logreg.coef_ is None:
        raise NotFittedError("SRCH model must be fitted first")
    assert encoder.edges_ is not None and logreg.scaler_ is not None
    n_counters, edge_count = encoder.edges_.shape
    n_features = logreg.coef_.shape[0]
    header = struct.pack("<III", n_counters, edge_count + 1, n_features)
    image = (header + _pack_floats(encoder.edges_.ravel())
             + _pack_floats(logreg.scaler_.mean_)
             + _pack_floats(logreg.scaler_.scale_)
             + _pack_floats(logreg.coef_)
             + _pack_floats(np.array([logreg.intercept_])))
    ops = MAC_OPS * n_features + LOGISTIC_OVERHEAD_OPS + SIGMOID_OPS
    return FirmwareProgram(
        kind="srch",
        image=image,
        ops_per_prediction=ops,
        n_inputs=n_counters,
        metadata={"n_buckets": edge_count + 1,
                  "threshold": getattr(model, "decision_threshold", 0.5)},
    )


def compile_model(model: Estimator) -> FirmwareProgram:
    """Compile any supported estimator by type dispatch."""
    if isinstance(model, MLPClassifier):
        return compile_mlp(model)
    if isinstance(model, RandomForestClassifier):
        return compile_forest(model)
    if isinstance(model, DecisionTreeClassifier):
        return compile_tree(model)
    if isinstance(model, LogisticRegression):
        return compile_logistic(model)
    if isinstance(model, LinearSVM):
        return compile_linear_svm(model)
    if isinstance(model, KernelSVM):
        return compile_kernel_svm(model)
    if type(model).__name__ == "SRCHEstimator":
        return compile_srch(model)
    raise ConfigurationError(
        f"no firmware backend for {type(model).__name__}"
    )
